// TextTable — minimal fixed-width table printer for the bench binaries.
//
// Every experiment bench prints paper-style rows; this keeps the formatting
// uniform (header, separator, right-aligned numeric cells).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tpa {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header + separator + rows) to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals (fixed notation).
std::string fmt_fixed(double value, int digits = 2);

}  // namespace tpa
