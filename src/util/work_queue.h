// A minimal deterministic-partitioning work queue for CPU-bound fan-out.
//
// Work items live in a caller-owned vector; workers claim indices through a
// single atomic counter, so the *partitioning* of items onto threads is
// dynamic (load-balanced) while the item list itself — and therefore the
// result slot each item writes — is fixed up front. Combined with per-item
// result slots this gives parallel runs whose aggregate output is
// independent of thread scheduling, which the parallel schedule explorer
// (tso/explorer.cpp) relies on for reproducibility.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace tpa {

/// Claims indices 0..size-1 exactly once across any number of threads.
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t size) : size_(size) {}

  /// Claims the next unclaimed index. Returns false when none remain.
  bool next(std::size_t* out) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= size_) return false;
    *out = i;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  std::size_t size_;
  std::atomic<std::size_t> next_{0};
};

/// Runs fn(index) for every index in [0, count) on `threads` threads (the
/// calling thread counts as one). fn must be safe to invoke concurrently
/// for distinct indices. Exceptions thrown by fn are not transported —
/// workers must catch their own (the explorer funnels failures through its
/// per-item result slots instead).
inline void parallel_for_index(std::size_t count, int threads,
                               const std::function<void(std::size_t)>& fn) {
  WorkQueue queue(count);
  auto worker = [&queue, &fn] {
    std::size_t i;
    while (queue.next(&i)) fn(i);
  };
  if (threads <= 1 || count <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  const int extra = threads - 1;
  pool.reserve(static_cast<std::size_t>(extra));
  for (int t = 0; t < extra; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
}

}  // namespace tpa
