// Deterministic, seedable random number generation.
//
// All randomized schedules and property tests in tpa are reproducible from a
// 64-bit seed. We use xoshiro256** seeded via SplitMix64 — fast, high
// quality, and independent of the standard library's unspecified engines so
// that recorded schedules replay identically across platforms.
#pragma once

#include <cstdint>

namespace tpa {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — the library's single RNG. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tpa
