// Checked assertions for the tpa library.
//
// Invariant violations in this library indicate either a broken algorithm
// under test (e.g. a mutual-exclusion violation) or a bug in the simulator
// itself. Both must be loud: TPA_CHECK throws tpa::CheckFailure with a
// formatted message, so tests can assert on failures and applications get a
// catchable, descriptive error instead of a silent corruption.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tpa {

/// Thrown when a TPA_CHECK-ed invariant does not hold.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "TPA_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace tpa

/// Always-on invariant check. `msg` is streamed, e.g.
///   TPA_CHECK(x < n, "x=" << x << " n=" << n);
#define TPA_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream tpa_check_os_;                                  \
      tpa_check_os_ << msg;                                              \
      ::tpa::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                  tpa_check_os_.str());                  \
    }                                                                    \
  } while (0)

/// Unconditional failure with a streamed message.
#define TPA_FAIL(msg)                                                    \
  do {                                                                   \
    std::ostringstream tpa_check_os_;                                    \
    tpa_check_os_ << msg;                                                \
    ::tpa::detail::check_failed("TPA_FAIL", __FILE__, __LINE__,          \
                                tpa_check_os_.str());                    \
  } while (0)
