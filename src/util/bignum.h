// BigNat — arbitrary-precision natural numbers.
//
// The bounds engine (src/bounds) evaluates Theorem 1's inequality
//     f(i) <= N^{2^{-f(i)}} / (f(i)! * 4^{f(i)+2i})
// exactly, by rewriting it over the integers as
//     ( f(i) * f(i)! * 4^{f(i)+2i} )^{2^{f(i)}} <= N .
// BigNat supplies the multiplication, exponentiation and factorial needed
// for that exact form (for moderate f), alongside decimal I/O for the bench
// tables. Log-domain arithmetic in src/bounds covers the astronomically
// large regime where the exact form is intractable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tpa {

class BigNat {
 public:
  /// Zero.
  BigNat() = default;

  /// From a 64-bit value.
  explicit BigNat(std::uint64_t value);

  /// Parses a decimal string. Throws CheckFailure on invalid input.
  static BigNat from_decimal(const std::string& text);

  /// 2^exponent.
  static BigNat pow2(std::uint64_t exponent);

  /// n! (0! == 1).
  static BigNat factorial(std::uint64_t n);

  bool is_zero() const { return limbs_.empty(); }

  /// Number of bits in the binary representation; 0 for zero.
  std::size_t bit_length() const;

  /// Comparison: negative/zero/positive like strcmp.
  int compare(const BigNat& other) const;

  bool operator==(const BigNat& o) const { return compare(o) == 0; }
  bool operator!=(const BigNat& o) const { return compare(o) != 0; }
  bool operator<(const BigNat& o) const { return compare(o) < 0; }
  bool operator<=(const BigNat& o) const { return compare(o) <= 0; }
  bool operator>(const BigNat& o) const { return compare(o) > 0; }
  bool operator>=(const BigNat& o) const { return compare(o) >= 0; }

  BigNat operator+(const BigNat& other) const;
  BigNat operator*(const BigNat& other) const;

  /// Subtraction; requires *this >= other (naturals only).
  BigNat operator-(const BigNat& other) const;

  /// this^exponent via square-and-multiply. 0^0 == 1 by convention.
  BigNat pow(std::uint64_t exponent) const;

  /// Multiplies in place by a small factor.
  void mul_small(std::uint64_t factor);

  /// Divides in place by a small divisor, returning the remainder.
  std::uint64_t divmod_small(std::uint64_t divisor);

  /// Decimal representation.
  std::string to_decimal() const;

  /// Value as double (may overflow to +inf); used for quick magnitude checks.
  double to_double() const;

  /// log2 of the value as a double; requires non-zero.
  double log2() const;

 private:
  void trim();

  // Little-endian 64-bit limbs; empty vector represents zero.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace tpa
