#include "util/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace tpa {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TPA_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  TPA_CHECK(cells.size() == headers_.size(),
            "row has " << cells.size() << " cells, expected "
                       << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };

  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace tpa
