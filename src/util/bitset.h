// DynBitset — a compact dynamic bitset used for awareness sets
// (Definition 1 of the paper) and process-set bookkeeping.
//
// Awareness sets are unioned on every read of shared memory and snapshotted
// on every buffered write, so the hot operations are |=, test, and set; all
// are implemented over 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace tpa {

class DynBitset {
 public:
  DynBitset() = default;

  /// Creates a bitset of `size` bits, all zero.
  explicit DynBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    TPA_CHECK(i < size_, "bit index " << i << " out of range " << size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i, bool value = true) {
    TPA_CHECK(i < size_, "bit index " << i << " out of range " << size_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void reset() {
    for (auto& w : words_) w = 0;
  }

  /// Union-assign. Both operands must have the same size.
  DynBitset& operator|=(const DynBitset& other) {
    TPA_CHECK(size_ == other.size_,
              "bitset size mismatch " << size_ << " vs " << other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  /// Intersection-assign.
  DynBitset& operator&=(const DynBitset& other) {
    TPA_CHECK(size_ == other.size_,
              "bitset size mismatch " << size_ << " vs " << other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }

  /// Removes from this set every bit set in `other`.
  DynBitset& subtract(const DynBitset& other) {
    TPA_CHECK(size_ == other.size_,
              "bitset size mismatch " << size_ << " vs " << other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] &= ~other.words_[w];
    return *this;
  }

  bool operator==(const DynBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// True if this set and `other` share at least one bit.
  bool intersects(const DynBitset& other) const {
    TPA_CHECK(size_ == other.size_,
              "bitset size mismatch " << size_ << " vs " << other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
      if (words_[w] & other.words_[w]) return true;
    return false;
  }

  /// True if every bit in this set is also in `other`.
  bool is_subset_of(const DynBitset& other) const {
    TPA_CHECK(size_ == other.size_,
              "bitset size mismatch " << size_ << " vs " << other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
      if (words_[w] & ~other.words_[w]) return false;
    return true;
  }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        out.push_back(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tpa
