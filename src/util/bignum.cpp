#include "util/bignum.h"

#include <cmath>

#include "util/check.h"

namespace tpa {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

}  // namespace

BigNat::BigNat(u64 value) {
  if (value) limbs_.push_back(value);
}

void BigNat::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNat BigNat::from_decimal(const std::string& text) {
  TPA_CHECK(!text.empty(), "empty decimal string");
  BigNat out;
  for (char c : text) {
    TPA_CHECK(c >= '0' && c <= '9', "invalid decimal digit '" << c << "'");
    out.mul_small(10);
    out = out + BigNat(static_cast<u64>(c - '0'));
  }
  return out;
}

BigNat BigNat::pow2(u64 exponent) {
  BigNat out;
  out.limbs_.assign(exponent / 64 + 1, 0);
  out.limbs_.back() = 1ULL << (exponent % 64);
  return out;
}

BigNat BigNat::factorial(u64 n) {
  BigNat out(1);
  for (u64 k = 2; k <= n; ++k) out.mul_small(k);
  return out;
}

std::size_t BigNat::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         static_cast<std::size_t>(64 - __builtin_clzll(top));
}

int BigNat::compare(const BigNat& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNat BigNat::operator+(const BigNat& other) const {
  BigNat out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 a = i < limbs_.size() ? limbs_[i] : 0;
    const u64 b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(a) + b + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  return out;
}

BigNat BigNat::operator-(const BigNat& other) const {
  TPA_CHECK(compare(other) >= 0, "BigNat subtraction would be negative");
  BigNat out;
  out.limbs_.resize(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 lhs = static_cast<u128>(limbs_[i]);
    const u128 rhs = static_cast<u128>(b) + borrow;
    if (lhs >= rhs) {
      out.limbs_[i] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<u64>((static_cast<u128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  out.trim();
  return out;
}

BigNat BigNat::operator*(const BigNat& other) const {
  if (is_zero() || other.is_zero()) return BigNat();
  BigNat out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    const u128 a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const u128 cur =
          a * other.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigNat BigNat::pow(u64 exponent) const {
  BigNat result(1);
  BigNat base = *this;
  while (exponent) {
    if (exponent & 1) result = result * base;
    exponent >>= 1;
    if (exponent) base = base * base;
  }
  return result;
}

void BigNat::mul_small(u64 factor) {
  if (factor == 0) {
    limbs_.clear();
    return;
  }
  u64 carry = 0;
  for (auto& limb : limbs_) {
    const u128 cur = static_cast<u128>(limb) * factor + carry;
    limb = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  if (carry) limbs_.push_back(carry);
}

u64 BigNat::divmod_small(u64 divisor) {
  TPA_CHECK(divisor != 0, "division by zero");
  u128 remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const u128 cur = (remainder << 64) | limbs_[i];
    limbs_[i] = static_cast<u64>(cur / divisor);
    remainder = cur % divisor;
  }
  trim();
  return static_cast<u64>(remainder);
}

std::string BigNat::to_decimal() const {
  if (is_zero()) return "0";
  BigNat tmp = *this;
  std::string out;
  while (!tmp.is_zero()) {
    const u64 chunk = tmp.divmod_small(1000000000ULL);
    std::string digits = std::to_string(chunk);
    if (!tmp.is_zero()) digits.insert(0, 9 - digits.size(), '0');
    out.insert(0, digits);
  }
  return out;
}

double BigNat::to_double() const {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;)
    value = value * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  return value;
}

double BigNat::log2() const {
  TPA_CHECK(!is_zero(), "log2 of zero");
  // Top (up to) 192 bits give the mantissa; the remaining limbs contribute
  // an exact power-of-two exponent.
  const std::size_t used = std::min<std::size_t>(limbs_.size(), 3);
  double mantissa = 0.0;
  for (std::size_t i = limbs_.size(); i-- > limbs_.size() - used;)
    mantissa = mantissa * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  return std::log2(mantissa) + 64.0 * static_cast<double>(limbs_.size() - used);
}

}  // namespace tpa
