// The shared cost model: RMR accounting and cost vectors used by both
// worlds of the library.
//
// The simulator (src/tso, via CostObserver) charges remote memory references
// per the three standard models of the RMR-complexity literature — DSM
// (every access to a variable outside the process' memory segment), CC with
// a write-through protocol, and CC with a write-back protocol — and the
// native runtime (src/runtime) counts fences/RMWs on real hardware. Both
// report through the same CostVector so the paper's fence-vs-RMR trade-off
// can be compared across the simulated and native worlds, and the trace
// analyzer (src/trace) recomputes the directory transitions offline from
// this exact header, so online and offline RMR charging cannot drift apart.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "tso/types.h"

namespace tpa::cost {

using tso::kNoProc;
using tso::ProcId;

/// The three memory models RMRs are charged under.
enum class RmrModel : std::uint8_t {
  kDsm,             ///< distributed shared memory: owner segments
  kCcWriteThrough,  ///< cache-coherent, write-through protocol
  kCcWriteBack,     ///< cache-coherent, write-back protocol
};

const char* to_string(RmrModel m);

/// Aggregated cost of an execution fragment (one passage, one run, one
/// native stress pass). Fields that a producer cannot know stay zero — the
/// native runtime, for example, has no RMR oracle.
struct CostVector {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t fences = 0;    ///< explicit fences (CAS-implied excluded)
  std::uint64_t rmws = 0;      ///< atomic read-modify-writes
  std::uint64_t critical = 0;  ///< critical events (Definition 2)
  std::uint64_t rmr_dsm = 0;
  std::uint64_t rmr_wt = 0;
  std::uint64_t rmr_wb = 0;

  /// Fence-like barriers: explicit fences plus atomic RMWs (a LOCK-prefixed
  /// RMW is a full barrier on TSO hardware).
  std::uint64_t barriers() const { return fences + rmws; }

  std::uint64_t rmrs(RmrModel m) const {
    switch (m) {
      case RmrModel::kDsm: return rmr_dsm;
      case RmrModel::kCcWriteThrough: return rmr_wt;
      case RmrModel::kCcWriteBack: return rmr_wb;
    }
    return 0;
  }

  CostVector& operator+=(const CostVector& o) {
    loads += o.loads;
    stores += o.stores;
    fences += o.fences;
    rmws += o.rmws;
    critical += o.critical;
    rmr_dsm += o.rmr_dsm;
    rmr_wt += o.rmr_wt;
    rmr_wb += o.rmr_wb;
    return *this;
  }
};

/// Whether one access is an RMR, per model.
struct RmrFlags {
  bool dsm = false;
  bool wt = false;
  bool wb = false;
};

/// Per-variable coherence state, advanced one access at a time. This is the
/// single implementation of the directory transitions; the simulator's
/// CostObserver and the offline analyzer both step it.
struct CoherenceDirectory {
  /// CC write-through: processes holding a valid cached copy.
  std::unordered_set<ProcId> wt_copies;
  /// CC write-back: either one exclusive holder, or a set of sharers.
  std::unordered_set<ProcId> wb_sharers;
  ProcId wb_exclusive = kNoProc;

  /// A read of the variable by p (owner = the variable's DSM owner).
  RmrFlags on_read(ProcId p, ProcId owner) {
    RmrFlags f;
    // DSM: every access to a remote variable is an RMR.
    f.dsm = owner != p;
    // CC write-through: a read without a valid cached copy is an RMR that
    // creates the copy.
    if (wt_copies.count(p) == 0) {
      f.wt = true;
      wt_copies.insert(p);
    }
    // CC write-back: a read misses unless p holds the line shared or
    // exclusive; a miss downgrades any exclusive holder to shared.
    const bool wb_hit = wb_exclusive == p || wb_sharers.count(p) != 0;
    if (!wb_hit) {
      f.wb = true;
      if (wb_exclusive != kNoProc) {
        wb_sharers.insert(wb_exclusive);
        wb_exclusive = kNoProc;
      }
      wb_sharers.insert(p);
    }
    return f;
  }

  /// Drops every cached copy p holds — a crashed process loses its cache
  /// with the rest of its volatile state, so post-recovery accesses miss
  /// (and charge RMRs) again. Stepped identically by the online
  /// CostObserver and the offline analyzer on Crash events.
  void evict(ProcId p) {
    wt_copies.erase(p);
    wb_sharers.erase(p);
    if (wb_exclusive == p) wb_exclusive = kNoProc;
  }

  /// A committed write (or successful CAS) to the variable by p.
  RmrFlags on_write(ProcId p, ProcId owner) {
    RmrFlags f;
    f.dsm = owner != p;
    // CC write-through: every committed write goes to memory and
    // invalidates all other cached copies — always an RMR.
    f.wt = true;
    for (auto it = wt_copies.begin(); it != wt_copies.end();) {
      if (*it != p)
        it = wt_copies.erase(it);
      else
        ++it;
    }
    // CC write-back: a write hits only with an exclusive copy; otherwise it
    // invalidates all other copies and takes the line exclusive.
    if (wb_exclusive == p) {
      f.wb = false;
    } else {
      f.wb = true;
      wb_sharers.clear();
      wb_exclusive = p;
    }
    return f;
  }
};

inline const char* to_string(RmrModel m) {
  switch (m) {
    case RmrModel::kDsm: return "dsm";
    case RmrModel::kCcWriteThrough: return "cc-wt";
    case RmrModel::kCcWriteBack: return "cc-wb";
  }
  return "?";
}

}  // namespace tpa::cost
