// Greedy independent set with the Turán guarantee.
//
// Theorem 2 (Turán, as used by the paper): a graph with average degree d has
// an independent set of at least ceil(|V| / (d+1)) vertices. The classic
// min-degree greedy algorithm achieves this bound; the construction uses it
// to pick conflict-free subsets of processes in the read and write phases.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tpa::lowerbound {

/// Vertices are 0..n-1; edges are unordered pairs (self-loops and duplicate
/// edges are tolerated and ignored/deduplicated). Returns an independent set
/// of size >= ceil(n / (avg_degree + 1)), in ascending order.
std::vector<int> greedy_independent_set(
    int n, const std::vector<std::pair<int, int>>& edges);

/// The Turán lower bound ceil(n / (d+1)) for n vertices and m (deduplicated)
/// edges, d = 2m/n. Exposed for tests.
std::size_t turan_bound(int n, std::size_t m);

}  // namespace tpa::lowerbound
