#include "lowerbound/construction.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "lowerbound/turan.h"
#include "trace/analyzer.h"
#include "trace/inset.h"
#include "util/check.h"

namespace tpa::lowerbound {

using tso::Mode;
using tso::PendingClass;
using tso::Status;
using tso::VarId;

Construction::Construction(std::size_t n_procs, ScenarioBuilder build,
                           ConstructionConfig config, SimConfig sim_config)
    : n_(n_procs),
      build_(std::move(build)),
      cfg_(config),
      sim_cfg_(sim_config),
      erased_(n_procs, false) {
  // The construction replays, erases and inspects awareness, criticality
  // and the trace throughout — it needs the full standard instrumentation,
  // not the bare core explorers run with.
  TPA_CHECK(sim_cfg_.record_trace && sim_cfg_.track_awareness &&
                sim_cfg_.track_costs,
            "lower-bound construction requires record_trace, track_awareness "
            "and track_costs");
  sim_ = std::make_unique<Simulator>(n_, sim_cfg_);
  build_(*sim_);
  result_.initial_procs = n_;
}

std::vector<ProcId> Construction::active() const {
  std::vector<ProcId> out;
  for (std::size_t p = 0; p < n_; ++p) {
    if (erased_[p]) continue;
    const auto& proc = sim_->proc(static_cast<ProcId>(p));
    if (proc.done()) continue;
    if (proc.status() == Status::kNcs) continue;
    out.push_back(static_cast<ProcId>(p));
  }
  return out;
}

bool Construction::is_active(ProcId p) const {
  if (erased_[static_cast<std::size_t>(p)]) return false;
  const auto& proc = sim_->proc(p);
  return !proc.done() && proc.status() != Status::kNcs;
}

void Construction::erase(const std::vector<ProcId>& victims) {
  if (victims.empty()) return;
  const tso::Execution before = sim_->execution();  // copy for verification
  for (ProcId v : victims) {
    TPA_CHECK(!erased_[static_cast<std::size_t>(v)],
              "double erasure of p" << v);
    erased_[static_cast<std::size_t>(v)] = true;
  }
  auto replayed = tso::replay(n_, sim_cfg_, build_, before.directives,
                              &erased_);
  result_.replays++;
  if (cfg_.verify_invariants) {
    const auto check = tso::verify_replay_equivalence(
        before, replayed->execution(), erased_);
    if (!check.ok) {
      result_.invariants_ok = false;
      result_.invariant_detail = "Lemma 4 violated on erasure: " + check.detail;
      TPA_FAIL(result_.invariant_detail);
    }
  }
  sim_ = std::move(replayed);
}

void Construction::advance_to_special(ProcId p) {
  std::uint64_t steps = 0;
  while (true) {
    const PendingClass cls = sim_->classify_pending(p);
    if (cls == PendingClass::kNone || tso::is_special(cls)) return;
    sim_->deliver(p);
    TPA_CHECK(++steps <= cfg_.max_solo_steps,
              "p" << p << " does not reach a special event (weak "
                       "obstruction-freedom violated?)");
  }
}

void Construction::solo_finish(ProcId p) {
  std::uint64_t steps = 0;
  while (!sim_->proc(p).done()) {
    const PendingClass cls = sim_->classify_pending(p);
    // Before a critical access of variable u, erase the (at most one,
    // Claim 4.3.2) active process that is visible on u or owns u.
    VarId u = tso::kNoVar;
    if (cls == PendingClass::kCriticalRead || cls == PendingClass::kCas) {
      u = sim_->proc(p).pending().var;
    } else if (cls == PendingClass::kCommitCritical) {
      u = sim_->proc(p).buffer().front().var;
    }
    if (u != tso::kNoVar) {
      std::vector<ProcId> victims;
      const ProcId writer = sim_->last_writer(u);
      if (writer != tso::kNoProc && writer != p && is_active(writer))
        victims.push_back(writer);
      const ProcId owner = sim_->var_owner(u);
      if (owner != tso::kNoProc && owner != p && is_active(owner) &&
          owner != writer)
        victims.push_back(owner);
      erase(victims);
    }
    sim_->deliver(p);
    TPA_CHECK(++steps <= cfg_.max_solo_steps,
              "p" << p << " does not finish its passage solo");
  }
}

void Construction::note(char phase, const std::string& case_name,
                        std::size_t active_before, std::size_t erased) {
  PhaseRecord rec;
  rec.round = round_;
  rec.phase = phase;
  rec.case_name = case_name;
  rec.active_before = active_before;
  rec.active_after = active().size();
  rec.erased = erased;
  rec.events_after = sim_->num_events();
  result_.phases.push_back(std::move(rec));
}

bool Construction::should_stop(const char* why) {
  if (active().size() <= cfg_.min_active) {
    result_.stop_reason = std::string("active set exhausted (") + why + ")";
    stopping_ = true;
    return true;
  }
  return false;
}

void Construction::verify_phase(char phase) {
  if (!cfg_.verify_invariants) return;
  const trace::VarLayout layout{sim_->var_owners()};
  const auto analysis =
      trace::analyze(sim_->execution(), n_, layout);
  trace::InsetReport report;
  switch (phase) {
    case 'R':
    case 'X':
      report = trace::check_regular(sim_->execution(), analysis, layout);
      break;
    case 'W':
      report = trace::check_semi_regular(sim_->execution(), analysis, layout);
      if (report.ok)
        report = trace::check_ordered(sim_->execution(), analysis, layout);
      break;
    case 'C':
      // CAS rounds leave awareness of *finished* processes only; the active
      // set must still be an IN-set.
      report = trace::check_regular(sim_->execution(), analysis, layout);
      break;
    default:
      break;
  }
  if (!report.ok) {
    result_.invariants_ok = false;
    result_.invariant_detail =
        "phase " + std::string(1, phase) + ": " + report.detail;
    TPA_FAIL(result_.invariant_detail);
  }
}

namespace {

/// Completes a pending barrier (fence drain or CAS incl. its drain) for p.
void deliver_barrier(Simulator& sim, ProcId p, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (true) {
    const PendingClass cls = sim.classify_pending(p);
    if (cls == PendingClass::kNone) return;
    const bool mid_fence = sim.proc(p).mode() == Mode::kWrite;
    const bool is_barrier_start =
        cls == PendingClass::kBeginFence || cls == PendingClass::kCas;
    if (!mid_fence && !is_barrier_start) return;
    sim.deliver(p);
    TPA_CHECK(++steps <= max_steps, "barrier of p" << p << " does not drain");
  }
}

}  // namespace

bool Construction::read_phase() {
  while (!stopping_) {
    if (should_stop("read phase")) return false;
    auto act = active();
    for (ProcId p : act) advance_to_special(p);

    std::vector<ProcId> fence_list, cas_list, read_list, cs_list;
    for (ProcId p : act) {
      switch (sim_->classify_pending(p)) {
        case PendingClass::kBeginFence:
          fence_list.push_back(p);
          break;
        case PendingClass::kCas:
          cas_list.push_back(p);
          break;
        case PendingClass::kCriticalRead:
          read_list.push_back(p);
          break;
        case PendingClass::kCs:
          cs_list.push_back(p);
          break;
        case PendingClass::kExit:
          // Exit is special but trivial: deliver it (the process finishes).
          sim_->deliver(p);
          break;
        default:
          TPA_FAIL("unexpected pending class for p"
                   << p << ": "
                   << tso::to_string(sim_->classify_pending(p)));
      }
    }
    act = active();
    if (act.empty()) {
      should_stop("read phase classification");
      return false;
    }

    // Case I (Lemma 6, Z1 majority): fences begin — move to the write phase.
    if (!fence_list.empty() && fence_list.size() >= cas_list.size() &&
        fence_list.size() >= read_list.size()) {
      std::vector<ProcId> victims;
      std::set<ProcId> keep(fence_list.begin(), fence_list.end());
      for (ProcId p : act)
        if (!keep.count(p)) victims.push_back(p);
      erase(victims);
      for (ProcId p : fence_list) sim_->deliver(p);  // BeginFence
      note('R', "I:fence", act.size(), victims.size());
      return true;  // proceed to write phase
    }

    // Case II (Z2 majority): critical reads through a Turán independent set.
    if (read_list.size() >= cas_list.size()) {
      std::vector<std::pair<int, int>> edges;
      for (std::size_t i = 0; i < read_list.size(); ++i) {
        const VarId v = sim_->proc(read_list[i]).pending().var;
        const ProcId owner = sim_->var_owner(v);
        const ProcId writer = sim_->last_writer(v);
        for (std::size_t j = 0; j < read_list.size(); ++j) {
          if (i == j) continue;
          if (read_list[j] == owner || read_list[j] == writer)
            edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
        }
      }
      const auto inds =
          greedy_independent_set(static_cast<int>(read_list.size()), edges);
      std::set<ProcId> keep;
      for (int idx : inds) keep.insert(read_list[static_cast<std::size_t>(idx)]);
      std::vector<ProcId> victims;
      for (ProcId p : act)
        if (!keep.count(p)) victims.push_back(p);
      erase(victims);
      for (ProcId p : keep) sim_->deliver(p);  // the critical reads
      note('R', "II:read", act.size(), victims.size());
      verify_phase('R');
      continue;
    }

    // CAS case (extension; see header). Group pending CAS by target.
    std::map<VarId, std::vector<ProcId>> groups;
    for (ProcId p : cas_list)
      groups[sim_->proc(p).pending().var].push_back(p);
    auto largest = groups.begin();
    for (auto it = groups.begin(); it != groups.end(); ++it)
      if (it->second.size() > largest->second.size()) largest = it;

    if (largest->second.size() >= 2) {
      // Contended CAS: contenders execute their barrier in increasing ID
      // order. A contender whose CAS succeeds becomes visible on v, so it
      // is immediately driven to finish its passage — awareness of it is
      // then awareness of a *finished* process, which IN1 permits. The
      // contenders whose CAS fails pay a barrier and stay invisible.
      const VarId v = largest->first;
      std::vector<ProcId> grp = largest->second;
      std::sort(grp.begin(), grp.end());
      for (ProcId q : grp) {
        if (!is_active(q)) continue;  // may have been erased meanwhile
        deliver_barrier(*sim_, q, cfg_.max_solo_steps);
        if (is_active(q) && sim_->last_writer(v) == q) solo_finish(q);
      }
      round_++;
      note('C', "cas-contended", act.size(), 0);
      verify_phase('C');
      if (cfg_.max_rounds >= 0 && round_ >= cfg_.max_rounds) {
        result_.stop_reason = "max rounds reached";
        stopping_ = true;
        return false;
      }
      continue;
    }

    // Uncontended CAS: like Case II, one process per variable.
    std::vector<ProcId> cas_sorted = cas_list;
    std::sort(cas_sorted.begin(), cas_sorted.end());
    std::vector<std::pair<int, int>> edges;
    for (std::size_t i = 0; i < cas_sorted.size(); ++i) {
      const VarId v = sim_->proc(cas_sorted[i]).pending().var;
      const ProcId owner = sim_->var_owner(v);
      const ProcId writer = sim_->last_writer(v);
      for (std::size_t j = 0; j < cas_sorted.size(); ++j) {
        if (i == j) continue;
        if (cas_sorted[j] == owner || cas_sorted[j] == writer)
          edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
    const auto inds =
        greedy_independent_set(static_cast<int>(cas_sorted.size()), edges);
    std::set<ProcId> keep;
    for (int idx : inds) keep.insert(cas_sorted[static_cast<std::size_t>(idx)]);
    std::vector<ProcId> victims;
    for (ProcId p : act)
      if (!keep.count(p)) victims.push_back(p);
    erase(victims);
    for (ProcId p : keep) deliver_barrier(*sim_, p, cfg_.max_solo_steps);
    note('C', "cas-distinct", act.size(), victims.size());
    verify_phase('C');
  }
  return false;
}

bool Construction::write_phase() {
  while (!stopping_) {
    if (should_stop("write phase")) return false;
    auto act = active();
    std::sort(act.begin(), act.end());

    // Let each process (in increasing ID order) commit its non-critical
    // writes until its next special event.
    for (ProcId p : act) {
      std::uint64_t steps = 0;
      while (sim_->classify_pending(p) == PendingClass::kCommitNonCritical) {
        sim_->deliver(p);
        TPA_CHECK(++steps <= cfg_.max_solo_steps,
                  "p" << p << " commits forever");
      }
    }

    std::vector<ProcId> end_list, commit_list;
    for (ProcId p : act) {
      switch (sim_->classify_pending(p)) {
        case PendingClass::kEndFence:
          end_list.push_back(p);
          break;
        case PendingClass::kCommitCritical:
          commit_list.push_back(p);
          break;
        default:
          TPA_FAIL("write phase: unexpected pending class for p"
                   << p << ": "
                   << tso::to_string(sim_->classify_pending(p)));
      }
    }

    // Case I (Lemma 7): enough processes finished draining — EndFence.
    if (end_list.size() * 2 >= act.size()) {
      std::set<ProcId> keep(end_list.begin(), end_list.end());
      std::vector<ProcId> victims;
      for (ProcId p : act)
        if (!keep.count(p)) victims.push_back(p);
      erase(victims);
      for (ProcId p : end_list) sim_->deliver(p);  // EndFence
      note('W', "I:end-fence", act.size(), victims.size());
      return true;  // proceed to regularization
    }

    // Which variable does each contender commit to next?
    std::map<VarId, std::vector<ProcId>> by_var;
    for (ProcId p : commit_list)
      by_var[sim_->proc(p).buffer().front().var].push_back(p);

    const double sqrt_z2 = std::sqrt(static_cast<double>(commit_list.size()));
    if (static_cast<double>(by_var.size()) >= sqrt_z2) {
      // Case II: low contention — one process per variable, then an
      // independent set avoiding owners and prior critical accessors.
      std::vector<ProcId> z;
      for (auto& [v, procs] : by_var) {
        std::sort(procs.begin(), procs.end());
        z.push_back(procs.front());
      }
      std::sort(z.begin(), z.end());

      // Prior critical accesses per variable (for the edge rule).
      std::map<VarId, std::set<ProcId>> crit_access;
      for (const auto& e : sim_->execution().events)
        if (e.critical && e.var != tso::kNoVar)
          crit_access[e.var].insert(e.proc);

      std::vector<std::pair<int, int>> edges;
      for (std::size_t i = 0; i < z.size(); ++i) {
        const VarId v = sim_->proc(z[i]).buffer().front().var;
        const ProcId owner = sim_->var_owner(v);
        const auto it = crit_access.find(v);
        for (std::size_t j = 0; j < z.size(); ++j) {
          if (i == j) continue;
          const bool accessor =
              it != crit_access.end() && it->second.count(z[j]) != 0;
          if (z[j] == owner || accessor)
            edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
        }
      }
      const auto inds =
          greedy_independent_set(static_cast<int>(z.size()), edges);
      std::set<ProcId> keep;
      for (int idx : inds) keep.insert(z[static_cast<std::size_t>(idx)]);
      std::vector<ProcId> victims;
      for (ProcId p : act)
        if (!keep.count(p)) victims.push_back(p);
      erase(victims);
      for (ProcId p : keep) sim_->deliver(p);  // the critical commits
      note('W', "II:low-contention", act.size(), victims.size());
    } else {
      // Case III: high contention — all survivors commit to one variable in
      // increasing ID order (the largest-ID process ends up visible).
      auto largest = by_var.begin();
      for (auto it = by_var.begin(); it != by_var.end(); ++it)
        if (it->second.size() > largest->second.size()) largest = it;
      std::vector<ProcId> grp = largest->second;
      std::sort(grp.begin(), grp.end());
      std::set<ProcId> keep(grp.begin(), grp.end());
      std::vector<ProcId> victims;
      for (ProcId p : act)
        if (!keep.count(p)) victims.push_back(p);
      erase(victims);
      for (ProcId p : grp) sim_->deliver(p);  // commits to v, ID order
      note('W', "III:high-contention", act.size(), victims.size());
    }
    verify_phase('W');
  }
  return false;
}

bool Construction::regularization() {
  auto act = active();
  if (act.empty()) {
    should_stop("regularization");
    return false;
  }
  const ProcId p_max = *std::max_element(act.begin(), act.end());
  solo_finish(p_max);
  result_.finished = sim_->finished().size();
  round_++;
  note('X', "regularize", act.size(), 0);
  verify_phase('X');
  return !should_stop("after regularization");
}

ConstructionResult Construction::run() {
  // H_0: every process executes its Enter event.
  for (std::size_t p = 0; p < n_; ++p) {
    TPA_CHECK(sim_->classify_pending(static_cast<ProcId>(p)) ==
                  PendingClass::kEnter,
              "process p" << p << " must start with a pending Enter");
    sim_->deliver(static_cast<ProcId>(p));
  }
  verify_phase('R');

  while (!stopping_) {
    if (cfg_.max_rounds >= 0 && round_ >= cfg_.max_rounds) {
      result_.stop_reason = "max rounds reached";
      break;
    }
    if (!read_phase()) break;
    if (!write_phase()) break;
    if (!regularization()) break;
  }

  result_.rounds = round_;
  result_.finished = sim_->finished().size();
  result_.total_events = sim_->num_events();
  const auto act = active();
  result_.final_active = act.size();

  // Forced-barrier accounting and the Theorem 1 witness.
  if (!act.empty()) {
    std::uint32_t min_barriers = UINT32_MAX;
    ProcId best = act.front();
    std::uint32_t best_barriers = 0;
    for (ProcId p : act) {
      const auto barriers = sim_->proc(p).current_passage().barriers();
      min_barriers = std::min(min_barriers, barriers);
      if (barriers >= best_barriers) {
        best_barriers = barriers;
        best = p;
      }
    }
    result_.min_barriers_active = min_barriers;

    // Erase every active process except the best witness (Lemma 4) and
    // measure the total contention of the resulting execution.
    std::vector<ProcId> victims;
    for (ProcId p : act)
      if (p != best) victims.push_back(p);
    erase(victims);
    result_.witness_barriers = sim_->proc(best).current_passage().barriers();
    result_.witness_contention = sim_->total_contention();
  }
  if (result_.stop_reason.empty()) result_.stop_reason = "completed";
  return result_;
}

}  // namespace tpa::lowerbound
