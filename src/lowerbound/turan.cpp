#include "lowerbound/turan.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace tpa::lowerbound {

std::size_t turan_bound(int n, std::size_t m) {
  if (n <= 0) return 0;
  // ceil(n / (2m/n + 1)) = ceil(n^2 / (2m + n)).
  const std::size_t nn = static_cast<std::size_t>(n);
  return (nn * nn + 2 * m + nn - 1) / (2 * m + nn);
}

std::vector<int> greedy_independent_set(
    int n, const std::vector<std::pair<int, int>>& edges) {
  TPA_CHECK(n >= 0, "negative vertex count");
  if (n == 0) return {};

  // Deduplicated adjacency.
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    TPA_CHECK(a >= 0 && a < n && b >= 0 && b < n,
              "edge (" << a << "," << b << ") out of range n=" << n);
    if (a == b) continue;
    adj[static_cast<std::size_t>(a)].insert(b);
    adj[static_cast<std::size_t>(b)].insert(a);
  }

  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  std::vector<int> degree(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    degree[static_cast<std::size_t>(v)] =
        static_cast<int>(adj[static_cast<std::size_t>(v)].size());

  std::vector<int> result;
  int remaining = n;
  while (remaining > 0) {
    // Min-degree vertex among the remaining ones.
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (best < 0 || degree[static_cast<std::size_t>(v)] <
                          degree[static_cast<std::size_t>(best)])
        best = v;
    }
    result.push_back(best);
    // Remove `best` and its neighbourhood.
    auto drop = [&](int v) {
      if (removed[static_cast<std::size_t>(v)]) return;
      removed[static_cast<std::size_t>(v)] = true;
      --remaining;
      for (int u : adj[static_cast<std::size_t>(v)])
        if (!removed[static_cast<std::size_t>(u)])
          --degree[static_cast<std::size_t>(u)];
    };
    const auto neighbours = adj[static_cast<std::size_t>(best)];
    drop(best);
    for (int u : neighbours) drop(u);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace tpa::lowerbound
