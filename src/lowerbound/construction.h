// The paper's lower-bound adversary construction, executable.
//
// Given any mutual-exclusion algorithm plugged into the TSO simulator, the
// Construction builds the executions H_0, H_1, ... of Section 4: at each
// inductive round every surviving active process is forced to complete one
// more fence/barrier, at the price of one process finishing its passage and
// a (bounded) fraction of processes being erased to preserve invisibility.
//
// Each round is
//   read phase          (Lemma 6: critical reads, Turán independent sets),
//   write phase         (Lemma 7: critical commits, low/high contention),
//   regularization      (Lemma 8: p_max runs solo to completion).
//
// Erasure E^{-Y} is realized by deterministic replay of the recorded
// schedule with Y's directives dropped; every erasure is verified against
// Lemma 4 (surviving processes re-execute identical events with identical
// criticality — that is IN1/IN3 at work). Phase invariants (Definitions
// 4-6) are checked with the offline analyzer when `verify_invariants` is
// set.
//
// Extension beyond the paper (documented in DESIGN.md): algorithms that use
// CAS get a "CAS case" in the read phase. Uncontended CAS is handled like a
// critical read (one process per variable, independent set). Contended CAS
// — several processes about to CAS the same variable — is inherently
// visibility-creating: the adversary lets the lowest-ID contender win,
// drives it to finish its passage (so awareness of it is awareness of a
// *finished* process, which IN1 permits), then delivers the losers' failing
// CAS barriers. Each such round costs every surviving contender one barrier
// — the concrete mechanism behind the "price of being adaptive" for our
// active-set-based adaptive lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tso/schedule.h"
#include "tso/sim.h"

namespace tpa::lowerbound {

using tso::ProcId;
using tso::ScenarioBuilder;
using tso::SimConfig;
using tso::Simulator;

struct ConstructionConfig {
  /// Stop after this many inductive rounds (fences forced); <0 = unlimited.
  int max_rounds = -1;
  /// Stop when the active set would shrink to or below this size.
  std::size_t min_active = 1;
  /// Verify Definitions 4-6 with the offline analyzer at phase boundaries
  /// and Lemma 4 on every erasure (replay equivalence).
  bool verify_invariants = true;
  /// Safety bound on deliveries in any single "run to next special event".
  std::uint64_t max_solo_steps = 1'000'000;
};

/// One erasure/delivery step of a phase, for reporting.
struct PhaseRecord {
  int round = 0;
  char phase = '?';        ///< 'R'ead, 'W'rite, 'X' regularization, 'C'as
  std::string case_name;   ///< which case of the phase fired
  std::size_t active_before = 0;
  std::size_t active_after = 0;
  std::size_t erased = 0;
  std::uint64_t events_after = 0;
};

struct ConstructionResult {
  /// Rounds completed = fences/barriers forced on every surviving process.
  int rounds = 0;
  std::size_t initial_procs = 0;
  std::size_t final_active = 0;
  std::size_t finished = 0;        ///< |Fin| at the end
  std::uint64_t total_events = 0;
  std::uint64_t replays = 0;       ///< number of erasure replays performed
  std::string stop_reason;
  std::vector<PhaseRecord> phases;

  /// Minimum barriers (fences + CAS) completed by a surviving active
  /// process during its (single) passage — the forced lower bound.
  std::uint32_t min_barriers_active = 0;

  /// Witness (Theorem 1): after erasing all active processes but one, the
  /// witness execution has this total contention while the surviving
  /// process completed `witness_barriers` barriers in one passage.
  std::size_t witness_contention = 0;
  std::uint32_t witness_barriers = 0;

  bool invariants_ok = true;
  std::string invariant_detail;
};

class Construction {
 public:
  /// `build` must reconstruct the scenario deterministically: allocate the
  /// same variables in the same order and spawn every process' program
  /// (one passage per process — the paper's one-time mutual exclusion).
  Construction(std::size_t n_procs, ScenarioBuilder build,
               ConstructionConfig config = {}, SimConfig sim_config = {});

  /// Runs the inductive construction to exhaustion (or configured limits)
  /// and returns the statistics. The final simulator state remains
  /// available through sim().
  ConstructionResult run();

  const Simulator& sim() const { return *sim_; }

 private:
  std::vector<ProcId> active() const;
  bool is_active(ProcId p) const;

  /// Erases `victims` by replaying the schedule without them; verifies
  /// Lemma 4 when configured. Updates sim_.
  void erase(const std::vector<ProcId>& victims);

  /// Delivers p's non-special events until its pending op is special.
  void advance_to_special(ProcId p);

  /// Runs p until its passage completes, erasing the (at most one) active
  /// writer/owner of each remote variable p is about to critically access
  /// (the regularization phase's Case II bookkeeping).
  void solo_finish(ProcId p);

  /// One full read phase; returns false if the construction must stop.
  bool read_phase();
  /// One full write phase (entered with all active processes mid-fence).
  bool write_phase();
  /// Regularization: finish p_max.
  bool regularization();

  void verify_phase(char phase);
  void note(char phase, const std::string& case_name,
            std::size_t active_before, std::size_t erased);

  bool should_stop(const char* why);

  std::size_t n_;
  ScenarioBuilder build_;
  ConstructionConfig cfg_;
  SimConfig sim_cfg_;
  std::unique_ptr<Simulator> sim_;
  std::vector<bool> erased_;
  ConstructionResult result_;
  int round_ = 0;
  bool stopping_ = false;
};

}  // namespace tpa::lowerbound
