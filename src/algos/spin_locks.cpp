#include "algos/spin_locks.h"

// NOTE on style: GCC 12 miscompiles `co_await` expressions that appear
// inside condition expressions (the temporary awaiter is not kept alive
// across the suspension). Throughout src/algos, every co_await is therefore
// a standalone statement or a variable initializer — do not "simplify" the
// loops below into `while (co_await ...)` form.

namespace tpa::algos {

TasLock::TasLock(Simulator& sim, bool release_fence)
    : lock_(sim.alloc_var(0)), release_fence_(release_fence) {}

Task<> TasLock::acquire(Proc& p) {
  while (true) {
    const Value old = co_await p.cas(lock_, 0, 1);
    if (old == 0) co_return;
  }
}

Task<> TasLock::release(Proc& p) {
  co_await p.write(lock_, 0);
  if (release_fence_) co_await p.fence();
}

TtasLock::TtasLock(Simulator& sim, bool release_fence)
    : lock_(sim.alloc_var(0)), release_fence_(release_fence) {}

Task<> TtasLock::acquire(Proc& p) {
  while (true) {
    // Spin with plain reads until the lock looks free (cache-friendly
    // under CC), then attempt the CAS.
    while (true) {
      const Value seen = co_await p.read(lock_);
      if (seen == 0) break;
    }
    const Value old = co_await p.cas(lock_, 0, 1);
    if (old == 0) co_return;
  }
}

Task<> TtasLock::release(Proc& p) {
  co_await p.write(lock_, 0);
  if (release_fence_) co_await p.fence();
}

TicketLock::TicketLock(Simulator& sim, bool release_fence)
    : next_(sim.alloc_var(0)),
      serving_(sim.alloc_var(0)),
      release_fence_(release_fence) {}

Task<> TicketLock::acquire(Proc& p) {
  // fetch&increment(next) via a CAS loop.
  Value ticket = 0;
  while (true) {
    ticket = co_await p.read(next_);
    const Value old = co_await p.cas(next_, ticket, ticket + 1);
    if (old == ticket) break;
  }
  while (true) {
    const Value now = co_await p.read(serving_);
    if (now == ticket) break;  // FIFO handoff
  }
}

Task<> TicketLock::release(Proc& p) {
  const Value current = co_await p.read(serving_);
  co_await p.write(serving_, current + 1);
  if (release_fence_) co_await p.fence();
}

AndersonLock::AndersonLock(Simulator& sim, int n)
    : n_(n),
      tail_(sim.alloc_var(0)),
      my_slot_(static_cast<std::size_t>(n), -1) {
  slots_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) slots_.push_back(sim.alloc_var(i == 0 ? 1 : 0));
}

Task<> AndersonLock::acquire(Proc& p) {
  // fetch&increment(tail) via CAS; the ticket names a spin slot.
  Value ticket = 0;
  while (true) {
    ticket = co_await p.read(tail_);
    const Value old = co_await p.cas(tail_, ticket, ticket + 1);
    if (old == ticket) break;
  }
  const auto slot = static_cast<std::size_t>(ticket % n_);
  my_slot_[static_cast<std::size_t>(p.id())] = static_cast<Value>(slot);
  while (true) {
    const Value go = co_await p.read(slots_[slot]);
    if (go == 1) break;  // spin on our own slot (CC-local)
  }
  co_await p.write(slots_[slot], 0);  // consume the baton for slot reuse
  co_await p.fence();
}

Task<> AndersonLock::release(Proc& p) {
  const auto slot = static_cast<std::size_t>(
      my_slot_[static_cast<std::size_t>(p.id())]);
  co_await p.write(slots_[(slot + 1) % static_cast<std::size_t>(n_)], 1);
  co_await p.fence();
}

}  // namespace tpa::algos
