#include "algos/bakery.h"

#include <algorithm>

#include "util/check.h"

namespace tpa::algos {

BakeryLock::BakeryLock(Simulator& sim, int n, BakeryFencing fencing)
    : n_(n), fencing_(fencing) {
  choosing_.reserve(static_cast<std::size_t>(n));
  number_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    choosing_.push_back(sim.alloc_var(0));
    number_.push_back(sim.alloc_var(0));
  }
}

Task<> BakeryLock::acquire(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());
  // Doorway: announce we are choosing, pick max+1, announce the ticket.
  co_await p.write(choosing_[me], 1);
  if (fencing_ != BakeryFencing::kNone)
    co_await p.fence();  // choosing must be visible before we scan
  Value mx = 0;
  for (int j = 0; j < n_; ++j) {
    const Value v = co_await p.read(number_[static_cast<std::size_t>(j)]);
    mx = std::max(mx, v);
  }
  const Value my_number = mx + 1;
  co_await p.write(number_[me], my_number);
  // Under TSO the FIFO buffer guarantees the ticket commits before the
  // choosing reset; under PSO they may reorder and exclusion breaks unless
  // a fence separates them (the Section 6 TSO/PSO separation, executable).
  if (fencing_ == BakeryFencing::kPso) co_await p.fence();
  co_await p.write(choosing_[me], 0);
  if (fencing_ != BakeryFencing::kNone)
    co_await p.fence();  // ticket visible before inspecting competitors

  for (int j = 0; j < n_; ++j) {
    if (j == p.id()) continue;
    const auto ju = static_cast<std::size_t>(j);
    while (true) {
      const Value choosing = co_await p.read(choosing_[ju]);
      if (choosing != 1) break;  // wait out j's doorway
    }
    while (true) {
      const Value nj = co_await p.read(number_[ju]);
      if (nj == 0 || nj > my_number || (nj == my_number && j > p.id())) break;
    }
  }
}

Task<> BakeryLock::release(Proc& p) {
  co_await p.write(number_[static_cast<std::size_t>(p.id())], 0);
  if (fencing_ != BakeryFencing::kNone) co_await p.fence();
}

AdaptiveBakery::AdaptiveBakery(Simulator& sim, int n)
    : n_(n), slot_of_(static_cast<std::size_t>(n), -1) {
  slots_.reserve(static_cast<std::size_t>(n));
  choosing_.reserve(static_cast<std::size_t>(n));
  number_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    slots_.push_back(sim.alloc_var(0));
    choosing_.push_back(sim.alloc_var(0));
    number_.push_back(sim.alloc_var(0));
  }
}

int AdaptiveBakery::registered_upper_bound(Simulator& sim) const {
  int count = 0;
  for (int s = 0; s < n_; ++s) {
    if (sim.value(slots_[static_cast<std::size_t>(s)]) == 0) break;
    ++count;
  }
  return count;
}

Task<> AdaptiveBakery::acquire(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());

  // One-time registration: claim the first free slot. Slots are claimed
  // from index 0 and never released, so occupied slots form a prefix and
  // the number of occupied slots equals total contention. Under
  // registration races this loop performs up to Θ(k) CAS barriers — the
  // inherent "price of being adaptive" the paper proves unavoidable.
  if (slot_of_[me] < 0) {
    for (int s = 0; s < n_; ++s) {
      const auto su = static_cast<std::size_t>(s);
      const Value taken = co_await p.read(slots_[su]);
      if (taken != 0) continue;
      const Value old = co_await p.cas(slots_[su], 0, p.id() + 1);
      if (old == 0) {
        slot_of_[me] = s;
        break;
      }
      // CAS lost: the slot was just taken; move to the next one.
    }
    // Each skipped/lost slot is held by a distinct rival, of which there
    // are at most n-1, so the loop always claims a slot.
    TPA_CHECK(slot_of_[me] >= 0,
              "p" << p.id() << " failed to claim an active-set slot");
  }

  // Bakery doorway over the occupied prefix only.
  co_await p.write(choosing_[me], 1);
  co_await p.fence();
  Value mx = 0;
  for (int s = 0; s < n_; ++s) {
    const Value owner = co_await p.read(slots_[static_cast<std::size_t>(s)]);
    if (owner == 0) break;
    const auto j = static_cast<std::size_t>(owner - 1);
    const Value v = co_await p.read(number_[j]);
    mx = std::max(mx, v);
  }
  const Value my_number = mx + 1;
  co_await p.write(number_[me], my_number);
  co_await p.write(choosing_[me], 0);
  co_await p.fence();

  // Wait scan: rescan the (possibly grown) occupied prefix.
  for (int s = 0; s < n_; ++s) {
    const Value owner = co_await p.read(slots_[static_cast<std::size_t>(s)]);
    if (owner == 0) break;
    const int j = static_cast<int>(owner) - 1;
    if (j == p.id()) continue;
    const auto ju = static_cast<std::size_t>(j);
    while (true) {
      const Value choosing = co_await p.read(choosing_[ju]);
      if (choosing != 1) break;
    }
    while (true) {
      const Value nj = co_await p.read(number_[ju]);
      if (nj == 0 || nj > my_number || (nj == my_number && j > p.id())) break;
    }
  }
}

Task<> AdaptiveBakery::release(Proc& p) {
  co_await p.write(number_[static_cast<std::size_t>(p.id())], 0);
  co_await p.fence();
}

}  // namespace tpa::algos
