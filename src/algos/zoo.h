// The lock zoo: a registry of every simulated mutual-exclusion algorithm,
// so tests and benches can sweep "all locks" uniformly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

struct LockFactory {
  std::string name;
  bool read_write_only;  ///< uses only reads/writes (no CAS)
  bool adaptive;         ///< per-passage work depends on contention k, not n
  std::function<std::shared_ptr<SimLock>(Simulator&, int)> make;
};

/// All registered lock algorithms.
const std::vector<LockFactory>& lock_zoo();

/// Looks up a factory by name; throws CheckFailure if unknown.
const LockFactory& lock_factory(const std::string& name);

}  // namespace tpa::algos
