// Lamport's fast mutual exclusion algorithm (1987).
//
// A read/write lock whose uncontended fast path costs O(1) operations and
// O(1) fences; under contention it falls back to an Θ(n) scan. It is
// "adaptive" only in the weak doorway sense — the slow path depends on n,
// not on contention k — which makes it a useful middle point between
// BakeryLock and AdaptiveBakery in the separation tables. Deadlock-free but
// not starvation-free; satisfies the paper's weak obstruction-freedom.
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

class LamportFastLock : public SimLock {
 public:
  LamportFastLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "lamport-fast"; }
  bool read_write_only() const override { return true; }

 private:
  static constexpr Value kNone = -1;
  int n_;
  VarId x_;
  VarId y_;
  std::vector<VarId> b_;
};

}  // namespace tpa::algos
