#include "algos/lock.h"

namespace tpa::algos {

Task<> run_passage(Proc& p, std::shared_ptr<SimLock> lock) {
  co_await p.enter();
  co_await lock->acquire(p);
  co_await p.cs();
  co_await lock->release(p);
  co_await p.exit();
}

Task<> run_passages(Proc& p, std::shared_ptr<SimLock> lock, int count) {
  for (int i = 0; i < count; ++i) {
    co_await run_passage(p, lock);
  }
}

}  // namespace tpa::algos
