#include "algos/yang_anderson.h"

#include "util/check.h"

// NOTE: every co_await is a standalone statement or an initializer (GCC 12
// miscompiles co_await inside condition expressions; see tso/task.h).

namespace tpa::algos {

YangAndersonLock::YangAndersonLock(Simulator& sim, int n) : n_(n) {
  TPA_CHECK(n >= 1, "Yang-Anderson lock needs at least one process");
  levels_ = 0;
  int leaves = 1;
  while (leaves < n) {
    leaves *= 2;
    ++levels_;
  }
  leaf_base_ = leaves;
  nodes_.resize(static_cast<std::size_t>(leaves));
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    nodes_[i].c[0] = sim.alloc_var(kNobody);
    nodes_[i].c[1] = sim.alloc_var(kNobody);
    nodes_[i].t = sim.alloc_var(kNobody);
  }
  const int lv = levels_ == 0 ? 1 : levels_;
  spin_.reserve(static_cast<std::size_t>(n * lv));
  for (int i = 0; i < n; ++i)
    for (int l = 0; l < lv; ++l)
      spin_.push_back(sim.alloc_var(0, static_cast<tso::ProcId>(i)));
}

VarId YangAndersonLock::spin_var(Value proc, int level) const {
  const int lv = levels_ == 0 ? 1 : levels_;
  return spin_[static_cast<std::size_t>(proc) * static_cast<std::size_t>(lv) +
               static_cast<std::size_t>(level)];
}

Task<> YangAndersonLock::node_enter(Proc& p, const Node& node, int side,
                                    int level) {
  const VarId mine_var = spin_var(p.id(), level);
  co_await p.write(node.c[side], p.id());
  co_await p.write(node.t, p.id());
  co_await p.write(mine_var, 0);
  co_await p.fence();  // announce before inspecting the rival
  const Value rival = co_await p.read(node.c[1 - side]);
  if (rival != kNobody) {
    const Value t1 = co_await p.read(node.t);
    if (t1 == p.id()) {
      // We arrived second: hand the rival its entry handshake (it may be
      // blocked on the same T==self check), then wait on our own local
      // flag.
      const VarId rival_var = spin_var(rival, level);
      const Value rp = co_await p.read(rival_var);
      if (rp == 0) {
        co_await p.write(rival_var, 1);
        co_await p.fence();
      }
      while (true) {
        const Value mine = co_await p.read(mine_var);
        if (mine != 0) break;  // local spin (our own DSM segment)
      }
      const Value t2 = co_await p.read(node.t);
      if (t2 == p.id()) {
        // Still the loser: the 1 was only the handshake — wait for the
        // rival's exit release (value 2).
        while (true) {
          const Value mine = co_await p.read(mine_var);
          if (mine > 1) break;
        }
      }
    }
  }
}

Task<> YangAndersonLock::node_exit(Proc& p, const Node& node, int side,
                                   int level) {
  co_await p.write(node.c[side], kNobody);
  co_await p.fence();  // retract before reading who waits
  const Value rival = co_await p.read(node.t);
  if (rival != p.id() && rival != kNobody) {
    co_await p.write(spin_var(rival, level), 2);
    co_await p.fence();
  }
}

Task<> YangAndersonLock::acquire(Proc& p) {
  int pos = leaf_base_ + p.id();
  int level = 0;
  while (pos > 1) {
    const int node = pos / 2;
    const int side = pos % 2;
    co_await node_enter(p, nodes_[static_cast<std::size_t>(node)], side,
                        level);
    pos = node;
    ++level;
  }
}

Task<> YangAndersonLock::release(Proc& p) {
  // Release top-down: the root frees first, mirroring the usual arbiter-
  // tree exit order.
  std::vector<std::pair<int, int>> path;  // (tree position, level)
  int pos = leaf_base_ + p.id();
  int level = 0;
  while (pos > 1) {
    path.emplace_back(pos, level);
    pos /= 2;
    ++level;
  }
  for (std::size_t i = path.size(); i-- > 0;) {
    const int node = path[i].first / 2;
    const int side = path[i].first % 2;
    co_await node_exit(p, nodes_[static_cast<std::size_t>(node)], side,
                       path[i].second);
  }
}

}  // namespace tpa::algos
