// Lamport's bakery lock and the adaptive active-set bakery.
//
// BakeryLock is the canonical read/write mutual exclusion algorithm: O(1)
// fences per passage but Θ(n) reads regardless of contention — the
// *non-adaptive* side of the paper's separation.
//
// AdaptiveBakery is the *adaptive* side: processes claim a slot in a
// grow-only active-set array on their first passage (CAS); every bakery
// scan then touches only the occupied prefix, so a passage performs O(k)
// critical events where k is total contention — a linear adaptivity
// function, exactly Corollary 2's regime. The price predicted by the paper
// shows up in its registration: claiming a slot under contention costs up
// to Θ(k) CAS barriers in a single passage, so the algorithm does NOT have
// O(1) fence complexity. bench/tab_fence_vs_contention measures both sides.
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

/// How the bakery places fences; the paper's premise (citing Attiya et al.
/// "Laws of Order") is that read/write mutual exclusion *needs* fences —
/// kNone exists to demonstrate that: the schedule explorer finds a mutual
/// exclusion violation against it automatically (tests/test_explorer.cpp).
enum class BakeryFencing {
  kTso,   ///< the standard placement, correct under TSO
  kPso,   ///< extra fence between ticket and choosing-reset: correct on PSO
  kNone,  ///< no fences at all: broken on any buffered-write model
};

class BakeryLock : public SimLock {
 public:
  BakeryLock(Simulator& sim, int n, BakeryFencing fencing = BakeryFencing::kTso);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "bakery"; }
  bool read_write_only() const override { return true; }

 private:
  int n_;
  BakeryFencing fencing_;
  std::vector<VarId> choosing_;
  std::vector<VarId> number_;
};

class AdaptiveBakery : public SimLock {
 public:
  AdaptiveBakery(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "adaptive-bakery"; }

  /// Number of slots the given process would scan (for tests).
  int registered_upper_bound(Simulator& sim) const;

 private:
  int n_;
  std::vector<VarId> slots_;    ///< 0 = free, otherwise proc id + 1
  std::vector<VarId> choosing_;
  std::vector<VarId> number_;
  std::vector<int> slot_of_;    ///< process -> claimed slot (private; -1)
};

}  // namespace tpa::algos
