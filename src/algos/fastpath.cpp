#include "algos/fastpath.h"

// NOTE: every co_await below is a standalone statement or an initializer —
// GCC 12 miscompiles co_await inside condition expressions (see
// spin_locks.cpp and tests/test_coroutine_patterns.cpp).

namespace tpa::algos {

LamportFastLock::LamportFastLock(Simulator& sim, int n)
    : n_(n), x_(sim.alloc_var(kNone)), y_(sim.alloc_var(kNone)) {
  b_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) b_.push_back(sim.alloc_var(0));
}

Task<> LamportFastLock::acquire(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());
  while (true) {
    co_await p.write(b_[me], 1);
    co_await p.write(x_, p.id());
    co_await p.fence();  // x must be visible before reading y
    const Value y1 = co_await p.read(y_);
    if (y1 != kNone) {
      co_await p.write(b_[me], 0);
      co_await p.fence();
      while (true) {
        const Value y = co_await p.read(y_);
        if (y == kNone) break;  // wait for the holder to leave
      }
      continue;  // restart the doorway
    }
    co_await p.write(y_, p.id());
    co_await p.fence();  // y must be visible before re-reading x
    const Value x = co_await p.read(x_);
    if (x == p.id()) co_return;  // fast path

    // Slow path: step back, wait for all doorways to settle, and check
    // whether we ended up the winner.
    co_await p.write(b_[me], 0);
    co_await p.fence();
    for (int j = 0; j < n_; ++j) {
      while (true) {
        const Value bj = co_await p.read(b_[static_cast<std::size_t>(j)]);
        if (bj == 0) break;
      }
    }
    const Value y2 = co_await p.read(y_);
    if (y2 == p.id()) co_return;  // slow-path win
    while (true) {
      const Value y = co_await p.read(y_);
      if (y == kNone) break;  // lost: wait for the winner's release
    }
  }
}

Task<> LamportFastLock::release(Proc& p) {
  co_await p.write(y_, kNone);
  co_await p.write(b_[static_cast<std::size_t>(p.id())], 0);
  co_await p.fence();
}

}  // namespace tpa::algos
