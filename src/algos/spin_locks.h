// Centralized spin locks: test-and-set, test-and-test-and-set, and the
// ticket lock. All three use CAS (a comparison primitive — covered by the
// paper's tradeoff) and have constant *barrier* complexity per passage in
// uncontended runs, but they are not adaptive: their time/RMR behaviour
// under contention depends on n (and on the coherence protocol), and they
// spin on globally shared variables (no local spinning in the DSM model).
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

/// Test-and-set lock: acquire loops on CAS(lock, 0, 1).
class TasLock : public SimLock {
 public:
  explicit TasLock(Simulator& sim, bool release_fence = true);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "tas"; }

 private:
  VarId lock_;
  bool release_fence_;
};

/// Test-and-test-and-set: spin with plain reads, CAS only when free.
class TtasLock : public SimLock {
 public:
  explicit TtasLock(Simulator& sim, bool release_fence = true);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "ttas"; }

 private:
  VarId lock_;
  bool release_fence_;
};

/// Ticket lock: FIFO via a fetch&increment (CAS loop) on `next`, spinning on
/// `serving`.
class TicketLock : public SimLock {
 public:
  explicit TicketLock(Simulator& sim, bool release_fence = true);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "ticket"; }

 private:
  VarId next_;
  VarId serving_;
  bool release_fence_;
};

/// Anderson's array-based queue lock: fetch&increment (CAS loop) hands out
/// slot indices; each waiter spins on its own array slot. Local spinning
/// under CC (each slot is a distinct cache line analogue); still remote in
/// DSM (slot ownership cannot follow the dynamic ticket assignment) — the
/// classic contrast with MCS visible in bench/tab_rmr_vs_n.
class AndersonLock : public SimLock {
 public:
  AndersonLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "anderson"; }

 private:
  int n_;
  VarId tail_;
  std::vector<VarId> slots_;   ///< slots_[i] == 1: ticket i may enter
  std::vector<Value> my_slot_; ///< private per-process ticket
};

}  // namespace tpa::algos
