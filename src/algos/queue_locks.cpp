#include "algos/queue_locks.h"

// NOTE: every co_await below is a standalone statement or an initializer —
// GCC 12 miscompiles co_await inside condition expressions (see
// spin_locks.cpp and tests/test_coroutine_patterns.cpp).

namespace tpa::algos {

McsLock::McsLock(Simulator& sim, int n) : tail_(sim.alloc_var(kNil)) {
  locked_.reserve(static_cast<std::size_t>(n));
  next_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    locked_.push_back(sim.alloc_var(0, static_cast<tso::ProcId>(i)));
    next_.push_back(sim.alloc_var(kNil, static_cast<tso::ProcId>(i)));
  }
}

Task<> McsLock::acquire(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());
  co_await p.write(next_[me], kNil);
  // swap(tail, me) via a CAS loop; the CAS also drains the buffer, making
  // the next_ reset visible before we are reachable via tail.
  Value pred = kNil;
  while (true) {
    pred = co_await p.read(tail_);
    const Value old = co_await p.cas(tail_, pred, p.id());
    if (old == pred) break;
  }
  if (pred != kNil) {
    co_await p.write(locked_[me], 1);
    co_await p.fence();  // our locked flag must be visible before the link
    co_await p.write(next_[static_cast<std::size_t>(pred)], p.id());
    co_await p.fence();  // publish the link so the predecessor can hand off
    while (true) {
      // local spin: locked_[me] lives in our own segment
      const Value flag = co_await p.read(locked_[me]);
      if (flag == 0) break;
    }
  }
}

Task<> McsLock::release(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());
  Value succ = co_await p.read(next_[me]);
  if (succ == kNil) {
    const Value old = co_await p.cas(tail_, p.id(), kNil);
    if (old == p.id()) co_return;  // nobody queued behind us
    // Someone is mid-enqueue: wait for the link.
    while (true) {
      succ = co_await p.read(next_[me]);
      if (succ != kNil) break;
    }
  }
  co_await p.write(locked_[static_cast<std::size_t>(succ)], 0);
  co_await p.fence();
}

ClhLock::ClhLock(Simulator& sim, int n)
    : node_idx_(static_cast<std::size_t>(n)),
      pred_idx_(static_cast<std::size_t>(n), -1) {
  // n per-process nodes plus one released dummy the tail starts at.
  flag_.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n + 1; ++i) flag_.push_back(sim.alloc_var(0));
  tail_ = sim.alloc_var(n);  // dummy node index
  for (int i = 0; i < n; ++i) node_idx_[static_cast<std::size_t>(i)] = i;
}

Task<> ClhLock::acquire(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());
  const int my_node = node_idx_[me];
  co_await p.write(flag_[static_cast<std::size_t>(my_node)], 1);
  // swap(tail, my_node); the CAS drains the flag write.
  Value pred = 0;
  while (true) {
    pred = co_await p.read(tail_);
    const Value old = co_await p.cas(tail_, pred, my_node);
    if (old == pred) break;
  }
  pred_idx_[me] = static_cast<int>(pred);
  while (true) {
    // spin on the predecessor's node (local under CC, remote under DSM)
    const Value flag = co_await p.read(flag_[static_cast<std::size_t>(pred)]);
    if (flag == 0) break;
  }
}

Task<> ClhLock::release(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());
  co_await p.write(flag_[static_cast<std::size_t>(node_idx_[me])], 0);
  co_await p.fence();
  // Recycle: take the predecessor's node for our next acquisition.
  node_idx_[me] = pred_idx_[me];
}

}  // namespace tpa::algos
