// Peterson tournament tree — a read/write lock with Θ(log n) fences.
//
// Each internal node of a complete binary tree is a two-sided Peterson
// lock; a process climbs from its leaf to the root, winning each node. On
// TSO every level needs one fence (the flag/turn writes must be visible
// before reading the opponent), so the passage costs Θ(log n) fences and
// Θ(log n) RMRs — the naive non-adaptive baseline the paper's predecessor
// [Attiya-Hendler-Levy 2013] improved to O(1) fences. Contrast with
// BakeryLock (O(1) fences, Θ(n) reads) in bench/tab_fence_vs_contention.
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

class TournamentLock : public SimLock {
 public:
  TournamentLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "tournament"; }
  bool read_write_only() const override { return true; }

  int levels() const { return levels_; }

 private:
  // Nodes are stored heap-style: node 1 is the root; node i has children
  // 2i and 2i+1. A process entering from leaf slot s competes at node
  // (leaf_base_ + s) / 2 first.
  struct Node {
    VarId flag[2];
    VarId turn;
  };

  int n_;
  int levels_;
  int leaf_base_;
  std::vector<Node> nodes_;
};

}  // namespace tpa::algos
