#include "algos/splitter.h"

#include <algorithm>

#include "util/check.h"

// NOTE: every co_await is a standalone statement or an initializer (GCC 12
// miscompiles co_await inside condition expressions; see tso/task.h).

namespace tpa::algos {

SimSplitter::SimSplitter(Simulator& sim)
    : x_(sim.alloc_var(kNobody)), y_(sim.alloc_var(0)) {}

Task<SimSplitter::Outcome> SimSplitter::visit(Proc& p) {
  co_await p.write(x_, p.id());
  co_await p.fence();  // X must be visible before reading Y
  const Value y = co_await p.read(y_);
  if (y == 1) co_return Outcome::kRight;
  co_await p.write(y_, 1);
  co_await p.fence();  // Y must be visible before re-reading X
  const Value x = co_await p.read(x_);
  if (x == p.id()) co_return Outcome::kStop;
  co_return Outcome::kDown;
}

MoirAndersonGrid::MoirAndersonGrid(Simulator& sim, int n) : n_(n) {
  const int cells = n * (n + 1) / 2;
  x_.reserve(static_cast<std::size_t>(cells));
  y_.reserve(static_cast<std::size_t>(cells));
  touched_.reserve(static_cast<std::size_t>(cells));
  present_.reserve(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    x_.push_back(sim.alloc_var(-1));
    y_.push_back(sim.alloc_var(0));
    touched_.push_back(sim.alloc_var(0));
    present_.push_back(sim.alloc_var(0));
  }
}

int MoirAndersonGrid::cell_index(int r, int c) const {
  const int d = r + c;
  TPA_CHECK(d < n_, "grid walk left the triangle: r=" << r << " c=" << c);
  return d * (d + 1) / 2 + r;
}

int MoirAndersonGrid::diagonal_of(Value cell) const {
  int d = 0;
  while ((d + 1) * (d + 2) / 2 <= cell) ++d;
  return d;
}

Task<Value> MoirAndersonGrid::acquire_name(Proc& p) {
  int r = 0, c = 0;
  while (true) {
    const auto cell = static_cast<std::size_t>(cell_index(r, c));
    // Leave a trail for the adaptive collector; the splitter's first fence
    // publishes it together with X.
    co_await p.write(touched_[cell], 1);
    co_await p.write(x_[cell], p.id());
    co_await p.fence();
    const Value y = co_await p.read(y_[cell]);
    if (y == 1) {
      ++c;  // RIGHT
      continue;
    }
    co_await p.write(y_[cell], 1);
    co_await p.fence();
    const Value x = co_await p.read(x_[cell]);
    if (x == p.id()) co_return static_cast<Value>(cell);  // STOP
    ++r;  // DOWN
  }
}

Task<> MoirAndersonGrid::collect(
    Proc& p, std::vector<std::pair<Value, Value>>* out) const {
  for (int d = 0; d < n_; ++d) {
    bool any_touched = false;
    for (int r = 0; r <= d; ++r) {
      const auto cell = static_cast<std::size_t>(d * (d + 1) / 2 + r);
      const Value t = co_await p.read(touched_[cell]);
      if (t == 0) continue;
      any_touched = true;
      const Value who = co_await p.read(present_[cell]);
      if (who != 0) out->emplace_back(static_cast<Value>(cell), who - 1);
    }
    // Every registrant marked one cell on each diagonal of its path, so a
    // fully-untouched diagonal means nobody ever went further.
    if (!any_touched) break;
  }
}

AdaptiveSplitterLock::AdaptiveSplitterLock(Simulator& sim, int n)
    : n_(n), grid_(sim, n), cell_of_(static_cast<std::size_t>(n), -1) {
  choosing_.reserve(static_cast<std::size_t>(n));
  number_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    choosing_.push_back(sim.alloc_var(0));
    number_.push_back(sim.alloc_var(0));
  }
}

Task<> AdaptiveSplitterLock::acquire(Proc& p) {
  const auto me = static_cast<std::size_t>(p.id());

  // One-time registration: Θ(k) splitter visits, each costing two fences —
  // the pure read/write price of adaptivity.
  if (cell_of_[me] < 0) {
    const Value cell = co_await grid_.acquire_name(p);
    co_await p.write(grid_.present_[static_cast<std::size_t>(cell)],
                     p.id() + 1);
    co_await p.fence();
    cell_of_[me] = cell;
  }

  // Bakery doorway over the adaptively-collected participants.
  co_await p.write(choosing_[me], 1);
  co_await p.fence();
  std::vector<std::pair<Value, Value>> seen;
  co_await grid_.collect(p, &seen);
  Value mx = 0;
  for (const auto& [cell, who] : seen) {
    const Value v = co_await p.read(number_[static_cast<std::size_t>(who)]);
    mx = std::max(mx, v);
  }
  const Value my_number = mx + 1;
  co_await p.write(number_[me], my_number);
  co_await p.write(choosing_[me], 0);
  co_await p.fence();

  // Wait scan over a fresh collect (the participant set may have grown).
  seen.clear();
  co_await grid_.collect(p, &seen);
  for (const auto& [cell, who] : seen) {
    const int j = static_cast<int>(who);
    if (j == p.id()) continue;
    const auto ju = static_cast<std::size_t>(j);
    while (true) {
      const Value choosing = co_await p.read(choosing_[ju]);
      if (choosing != 1) break;
    }
    while (true) {
      const Value nj = co_await p.read(number_[ju]);
      if (nj == 0 || nj > my_number || (nj == my_number && j > p.id())) break;
    }
  }
}

Task<> AdaptiveSplitterLock::release(Proc& p) {
  co_await p.write(number_[static_cast<std::size_t>(p.id())], 0);
  co_await p.fence();
}

}  // namespace tpa::algos
