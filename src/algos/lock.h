// SimLock — the interface simulated mutual-exclusion algorithms implement,
// plus the passage driver that wraps entry/exit code in the paper's
// transition events (Enter, CS, Exit).
//
// A passage is: Enter (ncs -> entry), the lock's entry section (acquire),
// the instantaneous CS event (entry -> exit), the lock's exit section
// (release), and Exit (exit -> ncs). The simulator asserts mutual exclusion
// at every enabled CS event, so any scenario driving passages doubles as a
// correctness check of the algorithm under the exercised schedule.
#pragma once

#include <memory>
#include <string>

#include "tso/proc.h"
#include "tso/sim.h"
#include "tso/task.h"

namespace tpa::algos {

using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

class SimLock {
 public:
  virtual ~SimLock() = default;

  /// The lock's entry section. Runs with the process' status == entry.
  virtual Task<> acquire(Proc& p) = 0;

  /// The lock's exit section. Runs with the process' status == exit.
  virtual Task<> release(Proc& p) = 0;

  /// Human-readable algorithm name for tables.
  virtual std::string name() const = 0;

  /// True if the algorithm uses only reads and writes (no CAS) — the class
  /// the paper's construction primarily targets.
  virtual bool read_write_only() const { return false; }
};

/// One passage through the critical section.
Task<> run_passage(Proc& p, std::shared_ptr<SimLock> lock);

/// `count` back-to-back passages.
Task<> run_passages(Proc& p, std::shared_ptr<SimLock> lock, int count);

}  // namespace tpa::algos
