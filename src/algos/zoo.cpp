#include "algos/zoo.h"

#include "algos/bakery.h"
#include "algos/fastpath.h"
#include "algos/queue_locks.h"
#include "algos/spin_locks.h"
#include "algos/splitter.h"
#include "algos/tournament.h"
#include "algos/yang_anderson.h"
#include "util/check.h"

namespace tpa::algos {

const std::vector<LockFactory>& lock_zoo() {
  static const std::vector<LockFactory> kZoo = {
      {"tas", false, false,
       [](Simulator& sim, int) { return std::make_shared<TasLock>(sim); }},
      {"ttas", false, false,
       [](Simulator& sim, int) { return std::make_shared<TtasLock>(sim); }},
      {"ticket", false, false,
       [](Simulator& sim, int) { return std::make_shared<TicketLock>(sim); }},
      {"anderson", false, false,
       [](Simulator& sim, int n) {
         return std::make_shared<AndersonLock>(sim, n);
       }},
      {"mcs", false, false,
       [](Simulator& sim, int n) { return std::make_shared<McsLock>(sim, n); }},
      {"clh", false, false,
       [](Simulator& sim, int n) { return std::make_shared<ClhLock>(sim, n); }},
      {"tournament", true, false,
       [](Simulator& sim, int n) {
         return std::make_shared<TournamentLock>(sim, n);
       }},
      {"yang-anderson", true, false,
       [](Simulator& sim, int n) {
         return std::make_shared<YangAndersonLock>(sim, n);
       }},
      {"bakery", true, false,
       [](Simulator& sim, int n) {
         return std::make_shared<BakeryLock>(sim, n);
       }},
      {"adaptive-bakery", false, true,
       [](Simulator& sim, int n) {
         return std::make_shared<AdaptiveBakery>(sim, n);
       }},
      {"lamport-fast", true, false,
       [](Simulator& sim, int n) {
         return std::make_shared<LamportFastLock>(sim, n);
       }},
      {"adaptive-splitter", true, true,
       [](Simulator& sim, int n) {
         return std::make_shared<AdaptiveSplitterLock>(sim, n);
       }},
  };
  return kZoo;
}

const LockFactory& lock_factory(const std::string& name) {
  for (const auto& f : lock_zoo())
    if (f.name == name) return f;
  TPA_FAIL("unknown lock '" << name << "'");
}

}  // namespace tpa::algos
