#include "algos/recoverable.h"

// NOTE on style: as everywhere in src/algos, every co_await is a standalone
// statement or a variable initializer (GCC 12 condition-expression bug; see
// spin_locks.cpp).

namespace tpa::algos {

RecoverableLock::RecoverableLock(Simulator& sim, RecoverableFencing fencing)
    : lock_(sim.alloc_var(0)), owner_(sim.alloc_var(0)), fencing_(fencing) {}

std::string RecoverableLock::name() const {
  return fencing_ == RecoverableFencing::kFull ? "recoverable"
                                               : "recoverable-nofence";
}

Task<> RecoverableLock::acquire(Proc& p) {
  // Announce first: the write sits in the buffer only until the first CAS
  // below, whose implied drain commits it. The winner therefore always has
  // its announcement in memory before it can reach the CS. (Losers clobber
  // owner_ too — harmless for kFull, which never reads it, and exactly the
  // fragility kNone's recovery inherits.)
  co_await p.write(owner_, p.id() + 1);
  while (true) {
    const Value old = co_await p.cas(lock_, 0, p.id() + 1);
    if (old == 0) co_return;
  }
}

Task<> RecoverableLock::release(Proc& p) {
  if (fencing_ == RecoverableFencing::kFull) {
    // Retire the announcement before the lock can change hands, and commit
    // the handover before leaving: no reachable crash point leaves memory
    // claiming a holder that is not (still) entitled to the CS.
    co_await p.write(owner_, 0);
    co_await p.fence();
    co_await p.write(lock_, 0);
    co_await p.fence();
  } else {
    // Fence-free: both writes sit in the buffer and TSO commits lock_ = 0
    // first. A buffer-lost crash after that commit erases owner_ = 0, so
    // memory says "free lock, p still owns it" — the stale-announcement
    // window the explorer's crash adversary finds.
    co_await p.write(lock_, 0);
    co_await p.write(owner_, 0);
  }
}

Task<Value> RecoverableLock::owns_after_crash(Proc& p) {
  if (fencing_ == RecoverableFencing::kFull) {
    const Value l = co_await p.read(lock_);
    co_return l == p.id() + 1 ? 1 : 0;
  }
  const Value o = co_await p.read(owner_);
  co_return o == p.id() + 1 ? 1 : 0;
}

Task<> run_recovered_passages(Proc& p, std::shared_ptr<RecoverableLock> lock,
                              int fresh) {
  const Value owns = co_await lock->owns_after_crash(p);
  if (owns != 0) {
    // The crashed incarnation still holds the lock: the CS is still p's,
    // so complete the interrupted passage — enter, the (instantaneous) CS,
    // and a full exit section to hand the lock back cleanly.
    co_await p.enter();
    co_await p.cs();
    co_await lock->release(p);
    co_await p.exit();
  } else {
    co_await run_passage(p, lock);
  }
  for (int i = 0; i < fresh; ++i) {
    co_await run_passage(p, lock);
  }
}

}  // namespace tpa::algos
