// Moir-Anderson splitter grid and a pure read/write adaptive lock.
//
// The paper's Theorem 1 is about read/write (+CAS) algorithms; the
// AdaptiveBakery in bakery.h registers via CAS. This file provides the
// *pure read/write* counterpart: processes acquire a one-shot name by
// walking a triangular grid of Lamport splitters (Moir-Anderson renaming),
// then run a bakery over the adaptively-collected set of names.
//
//   splitter visit (reads/writes + 2 fences on TSO):
//     touched = 1; X = p; fence;
//     if (Y) move RIGHT;
//     Y = 1; fence;
//     if (X == p) STOP else move DOWN;
//
// With k participants every process stops within diagonal k-1, and every
// diagonal on its path is marked `touched`, so a collector may scan
// diagonals until the first fully-untouched one — O(k^2) reads, independent
// of n. The price: registration costs Θ(k) *fences* in the worst case — the
// paper's currency, paid by a pure read/write linearly-adaptive algorithm,
// exactly as Theorem 1 says it must be.
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

/// One Lamport splitter on the simulator. At most one visitor STOPs; with
/// k visitors at most k-1 go right and at most k-1 go down.
class SimSplitter {
 public:
  enum class Outcome { kStop, kRight, kDown };

  explicit SimSplitter(Simulator& sim);

  /// One visit; 2 fences. The result is deterministic per schedule.
  Task<Outcome> visit(Proc& p);

 private:
  static constexpr Value kNobody = -1;
  VarId x_;
  VarId y_;

  // Task<T> cannot be awaited through a virtual-free helper without the
  // outcome value, so visit() returns the enum via Task<Value> internally.
};

/// The triangular splitter grid: cell (r, c) exists when r + c < n.
/// acquire_name walks from (0,0), marking every visited cell as touched,
/// and returns the index of the cell where the walker stopped.
class MoirAndersonGrid {
 public:
  MoirAndersonGrid(Simulator& sim, int n);

  /// Grid walk: O(k) splitter visits and fences when k processes
  /// participate. Returns the claimed cell index.
  Task<Value> acquire_name(Proc& p);

  /// Adaptively collects the ids of all processes that announced a name:
  /// scans diagonals until the first fully-untouched diagonal. O(k^2)
  /// reads. Appends discovered (cell, proc-id) pairs to *out.
  Task<> collect(Proc& p, std::vector<std::pair<Value, Value>>* out) const;

  int cells() const { return static_cast<int>(present_.size()); }
  int diagonal_of(Value cell) const;

 private:
  friend class AdaptiveSplitterLock;

  int cell_index(int r, int c) const;

  int n_;
  std::vector<VarId> x_;        ///< per-cell splitter X
  std::vector<VarId> y_;        ///< per-cell splitter Y
  std::vector<VarId> touched_;  ///< set by every visitor of the cell
  std::vector<VarId> present_;  ///< proc id + 1, set by the stopper
};

/// Pure read/write adaptive mutual exclusion: Moir-Anderson renaming for
/// registration + bakery over the collected names. Linear-in-k fence cost
/// on first passage, O(1) fences afterwards; O(k^2) critical events per
/// passage — an f-adaptive read/write algorithm with f(k) = O(k^2).
class AdaptiveSplitterLock : public SimLock {
 public:
  AdaptiveSplitterLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "adaptive-splitter"; }
  bool read_write_only() const override { return true; }

 private:
  int n_;
  MoirAndersonGrid grid_;
  std::vector<VarId> choosing_;  ///< per process id
  std::vector<VarId> number_;
  std::vector<Value> cell_of_;   ///< private: claimed cell or -1
};

}  // namespace tpa::algos
