// Yang & Anderson's local-spin mutual exclusion tree ([28] in the paper).
//
// The first read/write algorithm with O(log n) RMRs per passage in both the
// DSM and CC models: an arbiter tree of two-process components in which
// every busy-wait spins on P[p] — a variable in the waiting process' own
// memory segment — and rivals wake each other through it with a two-stage
// handshake (values 0 = waiting, 1 = entry handshake, 2 = exit release).
// On TSO each tree level costs one fence in the entry section and one in
// the exit section: Θ(log n) fences, Θ(log n) RMRs, non-adaptive — the
// classic baseline whose fence bill [Attiya-Hendler-Levy 2013] later cut to
// O(1), prompting the question this paper answers.
//
// Correctness of the port is checked three ways: randomized TSO schedules
// (zoo sweeps), exhaustive context-bounded exploration
// (tests/test_explorer.cpp), and DSM RMR flatness (tests/test_locks.cpp).
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

class YangAndersonLock : public SimLock {
 public:
  YangAndersonLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "yang-anderson"; }
  bool read_write_only() const override { return true; }

  int levels() const { return levels_; }

 private:
  static constexpr Value kNobody = -1;

  struct Node {
    VarId c[2];  ///< C[side]: competing process id, kNobody when free
    VarId t;     ///< T: the later arriver (it waits)
  };

  Task<> node_enter(Proc& p, const Node& node, int side, int level);
  Task<> node_exit(Proc& p, const Node& node, int side, int level);

  VarId spin_var(Value proc, int level) const;

  int n_;
  int levels_;
  int leaf_base_;
  std::vector<Node> nodes_;
  /// P[p][level]: p's spin flag for its (fixed) node at that tree level;
  /// local to p in the DSM model. Per-level flags keep releases at one
  /// node from waking waits at another (the tree version of the paper's
  /// two-process P array).
  std::vector<VarId> spin_;
};

}  // namespace tpa::algos
