#include "algos/tournament.h"

#include "util/check.h"

namespace tpa::algos {

TournamentLock::TournamentLock(Simulator& sim, int n) : n_(n) {
  TPA_CHECK(n >= 1, "tournament lock needs at least one process");
  levels_ = 0;
  int leaves = 1;
  while (leaves < n) {
    leaves *= 2;
    ++levels_;
  }
  leaf_base_ = leaves;
  // Internal nodes 1..leaves-1 (index 0 unused).
  nodes_.resize(static_cast<std::size_t>(leaves));
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    nodes_[i].flag[0] = sim.alloc_var(0);
    nodes_[i].flag[1] = sim.alloc_var(0);
    nodes_[i].turn = sim.alloc_var(0);
  }
}

Task<> TournamentLock::acquire(Proc& p) {
  int pos = leaf_base_ + p.id();
  while (pos > 1) {
    const int node = pos / 2;
    const int side = pos % 2;
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    co_await p.write(nd.flag[side], 1);
    co_await p.write(nd.turn, side);
    co_await p.fence();  // Peterson on TSO: publish before reading opponent
    while (true) {
      const Value other = co_await p.read(nd.flag[1 - side]);
      if (other == 0) break;
      const Value turn = co_await p.read(nd.turn);
      if (turn != side) break;
    }
    pos = node;
  }
}

Task<> TournamentLock::release(Proc& p) {
  // Retrace the path root-to-leaf, releasing every node we hold. A single
  // fence at the end commits all the flag resets in FIFO order.
  std::vector<int> path;
  int pos = leaf_base_ + p.id();
  while (pos > 1) {
    path.push_back(pos);
    pos /= 2;
  }
  for (std::size_t i = path.size(); i-- > 0;) {
    const int node = path[i] / 2;
    const int side = path[i] % 2;
    co_await p.write(nodes_[static_cast<std::size_t>(node)].flag[side], 0);
  }
  co_await p.fence();
}

}  // namespace tpa::algos
