// Queue-based local-spin locks: MCS and CLH.
//
// MCS spins on a per-process flag that lives in the waiter's own memory
// segment — O(1) RMR per passage in both the DSM and CC models, constant
// barrier count, but non-adaptive in the paper's read/write sense (it is
// built on swap/CAS). CLH spins on the predecessor's node: local under CC,
// remote under DSM — the classic CC/DSM asymmetry, visible in the RMR
// tables produced by bench/tab_rmr_vs_n.
#pragma once

#include <vector>

#include "algos/lock.h"

namespace tpa::algos {

/// Mellor-Crummey & Scott queue lock.
class McsLock : public SimLock {
 public:
  /// `n` processes; per-process qnode variables are placed in each process'
  /// local segment (DSM ownership) so spins are local.
  McsLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "mcs"; }

 private:
  static constexpr Value kNil = -1;
  VarId tail_;
  std::vector<VarId> locked_;  ///< locked_[i]: i spins here; owned by i
  std::vector<VarId> next_;    ///< next_[i]: successor of i; owned by i
};

/// Craig / Landin-Hagersten queue lock with node recycling.
class ClhLock : public SimLock {
 public:
  ClhLock(Simulator& sim, int n);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override { return "clh"; }

 private:
  VarId tail_;                  ///< holds a node index
  std::vector<VarId> flag_;     ///< n+1 nodes; flag==1 while held
  std::vector<int> node_idx_;   ///< process -> its current node (private)
  std::vector<int> pred_idx_;   ///< process -> predecessor node (private)
};

}  // namespace tpa::algos
