// RecoverableLock — a minimal CAS-based lock for the crash–recovery fault
// model (recoverable mutual exclusion, RME): a process may crash at any
// step, losing its volatile state (program position, registers, and — under
// SimConfig::crash_model == kBufferLost — its store buffer), and later
// re-enter through a recovery section that must decide whether the crashed
// incarnation still holds the lock.
//
// The lock keeps two variables:
//
//   lock_   0 when free, p+1 when held; acquired by CAS.
//   owner_  the holder's announcement, written *before* competing so the
//           CAS-implied drain commits it to memory before the CS.
//
// Two variants differ only in the exit section:
//
//   kFull  release commits owner_ = 0 behind a fence before freeing lock_
//          (and fences again after). Recovery consults lock_, whose
//          committed value is exact — lock_ is written only by CAS and by
//          fenced release writes — so the variant is crash-safe under both
//          crash models (tests/test_crash.cpp has the explorer proof).
//   kNone  release buffers [lock_ = 0, owner_ = 0] with no fence and trusts
//          owner_ during recovery. TSO commits lock_ = 0 first; a
//          buffer-lost crash in that window leaves the lock free with a
//          stale announcement, and the recovering process walks straight
//          into a CS someone else can now acquire — the explorer refutes
//          this variant with a shrunk crash witness.
#pragma once

#include <memory>

#include "algos/lock.h"

namespace tpa::algos {

enum class RecoverableFencing {
  kFull,  ///< fenced exit section: crash-safe under both crash models
  kNone,  ///< fence-free exit section: unsafe under buffer-lost crashes
};

class RecoverableLock : public SimLock {
 public:
  RecoverableLock(Simulator& sim, RecoverableFencing fencing);

  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override;

  /// The recovery predicate: did p's crashed incarnation hold the lock?
  /// Returns 1 (holds — the CS is still p's) or 0 (start over). kFull reads
  /// lock_; kNone trusts the unfenced owner_ announcement.
  Task<Value> owns_after_crash(Proc& p);

 private:
  VarId lock_;   ///< 0 free, p+1 held; written by CAS and release only
  VarId owner_;  ///< holder announcement, committed by the acquire CAS drain
  RecoverableFencing fencing_;
};

/// The recovery section driver (the Simulator::set_recovery factory body):
/// queries the lock, completes the crashed passage if the incarnation still
/// holds it (Enter -> CS -> exit section -> Exit), otherwise runs one fresh
/// passage from scratch; then `fresh` more passages either way.
Task<> run_recovered_passages(Proc& p, std::shared_ptr<RecoverableLock> lock,
                              int fresh = 0);

}  // namespace tpa::algos
