// The standard observers: every piece of instrumentation that used to be
// hard-wired into the simulator core, as composable SimObservers.
//
//   CostObserver      criticality (Definition 2) + RMRs under the three
//                     models of cost/model.h (DSM, CC-WT, CC-WB)
//   AwarenessObserver awareness sets (Definition 1), including the
//                     issue-time snapshot subtlety of buffered writes
//   ProgressObserver  per-process progress labels: which processes have
//                     their CS transition enabled right now
//   ExclusionChecker  ProgressObserver subclass asserting the safety half:
//                     at most one enabled CS transition at a time
//   TraceRecorder     the replayable event trace + directive schedule
//   JsonlTraceSink    structured observability: one JSON object per
//                     directive/event, streamed to an ostream
//
// SimConfig installs Cost -> Awareness -> Exclusion -> Trace in that order,
// so recorded events already carry their cost flags. Custom observers
// attach after the standard set via Simulator::add_observer().
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cost/model.h"
#include "tso/sim.h"
#include "util/bitset.h"

namespace tpa::tso {

class CostObserver : public SimObserver {
 public:
  const char* name() const override { return "cost"; }
  void on_attach(Simulator& sim) override;
  void on_event(Simulator& sim, Proc& p, Event& e,
                const StepContext& ctx) override;
  std::unique_ptr<ObserverSnapshot> snapshot() const override;
  void restore(const ObserverSnapshot* snap) override;

  /// Definition 2: has p performed a remote read of v already?
  bool remotely_read(ProcId p, VarId v) const {
    const auto i = static_cast<std::size_t>(p);
    return i < remote_reads_.size() && remote_reads_[i].count(v) != 0;
  }

  /// Critical events p performed *after* its first recovery — the RME
  /// literature charges post-crash work separately (a recovered process
  /// pays its cold-cache critical reads again). Zero until p recovers.
  std::uint64_t recovery_critical(ProcId p) const {
    return recovery_critical_[static_cast<std::size_t>(p)];
  }

 private:
  void charge(Proc& p, Event& e, const cost::RmrFlags& f);
  cost::CoherenceDirectory& directory(VarId v);
  void count_critical(ProcId p, std::uint32_t crit);

  std::vector<std::unordered_set<VarId>> remote_reads_;  ///< per process
  std::vector<cost::CoherenceDirectory> directories_;    ///< per variable
  std::vector<char> recovered_;  ///< per process: past its first Recover
  std::vector<std::uint64_t> recovery_critical_;  ///< per process
};

class AwarenessObserver : public SimObserver {
 public:
  const char* name() const override { return "awareness"; }
  void on_attach(Simulator& sim) override;
  void on_event(Simulator& sim, Proc& p, Event& e,
                const StepContext& ctx) override;
  std::unique_ptr<ObserverSnapshot> snapshot() const override;
  void restore(const ObserverSnapshot* snap) override;

  /// AW(p, E) per Definition 1.
  const DynBitset& awareness(ProcId p) const {
    return aw_[static_cast<std::size_t>(p)];
  }

 private:
  /// A read of v (last written by `writer`) by p: p becomes aware of the
  /// writer and of everything the writer was aware of at issue time.
  void absorb(std::size_t p, ProcId writer, VarId v);
  DynBitset& writer_aw(VarId v);

  std::size_t n_procs_ = 0;
  std::vector<DynBitset> aw_;         ///< per process: AW(p, E)
  std::vector<DynBitset> writer_aw_;  ///< per variable: AW at issue time
  /// Per process: awareness snapshot taken when a buffered write was
  /// issued, keyed by variable (coalescing re-snapshots in place).
  std::vector<std::unordered_map<VarId, DynBitset>> issue_aw_;
};

/// Watches per-process progress labels: whenever some process' critical-
/// section transition becomes enabled, it sweeps the simulator and exposes
/// *every* process whose CS transition is currently enabled. This is the
/// liveness layer's notion of "who is at the door of the critical section"
/// — the same Entry/CS/Exit section structure the explorer's fair-cycle
/// classifier watches — packaged as a composable observer so checkers can
/// build on it. Stateless across checkpoints: the label set is recomputed
/// at every trigger, so snapshot/restore need no payload.
class ProgressObserver : public SimObserver {
 public:
  const char* name() const override { return "progress"; }
  void on_pending(const Simulator& sim, const Proc& p) override;

  /// Processes whose CS transition was enabled at the last trigger, in
  /// process order. Only meaningful inside/after an on_cs_enabled sweep.
  const std::vector<ProcId>& cs_enabled() const { return cs_enabled_; }

 protected:
  /// Invoked when p's CS transition becomes enabled, after cs_enabled()
  /// has been refreshed (it always contains at least p itself).
  virtual void on_cs_enabled(const Simulator& sim, const Proc& p);

 private:
  std::vector<ProcId> cs_enabled_;
};

/// The safety half of mutual exclusion, on top of the progress labels: two
/// simultaneously enabled CS transitions are a violation.
class ExclusionChecker : public ProgressObserver {
 public:
  const char* name() const override { return "exclusion"; }

 protected:
  void on_cs_enabled(const Simulator& sim, const Proc& p) override;
};

class TraceRecorder : public SimObserver {
 public:
  const char* name() const override { return "trace"; }
  void on_directive(const Simulator& sim, const Directive& d) override;
  void on_event(Simulator& sim, Proc& p, Event& e,
                const StepContext& ctx) override;
  std::unique_ptr<ObserverSnapshot> snapshot() const override;
  void restore(const ObserverSnapshot* snap) override;

  const Execution& execution() const { return execution_; }

 private:
  Execution execution_;
};

/// Streams one JSON object per directive and per event to `out` — a
/// structured export for external tooling (jq, tracing UIs). Stateless as
/// far as checkpointing is concerned: restoring a snapshot does not rewind
/// the stream, so checkpoint-heavy explorers should not attach one.
class JsonlTraceSink : public SimObserver {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  const char* name() const override { return "jsonl"; }
  void on_directive(const Simulator& sim, const Directive& d) override;
  void on_event(Simulator& sim, Proc& p, Event& e,
                const StepContext& ctx) override;

 private:
  std::ostream* out_;
};

/// JsonlTraceSink writing to a file with atomic publication: lines stream
/// to a sibling "<path>.tmp"; close() fsyncs it and renames it over `path`
/// (trace/atomic_io.h), so a crash — or SIGKILL — at any point leaves
/// either the previous file or the complete new one under the final name,
/// never a torn trace. Destruction closes implicitly but swallows I/O
/// errors (destructors must not throw); call close() when the publication
/// must be confirmed.
class JsonlFileTraceSink : public JsonlTraceSink {
 public:
  /// Opens "<path>.tmp" for writing; raises CheckFailure when it cannot.
  explicit JsonlFileTraceSink(std::string path);
  ~JsonlFileTraceSink() override;

  /// Publishes the trace under the final path. Idempotent; raises
  /// CheckFailure on I/O errors (the tmp file is removed).
  void close();

 private:
  std::string path_;
  std::ofstream file_;
  bool closed_ = false;
};

}  // namespace tpa::tso
