// Core identifier types for the TSO simulator.
#pragma once

#include <cstdint>

namespace tpa::tso {

/// Process identifier, 0..n-1. Process IDs double as the total order used by
/// the paper's write phase ("increasing ID order").
using ProcId = std::int32_t;

/// Shared-variable identifier (index into the simulator's memory).
using VarId = std::int32_t;

/// Values stored in shared variables.
using Value = std::int64_t;

inline constexpr ProcId kNoProc = -1;
inline constexpr VarId kNoVar = -1;

/// Process status per the paper's mutual-exclusion system model:
/// Enter: ncs -> entry, CS: entry -> exit, Exit: exit -> ncs.
enum class Status : std::uint8_t { kNcs, kEntry, kExit };

/// mode(p, E): a process mid-fence may only commit buffered writes
/// (write mode); otherwise it issues events normally (read mode).
enum class Mode : std::uint8_t { kRead, kWrite };

const char* to_string(Status s);
const char* to_string(Mode m);

}  // namespace tpa::tso
