// Proc — the simulator-side state of one process, plus the awaitable
// shared-memory API used by simulated algorithms.
//
// A process owns (per the TSO operational model of Section 2):
//   * a FIFO write buffer with in-place coalescing — at most one buffered
//     write per variable, an older write to the same variable is replaced;
//   * a mode: read (between fences) or write (mid-fence: may only commit);
//   * a mutual-exclusion status (ncs/entry/exit) driven by the transition
//     events Enter/CS/Exit;
//   * core cost counters: events, fences, CAS barriers and contention, per
//     passage and in total. The analysis-side counters — critical events
//     (Definition 2) and RMRs under DSM / CC-WT / CC-WB — are filled in by
//     the CostObserver (tso/observers.h); awareness sets (Definition 1) live
//     in the AwarenessObserver and are reachable through awareness().
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "cost/model.h"
#include "tso/op.h"
#include "tso/types.h"
#include "util/bitset.h"

namespace tpa::tso {

class Simulator;
class CostObserver;

/// One buffered (issued but uncommitted) write.
struct BufferedWrite {
  VarId var;
  Value value;
};

/// Per-passage cost record, finalized at the Exit event. The core machine
/// maintains events/fences/cas_ops and the contention fields; critical and
/// rmr_* are written by the CostObserver when cost tracking is enabled.
struct PassageStats {
  std::uint32_t index = 0;
  std::uint32_t fences = 0;        ///< completed fence instructions
  std::uint32_t cas_ops = 0;       ///< CAS barriers (count as fences on TSO)
  std::uint32_t critical = 0;      ///< critical events (Definition 2)
  std::uint32_t rmr_dsm = 0;
  std::uint32_t rmr_wt = 0;
  std::uint32_t rmr_wb = 0;
  std::uint32_t events = 0;        ///< program events issued

  /// The paper's two finer contention notions (Section 1): the number of
  /// distinct processes active at some point during this passage, and the
  /// maximum number simultaneously active. Always
  /// point <= interval <= total contention.
  std::uint32_t interval_contention = 0;
  std::uint32_t point_contention = 0;

  /// Fence-like barriers: explicit fences plus atomic RMWs.
  std::uint32_t barriers() const { return fences + cas_ops; }

  /// This passage's costs in the shared cross-world cost model
  /// (cost/model.h; loads/stores are not tracked per passage).
  cost::CostVector to_cost_vector() const {
    cost::CostVector c;
    c.fences = fences;
    c.rmws = cas_ops;
    c.critical = critical;
    c.rmr_dsm = rmr_dsm;
    c.rmr_wt = rmr_wt;
    c.rmr_wb = rmr_wb;
    return c;
  }
};

class Proc {
 public:
  Proc(Simulator* sim, ProcId id, std::size_t n_procs);

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  ProcId id() const { return id_; }
  Status status() const { return status_; }
  Mode mode() const { return mode_; }

  // ---- Awaitable shared-memory API (used inside Task coroutines) ----

  struct OpAwaiter {
    Proc& proc;
    SimOp op;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Value await_resume() const noexcept { return proc.pending_.result; }
  };

  /// Reads variable v (own buffer first, then cache/shared memory).
  OpAwaiter read(VarId v) { return {*this, {OpKind::kRead, v}}; }

  /// Issues a write of `value` to v into the write buffer.
  OpAwaiter write(VarId v, Value value) {
    return {*this, {OpKind::kWrite, v, value}};
  }

  /// Full fence: BeginFence, drain the buffer, EndFence.
  OpAwaiter fence() { return {*this, {OpKind::kFence}}; }

  /// Atomic compare-and-swap. Drains the buffer first (x86 LOCK semantics);
  /// returns the old value of v (success iff old == expected).
  OpAwaiter cas(VarId v, Value expected, Value desired) {
    SimOp op{OpKind::kCas, v, desired};
    op.expected = expected;
    return {*this, op};
  }

  /// Transition events (used by the passage driver, not by lock code).
  OpAwaiter enter() { return {*this, {OpKind::kEnter}}; }
  OpAwaiter cs() { return {*this, {OpKind::kCs}}; }
  OpAwaiter exit() { return {*this, {OpKind::kExit}}; }

  // ---- Introspection (scheduler / adversary side) ----

  bool has_pending() const { return has_pending_; }
  const SimOp& pending() const { return pending_; }
  bool done() const { return done_; }

  /// True between a Crash event and the matching Recover (a crashed process
  /// without a recovery section additionally reports done()).
  bool crashed() const { return crashed_; }

  /// Recovery incarnations started so far; 0 while the original program (or
  /// nothing) runs.
  std::uint32_t incarnations() const { return incarnations_; }

  const std::vector<BufferedWrite>& buffer() const { return buffer_; }

  /// True if the buffer holds a write to v; if so *out gets its value.
  bool buffered_value(VarId v, Value* out) const;

  /// AW(p, E) per Definition 1, from the AwarenessObserver. An empty set is
  /// returned when awareness tracking is off (SimConfig::track_awareness).
  const DynBitset& awareness() const;

  /// Whether this process already read v remotely (Definition 2's "first
  /// remote read of v by p"), from the CostObserver. Always false when cost
  /// tracking is off (SimConfig::track_costs).
  bool remotely_read(VarId v) const;

  /// Running FNV-1a hash of the op-result stream handed to this process'
  /// program so far (reset at each crash). The program's control location
  /// and locals are a deterministic function of that stream, so this hash
  /// stands in for the coroutine frame in Simulator::fingerprint() — the
  /// incremental fingerprint folds it into the process' blob component.
  std::uint64_t op_history_hash() const { return op_hash_; }

  std::uint32_t fences_completed() const { return fences_total_; }
  std::uint32_t passages_done() const { return passages_done_; }
  const PassageStats& current_passage() const { return cur_; }
  const std::vector<PassageStats>& finished_passages() const {
    return finished_;
  }

 private:
  friend class Simulator;
  friend class CostObserver;  ///< writes critical/rmr_* into cur_

  Simulator* sim_;
  ProcId id_;
  Status status_ = Status::kNcs;
  Mode mode_ = Mode::kRead;

  std::vector<BufferedWrite> buffer_;

  // Coroutine plumbing: the innermost suspended coroutine awaiting an op.
  SimOp pending_{OpKind::kRead};
  bool has_pending_ = false;
  bool done_ = false;
  bool crashed_ = false;
  std::uint32_t incarnations_ = 0;
  std::coroutine_handle<> resume_point_;

  /// Every op result handed to the program so far, in order. Programs are
  /// deterministic functions of their op results, so feeding this list back
  /// into a freshly spawned coroutine fast-forwards it to the same
  /// suspension point — the basis of Simulator::restore().
  std::vector<Value> op_results_;

  /// FNV-1a basis for op_hash_ (an empty op-result history).
  static constexpr std::uint64_t kOpHashBasis = 0xcbf29ce484222325ULL;

  /// Running FNV-1a hash of op_results_, maintained incrementally as results
  /// are handed out (and reset when a crash clears the history). Because the
  /// coroutine's control location and locals are a deterministic function of
  /// the op-result stream, this hash stands in for them in
  /// Simulator::fingerprint() without walking the unbounded history.
  std::uint64_t op_hash_ = kOpHashBasis;

  std::uint32_t fences_total_ = 0;
  std::uint32_t passages_done_ = 0;
  PassageStats cur_;
  DynBitset met_;  ///< processes seen active during the current passage
  std::vector<PassageStats> finished_;
};

}  // namespace tpa::tso
