// Proc — the simulator-side state of one process, plus the awaitable
// shared-memory API used by simulated algorithms.
//
// A process owns (per the TSO operational model of Section 2):
//   * a FIFO write buffer with in-place coalescing — at most one buffered
//     write per variable, an older write to the same variable is replaced;
//   * a mode: read (between fences) or write (mid-fence: may only commit);
//   * a mutual-exclusion status (ncs/entry/exit) driven by the transition
//     events Enter/CS/Exit;
//   * an awareness set (Definition 1) when awareness tracking is enabled;
//   * cost counters: fences, CAS barriers, critical events (Definition 2)
//     and RMRs under DSM / CC-WT / CC-WB, per passage and in total.
#pragma once

#include <coroutine>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "tso/op.h"
#include "tso/types.h"
#include "util/bitset.h"

namespace tpa::tso {

class Simulator;

/// One buffered (issued but uncommitted) write. The issuer's awareness set
/// is snapshotted at issue time: Definition 1 speaks of the awareness of the
/// writer "at the time it issued that write".
struct BufferedWrite {
  VarId var;
  Value value;
  DynBitset aw_at_issue;  // empty when awareness tracking is off
};

/// Per-passage cost record, finalized at the Exit event.
struct PassageStats {
  std::uint32_t index = 0;
  std::uint32_t fences = 0;        ///< completed fence instructions
  std::uint32_t cas_ops = 0;       ///< CAS barriers (count as fences on TSO)
  std::uint32_t critical = 0;      ///< critical events (Definition 2)
  std::uint32_t rmr_dsm = 0;
  std::uint32_t rmr_wt = 0;
  std::uint32_t rmr_wb = 0;
  std::uint32_t events = 0;        ///< program events issued

  /// The paper's two finer contention notions (Section 1): the number of
  /// distinct processes active at some point during this passage, and the
  /// maximum number simultaneously active. Always
  /// point <= interval <= total contention.
  std::uint32_t interval_contention = 0;
  std::uint32_t point_contention = 0;

  /// Fence-like barriers: explicit fences plus atomic RMWs.
  std::uint32_t barriers() const { return fences + cas_ops; }
};

class Proc {
 public:
  Proc(Simulator* sim, ProcId id, std::size_t n_procs, bool track_awareness);

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  ProcId id() const { return id_; }
  Status status() const { return status_; }
  Mode mode() const { return mode_; }

  // ---- Awaitable shared-memory API (used inside Task coroutines) ----

  struct OpAwaiter {
    Proc& proc;
    SimOp op;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Value await_resume() const noexcept { return proc.pending_.result; }
  };

  /// Reads variable v (own buffer first, then cache/shared memory).
  OpAwaiter read(VarId v) { return {*this, {OpKind::kRead, v}}; }

  /// Issues a write of `value` to v into the write buffer.
  OpAwaiter write(VarId v, Value value) {
    return {*this, {OpKind::kWrite, v, value}};
  }

  /// Full fence: BeginFence, drain the buffer, EndFence.
  OpAwaiter fence() { return {*this, {OpKind::kFence}}; }

  /// Atomic compare-and-swap. Drains the buffer first (x86 LOCK semantics);
  /// returns the old value of v (success iff old == expected).
  OpAwaiter cas(VarId v, Value expected, Value desired) {
    SimOp op{OpKind::kCas, v, desired};
    op.expected = expected;
    return {*this, op};
  }

  /// Transition events (used by the passage driver, not by lock code).
  OpAwaiter enter() { return {*this, {OpKind::kEnter}}; }
  OpAwaiter cs() { return {*this, {OpKind::kCs}}; }
  OpAwaiter exit() { return {*this, {OpKind::kExit}}; }

  // ---- Introspection (scheduler / adversary side) ----

  bool has_pending() const { return has_pending_; }
  const SimOp& pending() const { return pending_; }
  bool done() const { return done_; }

  const std::vector<BufferedWrite>& buffer() const { return buffer_; }

  /// True if the buffer holds a write to v; if so *out gets its value.
  bool buffered_value(VarId v, Value* out) const;

  const DynBitset& awareness() const { return awareness_; }

  /// Variables this process has remotely read (for Definition 2's
  /// "first remote read of v by p").
  bool remotely_read(VarId v) const {
    return remote_reads_.count(v) != 0;
  }

  std::uint32_t fences_completed() const { return fences_total_; }
  std::uint32_t passages_done() const { return passages_done_; }
  const PassageStats& current_passage() const { return cur_; }
  const std::vector<PassageStats>& finished_passages() const {
    return finished_;
  }

 private:
  friend class Simulator;

  Simulator* sim_;
  ProcId id_;
  Status status_ = Status::kNcs;
  Mode mode_ = Mode::kRead;

  std::vector<BufferedWrite> buffer_;

  // Coroutine plumbing: the innermost suspended coroutine awaiting an op.
  SimOp pending_{OpKind::kRead};
  bool has_pending_ = false;
  bool done_ = false;
  std::coroutine_handle<> resume_point_;

  bool track_awareness_;
  DynBitset awareness_;
  std::unordered_set<VarId> remote_reads_;

  std::uint32_t fences_total_ = 0;
  std::uint32_t passages_done_ = 0;
  PassageStats cur_;
  DynBitset met_;  ///< processes seen active during the current passage
  std::vector<PassageStats> finished_;
};

}  // namespace tpa::tso
