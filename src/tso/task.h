// Task<T> — the coroutine type in which simulated algorithms are written.
//
// A lock or object algorithm is straight-line coroutine code:
//
//   Task<> acquire(Proc& p) {
//     co_await p.write(flag, 1);
//     co_await p.fence();
//     while (true) {                          // spin
//       const Value v = co_await p.read(other);
//       if (v == 0) break;
//     }
//   }
//
// Tasks are lazily started, support nesting (`co_await subtask` with
// symmetric transfer), propagate exceptions, and — crucially for the
// simulator — suspend the whole coroutine stack whenever a shared-memory
// awaitable parks a SimOp on the process. Control then returns to the
// simulator, which owns when (and whether) the op executes.
//
// WARNING (GCC 12 workaround): never place co_await inside a condition
// (`if (co_await ... == 0)`, `while (co_await ...)`) or as a nested
// sub-expression — GCC 12 fails to keep the temporary awaiter alive across
// the suspension and await_suspend then writes through a dangling
// reference. Always hoist into a standalone statement or initializer:
// `const Value v = co_await ...; if (v == 0) ...`.
// tests/test_coroutine_patterns.cpp pins the safe patterns.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/check.h"

namespace tpa::tso {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Symmetric transfer back to whoever co_awaited this task (or a noop
      // handle for top-level tasks, returning control to the simulator).
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }
  Handle handle() const { return handle_; }

  /// Awaiting a task starts it; when it completes, the awaiter resumes and
  /// receives the task's value (rethrowing any stored exception).
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> caller) noexcept {
        handle.promise().continuation = caller;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception)
          std::rethrow_exception(handle.promise().exception);
        // A completed value-returning task that neither threw nor stored a
        // value can only mean its frame was destroyed mid-flight (e.g. a
        // crashed process); surface that instead of dereferencing an empty
        // optional.
        TPA_CHECK(handle.promise().value.has_value(),
                  "task completed without a value");
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }
  Handle handle() const { return handle_; }

  /// Starts a top-level task (runs until its first suspension point).
  void start() {
    TPA_CHECK(valid(), "start() on an invalid (moved-from or empty) task");
    TPA_CHECK(!handle_.done(), "start() on an already-finished task");
    handle_.resume();
  }

  /// Rethrows an exception captured inside the coroutine, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> caller) noexcept {
        handle.promise().continuation = caller;
        return handle;
      }
      void await_resume() {
        if (handle.promise().exception)
          std::rethrow_exception(handle.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace tpa::tso
