#include "tso/sim.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "tso/observers.h"
#include "util/check.h"

namespace tpa::tso {

const char* to_string(Status s) {
  switch (s) {
    case Status::kNcs: return "ncs";
    case Status::kEntry: return "entry";
    case Status::kExit: return "exit";
  }
  return "?";
}

const char* to_string(Mode m) {
  return m == Mode::kRead ? "read" : "write";
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kFence: return "fence";
    case OpKind::kCas: return "cas";
    case OpKind::kEnter: return "enter";
    case OpKind::kCs: return "cs";
    case OpKind::kExit: return "exit";
  }
  return "?";
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kRead: return "Read";
    case EventKind::kWriteIssue: return "WriteIssue";
    case EventKind::kWriteCommit: return "WriteCommit";
    case EventKind::kBeginFence: return "BeginFence";
    case EventKind::kEndFence: return "EndFence";
    case EventKind::kCas: return "Cas";
    case EventKind::kEnter: return "Enter";
    case EventKind::kCs: return "CS";
    case EventKind::kExit: return "Exit";
    case EventKind::kCrash: return "Crash";
    case EventKind::kRecover: return "Recover";
  }
  return "?";
}

EventKind event_kind_from_string(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(EventKind::kRecover); ++i) {
    const auto k = static_cast<EventKind>(i);
    if (name == to_string(k)) return k;
  }
  TPA_FAIL("unknown EventKind name '" << name << "'");
}

bool is_transition(EventKind k) {
  return k == EventKind::kEnter || k == EventKind::kCs || k == EventKind::kExit;
}

bool is_fence_event(EventKind k) {
  return k == EventKind::kBeginFence || k == EventKind::kEndFence;
}

const char* to_string(CrashModel m) {
  return m == CrashModel::kBufferLost ? "lost" : "flushed";
}

CrashModel crash_model_from_string(const std::string& name) {
  if (name == "lost") return CrashModel::kBufferLost;
  if (name == "flushed") return CrashModel::kBufferFlushed;
  TPA_FAIL("unknown CrashModel name '" << name << "'");
}

const char* to_string(FingerprintMode m) {
  return m == FingerprintMode::kIncremental ? "incremental" : "audit";
}

FingerprintMode fingerprint_mode_from_string(const std::string& name) {
  if (name == "incremental") return FingerprintMode::kIncremental;
  if (name == "audit") return FingerprintMode::kAudit;
  TPA_FAIL("unknown FingerprintMode name '" << name << "'");
}

std::string Event::to_string() const {
  std::ostringstream os;
  os << "#" << seq << " p" << proc << " " << tso::to_string(kind);
  if (kind == EventKind::kCrash && value > 0)
    os << " [lost " << value << " buffered]";
  if (var != kNoVar) os << " v" << var << "=" << value;
  if (kind == EventKind::kCas)
    os << (cas_success ? " [cas-ok old=" : " [cas-fail old=") << value2 << "]";
  if (implied_by_cas) os << " [implied]";
  if (from_buffer) os << " [buf]";
  if (critical) os << " [crit]";
  return os.str();
}

const char* to_string(PendingClass c) {
  switch (c) {
    case PendingClass::kNone: return "none";
    case PendingClass::kWriteIssue: return "write-issue";
    case PendingClass::kLocalRead: return "local-read";
    case PendingClass::kNonCriticalRead: return "noncrit-read";
    case PendingClass::kCriticalRead: return "crit-read";
    case PendingClass::kBeginFence: return "begin-fence";
    case PendingClass::kCas: return "cas";
    case PendingClass::kCommitNonCritical: return "commit";
    case PendingClass::kCommitCritical: return "crit-commit";
    case PendingClass::kEndFence: return "end-fence";
    case PendingClass::kEnter: return "enter";
    case PendingClass::kCs: return "cs";
    case PendingClass::kExit: return "exit";
  }
  return "?";
}

PendingClass pending_class_from_string(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(PendingClass::kExit); ++i) {
    const auto c = static_cast<PendingClass>(i);
    if (name == to_string(c)) return c;
  }
  TPA_FAIL("unknown PendingClass name '" << name << "'");
}

bool is_special(PendingClass c) {
  switch (c) {
    case PendingClass::kCriticalRead:
    case PendingClass::kBeginFence:
    case PendingClass::kCas:
    case PendingClass::kCommitCritical:
    case PendingClass::kEndFence:
    case PendingClass::kEnter:
    case PendingClass::kCs:
    case PendingClass::kExit:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Proc
// ---------------------------------------------------------------------------

Proc::Proc(Simulator* sim, ProcId id, std::size_t n_procs)
    : sim_(sim), id_(id), met_(n_procs) {}

void Proc::OpAwaiter::await_suspend(std::coroutine_handle<> h) {
  TPA_CHECK(!proc.has_pending_,
            "process p" << proc.id_ << " already has a pending op");
  proc.pending_ = op;
  proc.has_pending_ = true;
  proc.resume_point_ = h;
}

bool Proc::buffered_value(VarId v, Value* out) const {
  // TSO: at most one buffered write per variable (newer issues replace the
  // older entry in place), so the first match is the only match.
  for (const auto& entry : buffer_) {
    if (entry.var == v) {
      if (out) *out = entry.value;
      return true;
    }
  }
  return false;
}

const DynBitset& Proc::awareness() const { return sim_->awareness_of(id_); }

bool Proc::remotely_read(VarId v) const {
  return sim_->remotely_read(id_, v);
}

// ---------------------------------------------------------------------------
// Simulator: construction and accessors
// ---------------------------------------------------------------------------

Simulator::Simulator(std::size_t n_procs, SimConfig config)
    : config_(config),
      programs_(n_procs),
      recovery_(n_procs),
      touched_(n_procs) {
  procs_.reserve(n_procs);
  for (std::size_t i = 0; i < n_procs; ++i)
    procs_.push_back(
        std::make_unique<Proc>(this, static_cast<ProcId>(i), n_procs));
  // The standard instrumentation, in a fixed order: cost flags must be on
  // the event before the trace recorder copies it.
  if (config_.track_costs) add_observer(std::make_unique<CostObserver>());
  if (config_.track_awareness)
    add_observer(std::make_unique<AwarenessObserver>());
  if (config_.check_exclusion)
    add_observer(std::make_unique<ExclusionChecker>());
  if (config_.record_trace) add_observer(std::make_unique<TraceRecorder>());
  fp_rebuild();
}

void Simulator::add_observer(std::unique_ptr<SimObserver> observer) {
  TPA_CHECK(observer != nullptr, "null observer");
  TPA_CHECK(seq_ == 0,
            "observer '" << observer->name()
                         << "' must attach before the execution starts");
  observer->on_attach(*this);
  if (auto* c = dynamic_cast<CostObserver*>(observer.get())) cost_ = c;
  if (auto* a = dynamic_cast<AwarenessObserver*>(observer.get()))
    awareness_ = a;
  if (auto* t = dynamic_cast<TraceRecorder*>(observer.get())) recorder_ = t;
  observers_.push_back(std::move(observer));
}

VarId Simulator::alloc_var(Value init, ProcId owner) {
  TPA_CHECK(owner == kNoProc ||
                (owner >= 0 && owner < static_cast<ProcId>(num_procs())),
            "invalid owner " << owner);
  Variable v;
  v.value = init;
  v.initial = init;
  v.owner = owner;
  vars_.push_back(v);
  fp_grow_var();
  return static_cast<VarId>(vars_.size() - 1);
}

void Simulator::poke(VarId v, Value value) {
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "invalid var id " << v);
  TPA_CHECK(seq_ == 0, "poke(v" << v << ") after the execution started");
  vars_[static_cast<std::size_t>(v)].value = value;
  vars_[static_cast<std::size_t>(v)].initial = value;
  fp_dirty_var(v);
}

void Simulator::spawn(ProcId p, Task<> program) {
  Proc& proc = this->proc(p);
  fp_dirty_proc(p);
  TPA_CHECK(!programs_[static_cast<std::size_t>(p)].valid(),
            "process p" << p << " already has a program");
  programs_[static_cast<std::size_t>(p)] = std::move(program);
  programs_[static_cast<std::size_t>(p)].start();
  if (!proc.has_pending_) {
    proc.done_ = true;
    programs_[static_cast<std::size_t>(p)].rethrow_if_failed();
  } else {
    note_new_pending(proc);
  }
}

void Simulator::set_recovery(ProcId p, RecoveryFactory factory) {
  proc(p);  // validate the id
  TPA_CHECK(factory != nullptr, "null recovery factory for p" << p);
  recovery_[static_cast<std::size_t>(p)] = std::move(factory);
  fp_dirty_proc(p);
}

bool Simulator::has_recovery(ProcId p) const {
  proc(p);  // validate the id
  return recovery_[static_cast<std::size_t>(p)] != nullptr;
}

bool Simulator::can_crash(ProcId pid) const {
  const Proc& p = proc(pid);
  if (p.crashed_) return false;
  // Never spawned: there is nothing to crash.
  if (!programs_[static_cast<std::size_t>(pid)].valid()) return false;
  // A finished program with a drained buffer has no state left to lose.
  return !p.done_ || !p.buffer_.empty();
}

bool Simulator::crash(ProcId pid) {
  if (!can_crash(pid)) return false;
  Proc& p = proc(pid);
  fp_dirty_proc(pid);
  notify_directive({ActionKind::kCrash, pid});

  if (config_.crash_model == CrashModel::kBufferFlushed) {
    // The buffer drains to shared memory at the crash: each entry commits
    // in order as an ordinary WriteCommit, so observers (awareness
    // snapshots, cost directories, the trace) stay consistent.
    while (!p.buffer_.empty()) do_commit(p);
  }

  Event e;
  e.kind = EventKind::kCrash;
  e.proc = pid;
  e.passage = p.cur_.index;
  // Buffer-lost: the uncommitted writes vanish; record how many.
  e.value = static_cast<Value>(p.buffer_.size());
  p.buffer_.clear();

  // All volatile state dies with the process: the coroutine frame (which
  // recursively destroys nested task frames), the pending op, and the
  // in-flight passage (aborted, not recorded in finished_passages).
  programs_[static_cast<std::size_t>(pid)] = Task<>();
  p.pending_ = SimOp{OpKind::kRead};
  p.has_pending_ = false;
  p.resume_point_ = {};
  p.op_results_.clear();
  p.op_hash_ = Proc::kOpHashBasis;
  p.status_ = Status::kNcs;
  p.mode_ = Mode::kRead;
  p.cur_ = PassageStats{};
  p.cur_.index = p.passages_done_;
  p.met_.reset();
  p.crashed_ = true;
  // Without a recovery section the crash is fail-stop: the process counts
  // as done so schedules can still complete.
  p.done_ = !has_recovery(pid);
  dispatch(p, e, {});
  return true;
}

bool Simulator::recover(ProcId pid) {
  Proc& p = proc(pid);
  if (!p.crashed_ || recovery_[static_cast<std::size_t>(pid)] == nullptr)
    return false;
  fp_dirty_proc(pid);
  notify_directive({ActionKind::kRecover, pid});

  Event e;
  e.kind = EventKind::kRecover;
  e.proc = pid;
  e.passage = p.cur_.index;
  p.crashed_ = false;
  p.done_ = false;
  p.incarnations_++;
  dispatch(p, e, {});

  // Spawn a fresh incarnation of the recovery section; like spawn(), it
  // runs to its first suspension point.
  auto& program = programs_[static_cast<std::size_t>(pid)];
  program = recovery_[static_cast<std::size_t>(pid)](p);
  program.start();
  if (!p.has_pending_) {
    p.done_ = true;
    program.rethrow_if_failed();
  } else {
    note_new_pending(p);
  }
  return true;
}

Proc& Simulator::proc(ProcId p) {
  TPA_CHECK(p >= 0 && p < static_cast<ProcId>(procs_.size()),
            "invalid proc id " << p);
  return *procs_[static_cast<std::size_t>(p)];
}

const Proc& Simulator::proc(ProcId p) const {
  TPA_CHECK(p >= 0 && p < static_cast<ProcId>(procs_.size()),
            "invalid proc id " << p);
  return *procs_[static_cast<std::size_t>(p)];
}

const Variable& Simulator::variable(VarId v) const {
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "invalid var id " << v);
  return vars_[static_cast<std::size_t>(v)];
}

Value Simulator::value(VarId v) const { return variable(v).value; }
ProcId Simulator::var_owner(VarId v) const { return variable(v).owner; }
ProcId Simulator::last_writer(VarId v) const { return variable(v).last_writer; }

std::vector<ProcId> Simulator::active() const {
  std::vector<ProcId> out;
  for (const auto& p : procs_)
    if (p->status() != Status::kNcs) out.push_back(p->id());
  return out;
}

std::vector<ProcId> Simulator::finished() const {
  std::vector<ProcId> out;
  for (const auto& p : procs_)
    if (p->passages_done() > 0) out.push_back(p->id());
  return out;
}

std::vector<ProcId> Simulator::var_owners() const {
  std::vector<ProcId> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) out.push_back(v.owner);
  return out;
}

std::size_t Simulator::total_contention() const { return touched_.count(); }

const Execution& Simulator::execution() const {
  static const Execution kEmpty;
  return recorder_ != nullptr ? recorder_->execution() : kEmpty;
}

std::uint64_t Simulator::num_events() const {
  return recorder_ != nullptr ? recorder_->execution().events.size() : 0;
}

const DynBitset& Simulator::awareness_of(ProcId p) const {
  proc(p);  // validate the id
  static const DynBitset kEmpty;
  return awareness_ != nullptr ? awareness_->awareness(p) : kEmpty;
}

bool Simulator::remotely_read(ProcId p, VarId v) const {
  return cost_ != nullptr && cost_->remotely_read(p, v);
}

// ---------------------------------------------------------------------------
// Simulator: stepping
// ---------------------------------------------------------------------------

void Simulator::dispatch(Proc& p, Event& e, const StepContext& ctx) {
  e.seq = seq_++;
  work_events_++;
  if (events_sink_ != nullptr) ++*events_sink_;
  touched_.set(static_cast<std::size_t>(p.id()));
  for (auto& o : observers_) o->on_event(*this, p, e, ctx);
}

void Simulator::notify_directive(const Directive& d) {
  for (auto& o : observers_) o->on_directive(*this, d);
}

namespace {

/// One FNV-1a step over an op result, shared by the incremental op_hash_
/// maintenance and its from-scratch recomputation in restore().
std::uint64_t fold_op_result(std::uint64_t h, Value r) {
  h ^= static_cast<std::uint64_t>(r);
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

void Simulator::resume(Proc& p) {
  fp_dirty_proc(p.id());
  if (!restoring_) {
    p.op_results_.push_back(p.pending_.result);
    p.op_hash_ = fold_op_result(p.op_hash_, p.pending_.result);
  }
  p.has_pending_ = false;
  auto h = p.resume_point_;
  p.resume_point_ = {};
  h.resume();
  if (!p.has_pending_) {
    p.done_ = true;
    programs_[static_cast<std::size_t>(p.id())].rethrow_if_failed();
  } else {
    note_new_pending(p);
  }
}

void Simulator::note_new_pending(Proc& p) {
  if (restoring_) return;
  for (auto& o : observers_) o->on_pending(*this, p);
}

bool Simulator::deliver(ProcId pid) {
  Proc& p = proc(pid);
  if (p.done_ || !p.has_pending_) return false;
  // Every deliver path below mutates p's blob (mode, buffer, pending op,
  // status, or the op history via resume()).
  fp_dirty_proc(pid);
  notify_directive({ActionKind::kDeliver, pid});

  if (p.mode_ == Mode::kWrite) {
    // Mid-fence: the only permitted steps are committing the next buffered
    // write, or EndFence once the buffer is empty.
    if (!p.buffer_.empty()) {
      do_commit(p);
      return true;
    }
    Event end;
    end.kind = EventKind::kEndFence;
    end.proc = pid;
    end.passage = p.cur_.index;
    end.implied_by_cas = p.pending_.kind == OpKind::kCas;
    p.cur_.events++;
    p.mode_ = Mode::kRead;
    if (p.pending_.kind == OpKind::kFence) {
      p.fences_total_++;
      p.cur_.fences++;
      dispatch(p, end, {});
      resume(p);
    } else {
      TPA_CHECK(p.pending_.kind == OpKind::kCas,
                "write mode with pending " << to_string(p.pending_.kind));
      dispatch(p, end, {});
      perform_cas(p);
    }
    return true;
  }

  switch (p.pending_.kind) {
    case OpKind::kRead:
      perform_read(p);
      return true;
    case OpKind::kWrite:
      perform_write_issue(p);
      return true;
    case OpKind::kFence: {
      Event begin;
      begin.kind = EventKind::kBeginFence;
      begin.proc = pid;
      begin.passage = p.cur_.index;
      p.cur_.events++;
      p.mode_ = Mode::kWrite;
      dispatch(p, begin, {});
      return true;
    }
    case OpKind::kCas:
      if (p.buffer_.empty()) {
        perform_cas(p);
      } else {
        // CAS drains the buffer first; model the drain as an implied fence.
        Event begin;
        begin.kind = EventKind::kBeginFence;
        begin.proc = pid;
        begin.passage = p.cur_.index;
        begin.implied_by_cas = true;
        p.cur_.events++;
        p.mode_ = Mode::kWrite;
        dispatch(p, begin, {});
      }
      return true;
    case OpKind::kEnter:
    case OpKind::kCs:
    case OpKind::kExit:
      perform_transition(p);
      return true;
  }
  TPA_FAIL("unreachable op kind");
}

bool Simulator::commit(ProcId pid, VarId v) {
  Proc& p = proc(pid);
  if (p.buffer_.empty()) return false;
  std::size_t index = 0;
  if (v != kNoVar) {
    bool found = false;
    for (std::size_t i = 0; i < p.buffer_.size(); ++i) {
      if (p.buffer_[i].var == v) {
        index = i;
        found = true;
        break;
      }
    }
    if (!found) return false;
    TPA_CHECK(config_.pso || index == 0,
              "TSO: only the buffer head may commit (v" << v << " is at "
                  << index << " in p" << pid << "'s buffer)");
  }
  notify_directive({ActionKind::kCommit, pid, v});
  do_commit(p, index);
  return true;
}

void Simulator::do_commit(Proc& p, std::size_t index) {
  TPA_CHECK(index < p.buffer_.size(),
            "commit index out of range for p" << p.id());
  const BufferedWrite entry = p.buffer_[index];
  p.buffer_.erase(p.buffer_.begin() + static_cast<std::ptrdiff_t>(index));
  fp_dirty_proc(p.id());
  fp_dirty_var(entry.var);

  Variable& var = vars_[static_cast<std::size_t>(entry.var)];
  Event e;
  e.kind = EventKind::kWriteCommit;
  e.proc = p.id();
  e.var = entry.var;
  e.value = entry.value;
  e.passage = p.cur_.index;
  e.accesses_var = true;
  e.remote = var.owner != p.id();

  StepContext ctx;
  ctx.prev_writer = var.last_writer;
  var.value = entry.value;
  var.last_writer = p.id();
  dispatch(p, e, ctx);
}

void Simulator::perform_read(Proc& p) {
  const VarId v = p.pending_.var;
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "read of invalid var " << v);
  Event e;
  e.kind = EventKind::kRead;
  e.proc = p.id();
  e.var = v;
  e.passage = p.cur_.index;
  StepContext ctx;

  Value buffered;
  if (p.buffered_value(v, &buffered)) {
    // Reads from the own write buffer are not variable accesses.
    e.value = buffered;
    e.from_buffer = true;
    p.pending_.result = buffered;
  } else {
    const Variable& var = vars_[static_cast<std::size_t>(v)];
    e.value = var.value;
    e.accesses_var = true;
    e.remote = var.owner != p.id();
    ctx.prev_writer = var.last_writer;
    p.pending_.result = var.value;
  }
  p.cur_.events++;
  dispatch(p, e, ctx);
  resume(p);
}

void Simulator::perform_write_issue(Proc& p) {
  const VarId v = p.pending_.var;
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "write of invalid var " << v);
  Event e;
  e.kind = EventKind::kWriteIssue;
  e.proc = p.id();
  e.var = v;
  e.value = p.pending_.value;
  e.passage = p.cur_.index;
  // TSO: at most one buffered write per variable — an older buffered write
  // to the same variable is replaced in place (Section 2, item 2).
  bool replaced = false;
  for (auto& entry : p.buffer_) {
    if (entry.var == v) {
      entry.value = p.pending_.value;
      replaced = true;
      break;
    }
  }
  if (!replaced) p.buffer_.push_back({v, p.pending_.value});
  p.cur_.events++;
  dispatch(p, e, {});
  resume(p);
}

void Simulator::perform_cas(Proc& p) {
  TPA_CHECK(p.buffer_.empty(), "CAS with non-empty buffer for p" << p.id());
  const VarId v = p.pending_.var;
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "cas of invalid var " << v);
  Variable& var = vars_[static_cast<std::size_t>(v)];

  Event e;
  e.kind = EventKind::kCas;
  e.proc = p.id();
  e.var = v;
  e.passage = p.cur_.index;
  e.accesses_var = true;
  e.remote = var.owner != p.id();
  e.value2 = var.value;
  e.cas_success = var.value == p.pending_.expected;
  e.value = e.cas_success ? p.pending_.value : var.value;

  StepContext ctx;
  ctx.prev_writer = var.last_writer;
  if (e.cas_success) {
    var.value = p.pending_.value;
    var.last_writer = p.id();
    fp_dirty_var(v);
  }

  p.cur_.cas_ops++;
  p.cur_.events++;
  p.pending_.result = e.value2;
  dispatch(p, e, ctx);
  resume(p);
}

void Simulator::perform_transition(Proc& p) {
  Event e;
  e.proc = p.id();
  switch (p.pending_.kind) {
    case OpKind::kEnter: {
      TPA_CHECK(p.status_ == Status::kNcs,
                "Enter while p" << p.id() << " is " << to_string(p.status_));
      p.status_ = Status::kEntry;
      p.cur_ = PassageStats{};
      p.cur_.index = p.passages_done_;
      // Contention bookkeeping (Section 1): everyone active right now is
      // part of this passage's interval; this passage raises the point
      // contention of every passage in flight (including its own).
      p.met_.reset();
      p.met_.set(static_cast<std::size_t>(p.id()));
      std::uint32_t active_now = 1;  // p itself
      for (const auto& other : procs_) {
        if (other->id() == p.id()) continue;
        if (other->status() == Status::kNcs) continue;
        ++active_now;
        p.met_.set(static_cast<std::size_t>(other->id()));
        other->met_.set(static_cast<std::size_t>(p.id()));
      }
      for (const auto& other : procs_) {
        if (other->status() == Status::kNcs) continue;  // p itself is kEntry
        other->cur_.point_contention =
            std::max(other->cur_.point_contention, active_now);
      }
      e.kind = EventKind::kEnter;
      break;
    }
    case OpKind::kCs:
      TPA_CHECK(p.status_ == Status::kEntry,
                "CS while p" << p.id() << " is " << to_string(p.status_));
      p.status_ = Status::kExit;
      e.kind = EventKind::kCs;
      break;
    case OpKind::kExit:
      TPA_CHECK(p.status_ == Status::kExit,
                "Exit while p" << p.id() << " is " << to_string(p.status_));
      p.status_ = Status::kNcs;
      e.kind = EventKind::kExit;
      break;
    default:
      TPA_FAIL("not a transition: " << to_string(p.pending_.kind));
  }
  e.passage = p.cur_.index;
  p.cur_.events++;
  if (p.pending_.kind == OpKind::kExit) {
    p.cur_.interval_contention =
        static_cast<std::uint32_t>(p.met_.count());
    p.finished_.push_back(p.cur_);
    p.passages_done_++;
  }
  dispatch(p, e, {});
  resume(p);
}

// ---------------------------------------------------------------------------
// Pending classification
// ---------------------------------------------------------------------------

PendingClass Simulator::classify_pending(ProcId pid) const {
  const Proc& p = proc(pid);
  if (p.done_ || !p.has_pending_) return PendingClass::kNone;

  if (p.mode_ == Mode::kWrite) {
    if (p.buffer_.empty()) return PendingClass::kEndFence;
    const BufferedWrite& head = p.buffer_.front();
    const Variable& var = vars_[static_cast<std::size_t>(head.var)];
    const bool remote = var.owner != pid;
    const bool critical = remote && var.last_writer != pid;
    return critical ? PendingClass::kCommitCritical
                    : PendingClass::kCommitNonCritical;
  }

  switch (p.pending_.kind) {
    case OpKind::kWrite:
      return PendingClass::kWriteIssue;
    case OpKind::kRead: {
      const VarId v = p.pending_.var;
      if (p.buffered_value(v, nullptr)) return PendingClass::kLocalRead;
      const Variable& var = vars_[static_cast<std::size_t>(v)];
      if (var.owner == pid) return PendingClass::kLocalRead;
      // Without the CostObserver there is no remote-read history; every
      // remote read conservatively classifies as critical.
      return remotely_read(pid, v) ? PendingClass::kNonCriticalRead
                                   : PendingClass::kCriticalRead;
    }
    case OpKind::kFence:
      return PendingClass::kBeginFence;
    case OpKind::kCas:
      return PendingClass::kCas;
    case OpKind::kEnter:
      return PendingClass::kEnter;
    case OpKind::kCs:
      return PendingClass::kCs;
    case OpKind::kExit:
      return PendingClass::kExit;
  }
  TPA_FAIL("unreachable op kind");
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

namespace {

/// Two independently seeded 64-bit accumulators, each word pushed through a
/// splitmix64-style finalizer. 128 bits keep the pairwise collision odds
/// negligible across any realistic visited-set size (docs/EXPLORER.md).
struct FpMix {
  std::uint64_t lo = 0x9e3779b97f4a7c15ULL;
  std::uint64_t hi = 0xc2b2ae3d27d4eb4fULL;

  static std::uint64_t scramble(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void mix(std::uint64_t x) {
    lo = scramble(lo ^ x);
    hi = scramble(hi + x + 0x9e3779b97f4a7c15ULL);
  }
};

// The incremental fingerprint is a commutative combination of per-component
// hashes: component c with hash h contributes fp_tag_x(tag(c), h) to an XOR
// accumulator and fp_tag_s(tag(c), h) to a SUM accumulator. XOR and
// addition are invertible, so when an event changes a component, the old
// contribution folds out and the new one folds in — O(1) per event, no walk
// over the machine state. Each component hash is itself a sequential FNV-1a
// chain (order-sensitive inside the component, e.g. across buffer entries),
// and the two tagged scrambles are independent, so the pair (x, s) loses
// none of the old sequential walk's discriminating power in practice.

constexpr std::uint64_t kFpBasis = 0xcbf29ce484222325ULL;  // FNV-1a offset

inline std::uint64_t fp_fold(std::uint64_t h, std::uint64_t w) {
  h ^= w;
  h *= 0x100000001b3ULL;
  return h;
}

/// Tag namespaces keep a variable component and a process-position
/// component with the same index from ever colliding.
inline std::uint64_t fp_var_tag(std::size_t v) { return (1ULL << 32) + v; }
inline std::uint64_t fp_proc_tag(std::size_t pos) {
  return (2ULL << 32) + pos;
}

inline std::uint64_t fp_tag_x(std::uint64_t tag, std::uint64_t h) {
  return FpMix::scramble(h + tag * 0x9e3779b97f4a7c15ULL +
                         0x6a09e667f3bcc909ULL);
}
inline std::uint64_t fp_tag_s(std::uint64_t tag, std::uint64_t h) {
  return FpMix::scramble(h ^ (tag * 0xc2b2ae3d27d4eb4fULL +
                              0xbb67ae8584caa73bULL));
}

inline std::uint64_t fp_pid(ProcId p, const ProcId* rename) {
  if (p == kNoProc) return ~0ULL;
  return static_cast<std::uint64_t>(
      rename != nullptr ? rename[static_cast<std::size_t>(p)] : p);
}

/// The committed-memory component of one variable. Variable ids are
/// structural (builders allocate them in a fixed order) and are not
/// renamed; the process-id fields are.
std::uint64_t fp_var_component(const Variable& v, const ProcId* rename) {
  std::uint64_t h = kFpBasis;
  h = fp_fold(h, static_cast<std::uint64_t>(v.value));
  h = fp_fold(h, fp_pid(v.owner, rename));
  h = fp_fold(h, fp_pid(v.last_writer, rename));
  return h;
}

/// One process' *live* blob: control flags, incarnation count, write buffer
/// in FIFO order, and the parked pending op — everything of the full blob
/// except the op-result history hash. Deliberately free of process ids, so
/// a renaming permutes blob *positions*, never contents. This is the
/// progress-fingerprint component: the history hash grows monotonically, so
/// leaving it out is exactly what lets abstract states repeat along a run.
std::uint64_t fp_proc_blob_live(const Proc& p, bool program_valid,
                                bool has_recovery) {
  std::uint64_t h = kFpBasis;
  h = fp_fold(h, (static_cast<std::uint64_t>(p.status()) << 8) |
                     (static_cast<std::uint64_t>(p.mode()) << 6) |
                     (static_cast<std::uint64_t>(p.done()) << 5) |
                     (static_cast<std::uint64_t>(p.crashed()) << 4) |
                     (static_cast<std::uint64_t>(p.has_pending()) << 3) |
                     (static_cast<std::uint64_t>(program_valid) << 2) |
                     (static_cast<std::uint64_t>(has_recovery) << 1));
  h = fp_fold(h, p.incarnations());
  h = fp_fold(h, p.buffer().size());
  for (const BufferedWrite& w : p.buffer()) {
    h = fp_fold(h, static_cast<std::uint64_t>(w.var));
    h = fp_fold(h, static_cast<std::uint64_t>(w.value));
  }
  if (p.has_pending()) {
    h = fp_fold(h, (static_cast<std::uint64_t>(p.pending().kind) << 32) |
                       static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(p.pending().var)));
    h = fp_fold(h, static_cast<std::uint64_t>(p.pending().value));
    h = fp_fold(h, static_cast<std::uint64_t>(p.pending().expected));
  }
  return h;
}

/// The full blob: live blob plus the op-result history hash (the
/// coroutine-frame surrogate — the control location and every local are a
/// deterministic function of the op-result stream) folded last, so both
/// hashes come out of one pass over the process.
inline std::uint64_t fp_proc_blob_full(std::uint64_t live, const Proc& p) {
  return fp_fold(live, p.op_history_hash());
}

std::uint64_t fp_proc_blob(const Proc& p, bool program_valid,
                           bool has_recovery) {
  return fp_proc_blob_full(fp_proc_blob_live(p, program_valid, has_recovery),
                           p);
}

/// Domain tag mixed into progress fingerprints, so a progress key can never
/// collide with a full-state key even for states with empty histories.
constexpr std::uint64_t kFpProgressDomain = 0x70726f6772657373ULL;  // ascii

/// The shared finalizer: accumulators plus everything that is global to the
/// state — config bits the transition relation consults, the component
/// counts, and the scheduler's current process. `domain` separates the
/// progress key space (0 = full-state fingerprints, byte-identical to the
/// pre-liveness scheme).
Fingerprint fp_finalize(const SimConfig& cfg, std::size_t n_vars,
                        std::size_t n_procs, std::uint64_t x, std::uint64_t s,
                        std::uint64_t current_code,
                        std::uint64_t domain = 0) {
  FpMix m;
  m.mix((static_cast<std::uint64_t>(cfg.pso) << 1) |
        static_cast<std::uint64_t>(cfg.crash_model ==
                                   CrashModel::kBufferFlushed));
  m.mix(n_vars);
  m.mix(n_procs);
  m.mix(x);
  m.mix(s);
  m.mix(current_code);
  if (domain != 0) m.mix(domain);
  return {m.lo, m.hi};
}

}  // namespace

void Simulator::fp_dirty_proc(ProcId p) const {
  if (restoring_) return;  // restore() ends with a full fp_rebuild()
  const auto i = static_cast<std::size_t>(p);
  if (!fp_proc_stale_[i]) {
    fp_proc_stale_[i] = 1;
    fp_dirty_procs_.push_back(p);
  }
}

void Simulator::fp_dirty_var(VarId v) const {
  if (restoring_) return;
  const auto i = static_cast<std::size_t>(v);
  if (!fp_var_stale_[i]) {
    fp_var_stale_[i] = 1;
    fp_dirty_vars_.push_back(v);
  }
}

void Simulator::fp_grow_var() {
  if (restoring_) return;
  const std::size_t v = fp_var_.size();
  const std::uint64_t h = fp_var_component(vars_[v], nullptr);
  fp_var_.push_back(h);
  fp_var_stale_.push_back(0);
  fp_x_ ^= fp_tag_x(fp_var_tag(v), h);
  fp_s_ += fp_tag_s(fp_var_tag(v), h);
  // Variables carry no history, so their component is shared verbatim with
  // the progress lanes.
  fp_lx_ ^= fp_tag_x(fp_var_tag(v), h);
  fp_ls_ += fp_tag_s(fp_var_tag(v), h);
}

void Simulator::fp_rebuild() const {
  fp_x_ = 0;
  fp_s_ = 0;
  fp_lx_ = 0;
  fp_ls_ = 0;
  fp_var_.resize(vars_.size());
  fp_var_stale_.assign(vars_.size(), 0);
  fp_dirty_vars_.clear();
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    const std::uint64_t h = fp_var_component(vars_[v], nullptr);
    fp_var_[v] = h;
    fp_x_ ^= fp_tag_x(fp_var_tag(v), h);
    fp_s_ += fp_tag_s(fp_var_tag(v), h);
    fp_lx_ ^= fp_tag_x(fp_var_tag(v), h);
    fp_ls_ += fp_tag_s(fp_var_tag(v), h);
  }
  fp_proc_.resize(procs_.size());
  fp_proc_live_.resize(procs_.size());
  fp_proc_stale_.assign(procs_.size(), 0);
  fp_dirty_procs_.clear();
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const std::uint64_t live = fp_proc_blob_live(
        *procs_[i], programs_[i].valid(), recovery_[i] != nullptr);
    const std::uint64_t h = fp_proc_blob_full(live, *procs_[i]);
    fp_proc_[i] = h;
    fp_proc_live_[i] = live;
    fp_x_ ^= fp_tag_x(fp_proc_tag(i), h);
    fp_s_ += fp_tag_s(fp_proc_tag(i), h);
    fp_lx_ ^= fp_tag_x(fp_proc_tag(i), live);
    fp_ls_ += fp_tag_s(fp_proc_tag(i), live);
  }
}

void Simulator::fp_flush() const {
  for (const VarId v : fp_dirty_vars_) {
    const auto i = static_cast<std::size_t>(v);
    const std::uint64_t tag = fp_var_tag(i);
    fp_x_ ^= fp_tag_x(tag, fp_var_[i]);
    fp_s_ -= fp_tag_s(tag, fp_var_[i]);
    fp_lx_ ^= fp_tag_x(tag, fp_var_[i]);
    fp_ls_ -= fp_tag_s(tag, fp_var_[i]);
    fp_var_[i] = fp_var_component(vars_[i], nullptr);
    fp_x_ ^= fp_tag_x(tag, fp_var_[i]);
    fp_s_ += fp_tag_s(tag, fp_var_[i]);
    fp_lx_ ^= fp_tag_x(tag, fp_var_[i]);
    fp_ls_ += fp_tag_s(tag, fp_var_[i]);
    fp_var_stale_[i] = 0;
  }
  fp_dirty_vars_.clear();
  for (const ProcId p : fp_dirty_procs_) {
    const auto i = static_cast<std::size_t>(p);
    const std::uint64_t tag = fp_proc_tag(i);
    fp_x_ ^= fp_tag_x(tag, fp_proc_[i]);
    fp_s_ -= fp_tag_s(tag, fp_proc_[i]);
    fp_lx_ ^= fp_tag_x(tag, fp_proc_live_[i]);
    fp_ls_ -= fp_tag_s(tag, fp_proc_live_[i]);
    const std::uint64_t live = fp_proc_blob_live(
        *procs_[i], programs_[i].valid(), recovery_[i] != nullptr);
    fp_proc_live_[i] = live;
    fp_proc_[i] = fp_proc_blob_full(live, *procs_[i]);
    fp_x_ ^= fp_tag_x(tag, fp_proc_[i]);
    fp_s_ += fp_tag_s(tag, fp_proc_[i]);
    fp_lx_ ^= fp_tag_x(tag, live);
    fp_ls_ += fp_tag_s(tag, live);
    fp_proc_stale_[i] = 0;
  }
  fp_dirty_procs_.clear();
}

Fingerprint Simulator::fingerprint(ProcId current) const {
  fp_flush();
  const Fingerprint out = fp_finalize(config_, vars_.size(), procs_.size(),
                                      fp_x_, fp_s_, fp_pid(current, nullptr));
  if (config_.fingerprint == FingerprintMode::kAudit) {
    const Fingerprint oracle = fingerprint_oracle(current);
    TPA_CHECK(out == oracle,
              "incremental fingerprint diverged from the full re-walk "
              "oracle (seq=" << seq_ << ", current=p" << current << ")");
  }
  return out;
}

Fingerprint Simulator::fingerprint_oracle(ProcId current,
                                          const ProcId* rename) const {
  std::uint64_t x = 0, s = 0;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    const std::uint64_t h = fp_var_component(vars_[v], rename);
    x ^= fp_tag_x(fp_var_tag(v), h);
    s += fp_tag_s(fp_var_tag(v), h);
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const std::uint64_t h =
        fp_proc_blob(*procs_[i], programs_[i].valid(), recovery_[i] != nullptr);
    // A renaming permutes blob *positions* (the tag), never blob contents.
    const std::size_t pos =
        rename != nullptr ? static_cast<std::size_t>(rename[i]) : i;
    x ^= fp_tag_x(fp_proc_tag(pos), h);
    s += fp_tag_s(fp_proc_tag(pos), h);
  }
  return fp_finalize(config_, vars_.size(), procs_.size(), x, s,
                     fp_pid(current, rename));
}

Fingerprint Simulator::fingerprint_symmetric(ProcId current) const {
  fp_flush();
  const std::size_t n = procs_.size();
  // Renaming-invariant signature per process: (blob hash, hash of the
  // variables it last wrote, is-current flag). Sorting on it yields a
  // canonical order in O(vars + n log n). Processes that tie on the whole
  // signature are genuinely interchangeable — equal blobs, referenced by no
  // variable (a variable has exactly one last writer, so two processes can
  // only share a writer-reference hash when neither is referenced, modulo
  // hash collision), and not current — so any tie-break yields the same
  // canonical fingerprint.
  fp_wref_.assign(n, kFpBasis);
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    const ProcId w = vars_[v].last_writer;
    if (w != kNoProc)
      fp_wref_[static_cast<std::size_t>(w)] =
          fp_fold(fp_wref_[static_cast<std::size_t>(w)], v);
    // Owners are not folded in: symmetric scenarios may not allocate
    // DSM-owned variables (validated before exploration starts).
  }
  fp_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) fp_order_[i] = static_cast<ProcId>(i);
  std::sort(fp_order_.begin(), fp_order_.end(), [&](ProcId a, ProcId b) {
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (fp_proc_[ia] != fp_proc_[ib]) return fp_proc_[ia] < fp_proc_[ib];
    if (fp_wref_[ia] != fp_wref_[ib]) return fp_wref_[ia] < fp_wref_[ib];
    return (a == current) < (b == current);
  });
  fp_rank_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos)
    fp_rank_[static_cast<std::size_t>(fp_order_[pos])] =
        static_cast<ProcId>(pos);
  return fingerprint_oracle(current, fp_rank_.data());
}

Fingerprint Simulator::fingerprint_progress(ProcId current) const {
  fp_flush();
  const Fingerprint out =
      fp_finalize(config_, vars_.size(), procs_.size(), fp_lx_, fp_ls_,
                  fp_pid(current, nullptr), kFpProgressDomain);
  if (config_.fingerprint == FingerprintMode::kAudit) {
    const Fingerprint oracle = fingerprint_progress_oracle(current);
    TPA_CHECK(out == oracle,
              "incremental progress fingerprint diverged from the full "
              "re-walk oracle (seq=" << seq_ << ", current=p" << current
                                     << ")");
  }
  return out;
}

bool Simulator::progress_unchanged_since_baseline() const {
  if (!fp_dirty_vars_.empty()) return false;
  for (const ProcId p : fp_dirty_procs_) {
    const auto i = static_cast<std::size_t>(p);
    if (fp_proc_blob_live(*procs_[i], programs_[i].valid(),
                          recovery_[i] != nullptr) != fp_proc_live_[i])
      return false;
  }
  return true;
}

Fingerprint Simulator::fingerprint_progress_oracle(ProcId current,
                                                   const ProcId* rename) const {
  std::uint64_t x = 0, s = 0;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    const std::uint64_t h = fp_var_component(vars_[v], rename);
    x ^= fp_tag_x(fp_var_tag(v), h);
    s += fp_tag_s(fp_var_tag(v), h);
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const std::uint64_t h = fp_proc_blob_live(
        *procs_[i], programs_[i].valid(), recovery_[i] != nullptr);
    const std::size_t pos =
        rename != nullptr ? static_cast<std::size_t>(rename[i]) : i;
    x ^= fp_tag_x(fp_proc_tag(pos), h);
    s += fp_tag_s(fp_proc_tag(pos), h);
  }
  return fp_finalize(config_, vars_.size(), procs_.size(), x, s,
                     fp_pid(current, rename), kFpProgressDomain);
}

Fingerprint Simulator::fingerprint_progress_symmetric(ProcId current) const {
  fp_flush();
  const std::size_t n = procs_.size();
  // Same canonicalization as fingerprint_symmetric, but the signature sorts
  // on the *live* blob: two processes with equal abstract state but distinct
  // op histories must land in the same canonical slot, or a renamed revisit
  // of an abstract state would hash differently and cycles through it would
  // be missed.
  fp_wref_.assign(n, kFpBasis);
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    const ProcId w = vars_[v].last_writer;
    if (w != kNoProc)
      fp_wref_[static_cast<std::size_t>(w)] =
          fp_fold(fp_wref_[static_cast<std::size_t>(w)], v);
  }
  fp_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) fp_order_[i] = static_cast<ProcId>(i);
  std::sort(fp_order_.begin(), fp_order_.end(), [&](ProcId a, ProcId b) {
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (fp_proc_live_[ia] != fp_proc_live_[ib])
      return fp_proc_live_[ia] < fp_proc_live_[ib];
    if (fp_wref_[ia] != fp_wref_[ib]) return fp_wref_[ia] < fp_wref_[ib];
    return (a == current) < (b == current);
  });
  fp_rank_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos)
    fp_rank_[static_cast<std::size_t>(fp_order_[pos])] =
        static_cast<ProcId>(pos);
  return fingerprint_progress_oracle(current, fp_rank_.data());
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

SimSnapshot Simulator::snapshot() const {
  SimSnapshot s;
  snapshot_into(s);
  return s;
}

void Simulator::snapshot_into(SimSnapshot& s) const {
  s.seq = seq_;
  s.var_values.clear();
  s.var_writers.clear();
  s.var_values.reserve(vars_.size());
  s.var_writers.reserve(vars_.size());
  for (const Variable& v : vars_) {
    s.var_values.push_back(v.value);
    s.var_writers.push_back(v.last_writer);
  }
  // Resize rather than clear: a recycled snapshot's ProcStates keep their
  // vector capacities (buffer, op_results, ...) across round-trips, which is
  // what makes pooling them in the explorer pay off.
  s.procs.resize(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const Proc& p = *procs_[i];
    SimSnapshot::ProcState& ps = s.procs[i];
    ps.status = p.status_;
    ps.mode = p.mode_;
    ps.buffer = p.buffer_;
    ps.pending = p.pending_;
    ps.has_pending = p.has_pending_;
    ps.done = p.done_;
    ps.crashed = p.crashed_;
    ps.incarnations = p.incarnations_;
    ps.op_results = p.op_results_;
    ps.fences_total = p.fences_total_;
    ps.passages_done = p.passages_done_;
    ps.cur = p.cur_;
    ps.met = p.met_;
    ps.finished = p.finished_;
  }
  s.touched = touched_;
  s.observers.clear();
  s.observers.reserve(observers_.size());
  for (const auto& o : observers_) s.observers.push_back(o->snapshot());
}

void Simulator::restore(const SimSnapshot& snap,
                        const std::function<void(Simulator&)>& build) {
  const std::size_t n = procs_.size();
  TPA_CHECK(snap.procs.size() == n,
            "snapshot has " << snap.procs.size() << " procs, simulator has "
                            << n);
  TPA_CHECK(snap.observers.size() == observers_.size(),
            "snapshot has " << snap.observers.size()
                            << " observer states, simulator has "
                            << observers_.size());
  restoring_ = true;
  // Coroutine frames cannot be copied: destroy any old programs (before the
  // procs they reference), rebuild both, and fast-forward below.
  programs_.clear();
  programs_.resize(n);
  recovery_.assign(n, nullptr);
  procs_.clear();
  for (std::size_t i = 0; i < n; ++i)
    procs_.push_back(std::make_unique<Proc>(this, static_cast<ProcId>(i), n));
  vars_.clear();
  seq_ = 0;
  touched_.reset();
  build(*this);
  TPA_CHECK(vars_.size() == snap.var_values.size(),
            "restore: builder allocated " << vars_.size()
                                          << " vars, snapshot has "
                                          << snap.var_values.size());
  for (std::size_t i = 0; i < n; ++i) {
    Proc& p = *procs_[i];
    const SimSnapshot::ProcState& ps = snap.procs[i];
    if (ps.crashed || ps.incarnations > 0) {
      // The program the builder spawned belongs to a pre-crash incarnation;
      // drop it. A currently-crashed process has no live coroutine at all.
      programs_[i] = Task<>();
      p.pending_ = SimOp{OpKind::kRead};
      p.has_pending_ = false;
      p.resume_point_ = {};
      p.done_ = false;
      if (!ps.crashed) {
        TPA_CHECK(recovery_[i] != nullptr,
                  "restore: snapshot has p" << p.id()
                                            << " recovered, but the builder "
                                               "registered no recovery");
        programs_[i] = recovery_[i](p);
        programs_[i].start();
        if (!p.has_pending_) p.done_ = true;
      }
    }
    if (ps.crashed) {
      TPA_CHECK(ps.op_results.empty(),
                "restore: crashed p" << p.id() << " has recorded op results");
    } else {
      // Replay the recorded op results into the fresh coroutine; programs
      // are deterministic functions of these, so this reproduces the
      // suspension point without touching any machine state.
      for (const Value r : ps.op_results) {
        TPA_CHECK(p.has_pending_,
                  "restore diverged: p" << p.id()
                                        << " ran out of pending ops");
        p.pending_.result = r;
        resume(p);
      }
      TPA_CHECK(p.done_ == ps.done && p.has_pending_ == ps.has_pending,
                "restore diverged for p" << p.id()
                                         << " after replaying op results");
    }
    p.status_ = ps.status;
    p.mode_ = ps.mode;
    p.buffer_ = ps.buffer;
    p.pending_ = ps.pending;
    p.has_pending_ = ps.has_pending;
    p.done_ = ps.done;
    p.crashed_ = ps.crashed;
    p.incarnations_ = ps.incarnations;
    p.op_results_ = ps.op_results;
    p.op_hash_ = Proc::kOpHashBasis;
    for (const Value r : ps.op_results)
      p.op_hash_ = fold_op_result(p.op_hash_, r);
    p.fences_total_ = ps.fences_total;
    p.passages_done_ = ps.passages_done;
    p.cur_ = ps.cur;
    p.met_ = ps.met;
    p.finished_ = ps.finished;
  }
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    vars_[v].value = snap.var_values[v];
    vars_[v].last_writer = snap.var_writers[v];
  }
  seq_ = snap.seq;
  touched_ = snap.touched;
  restoring_ = false;
  // Incremental-fingerprint caches were frozen (fp_dirty_* no-ops) during
  // the rebuild; recompute them from the restored state in one pass.
  fp_rebuild();
  for (std::size_t i = 0; i < observers_.size(); ++i)
    observers_[i]->restore(snap.observers[i].get());
}

}  // namespace tpa::tso
