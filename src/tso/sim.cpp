#include "tso/sim.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace tpa::tso {

const char* to_string(Status s) {
  switch (s) {
    case Status::kNcs: return "ncs";
    case Status::kEntry: return "entry";
    case Status::kExit: return "exit";
  }
  return "?";
}

const char* to_string(Mode m) {
  return m == Mode::kRead ? "read" : "write";
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kFence: return "fence";
    case OpKind::kCas: return "cas";
    case OpKind::kEnter: return "enter";
    case OpKind::kCs: return "cs";
    case OpKind::kExit: return "exit";
  }
  return "?";
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kRead: return "Read";
    case EventKind::kWriteIssue: return "WriteIssue";
    case EventKind::kWriteCommit: return "WriteCommit";
    case EventKind::kBeginFence: return "BeginFence";
    case EventKind::kEndFence: return "EndFence";
    case EventKind::kCas: return "Cas";
    case EventKind::kEnter: return "Enter";
    case EventKind::kCs: return "CS";
    case EventKind::kExit: return "Exit";
  }
  return "?";
}

bool is_transition(EventKind k) {
  return k == EventKind::kEnter || k == EventKind::kCs || k == EventKind::kExit;
}

bool is_fence_event(EventKind k) {
  return k == EventKind::kBeginFence || k == EventKind::kEndFence;
}

std::string Event::to_string() const {
  std::ostringstream os;
  os << "#" << seq << " p" << proc << " " << tso::to_string(kind);
  if (var != kNoVar) os << " v" << var << "=" << value;
  if (from_buffer) os << " [buf]";
  if (critical) os << " [crit]";
  return os.str();
}

const char* to_string(PendingClass c) {
  switch (c) {
    case PendingClass::kNone: return "none";
    case PendingClass::kWriteIssue: return "write-issue";
    case PendingClass::kLocalRead: return "local-read";
    case PendingClass::kNonCriticalRead: return "noncrit-read";
    case PendingClass::kCriticalRead: return "crit-read";
    case PendingClass::kBeginFence: return "begin-fence";
    case PendingClass::kCas: return "cas";
    case PendingClass::kCommitNonCritical: return "commit";
    case PendingClass::kCommitCritical: return "crit-commit";
    case PendingClass::kEndFence: return "end-fence";
    case PendingClass::kEnter: return "enter";
    case PendingClass::kCs: return "cs";
    case PendingClass::kExit: return "exit";
  }
  return "?";
}

bool is_special(PendingClass c) {
  switch (c) {
    case PendingClass::kCriticalRead:
    case PendingClass::kBeginFence:
    case PendingClass::kCas:
    case PendingClass::kCommitCritical:
    case PendingClass::kEndFence:
    case PendingClass::kEnter:
    case PendingClass::kCs:
    case PendingClass::kExit:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Proc
// ---------------------------------------------------------------------------

Proc::Proc(Simulator* sim, ProcId id, std::size_t n_procs, bool track_awareness)
    : sim_(sim),
      id_(id),
      track_awareness_(track_awareness),
      awareness_(track_awareness ? DynBitset(n_procs) : DynBitset()),
      met_(n_procs) {
  if (track_awareness_) awareness_.set(static_cast<std::size_t>(id));
}

void Proc::OpAwaiter::await_suspend(std::coroutine_handle<> h) {
  TPA_CHECK(!proc.has_pending_,
            "process p" << proc.id_ << " already has a pending op");
  proc.pending_ = op;
  proc.has_pending_ = true;
  proc.resume_point_ = h;
}

bool Proc::buffered_value(VarId v, Value* out) const {
  // TSO: at most one buffered write per variable (newer issues replace the
  // older entry in place), so the first match is the only match.
  for (const auto& entry : buffer_) {
    if (entry.var == v) {
      if (out) *out = entry.value;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Simulator: construction and accessors
// ---------------------------------------------------------------------------

Simulator::Simulator(std::size_t n_procs, SimConfig config)
    : config_(config), programs_(n_procs) {
  procs_.reserve(n_procs);
  for (std::size_t i = 0; i < n_procs; ++i)
    procs_.push_back(std::make_unique<Proc>(this, static_cast<ProcId>(i),
                                            n_procs, config_.track_awareness));
}

VarId Simulator::alloc_var(Value init, ProcId owner) {
  TPA_CHECK(owner == kNoProc ||
                (owner >= 0 && owner < static_cast<ProcId>(num_procs())),
            "invalid owner " << owner);
  Variable v;
  v.value = init;
  v.initial = init;
  v.owner = owner;
  if (config_.track_awareness) v.writer_aw = DynBitset(num_procs());
  vars_.push_back(std::move(v));
  return static_cast<VarId>(vars_.size() - 1);
}

void Simulator::poke(VarId v, Value value) {
  TPA_CHECK(seq_ == 0, "poke after the execution started");
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "invalid var id " << v);
  vars_[static_cast<std::size_t>(v)].value = value;
  vars_[static_cast<std::size_t>(v)].initial = value;
}

void Simulator::spawn(ProcId p, Task<> program) {
  Proc& proc = this->proc(p);
  TPA_CHECK(!programs_[static_cast<std::size_t>(p)].valid(),
            "process p" << p << " already has a program");
  programs_[static_cast<std::size_t>(p)] = std::move(program);
  programs_[static_cast<std::size_t>(p)].start();
  if (!proc.has_pending_) {
    proc.done_ = true;
    programs_[static_cast<std::size_t>(p)].rethrow_if_failed();
  } else {
    note_new_pending(proc);
  }
}

Proc& Simulator::proc(ProcId p) {
  TPA_CHECK(p >= 0 && p < static_cast<ProcId>(procs_.size()),
            "invalid proc id " << p);
  return *procs_[static_cast<std::size_t>(p)];
}

const Proc& Simulator::proc(ProcId p) const {
  TPA_CHECK(p >= 0 && p < static_cast<ProcId>(procs_.size()),
            "invalid proc id " << p);
  return *procs_[static_cast<std::size_t>(p)];
}

const Variable& Simulator::variable(VarId v) const {
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "invalid var id " << v);
  return vars_[static_cast<std::size_t>(v)];
}

Value Simulator::value(VarId v) const { return variable(v).value; }
ProcId Simulator::var_owner(VarId v) const { return variable(v).owner; }
ProcId Simulator::last_writer(VarId v) const { return variable(v).last_writer; }

std::vector<ProcId> Simulator::active() const {
  std::vector<ProcId> out;
  for (const auto& p : procs_)
    if (p->status() != Status::kNcs) out.push_back(p->id());
  return out;
}

std::vector<ProcId> Simulator::finished() const {
  std::vector<ProcId> out;
  for (const auto& p : procs_)
    if (p->passages_done() > 0) out.push_back(p->id());
  return out;
}

std::vector<ProcId> Simulator::var_owners() const {
  std::vector<ProcId> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) out.push_back(v.owner);
  return out;
}

std::size_t Simulator::total_contention() const {
  std::vector<bool> seen(num_procs(), false);
  for (const auto& e : trace_.events) seen[static_cast<std::size_t>(e.proc)] = true;
  return static_cast<std::size_t>(std::count(seen.begin(), seen.end(), true));
}

// ---------------------------------------------------------------------------
// Simulator: stepping
// ---------------------------------------------------------------------------

void Simulator::record(Event e) {
  e.seq = seq_++;
  if (config_.record_trace) trace_.events.push_back(std::move(e));
}

void Simulator::resume(Proc& p) {
  p.has_pending_ = false;
  auto h = p.resume_point_;
  p.resume_point_ = {};
  h.resume();
  if (!p.has_pending_) {
    p.done_ = true;
    programs_[static_cast<std::size_t>(p.id())].rethrow_if_failed();
  } else {
    note_new_pending(p);
  }
}

void Simulator::note_new_pending(Proc& p) {
  if (!config_.check_exclusion) return;
  if (p.pending_.kind != OpKind::kCs) return;
  for (const auto& other : procs_) {
    if (other->id() == p.id()) continue;
    if (other->has_pending_ && other->pending_.kind == OpKind::kCs) {
      TPA_FAIL("mutual exclusion violated: CS enabled for both p"
               << p.id() << " and p" << other->id());
    }
  }
}

bool Simulator::deliver(ProcId pid) {
  Proc& p = proc(pid);
  if (p.done_ || !p.has_pending_) return false;
  if (config_.record_trace)
    trace_.directives.push_back({ActionKind::kDeliver, pid});

  if (p.mode_ == Mode::kWrite) {
    // Mid-fence: the only permitted steps are committing the next buffered
    // write, or EndFence once the buffer is empty.
    if (!p.buffer_.empty()) {
      do_commit(p);
      return true;
    }
    Event end;
    end.kind = EventKind::kEndFence;
    end.proc = pid;
    end.passage = p.cur_.index;
    end.implied_by_cas = p.pending_.kind == OpKind::kCas;
    record(end);
    p.cur_.events++;
    p.mode_ = Mode::kRead;
    if (p.pending_.kind == OpKind::kFence) {
      p.fences_total_++;
      p.cur_.fences++;
      resume(p);
    } else {
      TPA_CHECK(p.pending_.kind == OpKind::kCas,
                "write mode with pending " << to_string(p.pending_.kind));
      perform_cas(p);
    }
    return true;
  }

  switch (p.pending_.kind) {
    case OpKind::kRead:
      perform_read(p);
      return true;
    case OpKind::kWrite:
      perform_write_issue(p);
      return true;
    case OpKind::kFence: {
      Event begin;
      begin.kind = EventKind::kBeginFence;
      begin.proc = pid;
      begin.passage = p.cur_.index;
      record(begin);
      p.cur_.events++;
      p.mode_ = Mode::kWrite;
      return true;
    }
    case OpKind::kCas:
      if (p.buffer_.empty()) {
        perform_cas(p);
      } else {
        // CAS drains the buffer first; model the drain as an implied fence.
        Event begin;
        begin.kind = EventKind::kBeginFence;
        begin.proc = pid;
        begin.passage = p.cur_.index;
        begin.implied_by_cas = true;
        record(begin);
        p.cur_.events++;
        p.mode_ = Mode::kWrite;
      }
      return true;
    case OpKind::kEnter:
    case OpKind::kCs:
    case OpKind::kExit:
      perform_transition(p);
      return true;
  }
  TPA_FAIL("unreachable op kind");
}

bool Simulator::commit(ProcId pid, VarId v) {
  Proc& p = proc(pid);
  if (p.buffer_.empty()) return false;
  std::size_t index = 0;
  if (v != kNoVar) {
    bool found = false;
    for (std::size_t i = 0; i < p.buffer_.size(); ++i) {
      if (p.buffer_[i].var == v) {
        index = i;
        found = true;
        break;
      }
    }
    if (!found) return false;
    TPA_CHECK(config_.pso || index == 0,
              "TSO: only the buffer head may commit (v" << v << " is at "
                  << index << " in p" << pid << "'s buffer)");
  }
  if (config_.record_trace)
    trace_.directives.push_back({ActionKind::kCommit, pid, v});
  do_commit(p, index);
  return true;
}

void Simulator::do_commit(Proc& p, std::size_t index) {
  TPA_CHECK(index < p.buffer_.size(),
            "commit index out of range for p" << p.id());
  BufferedWrite entry = std::move(p.buffer_[index]);
  p.buffer_.erase(p.buffer_.begin() + static_cast<std::ptrdiff_t>(index));

  Variable& var = vars_[static_cast<std::size_t>(entry.var)];
  Event e;
  e.kind = EventKind::kWriteCommit;
  e.proc = p.id();
  e.var = entry.var;
  e.value = entry.value;
  e.passage = p.cur_.index;
  e.accesses_var = true;
  e.remote = var.owner != p.id();
  // Definition 2: a commit is critical if it is a remote write and the
  // variable's last committed writer is a different process.
  e.critical = e.remote && var.last_writer != p.id();

  account_write(p, var, e);

  var.value = entry.value;
  var.last_writer = p.id();
  if (config_.track_awareness) var.writer_aw = std::move(entry.aw_at_issue);

  if (e.critical) p.cur_.critical++;
  record(std::move(e));
}

void Simulator::perform_read(Proc& p) {
  const VarId v = p.pending_.var;
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "read of invalid var " << v);
  Event e;
  e.kind = EventKind::kRead;
  e.proc = p.id();
  e.var = v;
  e.passage = p.cur_.index;

  Value buffered;
  if (p.buffered_value(v, &buffered)) {
    // Reads from the own write buffer are not variable accesses.
    e.value = buffered;
    e.from_buffer = true;
    p.pending_.result = buffered;
  } else {
    Variable& var = vars_[static_cast<std::size_t>(v)];
    e.value = var.value;
    e.accesses_var = true;
    e.remote = var.owner != p.id();
    // Definition 2: critical read = first remote read of v by p.
    e.critical = e.remote && !p.remotely_read(v);
    if (e.remote) p.remote_reads_.insert(v);
    account_read(p, var, e);
    absorb_awareness(p, var);
    p.pending_.result = var.value;
    if (e.critical) p.cur_.critical++;
  }
  p.cur_.events++;
  record(std::move(e));
  resume(p);
}

void Simulator::perform_write_issue(Proc& p) {
  const VarId v = p.pending_.var;
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "write of invalid var " << v);
  Event e;
  e.kind = EventKind::kWriteIssue;
  e.proc = p.id();
  e.var = v;
  e.value = p.pending_.value;
  e.passage = p.cur_.index;
  // TSO: at most one buffered write per variable — an older buffered write
  // to the same variable is replaced in place (Section 2, item 2).
  bool replaced = false;
  for (auto& entry : p.buffer_) {
    if (entry.var == v) {
      entry.value = p.pending_.value;
      if (config_.track_awareness) entry.aw_at_issue = p.awareness_;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    BufferedWrite entry;
    entry.var = v;
    entry.value = p.pending_.value;
    if (config_.track_awareness) entry.aw_at_issue = p.awareness_;
    p.buffer_.push_back(std::move(entry));
  }
  p.cur_.events++;
  record(std::move(e));
  resume(p);
}

void Simulator::perform_cas(Proc& p) {
  TPA_CHECK(p.buffer_.empty(), "CAS with non-empty buffer for p" << p.id());
  const VarId v = p.pending_.var;
  TPA_CHECK(v >= 0 && v < static_cast<VarId>(vars_.size()),
            "cas of invalid var " << v);
  Variable& var = vars_[static_cast<std::size_t>(v)];

  Event e;
  e.kind = EventKind::kCas;
  e.proc = p.id();
  e.var = v;
  e.passage = p.cur_.index;
  e.accesses_var = true;
  e.remote = var.owner != p.id();
  e.value2 = var.value;
  e.cas_success = var.value == p.pending_.expected;
  e.value = e.cas_success ? p.pending_.value : var.value;

  // Criticality: the read half is critical if this is p's first remote read
  // of v; the write half (on success) if the last writer differs from p.
  std::uint32_t crit = 0;
  if (e.remote && !p.remotely_read(v)) crit++;
  if (e.remote) p.remote_reads_.insert(v);
  if (e.cas_success && e.remote && var.last_writer != p.id()) crit++;
  e.critical = crit > 0;
  p.cur_.critical += crit;

  absorb_awareness(p, var);
  if (e.cas_success) {
    account_write(p, var, e);
    var.value = p.pending_.value;
    var.last_writer = p.id();
    if (config_.track_awareness) var.writer_aw = p.awareness_;
  } else {
    account_read(p, var, e);
  }

  p.cur_.cas_ops++;
  p.cur_.events++;
  p.pending_.result = e.value2;
  record(std::move(e));
  resume(p);
}

void Simulator::perform_transition(Proc& p) {
  Event e;
  e.proc = p.id();
  switch (p.pending_.kind) {
    case OpKind::kEnter: {
      TPA_CHECK(p.status_ == Status::kNcs,
                "Enter while p" << p.id() << " is " << to_string(p.status_));
      p.status_ = Status::kEntry;
      p.cur_ = PassageStats{};
      p.cur_.index = p.passages_done_;
      // Contention bookkeeping (Section 1): everyone active right now is
      // part of this passage's interval; this passage raises the point
      // contention of every passage in flight (including its own).
      p.met_.reset();
      p.met_.set(static_cast<std::size_t>(p.id()));
      std::uint32_t active_now = 1;  // p itself
      for (const auto& other : procs_) {
        if (other->id() == p.id()) continue;
        if (other->status() == Status::kNcs) continue;
        ++active_now;
        p.met_.set(static_cast<std::size_t>(other->id()));
        other->met_.set(static_cast<std::size_t>(p.id()));
      }
      for (const auto& other : procs_) {
        if (other->status() == Status::kNcs) continue;  // p itself is kEntry
        other->cur_.point_contention =
            std::max(other->cur_.point_contention, active_now);
      }
      e.kind = EventKind::kEnter;
      break;
    }
    case OpKind::kCs:
      TPA_CHECK(p.status_ == Status::kEntry,
                "CS while p" << p.id() << " is " << to_string(p.status_));
      p.status_ = Status::kExit;
      e.kind = EventKind::kCs;
      break;
    case OpKind::kExit:
      TPA_CHECK(p.status_ == Status::kExit,
                "Exit while p" << p.id() << " is " << to_string(p.status_));
      p.status_ = Status::kNcs;
      e.kind = EventKind::kExit;
      break;
    default:
      TPA_FAIL("not a transition: " << to_string(p.pending_.kind));
  }
  e.passage = p.cur_.index;
  p.cur_.events++;
  if (p.pending_.kind == OpKind::kExit) {
    p.cur_.interval_contention =
        static_cast<std::uint32_t>(p.met_.count());
    p.finished_.push_back(p.cur_);
    p.passages_done_++;
  }
  record(std::move(e));
  resume(p);
}

void Simulator::absorb_awareness(Proc& p, const Variable& var) {
  if (!config_.track_awareness) return;
  if (var.last_writer == kNoProc) return;
  // Definition 1: reading v last written by q makes p aware of q and of
  // everything q was aware of when it issued that write.
  p.awareness_ |= var.writer_aw;
  p.awareness_.set(static_cast<std::size_t>(var.last_writer));
}

void Simulator::account_read(Proc& p, Variable& var, Event& e) {
  const ProcId pid = p.id();
  // DSM: every access to a remote variable is an RMR.
  e.rmr_dsm = var.owner != pid;

  // CC write-through: a read without a valid cached copy is an RMR that
  // creates the copy.
  if (var.wt_copies.count(pid) == 0) {
    e.rmr_wt = true;
    var.wt_copies.insert(pid);
  }

  // CC write-back: a read misses unless p holds the line shared or
  // exclusive; a miss downgrades any exclusive holder to shared.
  const bool wb_hit = var.wb_exclusive == pid || var.wb_sharers.count(pid) != 0;
  if (!wb_hit) {
    e.rmr_wb = true;
    if (var.wb_exclusive != kNoProc) {
      var.wb_sharers.insert(var.wb_exclusive);
      var.wb_exclusive = kNoProc;
    }
    var.wb_sharers.insert(pid);
  }

  if (e.rmr_dsm) p.cur_.rmr_dsm++;
  if (e.rmr_wt) p.cur_.rmr_wt++;
  if (e.rmr_wb) p.cur_.rmr_wb++;
}

void Simulator::account_write(Proc& p, Variable& var, Event& e) {
  const ProcId pid = p.id();
  e.rmr_dsm = var.owner != pid;

  // CC write-through: every committed write goes to memory and invalidates
  // all other cached copies — always an RMR.
  e.rmr_wt = true;
  for (auto it = var.wt_copies.begin(); it != var.wt_copies.end();) {
    if (*it != pid)
      it = var.wt_copies.erase(it);
    else
      ++it;
  }

  // CC write-back: a write hits only with an exclusive copy; otherwise it
  // invalidates all other copies and takes the line exclusive.
  if (var.wb_exclusive == pid) {
    e.rmr_wb = false;
  } else {
    e.rmr_wb = true;
    var.wb_sharers.clear();
    var.wb_exclusive = pid;
  }

  if (e.rmr_dsm) p.cur_.rmr_dsm++;
  if (e.rmr_wt) p.cur_.rmr_wt++;
  if (e.rmr_wb) p.cur_.rmr_wb++;
}

// ---------------------------------------------------------------------------
// Pending classification
// ---------------------------------------------------------------------------

PendingClass Simulator::classify_pending(ProcId pid) const {
  const Proc& p = proc(pid);
  if (p.done_ || !p.has_pending_) return PendingClass::kNone;

  if (p.mode_ == Mode::kWrite) {
    if (p.buffer_.empty()) return PendingClass::kEndFence;
    const BufferedWrite& head = p.buffer_.front();
    const Variable& var = vars_[static_cast<std::size_t>(head.var)];
    const bool remote = var.owner != pid;
    const bool critical = remote && var.last_writer != pid;
    return critical ? PendingClass::kCommitCritical
                    : PendingClass::kCommitNonCritical;
  }

  switch (p.pending_.kind) {
    case OpKind::kWrite:
      return PendingClass::kWriteIssue;
    case OpKind::kRead: {
      const VarId v = p.pending_.var;
      if (p.buffered_value(v, nullptr)) return PendingClass::kLocalRead;
      const Variable& var = vars_[static_cast<std::size_t>(v)];
      if (var.owner == pid) return PendingClass::kLocalRead;
      return p.remotely_read(v) ? PendingClass::kNonCriticalRead
                                : PendingClass::kCriticalRead;
    }
    case OpKind::kFence:
      return PendingClass::kBeginFence;
    case OpKind::kCas:
      return PendingClass::kCas;
    case OpKind::kEnter:
      return PendingClass::kEnter;
    case OpKind::kCs:
      return PendingClass::kCs;
    case OpKind::kExit:
      return PendingClass::kExit;
  }
  TPA_FAIL("unreachable op kind");
}

}  // namespace tpa::tso
