// Ready-made scheduling strategies for running full scenarios.
//
// These complement the fine-grained adversary in src/lowerbound: tests and
// zoo benchmarks need "just run everything to completion" loops under
// interleavings of varying hostility.
#pragma once

#include <cstdint>

#include "tso/sim.h"
#include "util/rng.h"

namespace tpa::tso {

/// True when every process' program finished and every write buffer drained.
bool all_done(const Simulator& sim);

/// Round-robin over processes. With `eager_commit`, a process' entire buffer
/// is committed right after each delivered event (sequential-consistency-
/// like interleavings, the friendliest schedule). Without it, writes commit
/// only through fences — plus a drain pass once a program finishes, modeling
/// the hardware eventually flushing the buffer.
/// Returns the number of scheduler steps taken; stops at `max_steps`.
std::uint64_t run_round_robin(Simulator& sim, std::uint64_t max_steps,
                              bool eager_commit = true);

/// Uniformly random process choice; buffered writes commit with probability
/// `commit_prob` per step (0 delays writes maximally between fences, 1 is
/// nearly write-through). Deterministic given the Rng seed.
std::uint64_t run_random(Simulator& sim, Rng& rng, double commit_prob,
                         std::uint64_t max_steps);

}  // namespace tpa::tso
