#include "tso/schedule.h"

#include <sstream>

#include "util/check.h"

namespace tpa::tso {

std::unique_ptr<Simulator> replay(std::size_t n_procs, SimConfig config,
                                  const ScenarioBuilder& build,
                                  const std::vector<Directive>& directives,
                                  const std::vector<bool>* erased) {
  auto sim = std::make_unique<Simulator>(n_procs, config);
  build(*sim);
  for (const auto& d : directives) {
    if (erased && (*erased)[static_cast<std::size_t>(d.proc)]) continue;
    bool ok = false;
    switch (d.kind) {
      case ActionKind::kDeliver:
        ok = sim->deliver(d.proc);
        break;
      case ActionKind::kCommit:
        ok = sim->commit(d.proc, d.var);
        break;
      case ActionKind::kCrash:
        ok = sim->crash(d.proc);
        break;
      case ActionKind::kRecover:
        ok = sim->recover(d.proc);
        break;
    }
    TPA_CHECK(ok, "replay directive could not be applied: proc=" << d.proc);
  }
  return sim;
}

ReplayCheck verify_replay_equivalence(const Execution& original,
                                      const Execution& replayed,
                                      const std::vector<bool>& erased) {
  // Index of the next replayed event, per process.
  std::vector<std::vector<const Event*>> by_proc(erased.size());
  for (const auto& e : replayed.events)
    by_proc[static_cast<std::size_t>(e.proc)].push_back(&e);

  std::vector<std::size_t> next(erased.size(), 0);
  auto mismatch = [](const Event& a, const Event& b) {
    std::ostringstream os;
    os << "original {" << a.to_string() << "} vs replayed {" << b.to_string()
       << "}";
    return os.str();
  };

  for (const auto& e : original.events) {
    const auto pid = static_cast<std::size_t>(e.proc);
    if (erased[pid]) continue;
    if (next[pid] >= by_proc[pid].size())
      return {false, "replay is missing events of p" + std::to_string(e.proc)};
    const Event& r = *by_proc[pid][next[pid]++];
    if (e.kind != r.kind || e.var != r.var || e.value != r.value ||
        e.from_buffer != r.from_buffer || e.critical != r.critical ||
        e.cas_success != r.cas_success)
      return {false, mismatch(e, r)};
  }
  for (std::size_t pid = 0; pid < erased.size(); ++pid) {
    if (erased[pid]) {
      if (!by_proc[pid].empty())
        return {false,
                "erased process p" + std::to_string(pid) + " took events"};
    } else if (next[pid] != by_proc[pid].size()) {
      return {false,
              "replay has extra events of p" + std::to_string(pid)};
    }
  }
  return {};
}

}  // namespace tpa::tso
