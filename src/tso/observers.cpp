#include "tso/observers.h"

#include <ostream>
#include <utility>

#include "trace/atomic_io.h"
#include "util/check.h"

namespace tpa::tso {

namespace {

// Concrete checkpoint payloads. Snapshots are created and consumed in this
// translation unit only; the dynamic_cast in each restore() guards against
// cross-observer mixups all the same.

struct CostSnapshot final : ObserverSnapshot {
  std::vector<std::unordered_set<VarId>> remote_reads;
  std::vector<cost::CoherenceDirectory> directories;
  std::vector<char> recovered;
  std::vector<std::uint64_t> recovery_critical;
};

struct AwarenessSnapshot final : ObserverSnapshot {
  std::vector<DynBitset> aw;
  std::vector<DynBitset> writer_aw;
  std::vector<std::unordered_map<VarId, DynBitset>> issue_aw;
};

struct TraceSnapshot final : ObserverSnapshot {
  Execution execution;
};

template <typename T>
const T& checked_cast(const ObserverSnapshot* snap, const char* who) {
  const auto* typed = dynamic_cast<const T*>(snap);
  TPA_CHECK(typed != nullptr,
            "observer '" << who << "' got a foreign (or null) snapshot");
  return *typed;
}

}  // namespace

// ---------------------------------------------------------------------------
// CostObserver
// ---------------------------------------------------------------------------

void CostObserver::on_attach(Simulator& sim) {
  remote_reads_.assign(sim.num_procs(), {});
  recovered_.assign(sim.num_procs(), 0);
  recovery_critical_.assign(sim.num_procs(), 0);
}

void CostObserver::count_critical(ProcId p, std::uint32_t crit) {
  if (recovered_[static_cast<std::size_t>(p)])
    recovery_critical_[static_cast<std::size_t>(p)] += crit;
}

cost::CoherenceDirectory& CostObserver::directory(VarId v) {
  const auto i = static_cast<std::size_t>(v);
  if (i >= directories_.size()) directories_.resize(i + 1);
  return directories_[i];
}

void CostObserver::charge(Proc& p, Event& e, const cost::RmrFlags& f) {
  e.rmr_dsm = f.dsm;
  e.rmr_wt = f.wt;
  e.rmr_wb = f.wb;
  if (f.dsm) p.cur_.rmr_dsm++;
  if (f.wt) p.cur_.rmr_wt++;
  if (f.wb) p.cur_.rmr_wb++;
}

void CostObserver::on_event(Simulator& sim, Proc& p, Event& e,
                            const StepContext& ctx) {
  const ProcId pid = p.id();
  switch (e.kind) {
    case EventKind::kRead: {
      if (e.from_buffer) return;  // not a variable access
      // Definition 2: critical read = first remote read of v by p.
      e.critical = e.remote && !remotely_read(pid, e.var);
      if (e.remote) remote_reads_[static_cast<std::size_t>(pid)].insert(e.var);
      charge(p, e, directory(e.var).on_read(pid, sim.var_owner(e.var)));
      if (e.critical) p.cur_.critical++;
      count_critical(pid, e.critical ? 1 : 0);
      return;
    }
    case EventKind::kWriteCommit: {
      // Definition 2: a commit is critical if it is a remote write and the
      // variable's last committed writer was a different process.
      e.critical = e.remote && ctx.prev_writer != pid;
      charge(p, e, directory(e.var).on_write(pid, sim.var_owner(e.var)));
      if (e.critical) p.cur_.critical++;
      count_critical(pid, e.critical ? 1 : 0);
      return;
    }
    case EventKind::kCas: {
      // The read half is critical if this is p's first remote read of v;
      // the write half (on success) if the last writer differs from p.
      std::uint32_t crit = 0;
      if (e.remote && !remotely_read(pid, e.var)) crit++;
      if (e.remote) remote_reads_[static_cast<std::size_t>(pid)].insert(e.var);
      if (e.cas_success && e.remote && ctx.prev_writer != pid) crit++;
      e.critical = crit > 0;
      p.cur_.critical += crit;
      count_critical(pid, crit);
      auto& dir = directory(e.var);
      charge(p, e,
             e.cas_success ? dir.on_write(pid, sim.var_owner(e.var))
                           : dir.on_read(pid, sim.var_owner(e.var)));
      return;
    }
    case EventKind::kCrash: {
      // Volatile state gone: the crashed process loses its cached copies
      // (every post-recovery access misses again) and its remote-read
      // history, so recovered passages pay their critical reads afresh.
      remote_reads_[static_cast<std::size_t>(pid)].clear();
      for (auto& dir : directories_) dir.evict(pid);
      return;
    }
    case EventKind::kRecover:
      recovered_[static_cast<std::size_t>(pid)] = 1;
      return;
    default:
      return;  // issues, fences and transitions carry no access costs
  }
}

std::unique_ptr<ObserverSnapshot> CostObserver::snapshot() const {
  auto snap = std::make_unique<CostSnapshot>();
  snap->remote_reads = remote_reads_;
  snap->directories = directories_;
  snap->recovered = recovered_;
  snap->recovery_critical = recovery_critical_;
  return snap;
}

void CostObserver::restore(const ObserverSnapshot* snap) {
  const auto& s = checked_cast<CostSnapshot>(snap, name());
  remote_reads_ = s.remote_reads;
  directories_ = s.directories;
  recovered_ = s.recovered;
  recovery_critical_ = s.recovery_critical;
}

// ---------------------------------------------------------------------------
// AwarenessObserver
// ---------------------------------------------------------------------------

void AwarenessObserver::on_attach(Simulator& sim) {
  n_procs_ = sim.num_procs();
  aw_.assign(n_procs_, DynBitset(n_procs_));
  for (std::size_t p = 0; p < n_procs_; ++p) aw_[p].set(p);
  issue_aw_.assign(n_procs_, {});
  writer_aw_.clear();
}

DynBitset& AwarenessObserver::writer_aw(VarId v) {
  const auto i = static_cast<std::size_t>(v);
  if (i >= writer_aw_.size()) writer_aw_.resize(i + 1, DynBitset(n_procs_));
  return writer_aw_[i];
}

void AwarenessObserver::absorb(std::size_t p, ProcId writer, VarId v) {
  if (writer == kNoProc) return;
  // Definition 1: reading v last written by q makes p aware of q and of
  // everything q was aware of when it issued that write.
  aw_[p] |= writer_aw(v);
  aw_[p].set(static_cast<std::size_t>(writer));
}

void AwarenessObserver::on_event(Simulator&, Proc& p, Event& e,
                                 const StepContext& ctx) {
  const auto pid = static_cast<std::size_t>(p.id());
  switch (e.kind) {
    case EventKind::kWriteIssue:
      // Snapshot at issue time; a coalescing re-issue re-snapshots.
      issue_aw_[pid][e.var] = aw_[pid];
      return;
    case EventKind::kWriteCommit: {
      auto it = issue_aw_[pid].find(e.var);
      TPA_CHECK(it != issue_aw_[pid].end(),
                "commit of v" << e.var << " without an issue snapshot for p"
                              << p.id());
      writer_aw(e.var) = std::move(it->second);
      issue_aw_[pid].erase(it);
      return;
    }
    case EventKind::kRead:
      if (e.from_buffer) return;  // buffered reads are not accesses
      absorb(pid, ctx.prev_writer, e.var);
      return;
    case EventKind::kCas:
      absorb(pid, ctx.prev_writer, e.var);
      // A successful CAS writes with the (just-absorbed) current awareness.
      if (e.cas_success) writer_aw(e.var) = aw_[pid];
      return;
    case EventKind::kCrash:
      // A crash wipes the process' volatile state: its awareness resets to
      // {itself}, and issue-time snapshots of writes still in the buffer are
      // dropped (lost writes never commit; flushed ones committed — and
      // consumed their snapshots — before this event fired).
      aw_[pid].reset();
      aw_[pid].set(pid);
      issue_aw_[pid].clear();
      return;
    default:
      return;
  }
}

std::unique_ptr<ObserverSnapshot> AwarenessObserver::snapshot() const {
  auto snap = std::make_unique<AwarenessSnapshot>();
  snap->aw = aw_;
  snap->writer_aw = writer_aw_;
  snap->issue_aw = issue_aw_;
  return snap;
}

void AwarenessObserver::restore(const ObserverSnapshot* snap) {
  const auto& s = checked_cast<AwarenessSnapshot>(snap, name());
  aw_ = s.aw;
  writer_aw_ = s.writer_aw;
  issue_aw_ = s.issue_aw;
}

// ---------------------------------------------------------------------------
// ProgressObserver / ExclusionChecker
// ---------------------------------------------------------------------------

void ProgressObserver::on_pending(const Simulator& sim, const Proc& p) {
  if (p.pending().kind != OpKind::kCs) return;
  cs_enabled_.clear();
  for (std::size_t q = 0; q < sim.num_procs(); ++q) {
    const Proc& other = sim.proc(static_cast<ProcId>(q));
    if (other.has_pending() && other.pending().kind == OpKind::kCs)
      cs_enabled_.push_back(other.id());
  }
  on_cs_enabled(sim, p);
}

void ProgressObserver::on_cs_enabled(const Simulator&, const Proc&) {}

void ExclusionChecker::on_cs_enabled(const Simulator&, const Proc& p) {
  for (const ProcId other : cs_enabled()) {
    if (other != p.id()) {
      TPA_FAIL("mutual exclusion violated: CS enabled for both p"
               << p.id() << " and p" << other);
    }
  }
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

void TraceRecorder::on_directive(const Simulator&, const Directive& d) {
  execution_.directives.push_back(d);
}

void TraceRecorder::on_event(Simulator&, Proc&, Event& e,
                             const StepContext&) {
  execution_.events.push_back(e);
}

std::unique_ptr<ObserverSnapshot> TraceRecorder::snapshot() const {
  auto snap = std::make_unique<TraceSnapshot>();
  snap->execution = execution_;
  return snap;
}

void TraceRecorder::restore(const ObserverSnapshot* snap) {
  execution_ = checked_cast<TraceSnapshot>(snap, name()).execution;
}

// ---------------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------------

void JsonlTraceSink::on_directive(const Simulator&, const Directive& d) {
  const char* kind = "?";
  switch (d.kind) {
    case ActionKind::kDeliver: kind = "deliver"; break;
    case ActionKind::kCommit: kind = "commit"; break;
    case ActionKind::kCrash: kind = "crash"; break;
    case ActionKind::kRecover: kind = "recover"; break;
  }
  *out_ << "{\"type\":\"directive\",\"kind\":\"" << kind
        << "\",\"proc\":" << d.proc;
  if (d.var != kNoVar) *out_ << ",\"var\":" << d.var;
  *out_ << "}\n";
}

void JsonlTraceSink::on_event(Simulator&, Proc&, Event& e,
                              const StepContext&) {
  *out_ << "{\"type\":\"event\",\"seq\":" << e.seq << ",\"kind\":\""
        << to_string(e.kind) << "\",\"proc\":" << e.proc;
  if (e.var != kNoVar) *out_ << ",\"var\":" << e.var
                             << ",\"value\":" << e.value;
  if (e.kind == EventKind::kCas)
    *out_ << ",\"old\":" << e.value2
          << ",\"success\":" << (e.cas_success ? "true" : "false");
  if (e.from_buffer) *out_ << ",\"from_buffer\":true";
  if (e.remote) *out_ << ",\"remote\":true";
  if (e.critical) *out_ << ",\"critical\":true";
  if (e.rmr_dsm || e.rmr_wt || e.rmr_wb)
    *out_ << ",\"rmr\":{\"dsm\":" << (e.rmr_dsm ? 1 : 0)
          << ",\"wt\":" << (e.rmr_wt ? 1 : 0)
          << ",\"wb\":" << (e.rmr_wb ? 1 : 0) << "}";
  *out_ << ",\"passage\":" << e.passage << "}\n";
}

// ---------------------------------------------------------------------------
// JsonlFileTraceSink
// ---------------------------------------------------------------------------

JsonlFileTraceSink::JsonlFileTraceSink(std::string path)
    : JsonlTraceSink(file_), path_(std::move(path)) {
  file_.open(path_ + ".tmp", std::ios::binary | std::ios::trunc);
  TPA_CHECK(file_.good(),
            "jsonl sink: cannot open '" << path_ << ".tmp' for writing");
}

JsonlFileTraceSink::~JsonlFileTraceSink() {
  try {
    close();
  } catch (const CheckFailure&) {
    // Destructors must not throw; callers needing confirmation of the
    // publication call close() themselves.
  }
}

void JsonlFileTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  file_.flush();
  TPA_CHECK(file_.good(), "jsonl sink: write to '" << path_ << ".tmp' failed");
  file_.close();
  // fsync happens on a fresh descriptor inside fsync_rename — fsync flushes
  // the *inode*, so data written through this stream is covered.
  trace::fsync_rename(path_ + ".tmp", path_);
}

}  // namespace tpa::tso
