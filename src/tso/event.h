// Event — one entry of an execution trace.
//
// The event alphabet follows Section 2 of the paper: reads, write issues,
// write commits, BeginFence/EndFence, the transition events Enter/CS/Exit,
// plus an atomic CAS event (comparison primitive). Each event carries the
// cost flags computed online by the simulator: criticality (Definition 2)
// and RMRs in the DSM, CC write-through and CC write-back models. The
// offline trace::ExecutionAnalyzer recomputes all of these from scratch as a
// cross-check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tso/types.h"

namespace tpa::tso {

enum class EventKind : std::uint8_t {
  kRead,         ///< read performed (from buffer, cache, or memory)
  kWriteIssue,   ///< write placed into the process' write buffer
  kWriteCommit,  ///< buffered write made visible in shared memory
  kBeginFence,   ///< fence started: buffer must drain before EndFence
  kEndFence,     ///< fence finished: buffer empty
  kCas,          ///< atomic compare-and-swap on shared memory
  kEnter,        ///< transition: ncs -> entry
  kCs,           ///< transition: entry -> exit (critical section)
  kExit,         ///< transition: exit -> ncs
  kCrash,        ///< process crashed: volatile state gone (RME fault model)
  kRecover,      ///< crashed process restarted in its recovery section
};

const char* to_string(EventKind k);

/// Inverse of to_string(EventKind); throws CheckFailure on unknown names.
EventKind event_kind_from_string(const std::string& name);

/// True for Enter/CS/Exit.
bool is_transition(EventKind k);

/// True for BeginFence/EndFence.
bool is_fence_event(EventKind k);

/// What happens to a process' write buffer when it crashes — the two
/// failure semantics the recoverable-mutual-exclusion literature
/// distinguishes (see docs/FAULTS.md).
enum class CrashModel : std::uint8_t {
  /// Buffered (issued, uncommitted) writes vanish with the crash — the
  /// store buffer is volatile state.
  kBufferLost,
  /// The buffer drains to shared memory at the crash (each entry commits,
  /// in order, as an ordinary WriteCommit) — persistent/flushed-on-failure
  /// hardware.
  kBufferFlushed,
};

const char* to_string(CrashModel m);

/// Inverse of to_string(CrashModel); throws CheckFailure on unknown names.
CrashModel crash_model_from_string(const std::string& name);

struct Event {
  EventKind kind;
  ProcId proc = kNoProc;
  VarId var = kNoVar;
  Value value = 0;   ///< value read / written / CAS new value
  Value value2 = 0;  ///< CAS: old value observed

  bool from_buffer = false;  ///< read satisfied from own write buffer
  bool accesses_var = false; ///< event "accesses" var per the paper
  bool remote = false;       ///< var is remote to proc (owner != proc)
  bool critical = false;     ///< Definition 2 (CAS: either half critical)
  bool cas_success = false;
  /// Fence event emitted as part of a CAS buffer drain (x86 LOCK RMW), not
  /// an explicit fence instruction — excluded from fence counts.
  bool implied_by_cas = false;

  bool rmr_dsm = false;  ///< RMR in the DSM model
  bool rmr_wt = false;   ///< RMR under CC write-through
  bool rmr_wb = false;   ///< RMR under CC write-back

  std::uint32_t passage = 0;  ///< the process' passage index (0-based)
  std::uint64_t seq = 0;      ///< position in the execution

  std::string to_string() const;
};

/// A scheduler decision; the sequence of directives of a run is the
/// "schedule" and is sufficient to deterministically replay the execution
/// (see tso/schedule.h). kDeliver lets the process take its next program
/// event; kCommit commits a write from its buffer — the head under TSO, or
/// any chosen variable's entry under PSO (see SimConfig::pso). kCrash and
/// kRecover are the fault-injection moves of the crash–recovery adversary
/// (Simulator::crash / Simulator::recover).
enum class ActionKind : std::uint8_t { kDeliver, kCommit, kCrash, kRecover };

struct Directive {
  ActionKind kind;
  ProcId proc;
  VarId var = kNoVar;  ///< kCommit: which buffered write (kNoVar = head)
};

/// A recorded execution: the event trace plus the schedule that produced it.
struct Execution {
  std::vector<Event> events;
  std::vector<Directive> directives;

  void clear() {
    events.clear();
    directives.clear();
  }
};

}  // namespace tpa::tso
