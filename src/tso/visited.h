// VisitedSet — the explorer's state-dedup store (DedupMode::kState).
//
// Visited states are keyed on the (canonical) 128-bit fingerprint — which
// already folds in the scheduler's current process — and guarded by the
// *remaining* adversary budgets. An entry means: from this state, with these
// budgets, the whole subtree was explored and found violation-free. A later
// visit may be pruned only if some stored entry dominates its budgets on
// every component: whatever the weaker visit could reach, the stronger one
// already covered.
//
// Layout: power-of-two shards of open-addressed, linearly-probed flat slot
// arrays. One (fingerprint, budget) pair per slot; incomparable budgets for
// the same fingerprint occupy separate slots along the probe chain. There is
// no deletion: when a new budget dominates a stored one for the same
// fingerprint, the slot is overwritten in place — sound because dominance is
// transitive, so every visit the old entry could prune, the new one prunes
// too. A shard rehashes into twice the slots at 70% load.
//
// Concurrency: in single-threaded explorations (the common case, and the
// whole bench matrix) no atomics are touched at all. With `concurrent`
// construction each shard is guarded by a spinlock — an uncontended
// test-and-set on the fast path, with the shard index taken from fp.hi and
// the probe index from fp.lo so parallel workers land on different shards.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tso/sim.h"

namespace tpa::tso {

class VisitedSet {
 public:
  /// The remaining adversary budgets at a visit, compared pointwise.
  struct Budget {
    int preemptions = 0;
    int crashes = 0;
    std::uint64_t steps_left = 0;

    bool dominates(const Budget& b) const {
      return preemptions >= b.preemptions && crashes >= b.crashes &&
             steps_left >= b.steps_left;
    }
  };

  /// `concurrent` enables the per-shard spinlocks; leave it false for
  /// single-threaded explorations and no lock is ever touched.
  explicit VisitedSet(bool concurrent = false);

  VisitedSet(const VisitedSet&) = delete;
  VisitedSet& operator=(const VisitedSet&) = delete;

  /// True if a stored entry for fp dominates b (the visit may be pruned).
  bool subsumed(const Fingerprint& fp, const Budget& b) const;

  /// Records a fully explored, violation-free visit. Returns false when an
  /// existing entry already dominates it (nothing stored); otherwise stores
  /// it — overwriting a dominated same-fingerprint entry in place if the
  /// probe chain holds one — and returns true.
  bool insert(const Fingerprint& fp, const Budget& b);

  /// Live entries across all shards (exact when quiescent).
  std::size_t size() const;

 private:
  struct Slot {
    Fingerprint fp;
    Budget budget;
    bool used = false;
  };

  struct Shard {
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::vector<Slot> slots;  ///< size is always a power of two
    std::size_t live = 0;
  };

  static constexpr std::size_t kShards = 64;        // power of two
  static constexpr std::size_t kInitialSlots = 1024;  // power of two

  Shard& shard(const Fingerprint& fp) const {
    // fp.hi picks the shard, fp.lo the probe start: the two words are
    // independently mixed, so shard balance does not distort probe chains.
    return shards_[static_cast<std::size_t>(fp.hi) & (kShards - 1)];
  }

  static void rehash_grow(Shard& s);

  const bool concurrent_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace tpa::tso
