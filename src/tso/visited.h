// VisitedSet — the explorer's state-dedup store (DedupMode::kState).
//
// Visited states are keyed on the (canonical) 128-bit fingerprint — which
// already folds in the scheduler's current process — and guarded by the
// *remaining* adversary budgets. An entry means: from this state, with these
// budgets, the whole subtree was explored and found violation-free. A later
// visit may be pruned only if some stored entry dominates its budgets on
// every component: whatever the weaker visit could reach, the stronger one
// already covered.
//
// Layout: power-of-two shards of open-addressed, linearly-probed flat slot
// arrays. One (fingerprint, budget) pair per slot; incomparable budgets for
// the same fingerprint occupy separate slots along the probe chain. When a
// new budget dominates a stored one for the same fingerprint, the slot is
// overwritten in place — sound because dominance is transitive, so every
// visit the old entry could prune, the new one prunes too. A shard rehashes
// into twice the slots at 70% load.
//
// Memory governor: an optional byte budget caps the total slot-array
// footprint. Each shard owns 1/kShards of the budget and stops growing at
// its share; once a capped shard would exceed 70% load, it *evicts* instead
// — a clock (second-chance) sweep over the slot array: entries whose
// referenced bit was set by a subsumed() hit get one pass of grace, the
// first un-referenced entry is removed via standard backward-shift deletion
// (probe chains stay contiguous, no tombstones). Evicting an entry only
// forfeits future pruning — the claim it recorded was true and remains
// true — so verdicts and witnesses are bit-identical under any budget; only
// dedup_hits/schedule counts change. At budget 0 no slots are allocated at
// all and the explorer degrades to raw enumeration.
//
// Concurrency: in single-threaded explorations (the common case, and the
// whole bench matrix) no atomics are touched at all. With `concurrent`
// construction each shard is guarded by a spinlock — an uncontended
// test-and-set on the fast path, with the shard index taken from fp.hi and
// the probe index from fp.lo so parallel workers land on different shards.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tso/sim.h"

namespace tpa::tso {

/// Hash adapter for 128-bit fingerprints: both words are already mixed, so
/// a cheap combine suffices.
struct FpHash {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// The liveness detector's DFS-stack index: progress-fingerprint → depth of
/// the *nearest* stack occurrence. Revisiting a key that is on the stack
/// closes a candidate fair cycle.
///
/// Nearest-ancestor semantics: push() records the new depth and returns the
/// previous binding (kNotOnStack when the key was absent); pop() restores
/// it on unwind. So when a rejected progress cycle's head stays on the
/// stack, a deeper revisit still closes against the *closest* occurrence —
/// the shortest candidate cycle — not the shallowest.
class OnStackMap {
 public:
  static constexpr std::size_t kNotOnStack = ~static_cast<std::size_t>(0);

  /// Binds fp → depth; returns the depth it was previously bound to, or
  /// kNotOnStack. Pass that value back to pop() when unwinding.
  std::size_t push(const Fingerprint& fp, std::size_t depth) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    std::size_t i = probe_start(fp);
    while (slots_[i].depth != kNotOnStack) {
      if (slots_[i].fp == fp) {
        const std::size_t prev = slots_[i].depth;
        slots_[i].depth = depth;
        return prev;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = {fp, depth};
    ++size_;
    return kNotOnStack;
  }

  /// Restores the binding push() displaced (erases when it was absent).
  void pop(const Fingerprint& fp, std::size_t prev) {
    if (slots_.empty()) return;
    std::size_t i = probe_start(fp);
    while (slots_[i].depth != kNotOnStack && !(slots_[i].fp == fp))
      i = (i + 1) & mask_;
    if (slots_[i].depth == kNotOnStack) return;  // absent: nothing to undo
    if (prev != kNotOnStack) {
      slots_[i].depth = prev;
      return;
    }
    erase_at(i);
    --size_;
  }

  /// Depth of the nearest stack occurrence, or kNotOnStack.
  std::size_t find(const Fingerprint& fp) const {
    if (slots_.empty()) return kNotOnStack;
    std::size_t i = probe_start(fp);
    while (slots_[i].depth != kNotOnStack) {
      if (slots_[i].fp == fp) return slots_[i].depth;
      i = (i + 1) & mask_;
    }
    return kNotOnStack;
  }

  std::size_t size() const { return size_; }
  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

 private:
  // This index sits on the DFS hot path (three lookups per node), so it is
  // a flat, linearly-probed open-addressed array like VisitedSet's shards —
  // node-based std::unordered_map costs a measurable fraction of the whole
  // exploration here. depth == kNotOnStack marks an empty slot; no real
  // binding can carry it (depths are bounded by the schedule length).
  struct Slot {
    Fingerprint fp;
    std::size_t depth = kNotOnStack;
  };

  std::size_t probe_start(const Fingerprint& fp) const {
    return FpHash{}(fp)&mask_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 1024 : old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.depth == kNotOnStack) continue;
      std::size_t i = probe_start(s.fp);
      while (slots_[i].depth != kNotOnStack) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  /// Backward-shift deletion: keeps probe chains contiguous without
  /// tombstones (same scheme as VisitedSet eviction).
  void erase_at(std::size_t i) {
    std::size_t j = i;
    while (true) {
      slots_[i].depth = kNotOnStack;
      std::size_t home;
      do {
        j = (j + 1) & mask_;
        if (slots_[j].depth == kNotOnStack) return;
        home = probe_start(slots_[j].fp);
      } while (i <= j ? (i < home && home <= j) : (i < home || home <= j));
      slots_[i] = slots_[j];
      i = j;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

class VisitedSet {
 public:
  /// The remaining adversary budgets at a visit, compared pointwise.
  struct Budget {
    int preemptions = 0;
    int crashes = 0;
    std::uint64_t steps_left = 0;

    bool dominates(const Budget& b) const {
      return preemptions >= b.preemptions && crashes >= b.crashes &&
             steps_left >= b.steps_left;
    }
  };

  /// No byte budget: shards grow freely (the pre-governor behavior).
  static constexpr std::uint64_t kUnlimitedBytes = ~0ull;

  /// `concurrent` enables the per-shard spinlocks; leave it false for
  /// single-threaded explorations and no lock is ever touched. `max_bytes`
  /// caps the summed slot-array footprint (see the memory governor above);
  /// 0 stores nothing and every insert is refused.
  explicit VisitedSet(bool concurrent = false,
                      std::uint64_t max_bytes = kUnlimitedBytes);

  VisitedSet(const VisitedSet&) = delete;
  VisitedSet& operator=(const VisitedSet&) = delete;

  /// True if a stored entry for fp dominates b (the visit may be pruned).
  /// Marks the matching entry referenced, shielding it from the next clock
  /// sweep — entries that still prune are the ones worth keeping.
  bool subsumed(const Fingerprint& fp, const Budget& b) const;

  /// Records a fully explored, violation-free visit. Returns false when an
  /// existing entry already dominates it (nothing stored) or the byte
  /// budget leaves no room (degraded mode); otherwise stores it —
  /// overwriting a dominated same-fingerprint entry in place if the probe
  /// chain holds one, evicting a cold entry if the shard is capped — and
  /// returns true.
  bool insert(const Fingerprint& fp, const Budget& b);

  /// Live entries across all shards (exact when quiescent).
  std::size_t size() const;
  /// Alias of size(), named for the stats surface (ExplorerResult).
  std::size_t entries() const { return size(); }

  /// Summed slot-array footprint in bytes. Never exceeds a configured
  /// `max_bytes` (the governor caps capacity, not just live entries).
  std::uint64_t bytes() const;

  /// Entries removed by the clock eviction since construction.
  std::uint64_t evictions() const;

 private:
  struct Slot {
    Fingerprint fp;
    Budget budget;
    bool used = false;
    bool referenced = false;  ///< clock bit: hit by subsumed() recently
  };

  struct Shard {
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::vector<Slot> slots;  ///< size is always a power of two (or zero)
    std::size_t live = 0;
    std::size_t clock = 0;  ///< next slot the eviction sweep inspects
    std::uint64_t evictions = 0;
  };

  static constexpr std::size_t kShards = 64;          // power of two
  static constexpr std::size_t kInitialSlots = 1024;  // power of two

  Shard& shard(const Fingerprint& fp) const {
    // fp.hi picks the shard, fp.lo the probe start: the two words are
    // independently mixed, so shard balance does not distort probe chains.
    return shards_[static_cast<std::size_t>(fp.hi) & (kShards - 1)];
  }

  static void rehash_grow(Shard& s);
  /// Backward-shift deletion at slot `i`: repacks the following probe chain
  /// so lookups never need tombstones.
  static void erase_at(Shard& s, std::size_t i);
  /// One clock sweep: clears referenced bits until it finds a cold entry,
  /// evicts it, and returns true; false only when the shard is empty.
  static bool evict_one(Shard& s);

  const bool concurrent_;
  /// Per-shard slot cap from the byte budget (largest power of two whose
  /// slot array fits in max_bytes / kShards); kNoCap when unlimited.
  static constexpr std::size_t kNoCap = ~static_cast<std::size_t>(0);
  std::size_t max_slots_per_shard_ = kNoCap;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace tpa::tso
