// Randomized schedule fuzzing, lenient replay, and counterexample shrinking.
//
// The exhaustive explorer (tso/explorer.h) *proves* small scopes; the fuzzer
// stresses scenarios beyond the exhaustive bound: seeded, reproducible
// random schedules plus corpus-guided mutation of recorded directive
// sequences (prefix truncation, window deletion, adjacent swaps, and
// commit-delay re-parameterization — the store-buffer knob TSO bugs hide
// behind). Any violation is delta-debugged (ddmin) to a locally minimal,
// still-violating witness; trace::write_witness (trace/format.h) turns that
// into a replayable text artifact — the regression corpus under
// tests/corpus/ is exactly these files.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tso/explorer.h"
#include "tso/schedule.h"
#include "tso/sim.h"

namespace tpa::tso {

struct LenientReplay {
  std::unique_ptr<Simulator> sim;  ///< state after the replay
  std::vector<Directive> applied;  ///< directives that actually applied
  bool violated = false;
  bool complete = false;  ///< every program done and every buffer drained
  std::string violation;
};

/// Replays `directives`, *skipping* any that cannot be applied — unlike
/// strict tso::replay, which raises on them. A CheckFailure thrown by a
/// step is a violation: the replay stops with `applied` ending in the
/// violating directive. If the schedule runs to completion, `on_complete`
/// (when set) is invoked and may flag a violation as well. This is the
/// oracle mutation and shrinking are built on: dropped directives shift the
/// remainder onto a nearby legal schedule instead of invalidating it.
LenientReplay replay_lenient(std::size_t n_procs, SimConfig sim_config,
                             const ScenarioBuilder& build,
                             const std::vector<Directive>& directives,
                             const ScheduleHook& on_complete = {});

struct ShrinkOutcome {
  std::vector<Directive> witness;  ///< locally minimal, still violating
  std::string violation;           ///< message from the minimal replay
  std::uint64_t replays = 0;       ///< oracle invocations spent
};

/// ddmin over the directive sequence: removes chunks of halving size, then
/// single directives to a fixpoint. The result still violates, and removing
/// any *single* directive from it no longer does (local minimality). It is
/// also strictly replayable: every directive applies in order, so
/// tso::replay of the shrunk witness deterministically reproduces the
/// violation (for step violations by raising; for on_complete violations by
/// reaching the same final state). If `witness` does not reproduce at all,
/// it is returned unchanged with an empty `violation`.
ShrinkOutcome shrink_witness(std::size_t n_procs, SimConfig sim_config,
                             const ScenarioBuilder& build,
                             std::vector<Directive> witness,
                             const ScheduleHook& on_complete = {});

/// The result of replaying a lasso candidate (stem + cycle) against the
/// liveness oracle: does the cycle strictly apply from the stem's end state,
/// re-close under the progress fingerprint, and pass the weak-fairness
/// filter — and if so, what verdict kind does it classify as?
struct LassoReplay {
  bool closes = false;  ///< strict cycle application + fingerprint closure
                        ///< + weak fairness all hold
  VerdictKind kind = VerdictKind::kClean;  ///< kStarvation, kLivelock, or
                                           ///< kClean (a progress cycle)
  std::vector<Directive> stem;  ///< stem directives that actually applied
};

/// Replays `stem` leniently, then applies `cycle` strictly once and checks
/// it returns to the stem-end state under Simulator::fingerprint_progress
/// (with the scheduled process folded in, exactly the explorer's on-stack
/// key). A closing cycle is classified by watching per-process sections
/// during the application: starvation if some process sits in Try (Entry)
/// across the whole cycle, livelock if no process makes any
/// Enter/CS/Exit transition; a cycle where someone progresses is kClean.
/// This is the oracle lasso shrinking and v3 witness replay share.
LassoReplay replay_lasso(std::size_t n_procs, SimConfig sim_config,
                         const ScenarioBuilder& build,
                         const std::vector<Directive>& stem,
                         const std::vector<Directive>& cycle);

struct LassoShrinkOutcome {
  std::vector<Directive> witness;  ///< shrunk stem + cycle, concatenated
  std::size_t cycle_start = 0;     ///< cycle entry index into `witness`
  std::uint64_t replays = 0;       ///< oracle invocations spent
};

/// ddmin generalized to lassos: shrinks the cycle first, then the stem,
/// each to a 1-minimal fixpoint, accepting a candidate only if the cycle
/// still closes under the progress fingerprint *and* the classification
/// kind is preserved (a starvation witness never degrades into a mere
/// livelock or progress cycle, and vice versa). The returned witness
/// replays deterministically: replay_lasso(stem, cycle) closes with the
/// same kind. If the input does not reproduce at all, it is returned
/// unchanged.
LassoShrinkOutcome shrink_lasso(std::size_t n_procs, SimConfig sim_config,
                                const ScenarioBuilder& build,
                                std::vector<Directive> witness,
                                std::size_t cycle_start, VerdictKind kind);

struct FuzzConfig {
  std::uint64_t seed = 0x5eedULL;
  std::uint64_t runs = 1'000;       ///< fuzz iterations (upper bound)
  std::uint64_t max_steps = 4'000;  ///< per-run scheduler step cap
  /// Base probability of committing a buffered write per step; individual
  /// runs re-randomize it to sweep delay regimes.
  double commit_prob = 0.3;
  bool mutate = true;           ///< corpus-guided mutation on/off
  bool shrink = true;           ///< shrink the first violating witness
  std::size_t corpus_size = 16; ///< retained completed schedules
  /// Per-step probability of injecting a process crash (the RME fault
  /// model; see SimConfig::crash_model for what happens to the buffer).
  /// 0 disables fault injection — and is guarded before any randomness is
  /// consumed, so a crash-free config's schedule digest is unchanged.
  double crash_prob = 0.0;
  /// Upper bound on injected crashes per run (counting crashes replayed
  /// from a mutated corpus schedule).
  int max_crashes = 2;
  /// Wall-clock budget in milliseconds; 0 = none. Checked between runs, so
  /// the pass is time-bounded but the number of runs becomes
  /// machine-dependent — use `runs` alone where strict reproducibility of
  /// the whole pass matters (each run is seed-deterministic either way).
  std::uint64_t time_budget_ms = 0;
  /// Invariant invoked at the end of every *complete* run (same contract as
  /// ExplorerConfig::on_complete).
  ScheduleHook on_complete;
};

struct FuzzResult : RunStats {
  // From RunStats: schedules (runs actually executed), steps (machine events
  // executed across all runs), truncated (runs that neither completed nor
  // violated within max_steps), deadline_hit (time_budget_ms ran out), and
  // verdict — kind/message plus the witness (shrunk when config.shrink) and
  // raw_witness (as recorded in the violating run). The fuzzer only ever
  // reports kClean or kSafety: liveness kinds need the explorer's state
  // graph.
  std::uint64_t violating_run = 0;     ///< 0-based index of the hit
  /// FNV-1a digest over every applied directive of every run: two fuzz
  /// passes with equal configs explore byte-identical schedules.
  std::uint64_t schedule_digest = 0;

  /// RunStats fields plus the fuzzer-specific figures, as one JSON object.
  std::string to_json() const;
};

/// Runs seeded schedule fuzzing against the scenario, stopping at the first
/// violation (or when runs / the time budget are spent). Deterministic
/// given the config (modulo time_budget_ms, see above).
FuzzResult fuzz(std::size_t n_procs, SimConfig sim_config,
                const ScenarioBuilder& build, const FuzzConfig& config = {});

}  // namespace tpa::tso
