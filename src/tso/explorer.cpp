#include "tso/explorer.h"

#include "util/check.h"

namespace tpa::tso {

namespace {

class Dfs {
 public:
  Dfs(std::size_t n_procs, SimConfig sim_config, const ScenarioBuilder& build,
      const ExplorerConfig& config)
      : n_(n_procs), sim_cfg_(sim_config), build_(build), cfg_(config) {}

  ExplorerResult run() {
    auto sim = fresh();
    dfs(std::move(sim), kNoProc, cfg_.preemptions);
    return std::move(result_);
  }

 private:
  std::unique_ptr<Simulator> fresh() {
    auto sim = std::make_unique<Simulator>(n_, sim_cfg_);
    build_(*sim);
    return sim;
  }

  static bool can_act(const Simulator& sim, ProcId p) {
    const Proc& proc = sim.proc(p);
    if (!proc.done() && proc.has_pending()) return true;
    return !proc.buffer().empty();
  }

  /// One scheduler step for p: its next event, or a buffer drain once its
  /// program has ended. Returns false if p cannot act.
  static bool step(Simulator& sim, ProcId p) {
    if (sim.deliver(p)) return true;
    return sim.commit(p);
  }

  /// Rebuilds the simulator state for the current `picks_` prefix.
  std::unique_ptr<Simulator> rebuild() {
    auto sim = fresh();
    for (ProcId p : picks_) {
      const bool ok = step(*sim, p);
      TPA_CHECK(ok, "explorer replay diverged at p" << p);
    }
    return sim;
  }

  bool budget_exhausted() {
    if (result_.schedules + result_.truncated >= cfg_.max_schedules) {
      result_.exhausted = false;
      return true;
    }
    return false;
  }

  void dfs(std::unique_ptr<Simulator> sim, ProcId current, int preemptions) {
    if (result_.violation_found || budget_exhausted()) return;
    if (picks_.size() >= cfg_.max_steps) {
      result_.truncated++;
      return;
    }

    // Candidates, in a stable order.
    std::vector<ProcId> cand;
    for (std::size_t p = 0; p < n_; ++p)
      if (can_act(*sim, static_cast<ProcId>(p)))
        cand.push_back(static_cast<ProcId>(p));
    if (cand.empty()) {
      result_.schedules++;  // a complete schedule: everyone done & drained
      if (cfg_.on_complete) {
        try {
          cfg_.on_complete(*sim);
        } catch (const CheckFailure& e) {
          result_.violation_found = true;
          result_.violation = e.what();
          result_.witness = sim->execution().directives;
        }
      }
      return;
    }

    // Option list: continuing the current process is free; preempting it
    // costs budget. If the current process cannot act, switching is free.
    std::vector<ProcId> options;
    const bool current_runnable =
        current != kNoProc &&
        std::find(cand.begin(), cand.end(), current) != cand.end();
    if (current_runnable) {
      options.push_back(current);
      if (preemptions > 0)
        for (ProcId p : cand)
          if (p != current) options.push_back(p);
    } else {
      options = cand;
    }

    for (std::size_t i = 0; i < options.size(); ++i) {
      if (result_.violation_found || budget_exhausted()) return;
      const ProcId p = options[i];
      if (i > 0) sim = rebuild();  // the first child consumed the state
      try {
        const bool ok = step(*sim, p);
        TPA_CHECK(ok, "candidate p" << p << " could not act");
      } catch (const CheckFailure& e) {
        result_.violation_found = true;
        result_.violation = e.what();
        result_.witness = sim->execution().directives;
        return;
      }
      picks_.push_back(p);
      const int cost = (current_runnable && p != current) ? 1 : 0;
      dfs(std::move(sim), p, preemptions - cost);
      picks_.pop_back();
      sim = nullptr;
    }
  }

  std::size_t n_;
  SimConfig sim_cfg_;
  const ScenarioBuilder& build_;
  ExplorerConfig cfg_;
  std::vector<ProcId> picks_;
  ExplorerResult result_;
};

}  // namespace

ExplorerResult explore(std::size_t n_procs, SimConfig sim_config,
                       const ScenarioBuilder& build, ExplorerConfig config) {
  Dfs dfs(n_procs, sim_config, build, config);
  return dfs.run();
}

}  // namespace tpa::tso
