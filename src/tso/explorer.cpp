#include "tso/explorer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <list>
#include <memory>
#include <sstream>
#include <utility>

#include "trace/campaign.h"
#include "tso/fuzz.h"
#include "tso/visited.h"
#include "util/check.h"
#include "util/work_queue.h"

namespace tpa::tso {

const char* to_string(DedupMode m) {
  return m == DedupMode::kOff ? "off" : "state";
}

DedupMode dedup_mode_from_string(const std::string& name) {
  if (name == "off") return DedupMode::kOff;
  if (name == "state") return DedupMode::kState;
  TPA_FAIL("unknown DedupMode name '" << name << "'");
}

const char* to_string(SymmetryMode m) {
  return m == SymmetryMode::kOff ? "off" : "canonical";
}

SymmetryMode symmetry_mode_from_string(const std::string& name) {
  if (name == "off") return SymmetryMode::kOff;
  if (name == "canonical") return SymmetryMode::kCanonical;
  TPA_FAIL("unknown SymmetryMode name '" << name << "'");
}

const char* to_string(LivenessMode m) {
  return m == LivenessMode::kOff ? "off" : "check";
}

LivenessMode liveness_mode_from_string(const std::string& name) {
  if (name == "off") return LivenessMode::kOff;
  if (name == "check") return LivenessMode::kCheck;
  TPA_FAIL("unknown LivenessMode name '" << name << "'");
}

std::string ExplorerResult::to_json() const {
  std::ostringstream os;
  os << "{";
  json_fields(os);
  os << ",\"exhausted\":" << (exhausted ? "true" : "false")
     << ",\"snapshots\":" << snapshots << ",\"restores\":" << restores
     << ",\"dedup_hits\":" << dedup_hits
     << ",\"dedup_states\":" << dedup_states
     << ",\"dedup_entries\":" << dedup_entries
     << ",\"dedup_bytes\":" << dedup_bytes
     << ",\"dedup_evictions\":" << dedup_evictions << "}";
  return os.str();
}

namespace {

// ---- shared cross-thread exploration state ------------------------------

struct Shared {
  Shared(std::uint64_t budget, std::uint64_t time_budget_ms)
      : max_schedules(budget),
        has_deadline(time_budget_ms > 0),
        deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(time_budget_ms)) {}

  const std::uint64_t max_schedules;
  const bool has_deadline;
  const std::chrono::steady_clock::time_point deadline;
  std::atomic<bool> deadline_tripped{false};
  std::atomic<std::uint64_t> used{0};  ///< schedules + truncated, all threads
  std::atomic<bool> over{false};       ///< budget tripped somewhere
  /// Smallest frontier index that found a violation. Subtrees with larger
  /// indices abandon early: their violation could never win, so the
  /// reported witness is independent of thread timing.
  std::atomic<std::size_t> winner{std::numeric_limits<std::size_t>::max()};
  /// The cross-thread visited set; null unless DedupMode::kState.
  std::unique_ptr<VisitedSet> visited;

  bool over_budget() {
    if (used.load(std::memory_order_relaxed) >= max_schedules) {
      over.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  void charge() { used.fetch_add(1, std::memory_order_relaxed); }
  /// The watchdog. Once any thread observes the deadline passing, the
  /// tripped flag makes every later call cheap (no clock read).
  bool past_deadline() {
    if (!has_deadline) return false;
    if (deadline_tripped.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() >= deadline) {
      deadline_tripped.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  void claim(std::size_t index) {
    std::size_t cur = winner.load(std::memory_order_relaxed);
    while (index < cur && !winner.compare_exchange_weak(
                              cur, index, std::memory_order_relaxed)) {
    }
  }
  bool beaten(std::size_t index) const {
    return winner.load(std::memory_order_relaxed) < index;
  }
};

// ---- sleep-set pruning ---------------------------------------------------

/// What a process' next scheduler step would do, abstracted to the level the
/// independence relation needs. Stable while the process does not step.
struct ActionSig {
  enum Kind : std::uint8_t {
    kIssue,   ///< write issue: touches only the process' own buffer
    kCommit,  ///< write commit of `var` (explicit, or mid-fence deliver)
    kOther    ///< reads, fences, CAS, transitions — treated as dependent
  };
  Kind kind = kOther;
  VarId var = kNoVar;
};

/// Conservative independence: a write issue is purely process-local (the
/// issued value is fixed, the awareness snapshot only depends on the
/// issuer's own past reads), so it commutes with any step of another
/// process; commits by different processes to *different* variables commute
/// because every effect of a commit (value, last_writer, awareness, cache
/// directories, RMR flags) is per-variable. Everything else is dependent.
bool independent(const ActionSig& a, const ActionSig& b) {
  if (a.kind == ActionSig::kIssue || b.kind == ActionSig::kIssue) return true;
  return a.kind == ActionSig::kCommit && b.kind == ActionSig::kCommit &&
         a.var != b.var;
}

struct SleepEntry {
  ProcId proc;
  ActionSig sig;
};
using SleepSet = std::vector<SleepEntry>;

bool can_act(const Simulator& sim, ProcId p) {
  const Proc& proc = sim.proc(p);
  // A crashed process' only possible step is recovering (if it can).
  if (proc.crashed()) return sim.has_recovery(p);
  if (!proc.done() && proc.has_pending()) return true;
  return !proc.buffer().empty();
}

/// The directive one scheduler step for p resolves to: delivering its next
/// program event if it has one, otherwise a head commit draining its buffer.
/// Exactly the step the old deliver-then-commit probing applied, but named
/// up front so the explorer can log schedules without a TraceRecorder.
Directive make_directive(const Simulator& sim, ProcId p) {
  const Proc& proc = sim.proc(p);
  if (proc.crashed()) return {ActionKind::kRecover, p};
  if (!proc.done() && proc.has_pending()) return {ActionKind::kDeliver, p};
  return {ActionKind::kCommit, p, kNoVar};
}

/// Applies a directive; false if the process cannot act that way.
bool apply(Simulator& sim, const Directive& d) {
  switch (d.kind) {
    case ActionKind::kDeliver: return sim.deliver(d.proc);
    case ActionKind::kCommit: return sim.commit(d.proc, d.var);
    case ActionKind::kCrash: return sim.crash(d.proc);
    case ActionKind::kRecover: return sim.recover(d.proc);
  }
  return false;
}

ActionSig action_sig(const Simulator& sim, ProcId p) {
  const Proc& proc = sim.proc(p);
  if (!proc.done() && proc.has_pending()) {
    switch (sim.classify_pending(p)) {
      case PendingClass::kWriteIssue:
        return {ActionSig::kIssue, proc.pending().var};
      case PendingClass::kCommitNonCritical:
      case PendingClass::kCommitCritical:
        // Mid-fence deliver commits the buffer head.
        return {ActionSig::kCommit, proc.buffer().front().var};
      default:
        return {ActionSig::kOther, kNoVar};
    }
  }
  if (!proc.buffer().empty())  // drain commit of a finished program
    return {ActionSig::kCommit, proc.buffer().front().var};
  return {ActionSig::kOther, kNoVar};
}

// ---- option enumeration (shared by DFS and frontier expansion) -----------

struct Options {
  std::vector<ProcId> cand;        ///< processes that can act
  std::vector<ProcId> options;     ///< explored children, in order
  std::vector<ProcId> crash_cand;  ///< processes the adversary may crash
  bool current_runnable = false;
};

/// Candidates in a stable order; continuing the current process is free,
/// preempting it costs budget. If the current process cannot act, switching
/// is free. Crash candidates come last: with crashes_left == 0 the option
/// list is bit-identical to a crash-free exploration.
Options enumerate_options(const Simulator& sim, std::size_t n, ProcId current,
                          int preemptions, int crashes_left) {
  Options o;
  for (std::size_t p = 0; p < n; ++p)
    if (can_act(sim, static_cast<ProcId>(p)))
      o.cand.push_back(static_cast<ProcId>(p));
  if (crashes_left > 0)
    for (std::size_t p = 0; p < n; ++p)
      if (sim.can_crash(static_cast<ProcId>(p)))
        o.crash_cand.push_back(static_cast<ProcId>(p));
  o.current_runnable =
      current != kNoProc &&
      std::find(o.cand.begin(), o.cand.end(), current) != o.cand.end();
  if (o.current_runnable) {
    o.options.push_back(current);
    if (preemptions > 0)
      for (ProcId p : o.cand)
        if (p != current) o.options.push_back(p);
  } else {
    o.options = o.cand;
  }
  return o;
}

/// A schedule prefix at which a worker's subtree DFS is rooted. In
/// checkpoint mode `snap` holds the machine state *after* `dirs`, so the
/// worker resumes without replaying a single event.
struct Node {
  std::vector<Directive> dirs;
  ProcId current = kNoProc;
  int preemptions = 0;
  int crashes_left = 0;
  SleepSet sleep;
  std::shared_ptr<const SimSnapshot> snap;
};

// ---- durable campaign checkpointing --------------------------------------

/// One unexplored sibling at an open branch point of the running DFS. The
/// directive and the child's budgets are computed when the branch point is
/// expanded (the parent state is still intact then), so a checkpoint can
/// serialize pending children without touching the simulator.
struct PendingChild {
  Directive d;
  ProcId current = kNoProc;
  int preemptions = 0;
  int crashes_left = 0;
};

/// The recursion stack's view of one branch point: children [next..) are
/// still unexplored, and the node's directive prefix is the first
/// `prefix_len` entries of the DFS' running `dirs_`.
struct Level {
  std::size_t prefix_len = 0;
  std::size_t next = 0;
  std::vector<PendingChild> children;
};

/// Shared context for campaign-mode exploration (sequential only). The
/// checkpoint a Dfs writes is (aggregate stats so far) + (every unexplored
/// subtree root): the current node, the open levels' pending children
/// innermost-first, then the outer frontier nodes not yet started. That
/// tiles the remaining schedule tree exactly — resuming from any checkpoint
/// reproduces the uninterrupted run's verdict, witness and (dedup off)
/// counts; work done after the checkpoint is simply redone.
struct CampaignRecorder {
  std::string path;
  std::chrono::milliseconds interval{250};
  std::chrono::steady_clock::time_point next_write;
  bool suspended = false;  ///< deadline checkpoint written; no more writes
  /// Identity + config fields, with stats holding the *baseline* carried in
  /// from the resumed file (all zero for a fresh campaign).
  trace::Campaign base;
  /// Accumulated stats of frontier nodes already fully explored this leg.
  ExplorerResult done;
  /// Frontier nodes of this leg; [outer_next..) are not yet started.
  const std::vector<trace::CampaignNode>* outer = nullptr;
  std::size_t outer_next = 0;
};

// ---- the DFS core (runs from the root, or from a frontier prefix) --------

class Dfs {
 public:
  /// Forced-chain states are dedup-checked every this-many depths (see the
  /// engagement rule in dfs()); bounds how far past a convergence point a
  /// redundant chain can run before it is pruned.
  static constexpr std::size_t kChainStride = 8;

  Dfs(std::size_t n_procs, const SimConfig& sim_config,
      const ScenarioBuilder& build, const ExplorerConfig& config,
      Shared* shared, std::size_t index, CampaignRecorder* camp = nullptr)
      : n_(n_procs),
        sim_cfg_(sim_config),
        build_(build),
        cfg_(config),
        shared_(shared),
        index_(index),
        camp_(camp),
        dedup_(config.dedup != DedupMode::kOff),
        symmetric_(config.symmetric_processes == SymmetryMode::kCanonical),
        liveness_(config.liveness == LivenessMode::kCheck) {}

  void run_root() {
    dirs_.clear();
    baseline_depth_ = kNoBaseline;
    skips_since_check_ = kLiveKeyStride;
    last_sched_.assign(n_, 0);
    dfs(fresh(), kNoProc, cfg_.preemptions, cfg_.max_crashes, {});
  }

  void run_from(const Node& node) {
    dirs_ = node.dirs;
    baseline_depth_ = kNoBaseline;
    skips_since_check_ = kLiveKeyStride;
    last_sched_.assign(n_, 0);
    for (std::size_t k = 0; k < dirs_.size(); ++k)
      last_sched_[dirs_[k].proc] = k + 1;
    std::unique_ptr<Simulator> sim;
    if (cfg_.checkpoint && node.snap != nullptr) {
      sim = revive(*node.snap);
    } else {
      // A campaign frontier node's last directive is an *unapplied* child
      // step: replaying it may legitimately raise the violation the
      // uninterrupted run would have found at that branch, so the replay
      // records it instead of letting the exception escape. (Parallel-mode
      // prefixes were pre-validated by the frontier builder; for them this
      // also converts a diverged replay into a loud violation.)
      try {
        sim = rebuild();
      } catch (const CheckFailure& e) {
        record_violation(e.what());
        return;
      }
    }
    if (liveness_) seed_onstack();
    dfs(std::move(sim), node.current, node.preemptions, node.crashes_left,
        node.sleep);
  }

  ExplorerResult take_result() { return std::move(result_); }

 private:
  std::unique_ptr<Simulator> fresh() {
    auto sim = std::make_unique<Simulator>(n_, sim_cfg_);
    sim->count_events_into(&result_.steps);
    build_(*sim);
    return sim;
  }

  /// Rebuilds the simulator state for the current `dirs_` prefix by replay.
  std::unique_ptr<Simulator> rebuild() {
    auto sim = fresh();
    for (const Directive& d : dirs_) {
      const bool ok = apply(*sim, d);
      TPA_CHECK(ok, "explorer replay diverged at p" << d.proc);
    }
    return sim;
  }

  /// Reinstates a checkpoint in a fresh simulator — no events re-executed.
  std::unique_ptr<Simulator> revive(const SimSnapshot& snap) {
    auto sim = std::make_unique<Simulator>(n_, sim_cfg_);
    sim->count_events_into(&result_.steps);
    sim->restore(snap, build_);
    result_.restores++;
    return sim;
  }

  /// The visited-set key: the (incrementally maintained) state fingerprint
  /// with `current` folded in, canonicalized by sorting renaming-invariant
  /// per-process signatures when symmetry reduction is on — near-linear in
  /// state size, never an enumeration of renamings.
  Fingerprint state_key(const Simulator& sim, ProcId current) const {
    return symmetric_ ? sim.fingerprint_symmetric(current)
                      : sim.fingerprint(current);
  }

  /// The liveness detector's key: the history-free progress fingerprint (so
  /// abstract states can recur along a run), canonicalized under symmetry
  /// exactly like state_key.
  Fingerprint progress_key(const Simulator& sim, ProcId current) const {
    return symmetric_ ? sim.fingerprint_progress_symmetric(current)
                      : sim.fingerprint_progress(current);
  }

  /// Rebuilds the on-stack index for a frontier node's directive prefix:
  /// the resumed Dfs must see the same stack ancestry the uninterrupted run
  /// had at this node, or a cycle closing against a prefix state would go
  /// undetected after a resume. Replays on an uncounted scratch simulator
  /// (stats of the prefix were already charged before the checkpoint);
  /// depth L is keyed *before* directive L applies, and the node's own key
  /// (depth dirs_.size()) is pushed by dfs() itself. Seeded entries are
  /// never popped: this Dfs never unwinds above its starting node.
  /// Re-anchors the dirty-delta baseline after a sibling's simulator was
  /// materialized: a snapshot revive ends in a full fingerprint rebuild at
  /// this node's state, so the baseline is exactly here; a from-the-root
  /// rebuild() replays without flushing, leaving the flushed state at the
  /// initial machine — nowhere on this path, so the baseline is invalid
  /// until the next keyed node re-establishes one.
  void reanchor_baseline(bool revived, std::size_t depth, ProcId current,
                         std::size_t n_vars) {
    if (revived) {
      baseline_depth_ = depth;
      baseline_current_ = current;
      baseline_nvars_ = n_vars;
    } else {
      baseline_depth_ = kNoBaseline;
    }
  }

  void seed_onstack() {
    onstack_.clear();
    auto sim = std::make_unique<Simulator>(n_, sim_cfg_);
    build_(*sim);
    ProcId current = kNoProc;
    for (std::size_t depth = 0; depth < dirs_.size(); ++depth) {
      onstack_.push(progress_key(*sim, current), depth);
      const Directive& d = dirs_[depth];
      const bool ok = apply(*sim, d);
      TPA_CHECK(ok, "liveness: on-stack seeding diverged at p" << d.proc);
      if (d.kind != ActionKind::kCrash) current = d.proc;
    }
  }

  /// Verifies the candidate cycle dirs_[cycle_start..] — the current node's
  /// progress key matched the stack entry at that depth — by strictly
  /// re-applying it once from the current state, and classifies it by
  /// watching per-process sections (see replay_lasso for the shared
  /// definition). Returns kClean both for genuine progress cycles and for
  /// candidates that fail to re-close (hash collisions, control-point
  /// aliasing) or fail the weak-fairness filter; only kStarvation /
  /// kLivelock verdicts come back. The simulator is restored to its entry
  /// state before returning, whatever the outcome.
  VerdictKind verify_cycle(Simulator& sim, ProcId current,
                           std::size_t cycle_start, const Fingerprint& key,
                           std::string* msg) {
    const std::shared_ptr<const SimSnapshot> snap = take_snapshot(sim);
    std::vector<Status> status0(n_);
    std::vector<char> enabled(n_, 0), scheduled(n_, 0), changed(n_, 0);
    for (std::size_t q = 0; q < n_; ++q) {
      status0[q] = sim.proc(static_cast<ProcId>(q)).status();
      enabled[q] = can_act(sim, static_cast<ProcId>(q)) ? 1 : 0;
    }
    bool closed = true;
    ProcId cur = current;
    for (std::size_t k = cycle_start; k < dirs_.size() && closed; ++k) {
      const Directive& d = dirs_[k];
      bool ok = false;
      try {
        ok = apply(sim, d);
      } catch (const CheckFailure&) {
        ok = false;  // a safety raise here means this is no cycle
      }
      if (!ok) {
        closed = false;
        break;
      }
      if (d.kind != ActionKind::kCrash) cur = d.proc;
      if (d.proc != kNoProc && static_cast<std::size_t>(d.proc) < n_)
        scheduled[static_cast<std::size_t>(d.proc)] = 1;
      for (std::size_t q = 0; q < n_; ++q)
        if (sim.proc(static_cast<ProcId>(q)).status() != status0[q])
          changed[q] = 1;
    }
    if (closed) closed = progress_key(sim, cur) == key;
    if (closed) {
      // Weak fairness: a cycle that perpetually ignores an enabled process
      // describes an unfair scheduler, not the algorithm.
      for (std::size_t q = 0; q < n_; ++q)
        if (enabled[q] && !scheduled[q]) closed = false;
    }
    VerdictKind kind = VerdictKind::kClean;
    if (closed) {
      ProcId starved = kNoProc;
      bool any_change = false;
      for (std::size_t q = 0; q < n_; ++q) {
        any_change |= changed[q] != 0;
        if (status0[q] == Status::kEntry && !changed[q] && starved == kNoProc)
          starved = static_cast<ProcId>(q);
      }
      const std::size_t len = dirs_.size() - cycle_start;
      if (starved != kNoProc) {
        kind = VerdictKind::kStarvation;
        std::ostringstream os;
        os << "liveness: fair cycle of " << len << " steps starves p"
           << starved << " — in the entry section across the whole cycle "
           << "while every enabled process is scheduled";
        *msg = os.str();
      } else if (!any_change) {
        kind = VerdictKind::kLivelock;
        std::ostringstream os;
        os << "liveness: fair cycle of " << len
           << " steps where no process changes section — collective "
           << "livelock";
        *msg = os.str();
      }
    }
    sim.restore(*snap, build_);
    result_.restores++;
    return kind;
  }

  /// Snapshot pooling: a branch point's snapshot dies as soon as its last
  /// sibling restores from it, so the DFS holds only O(depth) snapshots at
  /// a time and their ProcState vectors (buffers, op histories, passages)
  /// can be recycled instead of reallocated at every branch point. Pool
  /// entries are owned by this Dfs; a pooled snapshot never crosses
  /// threads, because Dfs-created snapshots stay inside its own recursion.
  std::shared_ptr<const SimSnapshot> take_snapshot(const Simulator& sim) {
    std::unique_ptr<SimSnapshot> s;
    if (!snap_pool_.empty()) {
      s = std::move(snap_pool_.back());
      snap_pool_.pop_back();
    } else {
      s = std::make_unique<SimSnapshot>();
    }
    sim.snapshot_into(*s);
    result_.snapshots++;
    return {s.release(), [this](const SimSnapshot* p) {
              snap_pool_.emplace_back(const_cast<SimSnapshot*>(p));
            }};
  }

  void record_visited(const Fingerprint& key, const VisitedSet::Budget& b) {
    if (shared_->visited->insert(key, b)) result_.dedup_states++;
  }

  /// Serializes the current checkpoint: baseline + finished-node + this
  /// node's partial stats, and every unexplored subtree root — optionally
  /// the node being entered, then the open levels' pending children
  /// (innermost first — DFS completion order), then the outer frontier.
  void write_checkpoint(bool include_current, ProcId current, int preemptions,
                        int crashes_left) {
    trace::Campaign c = camp_->base;
    c.frontier.clear();
    c.complete = false;
    c.exhausted = true;
    c.verdict = {};
    const ExplorerResult& d = camp_->done;
    c.schedules += d.schedules + result_.schedules;
    c.steps += d.steps + result_.steps;
    c.truncated += d.truncated + result_.truncated;
    c.snapshots += d.snapshots + result_.snapshots;
    c.restores += d.restores + result_.restores;
    c.dedup_hits += d.dedup_hits + result_.dedup_hits;
    c.dedup_states += d.dedup_states + result_.dedup_states;
    if (shared_->visited != nullptr)
      c.dedup_evictions += shared_->visited->evictions();
    if (include_current)
      c.frontier.push_back(
          trace::CampaignNode{current, preemptions, crashes_left, dirs_});
    for (auto lvl = levels_.rbegin(); lvl != levels_.rend(); ++lvl) {
      for (std::size_t k = lvl->next; k < lvl->children.size(); ++k) {
        const PendingChild& ch = lvl->children[k];
        trace::CampaignNode node{
            ch.current, ch.preemptions, ch.crashes_left,
            {dirs_.begin(),
             dirs_.begin() + static_cast<std::ptrdiff_t>(lvl->prefix_len)}};
        node.dirs.push_back(ch.d);
        c.frontier.push_back(std::move(node));
      }
    }
    if (camp_->outer != nullptr)
      for (std::size_t k = camp_->outer_next; k < camp_->outer->size(); ++k)
        c.frontier.push_back((*camp_->outer)[k]);
    trace::write_campaign_file(camp_->path, c);
  }

  /// Periodic checkpoint, rate-limited by the configured interval. Runs at
  /// node entry only (never mid-unwind), where the level stack is a
  /// consistent picture of the remaining work. Self-pacing: a checkpoint
  /// write is fsync-bound and can cost more than the interval itself (slow
  /// or containerized filesystems), and a naive `now - last >= interval`
  /// check then fires at *every* node entry — the exploration starves on
  /// its own durability. Deferring the next write by a multiple of the
  /// last write's measured cost bounds checkpoint overhead at ~20% of wall
  /// clock whatever the filesystem does.
  void maybe_periodic(ProcId current, int preemptions, int crashes_left) {
    const auto start = std::chrono::steady_clock::now();
    if (start < camp_->next_write) return;
    write_checkpoint(/*include_current=*/true, current, preemptions,
                     crashes_left);
    const auto end = std::chrono::steady_clock::now();
    camp_->next_write = end + std::max<std::chrono::steady_clock::duration>(
                                  camp_->interval, (end - start) * 4);
  }

  /// One-time checkpoint when the wall-clock budget trips, taken at the
  /// stop() site that first observes it (the stack is consistent there) so
  /// the suspended campaign loses no more work than one subtree step. Other
  /// stop causes don't suspend: a violation or exhausted schedule budget
  /// ends the campaign terminally in explore_impl.
  void maybe_suspend(bool include_current, ProcId current, int preemptions,
                     int crashes_left) {
    if (camp_ == nullptr || camp_->suspended) return;
    if (!shared_->deadline_tripped.load(std::memory_order_relaxed)) return;
    camp_->suspended = true;
    write_checkpoint(include_current, current, preemptions, crashes_left);
  }

  bool stop() {
    if (result_.verdict.found()) return true;
    if (shared_->beaten(index_)) return true;
    if (shared_->over_budget()) {
      result_.exhausted = false;
      return true;
    }
    if (shared_->past_deadline()) {
      result_.exhausted = false;
      return true;
    }
    return false;
  }

  /// `dirs_` must already end with the violating directive (for step
  /// violations) or hold the complete schedule (for hook violations).
  void record_violation(const char* what) {
    record_verdict(VerdictKind::kSafety, what, kNoCycle);
  }

  /// Generalized verdict recording: `dirs_` is the witness; liveness kinds
  /// mark the lasso's cycle entry via `cycle_start`.
  void record_verdict(VerdictKind kind, std::string what,
                      std::size_t cycle_start) {
    result_.verdict.kind = kind;
    result_.verdict.message = std::move(what);
    result_.verdict.witness = dirs_;
    result_.verdict.cycle_start = cycle_start;
    shared_->claim(index_);
  }

  /// Explores the subtree rooted at the current state. Returns true iff the
  /// subtree was *fully* explored and found violation-free — the only
  /// condition under which its (fingerprint, budget) may enter the visited
  /// set. A truncated node counts as fully explored *for its budget*: the
  /// step cap is part of the budget tuple, so dominance accounts for it.
  /// Insertion is strictly post-order; a concurrent worker can therefore
  /// trust any entry it reads, which keeps cross-thread pruning sound.
  bool dfs(std::unique_ptr<Simulator> sim, ProcId current, int preemptions,
           int crashes_left, SleepSet sleep) {
    if (stop()) {
      maybe_suspend(/*include_current=*/true, current, preemptions,
                    crashes_left);
      return false;
    }
    if (camp_ != nullptr) maybe_periodic(current, preemptions, crashes_left);
    if (dirs_.size() >= cfg_.max_steps) {
      result_.truncated++;
      shared_->charge();
      return true;
    }

    const Options opt =
        enumerate_options(*sim, n_, current, preemptions, crashes_left);

    // Liveness: if this node's progress key is already on the DFS stack,
    // the suffix dirs_[depth..] is a candidate fair cycle — verify it by
    // re-application and classify. Checked at *every* node (unlike dedup's
    // branch/stride engagement): a cycle can close anywhere along a forced
    // chain. Runs before the subsumed() prune so a revisit that would be
    // pruned still gets its closure checked at this node.
    //
    // Liveness keying is throttled by a *dirty-delta baseline*: the
    // explorer tracks which ancestor's state the simulator's incremental
    // fingerprint was last flushed at, and proves "this node's progress
    // state equals that ancestor's" by recomparing the dirtied live blobs
    // — never flushing, never finalizing a key. Three node classes emerge:
    //
    //  - closes-on-baseline: the delta is empty, so this node revisits the
    //    baseline ancestor's abstract state. The suffix dirs_[base..] is a
    //    candidate fair cycle, checked by the same pre-filter + verifier
    //    as a map hit; the key is finalized only when the candidate is
    //    actually fair (rare). The spin chains that dominate forced
    //    suffixes resolve here: a 1-read spin closes on its parent, a
    //    2-read spin (tournament-style) settles into a skip/close
    //    alternation — either way zero flushes and zero map traffic.
    //  - skip: the delta is non-empty, fewer than kLiveKeyStride nodes
    //    were skipped since the last check, and dedup is not flushing here
    //    anyway — defer. Deferring is what lets short-period spins close
    //    instead of dragging the baseline along phase by phase; a cycle
    //    that would have closed at a skipped node closes at a later keyed
    //    recurrence of its key instead. A real fair cycle repeats forever,
    //    so a keying cadence of every <= kLiveKeyStride+1 unequal nodes
    //    still meets it — detection shifts by at most a few periods (the
    //    two cadences must realign, lcm-style), and the verified witness
    //    may span multiple laps, which shrinking then trims.
    //  - keyed (at the root, at every dedup node, and at least every
    //    kLiveKeyStride+1 nodes in between): flush, finalize, and consult
    //    the on-stack index. Aligning with dedup nodes makes most keys
    //    piggyback on a flush the dedup key pays for regardless. The push
    //    doubles as the lookup (one probe, not two): it binds this node's
    //    key to this depth — displacing any shallower binding, so
    //    descendants close against the *nearest* occurrence — and returns
    //    the previous binding, which is exactly the candidate cycle's
    //    start.
    //
    // The delta comparison stays valid across the flushes other machinery
    // interleaves: a dedup key at a stride node consumes the delta, and a
    // restore between siblings rebuilds from scratch — both re-anchor the
    // baseline at the node that caused them, and both sites update the
    // explorer's bookkeeping. Variable allocation moves the baseline
    // outside the dirty lists, so the var count is compared across the
    // step as well. A stale anchor (should one slip through) cannot
    // produce a false verdict: every candidate is re-applied strictly and
    // must re-close under the finalized key before it is reported.
    //
    // The pops below only run on the paths that complete this subtree;
    // every `return false` in between is a sticky stop (violation, budget,
    // deadline, beaten) after which this Dfs never recurses again, so a
    // stale binding can never be consulted.
    Fingerprint pkey{};
    std::size_t pkey_prev = OnStackMap::kNotOnStack;
    bool pkey_pushed = false;
    const std::size_t node_depth = dirs_.size();
    const std::size_t node_nvars = sim->n_vars();
    const bool dedup_here =
        dedup_ && (opt.options.size() + opt.crash_cand.size() > 1 ||
                   node_depth % kChainStride == 0);
    if (liveness_) {
      std::size_t anc = OnStackMap::kNotOnStack;
      bool have_pkey = false;
      bool checked = false;
      if (baseline_depth_ < node_depth && current == baseline_current_ &&
          node_nvars == baseline_nvars_ &&
          sim->progress_unchanged_since_baseline()) {
        anc = baseline_depth_;
        checked = true;
        // The flushed caches describe a progress state this node was just
        // proven to share, so the baseline label can move here: windows
        // stay one period wide (the nearest occurrence, not the oldest),
        // which keeps candidate cycles single-lap and the fairness filter
        // tight.
        baseline_depth_ = node_depth;
      } else if (!dedup_here && skips_since_check_ < kLiveKeyStride) {
        skips_since_check_++;
      } else {
        pkey = progress_key(*sim, current);
        have_pkey = true;
        baseline_depth_ = node_depth;
        baseline_current_ = current;
        baseline_nvars_ = node_nvars;
        pkey_prev = onstack_.push(pkey, node_depth);
        pkey_pushed = true;
        if (pkey_prev != OnStackMap::kNotOnStack && pkey_prev < node_depth)
          anc = pkey_prev;
        checked = true;
      }
      if (checked) {
        skips_since_check_ = 0;
        if (anc != OnStackMap::kNotOnStack) {
          // Cheap weak-fairness pre-filter before the expensive snapshot +
          // re-application: can_act() reads only fields the progress blob
          // captures, so the enabled set at the cycle's entry equals the
          // enabled set at its closing end — opt.cand, already enumerated.
          // A closure that never schedules some enabled process (the
          // ubiquitous spin-loop revisit) is unfair and rejected from the
          // directive suffix alone; without this filter verification
          // dominates the wall clock on clean scopes (~20x, not the
          // budgeted <10%).
          // "p was scheduled in dirs_[anc..)" == "p's most recent directive
          // is at depth >= anc" — last_sched_ keeps exactly that (as
          // depth+1, 0 = never), maintained O(1) per step with an undo on
          // backtrack, so the filter costs O(|cand|) however wide the
          // candidate window has grown.
          bool maybe_fair = node_depth - anc >= opt.cand.size();
          for (std::size_t c = 0; maybe_fair && c < opt.cand.size(); ++c)
            maybe_fair = last_sched_[opt.cand[c]] > anc;
          if (maybe_fair) {
            if (!have_pkey) {
              pkey = progress_key(*sim, current);
              baseline_depth_ = node_depth;
              baseline_current_ = current;
              baseline_nvars_ = node_nvars;
            }
            std::string msg;
            const VerdictKind kind =
                verify_cycle(*sim, current, anc, pkey, &msg);
            if (kind != VerdictKind::kClean) {
              record_verdict(kind, std::move(msg), anc);
              return false;
            }
          }
        }
      }
    }

    // Dedup engages at *branch* nodes (two or more children) and at every
    // kChainStride-th depth along forced chains, not at every node. A chain
    // node's subtree is determined by its single forced move, so a
    // convergent path is still pruned within at most kChainStride forced
    // steps of where per-node checking would have caught it — while the
    // fingerprint + two probes per machine event used to dominate the wall
    // clock (the visited set saw ~60x more traffic than it had branch
    // nodes). Checking branch nodes alone is not enough: once the
    // preemption budget is spent, whole suffixes become forced chains and
    // low-budget scopes (recoverable-2p) lose nearly all their pruning.
    // Soundness is untouched either way: pruning any fully-explored
    // violation-free subtree is sound no matter at which nodes the check
    // happens to run, and the engagement rule is a deterministic function
    // of the node (child count, depth), so verdicts stay reproducible.
    Fingerprint key{};
    const VisitedSet::Budget budget{preemptions, crashes_left,
                                    cfg_.max_steps - dirs_.size()};
    if (dedup_here) {
      key = state_key(*sim, current);
      if (liveness_) {
        // The dedup key's flush consumed the dirty delta: the baseline the
        // liveness fast path compares against is now this node.
        baseline_depth_ = node_depth;
        baseline_current_ = current;
        baseline_nvars_ = node_nvars;
      }
      if (shared_->visited->subsumed(key, budget)) {
        // A previous visit fully explored this state, violation-free, with
        // at least our remaining budgets: nothing below can be new, and
        // nothing below can violate — so pruning cannot change the verdict
        // or the first-in-DFS-order witness.
        result_.dedup_hits++;
        if (pkey_pushed) onstack_.pop(pkey, pkey_prev);
        return true;
      }
    }

    if (opt.cand.empty()) {
      // Liveness: no candidate can act, yet some process has neither run to
      // completion nor crashed away — a deadlock, not a complete schedule.
      // (A crashed process with a recovery section would still be a
      // candidate, so its absence here is terminal.) The stem alone is the
      // witness: there is no cycle to mark.
      if (liveness_) {
        for (std::size_t q = 0; q < n_; ++q) {
          const Proc& proc = sim->proc(static_cast<ProcId>(q));
          if (!proc.done() && !proc.crashed()) {
            std::ostringstream os;
            os << "liveness: deadlock — p" << q << " has not completed but "
               << "no process can take a step";
            record_verdict(VerdictKind::kDeadlock, os.str(), kNoCycle);
            return false;
          }
        }
      }
      result_.schedules++;  // a complete schedule: everyone done & drained
      shared_->charge();
      if (cfg_.on_complete) {
        try {
          cfg_.on_complete(*sim);
        } catch (const CheckFailure& e) {
          record_violation(e.what());
          return false;
        }
      }
      if (dedup_here) record_visited(key, budget);
      if (pkey_pushed) onstack_.pop(pkey, pkey_prev);
      return true;
    }

    // Signatures are taken at the node's state, before any child consumes
    // the simulator; sleeping processes have not stepped since their entry
    // was recorded, so their stored signatures stay valid.
    std::vector<ActionSig> sigs;
    if (cfg_.sleep_sets) {
      sigs.reserve(opt.options.size());
      for (ProcId p : opt.options) sigs.push_back(action_sig(*sim, p));
    }

    // Branch point: checkpoint once, then every sibling after the first
    // restores from here instead of replaying `dirs_` from the root.
    std::shared_ptr<const SimSnapshot> snap;
    if (cfg_.checkpoint && opt.options.size() + opt.crash_cand.size() > 1)
      snap = take_snapshot(*sim);

    // Campaign mode: materialize this branch point's children now, while
    // the parent state is intact — directives and budgets exactly as the
    // loops below will compute them — so a checkpoint taken anywhere in the
    // subtree can serialize the still-pending siblings.
    if (camp_ != nullptr) {
      Level lvl;
      lvl.prefix_len = dirs_.size();
      lvl.children.reserve(opt.options.size() + opt.crash_cand.size());
      for (const ProcId p : opt.options) {
        const int cost = (opt.current_runnable && p != current) ? 1 : 0;
        lvl.children.push_back(
            PendingChild{make_directive(*sim, p), p, preemptions - cost,
                         crashes_left});
      }
      for (const ProcId p : opt.crash_cand)
        lvl.children.push_back(PendingChild{
            Directive{ActionKind::kCrash, p}, current, preemptions,
            crashes_left - 1});
      levels_.push_back(std::move(lvl));
    }

    for (std::size_t i = 0; i < opt.options.size(); ++i) {
      if (stop()) {
        maybe_suspend(/*include_current=*/false, current, preemptions,
                      crashes_left);
        return false;
      }
      if (camp_ != nullptr) levels_.back().next = i + 1;
      const ProcId p = opt.options[i];
      if (cfg_.sleep_sets &&
          std::any_of(sleep.begin(), sleep.end(),
                      [p](const SleepEntry& e) { return e.proc == p; })) {
        continue;  // equivalent to an explored schedule where p moves later
      }
      SleepSet child_sleep;
      if (cfg_.sleep_sets)
        for (const SleepEntry& e : sleep)
          if (independent(e.sig, sigs[i])) child_sleep.push_back(e);
      if (sim == nullptr) {  // a previous child consumed it
        sim = snap != nullptr ? revive(*snap) : rebuild();
        if (liveness_) reanchor_baseline(snap != nullptr, node_depth, current,
                                         node_nvars);
      }
      const Directive d = make_directive(*sim, p);
      try {
        const bool ok = apply(*sim, d);
        TPA_CHECK(ok, "candidate p" << p << " could not act");
      } catch (const CheckFailure& e) {
        dirs_.push_back(d);
        record_violation(e.what());
        return false;
      }
      dirs_.push_back(d);
      const std::size_t prev_sched = last_sched_[p];
      last_sched_[p] = dirs_.size();
      const int cost = (opt.current_runnable && p != current) ? 1 : 0;
      const bool child_complete = dfs(std::move(sim), p, preemptions - cost,
                                      crashes_left, std::move(child_sleep));
      dirs_.pop_back();
      last_sched_[p] = prev_sched;
      sim = nullptr;
      // An incomplete child means a sticky stop condition (violation,
      // budget, deadline, beaten) ended it mid-subtree: this subtree is not
      // fully explored either, so it must never enter the visited set.
      if (!child_complete) return false;
      if (cfg_.sleep_sets) sleep.push_back({p, sigs[i]});
    }

    // Crash branches, after all scheduling branches. A crash is an
    // adversary move, not a context switch: it costs no preemption and
    // leaves `current` in place. It is dependent with everything (memory
    // and buffers change wholesale), so crash children start with an empty
    // sleep set and are never themselves sleep-pruned.
    for (std::size_t j = 0; j < opt.crash_cand.size(); ++j) {
      const ProcId p = opt.crash_cand[j];
      if (stop()) {
        maybe_suspend(/*include_current=*/false, current, preemptions,
                      crashes_left);
        return false;
      }
      if (camp_ != nullptr) levels_.back().next = opt.options.size() + j + 1;
      if (sim == nullptr) {  // a previous child consumed it
        sim = snap != nullptr ? revive(*snap) : rebuild();
        if (liveness_) reanchor_baseline(snap != nullptr, node_depth, current,
                                         node_nvars);
      }
      const Directive d{ActionKind::kCrash, p};
      try {
        const bool ok = apply(*sim, d);
        TPA_CHECK(ok, "crash candidate p" << p << " could not crash");
      } catch (const CheckFailure& e) {
        dirs_.push_back(d);
        record_violation(e.what());
        return false;
      }
      dirs_.push_back(d);
      const std::size_t prev_sched = last_sched_[p];
      last_sched_[p] = dirs_.size();
      const bool child_complete =
          dfs(std::move(sim), current, preemptions, crashes_left - 1, {});
      dirs_.pop_back();
      last_sched_[p] = prev_sched;
      sim = nullptr;
      if (!child_complete) return false;
    }

    if (camp_ != nullptr) levels_.pop_back();
    if (pkey_pushed) onstack_.pop(pkey, pkey_prev);
    if (dedup_here) record_visited(key, budget);
    return true;
  }

  std::size_t n_;
  SimConfig sim_cfg_;
  const ScenarioBuilder& build_;
  const ExplorerConfig& cfg_;
  Shared* shared_;
  std::size_t index_;
  CampaignRecorder* camp_ = nullptr;
  bool dedup_ = false;
  bool symmetric_ = false;
  bool liveness_ = false;
  /// Recycled branch-point snapshots (see take_snapshot).
  std::vector<std::unique_ptr<SimSnapshot>> snap_pool_;
  std::vector<Directive> dirs_;
  ExplorerResult result_;
  /// Campaign mode: one entry per open branch point of the recursion.
  std::vector<Level> levels_;
  /// Liveness mode: progress key → depth of the nearest stack occurrence.
  OnStackMap onstack_;
  /// Where the simulator's flushed fingerprint baseline sits on the
  /// current DFS path: the ancestor's depth, scheduled process, and
  /// variable count. Together with the dirty-delta check these prove a
  /// node revisits the baseline ancestor's progress state without
  /// flushing or finalizing a key (see the liveness classes in dfs()).
  /// kNoBaseline marks "not on this path" (fresh root, replayed rebuild).
  static constexpr std::size_t kNoBaseline = ~std::size_t{0};
  std::size_t baseline_depth_ = kNoBaseline;
  ProcId baseline_current_ = kNoProc;
  std::size_t baseline_nvars_ = 0;
  /// Consecutive nodes on the path that were neither keyed nor checked
  /// against the baseline. Keying engages when it reaches kLiveKeyStride —
  /// or sooner at a dedup node, where the key's flush is already paid —
  /// bounding unkeyed runs. Starts saturated so roots are always keyed.
  static constexpr std::size_t kLiveKeyStride = 3;
  std::size_t skips_since_check_ = kLiveKeyStride;
  /// last_sched_[p] = 1 + depth of p's most recent directive on the current
  /// path (0 = not yet scheduled); the child loops save/restore around each
  /// recursion. Powers the O(|cand|) weak-fairness pre-filter.
  std::vector<std::size_t> last_sched_;
};

/// Explores a campaign's frontier nodes in DFS order, each in a fresh Dfs.
/// The first violation wins (matching first-in-DFS-order semantics) and a
/// tripped schedule or wall-clock budget abandons the remaining nodes, so
/// the aggregate is exactly what an uninterrupted sequential run reports.
ExplorerResult run_campaign_nodes(std::size_t n_procs, const SimConfig& eff,
                                  const ScenarioBuilder& build,
                                  const ExplorerConfig& config, Shared* shared,
                                  CampaignRecorder* camp,
                                  const std::vector<trace::CampaignNode>& nodes) {
  ExplorerResult total;
  camp->outer = &nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    camp->outer_next = i + 1;
    Dfs dfs(n_procs, eff, build, config, shared, 0, camp);
    dfs.run_from(Node{nodes[i].dirs, nodes[i].current, nodes[i].preemptions,
                      nodes[i].crashes_left, {}, nullptr});
    ExplorerResult sub = dfs.take_result();
    total.schedules += sub.schedules;
    total.steps += sub.steps;
    total.truncated += sub.truncated;
    total.snapshots += sub.snapshots;
    total.restores += sub.restores;
    total.dedup_hits += sub.dedup_hits;
    total.dedup_states += sub.dedup_states;
    camp->done = total;
    if (sub.verdict.found()) {
      total.verdict = std::move(sub.verdict);
      break;
    }
    if (!sub.exhausted) {
      total.exhausted = false;
      break;
    }
  }
  return total;
}

// ---- frontier partitioning for the parallel mode -------------------------

/// Expands the root into a frontier of subtree prefixes, kept in DFS order
/// (each expansion replaces a node, in place, by its ordered children), so
/// the frontier index is a DFS-order key. Leaves reached during expansion —
/// complete or truncated schedules — are handled inline with exactly the
/// DFS' accounting; a violation or exhausted budget ends the whole
/// exploration here, with an empty frontier.
class FrontierBuilder {
 public:
  FrontierBuilder(std::size_t n_procs, const SimConfig& sim_config,
                  const ScenarioBuilder& build, const ExplorerConfig& config,
                  Shared* shared)
      : n_(n_procs),
        sim_cfg_(sim_config),
        build_(build),
        cfg_(config),
        shared_(shared) {}

  std::vector<Node> build(std::size_t target) {
    std::list<Node> nodes;
    nodes.push_back(
        Node{{}, kNoProc, cfg_.preemptions, cfg_.max_crashes, {}, nullptr});
    // Each expansion costs O(branching × depth) replay steps (O(branching)
    // restores in checkpoint mode); the cap only guards against degenerate
    // chains (branching 1) eating the pre-pass.
    std::size_t expansions = 0;
    const std::size_t max_expansions = target * 64 + 256;
    while (!done_ && !nodes.empty() && nodes.size() < target &&
           expansions < max_expansions) {
      auto best = nodes.begin();
      for (auto it = std::next(nodes.begin()); it != nodes.end(); ++it)
        if (it->dirs.size() < best->dirs.size()) best = it;
      expand(nodes, best);
      ++expansions;
    }
    if (done_) return {};
    return {std::make_move_iterator(nodes.begin()),
            std::make_move_iterator(nodes.end())};
  }

  ExplorerResult take_result() { return std::move(result_); }

 private:
  std::unique_ptr<Simulator> fresh() {
    auto sim = std::make_unique<Simulator>(n_, sim_cfg_);
    sim->count_events_into(&result_.steps);
    build_(*sim);
    return sim;
  }

  std::unique_ptr<Simulator> rebuild(const std::vector<Directive>& dirs) {
    auto sim = fresh();
    for (const Directive& d : dirs) {
      const bool ok = apply(*sim, d);
      TPA_CHECK(ok, "frontier replay diverged at p" << d.proc);
    }
    return sim;
  }

  std::unique_ptr<Simulator> revive(const SimSnapshot& snap) {
    auto sim = std::make_unique<Simulator>(n_, sim_cfg_);
    sim->count_events_into(&result_.steps);
    sim->restore(snap, build_);
    result_.restores++;
    return sim;
  }

  void violation(std::vector<Directive> witness, const char* what) {
    result_.verdict.kind = VerdictKind::kSafety;
    result_.verdict.message = what;
    result_.verdict.witness = std::move(witness);
    done_ = true;
  }

  void expand(std::list<Node>& nodes, std::list<Node>::iterator it) {
    Node node = std::move(*it);
    const auto pos = nodes.erase(it);
    if (shared_->over_budget() || shared_->past_deadline()) {
      result_.exhausted = false;
      done_ = true;
      return;
    }
    if (node.dirs.size() >= cfg_.max_steps) {
      result_.truncated++;
      shared_->charge();
      return;
    }
    const bool use_snap = cfg_.checkpoint;
    auto sim = (use_snap && node.snap != nullptr) ? revive(*node.snap)
                                                  : rebuild(node.dirs);
    const Options opt = enumerate_options(*sim, n_, node.current,
                                          node.preemptions, node.crashes_left);
    if (opt.cand.empty()) {
      result_.schedules++;
      shared_->charge();
      if (cfg_.on_complete) {
        try {
          cfg_.on_complete(*sim);
        } catch (const CheckFailure& e) {
          violation(node.dirs, e.what());
        }
      }
      return;
    }

    std::vector<ActionSig> sigs;
    if (cfg_.sleep_sets) {
      sigs.reserve(opt.options.size());
      for (ProcId p : opt.options) sigs.push_back(action_sig(*sim, p));
    }

    // The parent state every child probe starts from.
    std::shared_ptr<const SimSnapshot> parent_snap = node.snap;
    if (use_snap && parent_snap == nullptr) {
      parent_snap = std::make_shared<const SimSnapshot>(sim->snapshot());
      result_.snapshots++;
    }

    SleepSet running = node.sleep;
    for (std::size_t i = 0; i < opt.options.size(); ++i) {
      const ProcId p = opt.options[i];
      if (cfg_.sleep_sets &&
          std::any_of(running.begin(), running.end(),
                      [p](const SleepEntry& e) { return e.proc == p; }))
        continue;
      Node child;
      child.dirs = node.dirs;
      child.current = p;
      const int cost = (opt.current_runnable && p != node.current) ? 1 : 0;
      child.preemptions = node.preemptions - cost;
      child.crashes_left = node.crashes_left;
      if (cfg_.sleep_sets) {
        for (const SleepEntry& e : running)
          if (independent(e.sig, sigs[i])) child.sleep.push_back(e);
        running.push_back({p, sigs[i]});
      }
      // Validate the child's first step now so workers can never hit a
      // violation while reinstating a frontier prefix.
      auto probe =
          use_snap ? revive(*parent_snap) : rebuild(node.dirs);
      const Directive d = make_directive(*probe, p);
      try {
        const bool ok = apply(*probe, d);
        TPA_CHECK(ok, "candidate p" << p << " could not act");
      } catch (const CheckFailure& e) {
        child.dirs.push_back(d);
        violation(std::move(child.dirs), e.what());
        return;
      }
      child.dirs.push_back(d);
      if (use_snap) {
        child.snap = std::make_shared<const SimSnapshot>(probe->snapshot());
        result_.snapshots++;
      }
      nodes.insert(pos, std::move(child));
    }

    // Crash children, mirroring Dfs::dfs: after all scheduling children,
    // no preemption cost, `current` unchanged, empty sleep set.
    for (const ProcId p : opt.crash_cand) {
      Node child;
      child.dirs = node.dirs;
      child.current = node.current;
      child.preemptions = node.preemptions;
      child.crashes_left = node.crashes_left - 1;
      auto probe = use_snap ? revive(*parent_snap) : rebuild(node.dirs);
      const Directive d{ActionKind::kCrash, p};
      try {
        const bool ok = apply(*probe, d);
        TPA_CHECK(ok, "crash candidate p" << p << " could not crash");
      } catch (const CheckFailure& e) {
        child.dirs.push_back(d);
        violation(std::move(child.dirs), e.what());
        return;
      }
      child.dirs.push_back(d);
      if (use_snap) {
        child.snap = std::make_shared<const SimSnapshot>(probe->snapshot());
        result_.snapshots++;
      }
      nodes.insert(pos, std::move(child));
    }
  }

  std::size_t n_;
  SimConfig sim_cfg_;
  const ScenarioBuilder& build_;
  const ExplorerConfig& cfg_;
  Shared* shared_;
  bool done_ = false;
  ExplorerResult result_;
};

ExplorerResult explore_parallel(std::size_t n_procs, SimConfig sim_config,
                                const ScenarioBuilder& build,
                                const ExplorerConfig& config, Shared* shared) {
  FrontierBuilder fb(n_procs, sim_config, build, config, shared);
  const auto target = static_cast<std::size_t>(config.threads) * 8;
  std::vector<Node> frontier = fb.build(target);
  ExplorerResult result = fb.take_result();
  if (result.verdict.found() || frontier.empty()) return result;

  std::vector<ExplorerResult> sub(frontier.size());
  parallel_for_index(
      frontier.size(), config.threads, [&](std::size_t i) {
        if (shared->beaten(i)) return;  // a smaller index already won
        Dfs dfs(n_procs, sim_config, build, config, shared, i);
        try {
          dfs.run_from(frontier[i]);
          sub[i] = dfs.take_result();
        } catch (const CheckFailure& e) {
          // A diverged prefix replay: the builder is schedule-dependent.
          // Surface it loudly as a (deterministically claimed) violation.
          sub[i].verdict.kind = VerdictKind::kSafety;
          sub[i].verdict.message = e.what();
          shared->claim(i);
        }
      });

  auto winner = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < sub.size(); ++i) {
    result.schedules += sub[i].schedules;
    result.truncated += sub[i].truncated;
    result.steps += sub[i].steps;
    result.snapshots += sub[i].snapshots;
    result.restores += sub[i].restores;
    result.dedup_hits += sub[i].dedup_hits;
    result.dedup_states += sub[i].dedup_states;
    if (!sub[i].exhausted) result.exhausted = false;
    if (sub[i].verdict.found() && i < winner) winner = i;
  }
  if (winner != std::numeric_limits<std::size_t>::max())
    result.verdict = std::move(sub[winner].verdict);
  if (shared->over.load(std::memory_order_relaxed)) result.exhausted = false;
  return result;
}

/// Structural sanity check for SymmetryMode::kCanonical: probes the freshly
/// built initial state and rejects scenarios that are visibly *not* invariant
/// under process renaming. Necessarily incomplete (a program can branch on
/// its pid arbitrarily late), so runtime::Scenario additionally gates
/// symmetry on an explicit declaration; this catches the obvious misuses —
/// per-process initial ops, DSM-owned variables, partial recovery sections.
void validate_symmetric_scenario(std::size_t n_procs, const SimConfig& cfg,
                                 const ScenarioBuilder& build) {
  Simulator probe(n_procs, cfg);
  build(probe);
  for (const ProcId owner : probe.var_owners())
    TPA_CHECK(owner == kNoProc,
              "symmetric_processes: scenario allocates a DSM variable owned "
              "by p" << owner << " — per-process memory segments are not "
              "invariant under process renaming");
  const Proc& first = probe.proc(0);
  const bool recovery0 = probe.has_recovery(0);
  for (std::size_t p = 0; p < n_procs; ++p) {
    const Proc& proc = probe.proc(static_cast<ProcId>(p));
    TPA_CHECK(proc.has_pending() && first.has_pending(),
              "symmetric_processes: p" << p << " has no initial pending op");
    const SimOp& a = first.pending();
    const SimOp& b = proc.pending();
    TPA_CHECK(a.kind == b.kind && a.var == b.var && a.value == b.value &&
                  a.expected == b.expected,
              "symmetric_processes: p" << p << "'s first op differs from "
              "p0's — the programs are not invariant under process renaming");
    TPA_CHECK(probe.has_recovery(static_cast<ProcId>(p)) == recovery0,
              "symmetric_processes: recovery sections are not uniform "
              "across processes");
  }
}

/// The campaign header's identity + config fields for a fresh campaign
/// (baseline stats all zero).
trace::Campaign campaign_identity(std::size_t n_procs, const SimConfig& sim,
                                  const ExplorerConfig& cfg) {
  trace::Campaign c;
  c.scenario = cfg.campaign_scenario;
  c.n_procs = n_procs;
  c.pso = sim.pso;
  c.crash_model = sim.crash_model;
  c.preemptions = cfg.preemptions;
  c.max_steps = cfg.max_steps;
  c.max_schedules = cfg.max_schedules;
  c.max_crashes = cfg.max_crashes;
  c.dedup = cfg.dedup;
  c.symmetry = cfg.symmetric_processes;
  c.liveness = cfg.liveness;
  c.dedup_max_bytes = cfg.dedup_max_bytes;
  c.shrink = cfg.shrink;
  c.checkpoint = cfg.checkpoint;
  return c;
}

/// The whole exploration, fresh or resumed: `loaded` carries a resumed
/// campaign's baseline stats and frontier (null for explore()).
ExplorerResult explore_impl(std::size_t n_procs, SimConfig sim_config,
                            const ScenarioBuilder& build,
                            const ExplorerConfig& config,
                            const trace::Campaign* loaded) {
  // With no per-schedule hook the exploration only counts schedules and
  // checks exclusion: run the bare core (plus ExclusionChecker) and log
  // directives in the explorer itself — no trace, awareness or cost
  // bookkeeping on the hot path. A hook gets the caller's instrumentation
  // unchanged, since it may inspect costs, awareness or the trace.
  SimConfig eff = sim_config;
  if (!config.on_complete) {
    eff.track_awareness = false;
    eff.record_trace = false;
    eff.track_costs = false;
  }

  if (config.dedup != DedupMode::kOff) {
    // The fingerprint deliberately excludes observers, traces and cost
    // counters: a hook may inspect exactly that state, so two states the
    // fingerprint merges could still differ under the hook's invariant.
    TPA_CHECK(!config.on_complete,
              "dedup: on_complete hooks may inspect observer/trace state "
              "outside the fingerprint — combine is rejected as unsound");
    // A sleep set is path context (which siblings were already explored),
    // not machine state; merging states with different sleep sets could
    // prune schedules the earlier visit never covered.
    TPA_CHECK(!config.sleep_sets,
              "dedup: sleep sets are path context outside the fingerprint — "
              "combine is rejected as unsound");
  }
  if (config.symmetric_processes == SymmetryMode::kCanonical) {
    TPA_CHECK(config.dedup == DedupMode::kState,
              "symmetric_processes requires dedup = DedupMode::kState (it "
              "only canonicalizes visited-set fingerprints)");
    validate_symmetric_scenario(n_procs, eff, build);
  }
  if (config.liveness == LivenessMode::kCheck) {
    // Cycle detection rides on the state graph the visited set materializes;
    // without dedup the DFS would also re-traverse convergent paths and the
    // on-stack map alone could not bound the work.
    TPA_CHECK(config.dedup == DedupMode::kState,
              "liveness: fair-cycle detection requires dedup = "
              "DedupMode::kState (the visited set materializes the state "
              "graph the cycles live on)");
    // Parallel workers revive mid-tree from snapshots: they hold neither
    // the DFS stack nor the prefix states a cycle could close into.
    TPA_CHECK(config.threads <= 1,
              "liveness: cycle detection needs the sequential DFS stack — "
              "run with threads == 1");
  }
  const bool campaign = !config.campaign_path.empty();
  if (campaign) {
    // The checkpoint partitions the *sequential* DFS; the parallel mode has
    // its own frontier machinery and no single consistent recursion stack.
    TPA_CHECK(config.threads <= 1,
              "campaign: checkpointing serializes the sequential DFS "
              "frontier — run with threads == 1 (resume legs may still pick "
              "any wall-clock budget)");
    // A hook is process-local state (closures, captured observers) that a
    // resuming process cannot reinstate from a file.
    TPA_CHECK(!config.on_complete,
              "campaign: on_complete hooks are process-local state a resume "
              "cannot reinstate — combine is rejected");
    // A sleep set is path context that keeps *growing* after a frontier
    // node is serialized; a resumed node would miss the later entries and
    // explore schedules the uninterrupted run pruned, breaking count
    // parity. Rejected rather than silently inexact.
    TPA_CHECK(!config.sleep_sets,
              "campaign: sleep sets are path context accumulated after a "
              "frontier node is serialized — combine is rejected");
  }

  Shared shared(config.max_schedules, config.time_budget_ms);
  if (loaded != nullptr)
    shared.used.store(loaded->schedules + loaded->truncated,
                      std::memory_order_relaxed);
  if (config.dedup != DedupMode::kOff)
    shared.visited = std::make_unique<VisitedSet>(config.threads > 1,
                                                  config.dedup_max_bytes);
  ExplorerResult result;
  CampaignRecorder camp;
  if (campaign) {
    camp.path = config.campaign_path;
    camp.interval = std::chrono::milliseconds(config.checkpoint_interval_ms);
    camp.base = loaded != nullptr
                    ? *loaded
                    : campaign_identity(n_procs, sim_config, config);
    camp.base.frontier.clear();
    camp.next_write = std::chrono::steady_clock::now() + camp.interval;
    std::vector<trace::CampaignNode> nodes;
    if (loaded != nullptr) {
      nodes = loaded->frontier;
    } else {
      // Publish the root frontier before the first step: a kill at any
      // later point finds a resumable file (and resuming from the root is
      // simply the whole exploration).
      nodes.push_back(trace::CampaignNode{kNoProc, config.preemptions,
                                          config.max_crashes, {}});
      trace::Campaign init = camp.base;
      init.frontier = nodes;
      trace::write_campaign_file(camp.path, init);
    }
    result =
        run_campaign_nodes(n_procs, eff, build, config, &shared, &camp, nodes);
    result.schedules += camp.base.schedules;
    result.steps += camp.base.steps;
    result.truncated += camp.base.truncated;
    result.snapshots += camp.base.snapshots;
    result.restores += camp.base.restores;
    result.dedup_hits += camp.base.dedup_hits;
    result.dedup_states += camp.base.dedup_states;
  } else if (config.threads <= 1) {
    Dfs dfs(n_procs, eff, build, config, &shared, 0);
    dfs.run_root();
    result = dfs.take_result();
  } else {
    result = explore_parallel(n_procs, eff, build, config, &shared);
  }

  if (shared.deadline_tripped.load(std::memory_order_relaxed)) {
    result.deadline_hit = true;
    result.exhausted = false;
  }
  if (shared.visited != nullptr) {
    result.dedup_entries = shared.visited->entries();
    result.dedup_bytes = shared.visited->bytes();
    result.dedup_evictions = shared.visited->evictions();
  }
  if (campaign) result.dedup_evictions += camp.base.dedup_evictions;
  Verdict& v = result.verdict;
  if (v.found() && config.shrink && !v.witness.empty()) {
    if (v.is_lasso()) {
      // Lasso witnesses shrink stem and cycle independently; the oracle
      // checks the cycle still closes under the progress fingerprint and
      // the verdict kind is preserved (see tso/fuzz.h).
      LassoShrinkOutcome shrunk = shrink_lasso(n_procs, eff, build, v.witness,
                                               v.cycle_start, v.kind);
      if (shrunk.witness.size() < v.witness.size()) {
        v.raw_witness = std::move(v.witness);
        v.witness = std::move(shrunk.witness);
        v.cycle_start = shrunk.cycle_start;
      }
    } else if (v.kind == VerdictKind::kSafety) {
      // Deadlock witnesses stay unshrunk: their oracle is "no enabled
      // transition", which lenient replay cannot observe as a CheckFailure.
      ShrinkOutcome shrunk = shrink_witness(n_procs, eff, build, v.witness,
                                            config.on_complete);
      if (shrunk.witness.size() < v.witness.size()) {
        v.raw_witness = std::move(v.witness);
        v.witness = std::move(shrunk.witness);
      }
    }
  }
  if (campaign && !result.deadline_hit) {
    // Terminal record: complete, empty frontier, final (shrunk) witness.
    // A deadline-suspended run instead leaves the checkpoint written at the
    // trip standing, so the campaign stays resumable. Resuming a terminal
    // campaign returns this record without re-exploring.
    trace::Campaign fin = camp.base;
    fin.frontier.clear();
    fin.schedules = result.schedules;
    fin.steps = result.steps;
    fin.truncated = result.truncated;
    fin.snapshots = result.snapshots;
    fin.restores = result.restores;
    fin.dedup_hits = result.dedup_hits;
    fin.dedup_states = result.dedup_states;
    fin.dedup_evictions = result.dedup_evictions;
    fin.complete = true;
    fin.exhausted = result.exhausted;
    fin.verdict = result.verdict;
    trace::write_campaign_file(config.campaign_path, fin);
  }
  return result;
}

}  // namespace

ExplorerResult explore(std::size_t n_procs, SimConfig sim_config,
                       const ScenarioBuilder& build, ExplorerConfig config) {
  return explore_impl(n_procs, std::move(sim_config), build, config, nullptr);
}

ExplorerResult resume(const std::string& campaign_path, std::size_t n_procs,
                      SimConfig sim_config, const ScenarioBuilder& build,
                      const ResumeOptions& options) {
  const trace::Campaign c = trace::read_campaign_file(campaign_path);
  TPA_CHECK(c.n_procs == n_procs, "resume: campaign records "
                                      << c.n_procs << " processes, caller "
                                      << "supplies " << n_procs);
  TPA_CHECK(c.pso == sim_config.pso,
            "resume: campaign " << (c.pso ? "was" : "was not")
                                << " recorded under PSO");
  TPA_CHECK(c.crash_model == sim_config.crash_model,
            "resume: campaign crash model is " << to_string(c.crash_model));
  if (c.complete) {
    // Nothing left to explore: report the recorded terminal result.
    ExplorerResult r;
    r.schedules = c.schedules;
    r.steps = c.steps;
    r.truncated = c.truncated;
    r.snapshots = c.snapshots;
    r.restores = c.restores;
    r.dedup_hits = c.dedup_hits;
    r.dedup_states = c.dedup_states;
    r.dedup_evictions = c.dedup_evictions;
    r.exhausted = c.exhausted;
    r.verdict = c.verdict;
    return r;
  }
  // The explorer configuration comes from the file — only wall-clock knobs
  // (deliberately outside the config hash) come from the caller.
  ExplorerConfig cfg;
  cfg.preemptions = c.preemptions;
  cfg.max_steps = c.max_steps;
  cfg.max_schedules = c.max_schedules;
  cfg.max_crashes = c.max_crashes;
  cfg.time_budget_ms = options.time_budget_ms;
  cfg.threads = 1;
  cfg.sleep_sets = false;
  cfg.shrink = c.shrink;
  cfg.checkpoint = c.checkpoint;
  cfg.dedup = c.dedup;
  cfg.symmetric_processes = c.symmetry;
  cfg.liveness = c.liveness;
  cfg.dedup_max_bytes = c.dedup_max_bytes;
  cfg.campaign_path = campaign_path;
  cfg.checkpoint_interval_ms = options.checkpoint_interval_ms;
  cfg.campaign_scenario = c.scenario;
  return explore_impl(n_procs, std::move(sim_config), build, cfg, &c);
}

}  // namespace tpa::tso
