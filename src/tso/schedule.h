// Deterministic replay and process erasure (the paper's E^{-Y} operator).
//
// A run is reproduced from (a) a ScenarioBuilder that reconstructs the same
// variables and programs in a fresh Simulator, and (b) the recorded
// directive schedule. Erasing a set of processes Y replays the schedule with
// Y's directives dropped: by Lemma 1 / Lemma 4, if Y is a subset of an
// invisible set, every surviving process reads the same values and executes
// the same (critical) events — verify_replay_equivalence checks exactly
// that, turning the lemmas into runtime-checked properties.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tso/sim.h"

namespace tpa::tso {

/// Rebuilds a scenario in a fresh simulator: allocates the same variables
/// (in the same order!) and spawns every process' program. Determinism of
/// the replay machinery depends on builders being schedule-independent.
using ScenarioBuilder = std::function<void(Simulator&)>;

/// Replays `directives` in a freshly built simulator. If `erased` is
/// non-null, directives of erased processes are dropped (E^{-Y}); erased
/// processes are still spawned (so variable layout matches) but take no
/// steps. Directives that cannot be applied (e.g. a commit for an empty
/// buffer) raise CheckFailure — they indicate the erased set was not
/// invisible, or a non-deterministic builder.
std::unique_ptr<Simulator> replay(std::size_t n_procs, SimConfig config,
                                  const ScenarioBuilder& build,
                                  const std::vector<Directive>& directives,
                                  const std::vector<bool>* erased = nullptr);

struct ReplayCheck {
  bool ok = true;
  std::string detail;  ///< description of the first mismatch, if any
};

/// Verifies Lemma 4's conclusions on a replayed run: for every surviving
/// process, its event subsequence in the replay matches its events in the
/// original execution — same kinds, variables, values, buffer/CAS flags and
/// criticality (IN3).
ReplayCheck verify_replay_equivalence(const Execution& original,
                                      const Execution& replayed,
                                      const std::vector<bool>& erased);

}  // namespace tpa::tso
