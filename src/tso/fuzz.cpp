#include "tso/fuzz.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "tso/schedulers.h"
#include "util/check.h"
#include "util/rng.h"

namespace tpa::tso {

std::string FuzzResult::to_json() const {
  std::ostringstream os;
  os << "{";
  json_fields(os);
  os << ",\"violation_found\":" << (violation_found ? "true" : "false")
     << ",\"violating_run\":" << violating_run << ",\"schedule_digest\":"
     << schedule_digest << "}";
  return os.str();
}

namespace {

bool apply_directive(Simulator& sim, const Directive& d) {
  switch (d.kind) {
    case ActionKind::kDeliver: return sim.deliver(d.proc);
    case ActionKind::kCommit: return sim.commit(d.proc, d.var);
    case ActionKind::kCrash: return sim.crash(d.proc);
    case ActionKind::kRecover: return sim.recover(d.proc);
  }
  return false;
}

// FNV-1a, folded over one directive at a time.
void digest_directive(std::uint64_t* h, const Directive& d) {
  auto mix = [h](std::uint64_t byte) {
    *h ^= byte;
    *h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(d.kind));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.proc)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.var)));
}

/// One fuzz run in flight: the applied schedule plus its outcome.
struct RunOutcome {
  std::vector<Directive> schedule;
  bool violated = false;
  bool complete = false;
  int crashes = 0;  ///< crash directives applied so far this run
  std::string violation;
};

/// Drives `sim` with uniformly random actor choice until completion, the
/// step cap, or a violation. Buffered writes commit with `commit_prob` per
/// step (a finished program's buffer always drains when the process is
/// picked); under PSO the committed entry is chosen uniformly.
void continue_random(Simulator& sim, Rng& rng, double commit_prob,
                     double crash_prob, int max_crashes,
                     std::uint64_t max_steps, RunOutcome* out) {
  const std::size_t n = sim.num_procs();
  std::vector<ProcId> actors;
  while (out->schedule.size() < max_steps) {
    actors.clear();
    for (std::size_t q = 0; q < n; ++q) {
      const Proc& proc = sim.proc(static_cast<ProcId>(q));
      if (proc.crashed()) {
        if (sim.has_recovery(static_cast<ProcId>(q)))
          actors.push_back(static_cast<ProcId>(q));
      } else if ((!proc.done() && proc.has_pending()) ||
                 !proc.buffer().empty()) {
        actors.push_back(static_cast<ProcId>(q));
      }
    }
    if (actors.empty()) {
      out->complete = true;
      return;
    }
    // Fault injection. The short-circuit guard consumes no randomness when
    // crash_prob is 0, keeping crash-free schedule digests unchanged.
    if (crash_prob > 0 && out->crashes < max_crashes &&
        rng.chance(crash_prob)) {
      std::vector<ProcId> crashable;
      for (std::size_t q = 0; q < n; ++q)
        if (sim.can_crash(static_cast<ProcId>(q)))
          crashable.push_back(static_cast<ProcId>(q));
      if (!crashable.empty()) {
        const Directive d{ActionKind::kCrash,
                          crashable[rng.below(crashable.size())]};
        bool ok = false;
        try {
          ok = apply_directive(sim, d);
        } catch (const CheckFailure& e) {
          out->schedule.push_back(d);
          out->violated = true;
          out->violation = e.what();
          return;
        }
        TPA_CHECK(ok, "fuzz: p" << d.proc << " could not crash");
        out->schedule.push_back(d);
        out->crashes++;
        continue;
      }
    }
    const ProcId p = actors[rng.below(actors.size())];
    const Proc& proc = sim.proc(p);
    Directive d{ActionKind::kDeliver, p, kNoVar};
    if (proc.crashed()) {
      d.kind = ActionKind::kRecover;
    } else {
      const bool deliverable = !proc.done() && proc.has_pending();
      if (!deliverable ||
          (!proc.buffer().empty() && rng.chance(commit_prob))) {
        d.kind = ActionKind::kCommit;
        if (sim.config().pso && proc.buffer().size() > 1)
          d.var = proc.buffer()[rng.below(proc.buffer().size())].var;
      }
    }
    bool ok = false;
    try {
      ok = apply_directive(sim, d);
    } catch (const CheckFailure& e) {
      out->schedule.push_back(d);
      out->violated = true;
      out->violation = e.what();
      return;
    }
    TPA_CHECK(ok, "fuzz: chosen actor p" << d.proc << " could not act");
    out->schedule.push_back(d);
  }
}

/// Per-run commit probability: half the runs use the configured base, the
/// rest sweep the whole [0,1) delay spectrum.
double pick_commit_prob(Rng& rng, double base) {
  return rng.chance(0.5) ? base : rng.uniform();
}

}  // namespace

LenientReplay replay_lenient(std::size_t n_procs, SimConfig sim_config,
                             const ScenarioBuilder& build,
                             const std::vector<Directive>& directives,
                             const ScheduleHook& on_complete) {
  LenientReplay r;
  r.sim = std::make_unique<Simulator>(n_procs, sim_config);
  build(*r.sim);
  for (const Directive& d : directives) {
    bool ok = false;
    try {
      ok = apply_directive(*r.sim, d);
    } catch (const CheckFailure& e) {
      r.applied.push_back(d);
      r.violated = true;
      r.violation = e.what();
      return r;
    }
    if (ok) r.applied.push_back(d);
  }
  r.complete = all_done(*r.sim);
  if (r.complete && on_complete) {
    try {
      on_complete(*r.sim);
    } catch (const CheckFailure& e) {
      r.violated = true;
      r.violation = e.what();
    }
  }
  return r;
}

ShrinkOutcome shrink_witness(std::size_t n_procs, SimConfig sim_config,
                             const ScenarioBuilder& build,
                             std::vector<Directive> witness,
                             const ScheduleHook& on_complete) {
  ShrinkOutcome out;
  std::vector<Directive> applied;
  std::string msg;
  auto violates = [&](const std::vector<Directive>& cand) {
    out.replays++;
    LenientReplay r =
        replay_lenient(n_procs, sim_config, build, cand, on_complete);
    if (r.violated) {
      applied = std::move(r.applied);
      msg = std::move(r.violation);
    }
    return r.violated;
  };

  if (!violates(witness)) {
    out.witness = std::move(witness);  // not reproducible: hands off
    return out;
  }
  witness = std::move(applied);  // drop directives that never applied
  out.violation = msg;

  std::size_t chunk = std::max<std::size_t>(1, witness.size() / 2);
  while (true) {
    bool removed = false;
    for (std::size_t start = 0; start < witness.size();) {
      const std::size_t stop = std::min(witness.size(), start + chunk);
      std::vector<Directive> cand(witness.begin(),
                                  witness.begin() + static_cast<std::ptrdiff_t>(start));
      cand.insert(cand.end(), witness.begin() + static_cast<std::ptrdiff_t>(stop),
                  witness.end());
      if (violates(cand)) {
        // The lenient replay may have dropped even more than the chunk.
        witness = std::move(applied);
        out.violation = std::move(msg);
        removed = true;  // re-test the same start against the new content
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed) break;  // 1-minimal: no single directive is removable
    } else {
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }
  out.witness = std::move(witness);
  return out;
}

FuzzResult fuzz(std::size_t n_procs, SimConfig sim_config,
                const ScenarioBuilder& build, const FuzzConfig& config) {
  FuzzResult result;
  result.schedule_digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  // The fuzzer logs schedules itself and only needs the ExclusionChecker
  // (plus the core's structural checks) as its oracle: with no per-run hook,
  // run the bare core. A hook gets the caller's instrumentation unchanged.
  SimConfig run_cfg = sim_config;
  if (!config.on_complete) {
    run_cfg.track_awareness = false;
    run_cfg.record_trace = false;
    run_cfg.track_costs = false;
  }
  Rng rng(config.seed);
  std::vector<std::vector<Directive>> corpus;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config.time_budget_ms);

  for (std::uint64_t run = 0; run < config.runs; ++run) {
    if (config.time_budget_ms != 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      result.deadline_hit = true;
      break;
    }

    RunOutcome out;
    const double commit_prob = pick_commit_prob(rng, config.commit_prob);
    auto sim = std::make_unique<Simulator>(n_procs, run_cfg);
    sim->count_events_into(&result.steps);
    build(*sim);

    const bool mutate =
        config.mutate && !corpus.empty() && rng.chance(0.75);
    if (mutate) {
      std::vector<Directive> seed_schedule =
          corpus[rng.below(corpus.size())];
      // The crash-relocation mutation only enters the lottery when the seed
      // schedule actually carries a crash, so crash-free configs keep the
      // exact pre-fault-injection mutation stream.
      const bool has_crashes =
          std::any_of(seed_schedule.begin(), seed_schedule.end(),
                      [](const Directive& d) {
                        return d.kind == ActionKind::kCrash;
                      });
      switch (rng.below(has_crashes ? 5u : 4u)) {
        case 0: {  // prefix truncation: keep a prefix, re-randomize the rest
          seed_schedule.resize(rng.below(seed_schedule.size() + 1));
          break;
        }
        case 1: {  // window deletion
          if (!seed_schedule.empty()) {
            const std::size_t a = rng.below(seed_schedule.size());
            const std::size_t len = 1 + rng.below(8);
            const std::size_t b = std::min(seed_schedule.size(), a + len);
            seed_schedule.erase(
                seed_schedule.begin() + static_cast<std::ptrdiff_t>(a),
                seed_schedule.begin() + static_cast<std::ptrdiff_t>(b));
          }
          break;
        }
        case 2: {  // adjacent swap across processes
          if (seed_schedule.size() >= 2) {
            const std::size_t i = rng.below(seed_schedule.size() - 1);
            if (seed_schedule[i].proc != seed_schedule[i + 1].proc)
              std::swap(seed_schedule[i], seed_schedule[i + 1]);
          }
          break;
        }
        case 3: {  // commit-delay re-parameterization: drop all commits,
                   // letting the random tail re-decide every delay
          seed_schedule.erase(
              std::remove_if(seed_schedule.begin(), seed_schedule.end(),
                             [](const Directive& d) {
                               return d.kind == ActionKind::kCommit;
                             }),
              seed_schedule.end());
          break;
        }
        case 4: {  // crash relocation: move one crash to a fresh position,
                   // probing a different crash point on the same schedule
          std::vector<std::size_t> crash_at;
          for (std::size_t i = 0; i < seed_schedule.size(); ++i)
            if (seed_schedule[i].kind == ActionKind::kCrash)
              crash_at.push_back(i);
          const std::size_t i = crash_at[rng.below(crash_at.size())];
          const Directive d = seed_schedule[i];
          seed_schedule.erase(seed_schedule.begin() +
                              static_cast<std::ptrdiff_t>(i));
          const std::size_t j = rng.below(seed_schedule.size() + 1);
          seed_schedule.insert(
              seed_schedule.begin() + static_cast<std::ptrdiff_t>(j), d);
          break;
        }
      }
      // Lenient prefix replay: inapplicable mutated directives are skipped.
      for (const Directive& d : seed_schedule) {
        bool ok = false;
        try {
          ok = apply_directive(*sim, d);
        } catch (const CheckFailure& e) {
          out.schedule.push_back(d);
          out.violated = true;
          out.violation = e.what();
          break;
        }
        if (ok) {
          out.schedule.push_back(d);
          if (d.kind == ActionKind::kCrash) out.crashes++;
        }
      }
    }
    if (!out.violated)
      continue_random(*sim, rng, commit_prob, config.crash_prob,
                      config.max_crashes, config.max_steps, &out);

    result.schedules++;
    if (!out.violated && !out.complete) result.truncated++;
    for (const Directive& d : out.schedule)
      digest_directive(&result.schedule_digest, d);
    result.schedule_digest ^= 0xabcdefULL;  // run separator
    result.schedule_digest *= 0x100000001b3ULL;

    if (out.violated) {
      result.violation_found = true;
      result.violation = out.violation;
      result.violating_run = run;
      result.raw_witness = std::move(out.schedule);
      if (config.shrink) {
        ShrinkOutcome shrunk =
            shrink_witness(n_procs, run_cfg, build, result.raw_witness,
                           config.on_complete);
        result.witness = std::move(shrunk.witness);
      } else {
        result.witness = result.raw_witness;
      }
      return result;
    }
    if (out.complete && !out.schedule.empty() && config.corpus_size > 0) {
      if (corpus.size() < config.corpus_size)
        corpus.push_back(std::move(out.schedule));
      else
        corpus[run % config.corpus_size] = std::move(out.schedule);
    }
  }
  return result;
}

}  // namespace tpa::tso
