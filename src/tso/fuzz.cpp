#include "tso/fuzz.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "tso/schedulers.h"
#include "util/check.h"
#include "util/rng.h"

namespace tpa::tso {

std::string FuzzResult::to_json() const {
  std::ostringstream os;
  os << "{";
  json_fields(os);
  os << ",\"violating_run\":" << violating_run << ",\"schedule_digest\":"
     << schedule_digest << "}";
  return os.str();
}

namespace {

bool apply_directive(Simulator& sim, const Directive& d) {
  switch (d.kind) {
    case ActionKind::kDeliver: return sim.deliver(d.proc);
    case ActionKind::kCommit: return sim.commit(d.proc, d.var);
    case ActionKind::kCrash: return sim.crash(d.proc);
    case ActionKind::kRecover: return sim.recover(d.proc);
  }
  return false;
}

// FNV-1a, folded over one directive at a time.
void digest_directive(std::uint64_t* h, const Directive& d) {
  auto mix = [h](std::uint64_t byte) {
    *h ^= byte;
    *h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(d.kind));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.proc)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.var)));
}

/// One fuzz run in flight: the applied schedule plus its outcome.
struct RunOutcome {
  std::vector<Directive> schedule;
  bool violated = false;
  bool complete = false;
  int crashes = 0;  ///< crash directives applied so far this run
  std::string violation;
};

/// Drives `sim` with uniformly random actor choice until completion, the
/// step cap, or a violation. Buffered writes commit with `commit_prob` per
/// step (a finished program's buffer always drains when the process is
/// picked); under PSO the committed entry is chosen uniformly.
void continue_random(Simulator& sim, Rng& rng, double commit_prob,
                     double crash_prob, int max_crashes,
                     std::uint64_t max_steps, RunOutcome* out) {
  const std::size_t n = sim.num_procs();
  std::vector<ProcId> actors;
  while (out->schedule.size() < max_steps) {
    actors.clear();
    for (std::size_t q = 0; q < n; ++q) {
      const Proc& proc = sim.proc(static_cast<ProcId>(q));
      if (proc.crashed()) {
        if (sim.has_recovery(static_cast<ProcId>(q)))
          actors.push_back(static_cast<ProcId>(q));
      } else if ((!proc.done() && proc.has_pending()) ||
                 !proc.buffer().empty()) {
        actors.push_back(static_cast<ProcId>(q));
      }
    }
    if (actors.empty()) {
      out->complete = true;
      return;
    }
    // Fault injection. The short-circuit guard consumes no randomness when
    // crash_prob is 0, keeping crash-free schedule digests unchanged.
    if (crash_prob > 0 && out->crashes < max_crashes &&
        rng.chance(crash_prob)) {
      std::vector<ProcId> crashable;
      for (std::size_t q = 0; q < n; ++q)
        if (sim.can_crash(static_cast<ProcId>(q)))
          crashable.push_back(static_cast<ProcId>(q));
      if (!crashable.empty()) {
        const Directive d{ActionKind::kCrash,
                          crashable[rng.below(crashable.size())]};
        bool ok = false;
        try {
          ok = apply_directive(sim, d);
        } catch (const CheckFailure& e) {
          out->schedule.push_back(d);
          out->violated = true;
          out->violation = e.what();
          return;
        }
        TPA_CHECK(ok, "fuzz: p" << d.proc << " could not crash");
        out->schedule.push_back(d);
        out->crashes++;
        continue;
      }
    }
    const ProcId p = actors[rng.below(actors.size())];
    const Proc& proc = sim.proc(p);
    Directive d{ActionKind::kDeliver, p, kNoVar};
    if (proc.crashed()) {
      d.kind = ActionKind::kRecover;
    } else {
      const bool deliverable = !proc.done() && proc.has_pending();
      if (!deliverable ||
          (!proc.buffer().empty() && rng.chance(commit_prob))) {
        d.kind = ActionKind::kCommit;
        if (sim.config().pso && proc.buffer().size() > 1)
          d.var = proc.buffer()[rng.below(proc.buffer().size())].var;
      }
    }
    bool ok = false;
    try {
      ok = apply_directive(sim, d);
    } catch (const CheckFailure& e) {
      out->schedule.push_back(d);
      out->violated = true;
      out->violation = e.what();
      return;
    }
    TPA_CHECK(ok, "fuzz: chosen actor p" << d.proc << " could not act");
    out->schedule.push_back(d);
  }
}

/// Per-run commit probability: half the runs use the configured base, the
/// rest sweep the whole [0,1) delay spectrum.
double pick_commit_prob(Rng& rng, double base) {
  return rng.chance(0.5) ? base : rng.uniform();
}

}  // namespace

LenientReplay replay_lenient(std::size_t n_procs, SimConfig sim_config,
                             const ScenarioBuilder& build,
                             const std::vector<Directive>& directives,
                             const ScheduleHook& on_complete) {
  LenientReplay r;
  r.sim = std::make_unique<Simulator>(n_procs, sim_config);
  build(*r.sim);
  for (const Directive& d : directives) {
    bool ok = false;
    try {
      ok = apply_directive(*r.sim, d);
    } catch (const CheckFailure& e) {
      r.applied.push_back(d);
      r.violated = true;
      r.violation = e.what();
      return r;
    }
    if (ok) r.applied.push_back(d);
  }
  r.complete = all_done(*r.sim);
  if (r.complete && on_complete) {
    try {
      on_complete(*r.sim);
    } catch (const CheckFailure& e) {
      r.violated = true;
      r.violation = e.what();
    }
  }
  return r;
}

ShrinkOutcome shrink_witness(std::size_t n_procs, SimConfig sim_config,
                             const ScenarioBuilder& build,
                             std::vector<Directive> witness,
                             const ScheduleHook& on_complete) {
  ShrinkOutcome out;
  std::vector<Directive> applied;
  std::string msg;
  auto violates = [&](const std::vector<Directive>& cand) {
    out.replays++;
    LenientReplay r =
        replay_lenient(n_procs, sim_config, build, cand, on_complete);
    if (r.violated) {
      applied = std::move(r.applied);
      msg = std::move(r.violation);
    }
    return r.violated;
  };

  if (!violates(witness)) {
    out.witness = std::move(witness);  // not reproducible: hands off
    return out;
  }
  witness = std::move(applied);  // drop directives that never applied
  out.violation = msg;

  std::size_t chunk = std::max<std::size_t>(1, witness.size() / 2);
  while (true) {
    bool removed = false;
    for (std::size_t start = 0; start < witness.size();) {
      const std::size_t stop = std::min(witness.size(), start + chunk);
      std::vector<Directive> cand(witness.begin(),
                                  witness.begin() + static_cast<std::ptrdiff_t>(start));
      cand.insert(cand.end(), witness.begin() + static_cast<std::ptrdiff_t>(stop),
                  witness.end());
      if (violates(cand)) {
        // The lenient replay may have dropped even more than the chunk.
        witness = std::move(applied);
        out.violation = std::move(msg);
        removed = true;  // re-test the same start against the new content
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed) break;  // 1-minimal: no single directive is removable
    } else {
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }
  out.witness = std::move(witness);
  return out;
}

namespace {

/// The explorer's enabledness predicate: a process that can take some
/// machine step right now. Used by the weak-fairness filter.
bool can_act(const Simulator& sim, ProcId p) {
  const Proc& proc = sim.proc(p);
  if (proc.crashed()) return sim.has_recovery(p);
  return (!proc.done() && proc.has_pending()) || !proc.buffer().empty();
}

}  // namespace

LassoReplay replay_lasso(std::size_t n_procs, SimConfig sim_config,
                         const ScenarioBuilder& build,
                         const std::vector<Directive>& stem,
                         const std::vector<Directive>& cycle) {
  LassoReplay r;
  LenientReplay base = replay_lenient(n_procs, sim_config, build, stem);
  r.stem = std::move(base.applied);
  if (base.violated || cycle.empty()) return r;  // not a liveness lasso
  Simulator& sim = *base.sim;
  const std::size_t n = sim.num_procs();
  // The scheduled process is part of the explorer's on-stack key, so the
  // oracle folds it in too: the process of the last non-crash directive
  // (crashes do not transfer scheduling).
  ProcId current = kNoProc;
  for (const Directive& d : r.stem)
    if (d.kind != ActionKind::kCrash) current = d.proc;
  const Fingerprint entry = sim.fingerprint_progress(current);
  std::vector<Status> status0(n);
  std::vector<char> enabled(n, 0), scheduled(n, 0), changed(n, 0);
  for (std::size_t q = 0; q < n; ++q) {
    status0[q] = sim.proc(static_cast<ProcId>(q)).status();
    enabled[q] = can_act(sim, static_cast<ProcId>(q)) ? 1 : 0;
  }
  for (const Directive& d : cycle) {
    bool ok = false;
    try {
      ok = apply_directive(sim, d);
    } catch (const CheckFailure&) {
      return r;  // a safety violation inside the cycle is not a lasso
    }
    if (!ok) return r;  // the cycle must apply strictly
    if (d.kind != ActionKind::kCrash) current = d.proc;
    if (d.proc != kNoProc && static_cast<std::size_t>(d.proc) < n)
      scheduled[static_cast<std::size_t>(d.proc)] = 1;
    for (std::size_t q = 0; q < n; ++q)
      if (sim.proc(static_cast<ProcId>(q)).status() != status0[q])
        changed[q] = 1;
  }
  const Fingerprint back = sim.fingerprint_progress(current);
  if (!(back == entry)) return r;  // does not re-close the abstract state
  // Weak fairness: every process enabled at the cycle entry must be
  // scheduled somewhere in the cycle, or the lasso describes an unfair
  // scheduler and proves nothing about the algorithm.
  for (std::size_t q = 0; q < n; ++q)
    if (enabled[q] && !scheduled[q]) return r;
  r.closes = true;
  // Classification by section-watching: a closing cycle restores every
  // status, so any observed change means a full passage through the
  // critical section happened (progress). A process parked in Entry for the
  // whole cycle is starved; nobody moving at all is a livelock.
  bool starved = false;
  bool any_change = false;
  for (std::size_t q = 0; q < n; ++q) {
    any_change |= changed[q] != 0;
    if (status0[q] == Status::kEntry && !changed[q]) starved = true;
  }
  r.kind = starved ? VerdictKind::kStarvation
                   : (any_change ? VerdictKind::kClean
                                 : VerdictKind::kLivelock);
  return r;
}

LassoShrinkOutcome shrink_lasso(std::size_t n_procs, SimConfig sim_config,
                                const ScenarioBuilder& build,
                                std::vector<Directive> witness,
                                std::size_t cycle_start, VerdictKind kind) {
  LassoShrinkOutcome out;
  if (cycle_start >= witness.size()) {  // no cycle part: nothing to shrink
    out.cycle_start = cycle_start;
    out.witness = std::move(witness);
    return out;
  }
  auto b = witness.begin();
  std::vector<Directive> stem(b, b + static_cast<std::ptrdiff_t>(cycle_start));
  std::vector<Directive> cycle(b + static_cast<std::ptrdiff_t>(cycle_start),
                               witness.end());
  // Accept a candidate only if the cycle still closes *and* classifies as
  // the same kind — a starvation witness must not degrade into a livelock
  // or a mere progress cycle mid-shrink.
  auto accepts = [&](const std::vector<Directive>& st,
                     const std::vector<Directive>& cy,
                     std::vector<Directive>* applied_stem) {
    out.replays++;
    LassoReplay r = replay_lasso(n_procs, sim_config, build, st, cy);
    if (!r.closes || r.kind != kind) return false;
    if (applied_stem != nullptr) *applied_stem = std::move(r.stem);
    return true;
  };
  std::vector<Directive> applied;
  if (!accepts(stem, cycle, &applied)) {
    out.cycle_start = cycle_start;
    out.witness = std::move(witness);  // not reproducible: hands off
    return out;
  }
  stem = std::move(applied);  // drop stem directives that never applied
  // ddmin one component while holding the other fixed. Stem candidates go
  // through the lenient replay, so an accepted candidate may shed even more
  // directives than the removed chunk; cycle candidates are strict.
  auto ddmin = [&](std::vector<Directive>& seq, bool is_stem) {
    bool shrunk_any = false;
    std::size_t chunk = std::max<std::size_t>(1, seq.size() / 2);
    while (true) {
      bool removed = false;
      for (std::size_t start = 0; start < seq.size();) {
        const std::size_t stop = std::min(seq.size(), start + chunk);
        std::vector<Directive> cand(
            seq.begin(), seq.begin() + static_cast<std::ptrdiff_t>(start));
        cand.insert(cand.end(),
                    seq.begin() + static_cast<std::ptrdiff_t>(stop),
                    seq.end());
        bool ok;
        if (is_stem) {
          std::vector<Directive> app;
          ok = accepts(cand, cycle, &app);
          if (ok) seq = std::move(app);
        } else {
          ok = accepts(stem, cand, nullptr);
          if (ok) seq = std::move(cand);
        }
        if (ok) {
          removed = true;
          shrunk_any = true;  // re-test the same start against the new seq
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        if (!removed) break;  // 1-minimal within this component
      } else {
        chunk = std::max<std::size_t>(1, chunk / 2);
      }
    }
    return shrunk_any;
  };
  // Cycle first (it is what makes the witness a lasso), then the stem, and
  // around again: a shorter stem can land on a state from which more of the
  // cycle is removable.
  while (true) {
    bool any = ddmin(cycle, /*is_stem=*/false);
    if (ddmin(stem, /*is_stem=*/true)) any = true;
    if (!any) break;
  }
  out.witness = std::move(stem);
  out.cycle_start = out.witness.size();
  out.witness.insert(out.witness.end(), cycle.begin(), cycle.end());
  return out;
}

FuzzResult fuzz(std::size_t n_procs, SimConfig sim_config,
                const ScenarioBuilder& build, const FuzzConfig& config) {
  FuzzResult result;
  result.schedule_digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  // The fuzzer logs schedules itself and only needs the ExclusionChecker
  // (plus the core's structural checks) as its oracle: with no per-run hook,
  // run the bare core. A hook gets the caller's instrumentation unchanged.
  SimConfig run_cfg = sim_config;
  if (!config.on_complete) {
    run_cfg.track_awareness = false;
    run_cfg.record_trace = false;
    run_cfg.track_costs = false;
  }
  Rng rng(config.seed);
  std::vector<std::vector<Directive>> corpus;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config.time_budget_ms);

  for (std::uint64_t run = 0; run < config.runs; ++run) {
    if (config.time_budget_ms != 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      result.deadline_hit = true;
      break;
    }

    RunOutcome out;
    const double commit_prob = pick_commit_prob(rng, config.commit_prob);
    auto sim = std::make_unique<Simulator>(n_procs, run_cfg);
    sim->count_events_into(&result.steps);
    build(*sim);

    const bool mutate =
        config.mutate && !corpus.empty() && rng.chance(0.75);
    if (mutate) {
      std::vector<Directive> seed_schedule =
          corpus[rng.below(corpus.size())];
      // The crash-relocation mutation only enters the lottery when the seed
      // schedule actually carries a crash, so crash-free configs keep the
      // exact pre-fault-injection mutation stream.
      const bool has_crashes =
          std::any_of(seed_schedule.begin(), seed_schedule.end(),
                      [](const Directive& d) {
                        return d.kind == ActionKind::kCrash;
                      });
      switch (rng.below(has_crashes ? 5u : 4u)) {
        case 0: {  // prefix truncation: keep a prefix, re-randomize the rest
          seed_schedule.resize(rng.below(seed_schedule.size() + 1));
          break;
        }
        case 1: {  // window deletion
          if (!seed_schedule.empty()) {
            const std::size_t a = rng.below(seed_schedule.size());
            const std::size_t len = 1 + rng.below(8);
            const std::size_t b = std::min(seed_schedule.size(), a + len);
            seed_schedule.erase(
                seed_schedule.begin() + static_cast<std::ptrdiff_t>(a),
                seed_schedule.begin() + static_cast<std::ptrdiff_t>(b));
          }
          break;
        }
        case 2: {  // adjacent swap across processes
          if (seed_schedule.size() >= 2) {
            const std::size_t i = rng.below(seed_schedule.size() - 1);
            if (seed_schedule[i].proc != seed_schedule[i + 1].proc)
              std::swap(seed_schedule[i], seed_schedule[i + 1]);
          }
          break;
        }
        case 3: {  // commit-delay re-parameterization: drop all commits,
                   // letting the random tail re-decide every delay
          seed_schedule.erase(
              std::remove_if(seed_schedule.begin(), seed_schedule.end(),
                             [](const Directive& d) {
                               return d.kind == ActionKind::kCommit;
                             }),
              seed_schedule.end());
          break;
        }
        case 4: {  // crash relocation: move one crash to a fresh position,
                   // probing a different crash point on the same schedule
          std::vector<std::size_t> crash_at;
          for (std::size_t i = 0; i < seed_schedule.size(); ++i)
            if (seed_schedule[i].kind == ActionKind::kCrash)
              crash_at.push_back(i);
          const std::size_t i = crash_at[rng.below(crash_at.size())];
          const Directive d = seed_schedule[i];
          seed_schedule.erase(seed_schedule.begin() +
                              static_cast<std::ptrdiff_t>(i));
          const std::size_t j = rng.below(seed_schedule.size() + 1);
          seed_schedule.insert(
              seed_schedule.begin() + static_cast<std::ptrdiff_t>(j), d);
          break;
        }
      }
      // Lenient prefix replay: inapplicable mutated directives are skipped.
      for (const Directive& d : seed_schedule) {
        bool ok = false;
        try {
          ok = apply_directive(*sim, d);
        } catch (const CheckFailure& e) {
          out.schedule.push_back(d);
          out.violated = true;
          out.violation = e.what();
          break;
        }
        if (ok) {
          out.schedule.push_back(d);
          if (d.kind == ActionKind::kCrash) out.crashes++;
        }
      }
    }
    if (!out.violated)
      continue_random(*sim, rng, commit_prob, config.crash_prob,
                      config.max_crashes, config.max_steps, &out);

    result.schedules++;
    if (!out.violated && !out.complete) result.truncated++;
    for (const Directive& d : out.schedule)
      digest_directive(&result.schedule_digest, d);
    result.schedule_digest ^= 0xabcdefULL;  // run separator
    result.schedule_digest *= 0x100000001b3ULL;

    if (out.violated) {
      result.verdict.kind = VerdictKind::kSafety;
      result.verdict.message = out.violation;
      result.violating_run = run;
      result.verdict.raw_witness = std::move(out.schedule);
      if (config.shrink) {
        ShrinkOutcome shrunk =
            shrink_witness(n_procs, run_cfg, build, result.verdict.raw_witness,
                           config.on_complete);
        result.verdict.witness = std::move(shrunk.witness);
      } else {
        result.verdict.witness = result.verdict.raw_witness;
      }
      return result;
    }
    if (out.complete && !out.schedule.empty() && config.corpus_size > 0) {
      if (corpus.size() < config.corpus_size)
        corpus.push_back(std::move(out.schedule));
      else
        corpus[run % config.corpus_size] = std::move(out.schedule);
    }
  }
  return result;
}

}  // namespace tpa::tso
