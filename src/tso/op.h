// SimOp — the pending shared-memory request of a suspended process coroutine.
//
// Algorithms are written as C++20 coroutines; every shared-memory operation
// suspends the coroutine with a SimOp describing what it wants to do next.
// The scheduler examines the pending op (e.g. "is this a critical read?")
// and decides when to perform it — exactly the power the paper's adversary
// needs.
#pragma once

#include "tso/types.h"

namespace tpa::tso {

enum class OpKind : std::uint8_t {
  kRead,    ///< read a shared variable (buffer, cache, or memory)
  kWrite,   ///< issue a write into the process' write buffer
  kFence,   ///< BeginFence .. commits .. EndFence
  kCas,     ///< compare-and-swap; drains the buffer first (x86 LOCK RMW)
  kEnter,   ///< transition event: ncs -> entry
  kCs,      ///< transition event: entry -> exit (instantaneous CS)
  kExit,    ///< transition event: exit -> ncs
};

const char* to_string(OpKind k);

struct SimOp {
  OpKind kind;
  VarId var = kNoVar;
  Value value = 0;     ///< write value / CAS desired value
  Value expected = 0;  ///< CAS expected value
  Value result = 0;    ///< filled by the simulator: read value / CAS old value
};

}  // namespace tpa::tso
