#include "tso/run_stats.h"

#include <ostream>
#include <sstream>

namespace tpa::tso {

void RunStats::json_fields(std::ostream& out) const {
  out << "\"schedules\":" << schedules << ",\"steps\":" << steps
      << ",\"truncated\":" << truncated
      << ",\"deadline_hit\":" << (deadline_hit ? "true" : "false");
}

std::string RunStats::to_json() const {
  std::ostringstream os;
  os << "{";
  json_fields(os);
  os << "}";
  return os.str();
}

}  // namespace tpa::tso
