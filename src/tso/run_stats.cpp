#include "tso/run_stats.h"

#include <ostream>
#include <sstream>

#include "util/check.h"

namespace tpa::tso {

const char* to_string(VerdictKind k) {
  switch (k) {
    case VerdictKind::kClean: return "clean";
    case VerdictKind::kSafety: return "safety";
    case VerdictKind::kStarvation: return "starvation";
    case VerdictKind::kLivelock: return "livelock";
    case VerdictKind::kDeadlock: return "deadlock";
  }
  TPA_FAIL("unknown VerdictKind " << static_cast<int>(k));
}

VerdictKind verdict_kind_from_string(const std::string& name) {
  if (name == "clean") return VerdictKind::kClean;
  if (name == "safety") return VerdictKind::kSafety;
  if (name == "starvation") return VerdictKind::kStarvation;
  if (name == "livelock") return VerdictKind::kLivelock;
  if (name == "deadlock") return VerdictKind::kDeadlock;
  TPA_FAIL("unknown VerdictKind name '"
           << name << "' (want clean|safety|starvation|livelock|deadlock)");
}

void RunStats::json_fields(std::ostream& out) const {
  out << "\"schedules\":" << schedules << ",\"steps\":" << steps
      << ",\"truncated\":" << truncated
      << ",\"deadline_hit\":" << (deadline_hit ? "true" : "false")
      << ",\"verdict\":\"" << to_string(verdict.kind) << "\""
      << ",\"violation_found\":" << (verdict.found() ? "true" : "false");
}

std::string RunStats::to_json() const {
  std::ostringstream os;
  os << "{";
  json_fields(os);
  os << "}";
  return os.str();
}

}  // namespace tpa::tso
