// Context-bounded exhaustive schedule exploration (CHESS-style).
//
// Explores every *maximal-delay* TSO schedule with at most `preemptions`
// preemptive context switches: at each step the currently scheduled process
// takes its next event; buffered writes commit only through fences (and a
// final drain once the program ends) — the scheduling adversary the paper's
// construction also uses, which is the hostile regime for store-buffer
// bugs. Within this bound the exploration is exhaustive, so it can *prove*
// mutual exclusion for small scopes and *find* concrete violating schedules
// otherwise.
//
// The canonical customer: BakeryFencing::kNone (the fence-free bakery).
// The paper's premise — "the use of fences was shown to be unavoidable for
// read/write mutual exclusion algorithms [Attiya et al., Laws of Order]" —
// becomes an automatically discovered two-process counterexample
// (tests/test_explorer.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tso/run_stats.h"
#include "tso/schedule.h"
#include "tso/sim.h"

namespace tpa::tso {

/// Optional per-schedule hook: invoked with the simulator at the end of
/// every *complete* schedule (all processes done and drained). Throwing
/// CheckFailure from the hook counts as a violation, so arbitrary
/// invariants can be checked for-all-schedules within the bound.
using ScheduleHook = std::function<void(const Simulator&)>;

/// Stateful exploration: prune a branch when the machine state (by
/// Simulator::fingerprint) was already fully explored, violation-free, with
/// an equal-or-larger remaining budget. Sound — verdicts and witnesses are
/// bit-identical to kOff — but schedule/truncated *counts* shrink, so it is
/// off wherever count parity with the raw bound matters. See
/// docs/EXPLORER.md for the soundness argument and the (rejected) invalid
/// combinations.
enum class DedupMode : std::uint8_t {
  kOff,    ///< enumerate the raw schedule tree
  kState,  ///< visited-set pruning on (fingerprint, remaining budget)
};

const char* to_string(DedupMode m);
DedupMode dedup_mode_from_string(const std::string& name);

/// Process-symmetry reduction: canonicalize visited-set fingerprints under
/// process renaming, merging states that differ only by a permutation of
/// interchangeable processes. Canonicalization sorts renaming-invariant
/// per-process signatures (Simulator::fingerprint_symmetric) — near-linear
/// in state size, not an enumeration of the n! renamings. Requires
/// DedupMode::kState and a scenario whose builder and programs are invariant
/// under process renaming (runtime::Scenario::symmetric declares this;
/// explore() also structurally validates the initial state).
enum class SymmetryMode : std::uint8_t {
  kOff,        ///< fingerprints as-is
  kCanonical,  ///< canonical process order via sorted invariant signatures
};

const char* to_string(SymmetryMode m);
SymmetryMode symmetry_mode_from_string(const std::string& name);

/// Liveness verdicts on the explored state graph: detect *fair cycles* —
/// lasso-shaped runs whose cycle revisits a machine state while every
/// non-crashed runnable process gets scheduled (weak fairness) — and
/// classify them as starvation (a process waits in Try across the whole
/// cycle without reaching CS) or livelock (nobody makes Enter/CS/Exit
/// progress); a pre-completion state with no enabled transition is a
/// deadlock. Cycle detection keys on Simulator::fingerprint_progress — the
/// machine state minus the monotone op-history component — on the DFS
/// stack, so it requires DedupMode::kState (the visited set materializes
/// the state graph) and composes with symmetry (canonical progress keys).
/// See docs/LIVENESS.md for semantics and soundness preconditions.
enum class LivenessMode : std::uint8_t {
  kOff,    ///< safety only — bit-identical to the pre-liveness explorer
  kCheck,  ///< also detect fair cycles and deadlocks, with lasso witnesses
};

const char* to_string(LivenessMode m);
LivenessMode liveness_mode_from_string(const std::string& name);

struct ExplorerConfig {
  /// Preemptive context switches allowed per schedule (switching away from
  /// a process that can still act). Switches away from a blocked/finished
  /// process are free.
  int preemptions = 2;
  /// Per-schedule step cap; schedules hitting it count as truncated (a
  /// process spinning on a never-committed write does this).
  std::uint64_t max_steps = 600;
  /// Global cap on explored schedules.
  std::uint64_t max_schedules = 2'000'000;
  /// Crash directives injected per schedule (RME fault model). At every
  /// state, in addition to scheduling steps, the adversary may crash any
  /// process that still has work or buffered writes; crashed processes with
  /// a registered recovery section re-enter via a Recover directive. 0 (the
  /// default) disables fault injection entirely — schedule counts are then
  /// bit-identical to a crash-free exploration.
  int max_crashes = 0;
  /// Wall-clock watchdog for the whole exploration, in milliseconds; 0
  /// disables it. When the deadline passes, exploration stops where it is
  /// and the result reports deadline_hit (and exhausted = false).
  std::uint64_t time_budget_ms = 0;
  /// Invariant checked at the end of every complete schedule.
  ScheduleHook on_complete;

  /// Worker threads. 1 runs the classic sequential DFS. With more, the
  /// schedule space is partitioned into subtrees rooted at a frontier of
  /// schedule prefixes (enumerated in DFS order) and the subtrees are
  /// explored concurrently via util/work_queue.h. The partition is exact,
  /// so on a violation-free scenario the aggregated `schedules`/`truncated`
  /// counts are identical to the sequential run's, for any thread count.
  /// Violations are reported first-in-DFS-order-wins: the earliest frontier
  /// subtree containing one supplies the witness, independent of thread
  /// timing, so results are reproducible (the *counts* of a violating or
  /// budget-capped run may vary — later subtrees are abandoned early).
  /// Builders must be safe to invoke concurrently on distinct simulators.
  int threads = 1;

  /// Sleep-set pruning (Godefroid-style partial-order reduction, with a
  /// last-writer independence relation): skips interleavings that only
  /// reorder commutative steps — write issues (purely process-local) against
  /// anything, and commits by different processes to different variables.
  /// Cuts the explored schedule count, so it is off by default where count
  /// parity with the plain bound matters; combined with the preemption
  /// bound it is a heuristic (the bound already makes exploration
  /// incomplete), but every schedule it skips is equivalent to an explored
  /// one, so violations within the bound are preserved in practice
  /// (tests/test_explorer_parallel.cpp checks this on the zoo).
  bool sleep_sets = false;

  /// Delta-debug any violation witness to a locally minimal, still-violating
  /// directive sequence before returning it (see tso/fuzz.h). The shrunk
  /// witness replays deterministically via tso::replay just like the raw
  /// one, only shorter.
  bool shrink = true;

  /// Resume sibling subtrees from Simulator::snapshot() checkpoints taken at
  /// branch points instead of replaying the directive prefix from the root.
  /// Purely an execution strategy: schedule counts, DFS order and witnesses
  /// are identical either way (tests/test_observer.cpp pins this), but the
  /// machine events executed drop by the average branch depth — see
  /// RunStats::steps and bench/perf_explorer.cpp.
  bool checkpoint = true;

  /// Visited-state pruning (see DedupMode). Off by default: verdicts and
  /// witnesses are unchanged when on, but counts shrink. Rejected (via
  /// check.h) in combination with on_complete hooks — a hook may inspect
  /// observer or trace state the fingerprint deliberately ignores — and with
  /// sleep_sets, whose sleep set is path context outside the fingerprint.
  DedupMode dedup = DedupMode::kOff;

  /// Canonicalize fingerprints under process renaming (see SymmetryMode).
  /// Requires dedup == kState and a genuinely symmetric scenario; both are
  /// enforced via check.h.
  SymmetryMode symmetric_processes = SymmetryMode::kOff;

  /// Fair-cycle detection (see LivenessMode). Off by default: when on,
  /// starvation/livelock/deadlock verdicts are reported with lasso
  /// witnesses; when off, verdicts, witnesses and counts are bit-identical
  /// to the pre-liveness explorer. Requires dedup == kState and is
  /// sequential only (threads == 1) — parallel workers revive mid-tree from
  /// snapshots without the DFS stack a cycle check needs; both enforced via
  /// check.h.
  LivenessMode liveness = LivenessMode::kOff;

  /// Byte budget for the dedup visited set (the memory governor; see
  /// tso/visited.h). Capped shards evict cold entries instead of growing,
  /// so long explorations hold a bounded working set. Evicting only
  /// forfeits pruning — verdicts and witnesses stay bit-identical under any
  /// budget; at 0 the set stores nothing and exploration degrades to raw
  /// enumeration. Ignored unless dedup == kState.
  std::uint64_t dedup_max_bytes = ~0ull;

  /// Durable campaign checkpointing: when non-empty, the exploration
  /// periodically publishes its frontier (the unexplored subtree roots as
  /// directive prefixes), aggregate stats, and a config hash to this path
  /// via an atomic tmp+fsync+rename write — a SIGKILLed exploration resumes
  /// from the last checkpoint with tso::resume(), reproducing the
  /// uninterrupted run's verdict, witness, and (dedup off) exact
  /// schedule/truncated counts. Sequential only (threads == 1); rejected in
  /// combination with on_complete hooks (process-local state a resume could
  /// not reinstate) and sleep_sets (path context whose later entries a
  /// materialized frontier node would miss). See docs/ROBUSTNESS.md.
  std::string campaign_path;

  /// Minimum milliseconds between periodic campaign checkpoints. A
  /// checkpoint is also written before the first step (so a kill at any
  /// point finds a resumable file) and when the time budget trips. The
  /// cadence is self-pacing: when a write (fsync-bound) costs more than
  /// the interval, the next one is deferred by a multiple of the measured
  /// cost, bounding checkpoint overhead at ~20% of wall clock.
  std::uint64_t checkpoint_interval_ms = 250;

  /// Scenario id recorded in the campaign header so runtime::resume() can
  /// resolve the builder through the registry. runtime::Scenario::explore
  /// fills it in; raw tso::explore callers may leave it empty and resume
  /// with an explicitly supplied builder.
  std::string campaign_scenario;
};

/// Wall-clock knobs for resuming a campaign. Deliberately *not* part of the
/// campaign config hash: a resume may pick a fresh time budget or
/// checkpoint cadence without changing what is explored.
struct ResumeOptions {
  /// Watchdog for this leg of the campaign (0 = none). A leg that hits it
  /// checkpoints and reports deadline_hit; resume again to continue.
  std::uint64_t time_budget_ms = 0;
  /// Checkpoint cadence for this leg.
  std::uint64_t checkpoint_interval_ms = 250;
};

struct ExplorerResult : RunStats {
  // From RunStats: schedules (complete schedules explored), steps (machine
  // events executed — restores replay none), truncated (schedules cut off at
  // max_steps), deadline_hit (config.time_budget_ms ran out), and verdict —
  // the structured outcome (kind, message, witness/raw_witness, lasso
  // cycle_start). verdict.witness replays the violation via tso::replay
  // (shrunk when config.shrink is set).
  bool exhausted = true;            ///< false if max_schedules was hit
  std::uint64_t snapshots = 0;  ///< checkpoints taken at branch points
  std::uint64_t restores = 0;   ///< simulators revived from a checkpoint
  std::uint64_t dedup_hits = 0;    ///< subtrees pruned by the visited set
  std::uint64_t dedup_states = 0;  ///< (fingerprint, budget) inserts accepted
  std::uint64_t dedup_entries = 0;    ///< live visited-set entries at the end
  std::uint64_t dedup_bytes = 0;      ///< visited-set footprint at the end
  std::uint64_t dedup_evictions = 0;  ///< entries the memory governor evicted

  /// RunStats fields plus the explorer-specific figures, as one JSON object.
  std::string to_json() const;
};

/// Exhaustively explores the scenario under the config's bound. Any
/// CheckFailure raised by the simulator (mutual-exclusion violations,
/// algorithm-internal invariant failures) is a violation; the returned
/// witness replays it via tso::replay.
ExplorerResult explore(std::size_t n_procs, SimConfig sim_config,
                       const ScenarioBuilder& build,
                       ExplorerConfig config = {});

/// Continues (or reports) the campaign checkpointed at `campaign_path`. The
/// explorer configuration is reconstructed from the file — the caller only
/// supplies the scenario (which must match the recorded identity: process
/// count, PSO flag, crash model; enforced via check.h together with the
/// file's config hash) and fresh wall-clock knobs. A complete campaign
/// returns the recorded result without re-exploring; an in-flight one
/// explores the stored frontier nodes in DFS order, keeps checkpointing to
/// the same path, and finishes exactly as the uninterrupted run would have:
/// identical verdict and witness always, and identical schedule/truncated
/// counts when dedup is off (a resumed visited set restarts empty, so dedup
/// counts can only grow). See docs/ROBUSTNESS.md for the argument.
ExplorerResult resume(const std::string& campaign_path, std::size_t n_procs,
                      SimConfig sim_config, const ScenarioBuilder& build,
                      const ResumeOptions& options = {});

}  // namespace tpa::tso
