// Context-bounded exhaustive schedule exploration (CHESS-style).
//
// Explores every *maximal-delay* TSO schedule with at most `preemptions`
// preemptive context switches: at each step the currently scheduled process
// takes its next event; buffered writes commit only through fences (and a
// final drain once the program ends) — the scheduling adversary the paper's
// construction also uses, which is the hostile regime for store-buffer
// bugs. Within this bound the exploration is exhaustive, so it can *prove*
// mutual exclusion for small scopes and *find* concrete violating schedules
// otherwise.
//
// The canonical customer: BakeryFencing::kNone (the fence-free bakery).
// The paper's premise — "the use of fences was shown to be unavoidable for
// read/write mutual exclusion algorithms [Attiya et al., Laws of Order]" —
// becomes an automatically discovered two-process counterexample
// (tests/test_explorer.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tso/schedule.h"
#include "tso/sim.h"

namespace tpa::tso {

/// Optional per-schedule hook: invoked with the simulator at the end of
/// every *complete* schedule (all processes done and drained). Throwing
/// CheckFailure from the hook counts as a violation, so arbitrary
/// invariants can be checked for-all-schedules within the bound.
using ScheduleHook = std::function<void(const Simulator&)>;

struct ExplorerConfig {
  /// Preemptive context switches allowed per schedule (switching away from
  /// a process that can still act). Switches away from a blocked/finished
  /// process are free.
  int preemptions = 2;
  /// Per-schedule step cap; schedules hitting it count as truncated (a
  /// process spinning on a never-committed write does this).
  std::uint64_t max_steps = 600;
  /// Global cap on explored schedules.
  std::uint64_t max_schedules = 2'000'000;
  /// Invariant checked at the end of every complete schedule.
  ScheduleHook on_complete;
};

struct ExplorerResult {
  bool violation_found = false;
  std::string violation;            ///< failure message (first found)
  std::vector<Directive> witness;   ///< schedule reproducing the violation
  std::uint64_t schedules = 0;      ///< complete schedules explored
  std::uint64_t truncated = 0;      ///< schedules cut off at max_steps
  bool exhausted = true;            ///< false if max_schedules was hit
};

/// Exhaustively explores the scenario under the config's bound. Any
/// CheckFailure raised by the simulator (mutual-exclusion violations,
/// algorithm-internal invariant failures) is a violation; the returned
/// witness replays it via tso::replay.
ExplorerResult explore(std::size_t n_procs, SimConfig sim_config,
                       const ScenarioBuilder& build,
                       ExplorerConfig config = {});

}  // namespace tpa::tso
