#include "tso/schedulers.h"

#include <vector>

#include "util/check.h"

namespace tpa::tso {

bool all_done(const Simulator& sim) {
  for (std::size_t i = 0; i < sim.num_procs(); ++i) {
    const Proc& p = sim.proc(static_cast<ProcId>(i));
    // A crashed process with a registered recovery section still has work
    // to do (its next incarnation); without one it is fail-stop dead.
    if (p.crashed() && sim.has_recovery(p.id())) return false;
    if (!p.done() && p.has_pending()) return false;
    if (!p.buffer().empty()) return false;
  }
  return true;
}

std::uint64_t run_round_robin(Simulator& sim, std::uint64_t max_steps,
                              bool eager_commit) {
  const auto n = static_cast<ProcId>(sim.num_procs());
  std::uint64_t steps = 0;
  bool progressed = true;
  while (progressed && steps < max_steps) {
    progressed = false;
    for (ProcId p = 0; p < n && steps < max_steps; ++p) {
      if (sim.deliver(p)) {
        ++steps;
        progressed = true;
      }
      if (eager_commit || sim.proc(p).done()) {
        while (!sim.proc(p).buffer().empty() && steps < max_steps) {
          sim.commit(p);
          ++steps;
          progressed = true;
        }
      }
    }
  }
  return steps;
}

std::uint64_t run_random(Simulator& sim, Rng& rng, double commit_prob,
                         std::uint64_t max_steps) {
  const auto n = sim.num_procs();
  std::uint64_t steps = 0;
  std::uint64_t idle_streak = 0;
  while (steps < max_steps) {
    const auto pid = static_cast<ProcId>(rng.below(n));
    const Proc& p = sim.proc(pid);
    bool acted = false;
    const bool has_buffer = !p.buffer().empty();
    // A finished program still drains its buffer (hardware flushes stores
    // regardless of what the program does next).
    if (has_buffer && (p.done() || rng.chance(commit_prob))) {
      if (sim.config().pso && p.buffer().size() > 1) {
        const auto& entry = p.buffer()[rng.below(p.buffer().size())];
        acted = sim.commit(pid, entry.var);
      } else {
        acted = sim.commit(pid);
      }
    } else {
      acted = sim.deliver(pid);
      if (!acted && has_buffer) acted = sim.commit(pid);
    }
    if (acted) {
      ++steps;
      idle_streak = 0;
    } else if (++idle_streak > 4 * n) {
      if (all_done(sim)) break;
      // Not done but nobody we sampled could act — sweep everyone once to
      // distinguish livelock from unlucky sampling.
      bool any = false;
      for (std::size_t q = 0; q < n; ++q) {
        const auto qid = static_cast<ProcId>(q);
        if (sim.deliver(qid) || sim.commit(qid)) {
          any = true;
          ++steps;
          break;
        }
      }
      TPA_CHECK(any, "scheduler stuck: no process can act but not all done");
      idle_streak = 0;
    }
  }
  return steps;
}

}  // namespace tpa::tso
