// SimObserver — the hook interface between the core TSO state machine and
// its instrumentation.
//
// The Simulator itself maintains only the operational state of Section 2:
// processes, write buffers, variable values, commit order, modes and
// transition statuses. Everything the paper *measures on top of* an
// execution — criticality and RMRs (CostObserver), awareness sets
// (AwarenessObserver), mutual-exclusion checking (ExclusionChecker), trace
// recording (TraceRecorder), structured export (JsonlTraceSink) — is an
// observer attached to the simulator. Observers fire in registration order;
// the standard set installed by SimConfig is ordered so that cost flags are
// written onto an event before the trace recorder copies it.
//
// Observers may carry state (remote-read sets, coherence directories, the
// recorded trace). So they can participate in Simulator::snapshot()/
// restore(), each observer serializes its state into an opaque
// ObserverSnapshot; stateless observers return nullptr.
#pragma once

#include <memory>

#include "tso/event.h"
#include "tso/types.h"

namespace tpa::tso {

class Simulator;
class Proc;

/// Facts about the machine state *before* an event was applied that the
/// core has already overwritten by dispatch time.
struct StepContext {
  /// writer(v) before the event (commits and successful CAS update it).
  ProcId prev_writer = kNoProc;
};

/// Opaque per-observer checkpoint state; see SimObserver::snapshot().
class ObserverSnapshot {
 public:
  virtual ~ObserverSnapshot() = default;
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual const char* name() const = 0;

  /// Called once when the observer is attached (before the execution).
  virtual void on_attach(Simulator&) {}

  /// A scheduler decision, after its preconditions were checked and before
  /// it is performed. The directive sequence is the replayable schedule.
  virtual void on_directive(const Simulator&, const Directive&) {}

  /// A machine event, after the core applied its state change. Observers
  /// may annotate the event in place (e.g. cost flags); later observers see
  /// earlier observers' annotations.
  virtual void on_event(Simulator&, Proc&, Event&, const StepContext&) {}

  /// A process acquired a new pending operation (after spawn or resume).
  virtual void on_pending(const Simulator&, const Proc&) {}

  /// Checkpoint support: capture this observer's state. Return nullptr when
  /// the observer is stateless (restore() will then receive nullptr).
  virtual std::unique_ptr<ObserverSnapshot> snapshot() const {
    return nullptr;
  }

  /// Reinstate state captured by snapshot() on a same-shaped simulator.
  virtual void restore(const ObserverSnapshot*) {}
};

}  // namespace tpa::tso
