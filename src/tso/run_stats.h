// RunStats — the accounting every schedule-space pass shares.
//
// Both the exhaustive explorer (tso/explorer.h) and the randomized fuzzer
// (tso/fuzz.h) drive many short-lived simulators and report the same core
// figures: schedules finished, machine events (steps) executed, schedules
// cut off at the per-run step cap, and whether a wall-clock budget ended the
// pass early. ExplorerResult and FuzzResult derive from this struct so
// benches and tests read one shape instead of copying fields between two.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace tpa::tso {

struct RunStats {
  /// Complete schedules finished (explorer) / fuzz runs executed (fuzzer).
  std::uint64_t schedules = 0;
  /// Machine events actually executed across every simulator the pass
  /// created. Checkpoint restores replay none, and dedup prunes whole
  /// subtrees — this is the figure those optimizations shrink.
  std::uint64_t steps = 0;
  /// Schedules/runs cut off at the per-schedule step cap (a process spinning
  /// on a never-committed write does this).
  std::uint64_t truncated = 0;
  /// The configured wall-clock budget ran out before the pass finished.
  bool deadline_hit = false;

  /// Emits the four fields as `"key":value` pairs (no braces), for embedding
  /// into a larger JSON object.
  void json_fields(std::ostream& out) const;

  /// The four fields as a self-contained JSON object.
  std::string to_json() const;
};

}  // namespace tpa::tso
