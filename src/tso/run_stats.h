// RunStats — the accounting and verdict every schedule-space pass shares.
//
// Both the exhaustive explorer (tso/explorer.h) and the randomized fuzzer
// (tso/fuzz.h) drive many short-lived simulators and report the same core
// figures: schedules finished, machine events (steps) executed, schedules
// cut off at the per-run step cap, and whether a wall-clock budget ended the
// pass early — plus one structured Verdict: what (if anything) went wrong
// and the directive schedule that reproduces it. ExplorerResult and
// FuzzResult derive from this struct so benches and tests read one shape
// instead of copying fields between two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tso/event.h"

namespace tpa::tso {

/// What a pass concluded about the scenario. kClean means every explored
/// schedule satisfied all checked properties; the other kinds carry a
/// witness schedule that reproduces the failure deterministically.
enum class VerdictKind : std::uint8_t {
  kClean,       ///< no violation within the explored bound
  kSafety,      ///< a CheckFailure: exclusion, crash-safety, hook invariant
  kStarvation,  ///< fair cycle where some process waits in Try without CS
  kLivelock,    ///< fair cycle with no Enter/CS/Exit progress by anyone
  kDeadlock,    ///< pre-completion state with no enabled transition
};

const char* to_string(VerdictKind k);

/// Inverse of to_string(VerdictKind); throws CheckFailure on unknown names.
VerdictKind verdict_kind_from_string(const std::string& name);

/// Sentinel for Verdict::cycle_start / trace::Witness::cycle_start: the
/// witness is a plain finite schedule, not a lasso.
inline constexpr std::size_t kNoCycle = static_cast<std::size_t>(-1);

/// The structured outcome of a pass: kind, human-readable message, and the
/// reproducing schedule. For liveness kinds the witness is a *lasso* —
/// directives [0, cycle_start) are the stem reaching the cycle entry state,
/// directives [cycle_start, size) are a cycle that returns to it (the
/// progress fingerprint at cycle entry equals the one after the last
/// directive; replay re-asserts this).
struct Verdict {
  VerdictKind kind = VerdictKind::kClean;
  std::string message;              ///< failure detail (first found)
  std::vector<Directive> witness;   ///< schedule reproducing the violation
                                    ///< (shrunk when shrinking is on)
  std::vector<Directive> raw_witness;  ///< pre-shrink witness (empty if
                                       ///< shrinking is off or a no-op)
  std::size_t cycle_start = kNoCycle;  ///< lasso cycle entry index, or
                                       ///< kNoCycle for finite witnesses

  /// Any non-clean kind.
  bool found() const { return kind != VerdictKind::kClean; }
  /// The witness is stem + cycle (liveness kinds other than deadlock).
  bool is_lasso() const { return cycle_start != kNoCycle; }
};

struct RunStats {
  /// Complete schedules finished (explorer) / fuzz runs executed (fuzzer).
  std::uint64_t schedules = 0;
  /// Machine events actually executed across every simulator the pass
  /// created. Checkpoint restores replay none, and dedup prunes whole
  /// subtrees — this is the figure those optimizations shrink.
  std::uint64_t steps = 0;
  /// Schedules/runs cut off at the per-schedule step cap (a process spinning
  /// on a never-committed write does this).
  std::uint64_t truncated = 0;
  /// The configured wall-clock budget ran out before the pass finished.
  bool deadline_hit = false;
  /// What the pass concluded, with the reproducing schedule if anything
  /// failed. Shared by explorer and fuzzer so campaign files, benches and
  /// tests read one shape.
  Verdict verdict;

  /// Emits the stats fields plus the verdict kind (and, for non-clean
  /// verdicts, `violation_found`) as `"key":value` pairs (no braces), for
  /// embedding into a larger JSON object.
  void json_fields(std::ostream& out) const;

  /// The fields as a self-contained JSON object.
  std::string to_json() const;
};

}  // namespace tpa::tso
