#include "tso/visited.h"

namespace tpa::tso {

namespace {

/// Spinlock guard that compiles down to nothing when `enabled` is false —
/// the single-threaded exploration path takes no locks at all.
class ShardLock {
 public:
  ShardLock(std::atomic_flag& flag, bool enabled)
      : flag_(flag), enabled_(enabled) {
    if (!enabled_) return;
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~ShardLock() {
    if (enabled_) flag_.clear(std::memory_order_release);
  }

  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  std::atomic_flag& flag_;
  const bool enabled_;
};

}  // namespace

VisitedSet::VisitedSet(bool concurrent) : concurrent_(concurrent) {
  for (Shard& s : shards_) s.slots.resize(kInitialSlots);
}

bool VisitedSet::subsumed(const Fingerprint& fp, const Budget& b) const {
  const Shard& s = shard(fp);
  ShardLock lock(s.lock, concurrent_);
  const std::size_t mask = s.slots.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(fp.lo) & mask;;
       i = (i + 1) & mask) {
    const Slot& slot = s.slots[i];
    if (!slot.used) return false;  // chains are contiguous: fp is absent
    if (slot.fp == fp && slot.budget.dominates(b)) return true;
  }
}

bool VisitedSet::insert(const Fingerprint& fp, const Budget& b) {
  Shard& s = shard(fp);
  ShardLock lock(s.lock, concurrent_);
  // Growth happens before the probe so the claimed slot index stays valid.
  if ((s.live + 1) * 10 > s.slots.size() * 7) rehash_grow(s);
  const std::size_t mask = s.slots.size() - 1;
  Slot* reuse = nullptr;
  std::size_t i = static_cast<std::size_t>(fp.lo) & mask;
  // One pass over the whole chain: a dominating entry anywhere wins (return
  // false), and only then may a dominated same-fingerprint slot be
  // overwritten. Extra dominated entries further along the chain are left
  // in place — stale but sound, since each is an independently valid
  // fully-explored claim.
  for (;; i = (i + 1) & mask) {
    Slot& slot = s.slots[i];
    if (!slot.used) break;
    if (slot.fp != fp) continue;
    if (slot.budget.dominates(b)) return false;
    if (reuse == nullptr && b.dominates(slot.budget)) reuse = &slot;
  }
  if (reuse != nullptr) {
    reuse->budget = b;
    return true;
  }
  Slot& slot = s.slots[i];
  slot.fp = fp;
  slot.budget = b;
  slot.used = true;
  s.live++;
  return true;
}

std::size_t VisitedSet::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    ShardLock lock(s.lock, concurrent_);
    total += s.live;
  }
  return total;
}

void VisitedSet::rehash_grow(Shard& s) {
  std::vector<Slot> old = std::move(s.slots);
  s.slots.assign(old.size() * 2, Slot{});
  const std::size_t mask = s.slots.size() - 1;
  for (const Slot& slot : old) {
    if (!slot.used) continue;
    std::size_t i = static_cast<std::size_t>(slot.fp.lo) & mask;
    while (s.slots[i].used) i = (i + 1) & mask;
    s.slots[i] = slot;
  }
}

}  // namespace tpa::tso
