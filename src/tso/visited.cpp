#include "tso/visited.h"

namespace tpa::tso {

namespace {

/// Spinlock guard that compiles down to nothing when `enabled` is false —
/// the single-threaded exploration path takes no locks at all.
class ShardLock {
 public:
  ShardLock(std::atomic_flag& flag, bool enabled)
      : flag_(flag), enabled_(enabled) {
    if (!enabled_) return;
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~ShardLock() {
    if (enabled_) flag_.clear(std::memory_order_release);
  }

  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  std::atomic_flag& flag_;
  const bool enabled_;
};

}  // namespace

VisitedSet::VisitedSet(bool concurrent, std::uint64_t max_bytes)
    : concurrent_(concurrent) {
  std::size_t initial = kInitialSlots;
  if (max_bytes != kUnlimitedBytes) {
    // Largest power of two whose slot array fits in this shard's share of
    // the budget. A share below one slot leaves the shard storage-free —
    // at budget 0 the whole set degrades to raw enumeration.
    const std::uint64_t budget_slots = max_bytes / kShards / sizeof(Slot);
    std::size_t cap = 0;
    while ((cap == 0 ? 1u : cap * 2) <= budget_slots)
      cap = (cap == 0 ? 1 : cap * 2);
    max_slots_per_shard_ = cap;
    initial = cap < kInitialSlots ? cap : kInitialSlots;
  }
  for (Shard& s : shards_) s.slots.resize(initial);
}

bool VisitedSet::subsumed(const Fingerprint& fp, const Budget& b) const {
  Shard& s = shard(fp);
  ShardLock lock(s.lock, concurrent_);
  if (s.slots.empty()) return false;
  const std::size_t mask = s.slots.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(fp.lo) & mask;;
       i = (i + 1) & mask) {
    Slot& slot = s.slots[i];
    if (!slot.used) return false;  // chains are contiguous: fp is absent
    if (slot.fp == fp && slot.budget.dominates(b)) {
      slot.referenced = true;  // still pruning: survives the next sweep
      return true;
    }
  }
}

bool VisitedSet::insert(const Fingerprint& fp, const Budget& b) {
  Shard& s = shard(fp);
  ShardLock lock(s.lock, concurrent_);
  if (s.slots.empty()) return false;  // budget 0: degraded to no storage
  // Growth happens before the probe so the claimed slot index stays valid.
  // A shard at its byte-budget cap evicts cold entries instead of growing.
  if ((s.live + 1) * 10 > s.slots.size() * 7) {
    if (s.slots.size() * 2 <= max_slots_per_shard_) {
      rehash_grow(s);
    } else {
      while ((s.live + 1) * 10 > s.slots.size() * 7 && evict_one(s)) {
      }
    }
  }
  // Probe loops terminate only while at least one slot stays empty; with a
  // one-slot shard nothing can ever be stored.
  if (s.live + 1 >= s.slots.size()) return false;
  const std::size_t mask = s.slots.size() - 1;
  Slot* reuse = nullptr;
  std::size_t i = static_cast<std::size_t>(fp.lo) & mask;
  // One pass over the whole chain: a dominating entry anywhere wins (return
  // false), and only then may a dominated same-fingerprint slot be
  // overwritten. Extra dominated entries further along the chain are left
  // in place — stale but sound, since each is an independently valid
  // fully-explored claim.
  for (;; i = (i + 1) & mask) {
    Slot& slot = s.slots[i];
    if (!slot.used) break;
    if (slot.fp != fp) continue;
    if (slot.budget.dominates(b)) return false;
    if (reuse == nullptr && b.dominates(slot.budget)) reuse = &slot;
  }
  if (reuse != nullptr) {
    reuse->budget = b;
    reuse->referenced = false;
    return true;
  }
  Slot& slot = s.slots[i];
  slot.fp = fp;
  slot.budget = b;
  slot.used = true;
  slot.referenced = false;
  s.live++;
  return true;
}

std::size_t VisitedSet::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    ShardLock lock(s.lock, concurrent_);
    total += s.live;
  }
  return total;
}

std::uint64_t VisitedSet::bytes() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    ShardLock lock(s.lock, concurrent_);
    total += static_cast<std::uint64_t>(s.slots.size()) * sizeof(Slot);
  }
  return total;
}

std::uint64_t VisitedSet::evictions() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    ShardLock lock(s.lock, concurrent_);
    total += s.evictions;
  }
  return total;
}

void VisitedSet::rehash_grow(Shard& s) {
  std::vector<Slot> old = std::move(s.slots);
  s.slots.assign(old.size() * 2, Slot{});
  const std::size_t mask = s.slots.size() - 1;
  for (const Slot& slot : old) {
    if (!slot.used) continue;
    std::size_t i = static_cast<std::size_t>(slot.fp.lo) & mask;
    while (s.slots[i].used) i = (i + 1) & mask;
    s.slots[i] = slot;
  }
}

void VisitedSet::erase_at(Shard& s, std::size_t i) {
  // Standard linear-probing deletion: walk the chain after i and shift back
  // every entry whose home position is not cyclically inside (i, j], so the
  // invariant "chains are contiguous from the home slot" survives without
  // tombstones.
  const std::size_t mask = s.slots.size() - 1;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (!s.slots[j].used) break;
    const std::size_t home = static_cast<std::size_t>(s.slots[j].fp.lo) & mask;
    const bool home_between =
        i <= j ? (home > i && home <= j) : (home > i || home <= j);
    if (!home_between) {
      s.slots[i] = s.slots[j];
      i = j;
    }
  }
  s.slots[i] = Slot{};
  s.live--;
}

bool VisitedSet::evict_one(Shard& s) {
  if (s.live == 0) return false;
  // Second chance: a full first lap may only clear referenced bits, so two
  // laps always find a victim while hot entries get one sweep of grace.
  const std::size_t limit = s.slots.size() * 2;
  std::size_t i = s.clock;
  for (std::size_t n = 0; n < limit; ++n, i = (i + 1) % s.slots.size()) {
    Slot& slot = s.slots[i];
    if (!slot.used) continue;
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    // The backward shift can move chain entries into lower indices, which
    // the next sweep will revisit — acceptable clock drift.
    erase_at(s, i);
    s.evictions++;
    s.clock = i;
    return true;
  }
  return false;
}

}  // namespace tpa::tso
