// Simulator — the TSO operational model of Section 2, executable.
//
// A scheduling adversary drives a set of process coroutines. At each step it
// picks a process and either (a) *delivers* the process' next program event
// — read, write issue, fence progress, CAS, or a transition event — or (b)
// *commits* the first write in the process' write buffer. Writes become
// visible only when committed; a fence forces the process into write mode
// until its buffer drains (BeginFence .. commits .. EndFence).
//
// The simulator computes, online and per event: remoteness, criticality
// (Definition 2), RMRs under the DSM model and the CC model with
// write-through and write-back protocols, and awareness sets (Definition 1).
// It records the full event trace plus the directive schedule, which is
// sufficient to deterministically replay the run — including replays with a
// subset of processes erased (the paper's E^{-Y} operator; see
// tso/schedule.h).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "tso/event.h"
#include "tso/proc.h"
#include "tso/task.h"
#include "tso/types.h"
#include "util/bitset.h"

namespace tpa::tso {

struct SimConfig {
  /// Track awareness sets (Definition 1). Needed by the lower-bound
  /// construction and the trace analyzer; may be disabled for perf runs.
  bool track_awareness = true;
  /// Assert mutual exclusion: at most one process may have an enabled CS
  /// transition at any time.
  bool check_exclusion = true;
  /// Record the event trace and directive schedule.
  bool record_trace = true;
  /// Partial store ordering: writes to *different* variables may commit out
  /// of buffer order (Section 6 of the paper; older SPARC). Under PSO the
  /// scheduler's commit move may pick any buffered variable; under TSO
  /// (default) only the head of the FIFO buffer may commit.
  bool pso = false;
};

/// A shared variable with its coherence bookkeeping.
struct Variable {
  Value value = 0;
  Value initial = 0;
  /// owner(v): the process whose memory segment holds v (DSM model), or
  /// kNoProc when v is remote to everyone (always the case in CC).
  ProcId owner = kNoProc;
  /// writer(v, E): last process to commit a write to v.
  ProcId last_writer = kNoProc;
  /// Awareness set of the last writer at the time it issued that write.
  DynBitset writer_aw;

  // CC write-through: processes holding a valid cached copy.
  std::unordered_set<ProcId> wt_copies;
  // CC write-back: either one exclusive holder, or a set of sharers.
  std::unordered_set<ProcId> wb_sharers;
  ProcId wb_exclusive = kNoProc;
};

/// Classification of a process' pending (not yet executed) operation — what
/// its next event would be. Used by the adversary to run processes "until
/// about to execute a special event" (Lemma 5).
enum class PendingClass : std::uint8_t {
  kNone,             ///< no pending op (not started, or finished)
  kWriteIssue,       ///< write into buffer: never special
  kLocalRead,        ///< read from own buffer or a local variable
  kNonCriticalRead,  ///< remote read of an already remotely-read variable
  kCriticalRead,     ///< first remote read of the variable — special
  kBeginFence,       ///< fence instruction — special
  kCas,              ///< CAS barrier — special
  kCommitNonCritical,///< mid-fence commit, writer(v) == p
  kCommitCritical,   ///< mid-fence commit, writer(v) != p — special
  kEndFence,         ///< mid-fence, buffer empty — special
  kEnter,            ///< transition — special
  kCs,               ///< transition — special
  kExit,             ///< transition — special
};

const char* to_string(PendingClass c);

/// True for the classes the paper calls special events (critical events,
/// transition events, fence events).
bool is_special(PendingClass c);

class Simulator {
 public:
  explicit Simulator(std::size_t n_procs, SimConfig config = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  std::size_t num_procs() const { return procs_.size(); }
  std::size_t num_vars() const { return vars_.size(); }
  const SimConfig& config() const { return config_; }

  /// Allocates a shared variable. `owner` places it in a process' local
  /// memory segment (DSM model); default is remote-to-all (CC model).
  VarId alloc_var(Value init = 0, ProcId owner = kNoProc);

  /// Sets a variable's (initial) value before the execution starts — for
  /// building pre-populated object states (e.g. a queue seeded with
  /// tickets). Only legal while no event has been recorded.
  void poke(VarId v, Value value);

  /// Installs and starts a process' top-level program; it runs until its
  /// first suspension point (typically a pending Enter).
  void spawn(ProcId p, Task<> program);

  Proc& proc(ProcId p);
  const Proc& proc(ProcId p) const;

  Value value(VarId v) const;
  ProcId var_owner(VarId v) const;
  ProcId last_writer(VarId v) const;
  const Variable& variable(VarId v) const;

  /// Performs one scheduler step for p: delivers its next program event, or
  /// (mid-fence) commits the next buffered write / ends the fence. Returns
  /// false if p has nothing to do (done or not pending).
  bool deliver(ProcId p);

  /// Commits a write from p's buffer (the adversary's "commit" move — legal
  /// in any mode). `v == kNoVar` commits the head; naming a variable is
  /// only legal under PSO (write-write reordering) unless it is the head.
  /// Returns false if the buffer is empty (or v is not buffered).
  bool commit(ProcId p, VarId v = kNoVar);

  /// Classifies p's next event without executing it.
  PendingClass classify_pending(ProcId p) const;

  /// True if p's next event would be special (critical/transition/fence).
  bool pending_special(ProcId p) const {
    return is_special(classify_pending(p));
  }

  /// Act(E): processes that started a passage and have not completed it.
  std::vector<ProcId> active() const;

  /// Fin(E): processes that completed at least one passage.
  std::vector<ProcId> finished() const;

  /// Total contention of the recorded execution: number of processes that
  /// issued at least one event.
  std::size_t total_contention() const;

  const Execution& execution() const { return trace_; }

  /// Number of events recorded so far.
  std::uint64_t num_events() const { return trace_.events.size(); }

  /// Owners of all variables, indexed by VarId (kNoProc = remote to all).
  std::vector<ProcId> var_owners() const;

 private:
  friend struct Proc::OpAwaiter;

  void resume(Proc& p);
  void note_new_pending(Proc& p);
  void record(Event e);

  void do_commit(Proc& p, std::size_t index = 0);
  void perform_read(Proc& p);
  void perform_write_issue(Proc& p);
  void perform_cas(Proc& p);
  void perform_transition(Proc& p);

  /// Merges v's writer awareness into p's set (a read of v by p).
  void absorb_awareness(Proc& p, const Variable& var);

  // RMR accounting; updates cache directories and sets the event flags.
  void account_read(Proc& p, Variable& var, Event& e);
  void account_write(Proc& p, Variable& var, Event& e);

  SimConfig config_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<Task<>> programs_;
  std::vector<Variable> vars_;
  Execution trace_;
  std::uint64_t seq_ = 0;
};

}  // namespace tpa::tso
