// Simulator — the TSO operational model of Section 2, executable.
//
// A scheduling adversary drives a set of process coroutines. At each step it
// picks a process and either (a) *delivers* the process' next program event
// — read, write issue, fence progress, CAS, or a transition event — or (b)
// *commits* the first write in the process' write buffer. Writes become
// visible only when committed; a fence forces the process into write mode
// until its buffer drains (BeginFence .. commits .. EndFence).
//
// The Simulator itself is only the core state machine. Instrumentation —
// criticality and RMRs (Definition 2), awareness sets (Definition 1),
// mutual-exclusion checking, trace recording — is layered on top as
// composable SimObservers (tso/observer.h, tso/observers.h); SimConfig
// installs the standard set. The recorded directive schedule is sufficient
// to deterministically replay the run — including replays with a subset of
// processes erased (the paper's E^{-Y} operator; see tso/schedule.h) — and
// snapshot()/restore() checkpoints the whole machine (variables, buffers,
// coroutine progress, observer state) so explorers can resume from branch
// points instead of replaying prefixes from the root.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tso/event.h"
#include "tso/observer.h"
#include "tso/proc.h"
#include "tso/task.h"
#include "tso/types.h"
#include "util/bitset.h"

namespace tpa::tso {

class CostObserver;
class AwarenessObserver;
class TraceRecorder;

/// How Simulator::fingerprint() is maintained. The incremental mode is the
/// production path: each machine event folds the changed per-process /
/// per-variable hash components out of and back into two running
/// accumulators, so a fingerprint costs O(1) per event instead of a walk
/// over the whole machine state. Audit mode keeps the same incremental
/// bookkeeping but additionally recomputes the fingerprint from scratch on
/// every fingerprint() call and TPA_CHECKs that both agree — the debug
/// oracle the differential tests (tests/test_fingerprint.cpp) also drive.
enum class FingerprintMode : std::uint8_t {
  kIncremental,  ///< O(1) per-event maintenance (default)
  kAudit,        ///< incremental + from-scratch cross-check on every call
};

const char* to_string(FingerprintMode m);

/// Inverse of to_string(FingerprintMode); throws CheckFailure on unknown
/// names (tested by tests/test_enum_strings.cpp).
FingerprintMode fingerprint_mode_from_string(const std::string& name);

struct SimConfig {
  /// Track awareness sets (Definition 1) via the AwarenessObserver. Needed
  /// by the lower-bound construction; may be disabled for perf runs.
  bool track_awareness = true;
  /// Assert mutual exclusion (ExclusionChecker): at most one process may
  /// have an enabled CS transition at any time.
  bool check_exclusion = true;
  /// Record the event trace and directive schedule (TraceRecorder).
  bool record_trace = true;
  /// Partial store ordering: writes to *different* variables may commit out
  /// of buffer order (Section 6 of the paper; older SPARC). Under PSO the
  /// scheduler's commit move may pick any buffered variable; under TSO
  /// (default) only the head of the FIFO buffer may commit.
  bool pso = false;
  /// Charge criticality (Definition 2) and RMRs under DSM / CC-WT / CC-WB
  /// via the CostObserver. Without it, classify_pending() conservatively
  /// reports every remote read as critical.
  bool track_costs = true;
  /// What happens to a crashing process' write buffer (tso/event.h): lost
  /// with the volatile state (default, the adversarial RME model) or
  /// flushed to shared memory. Irrelevant unless the schedule contains
  /// crash directives.
  CrashModel crash_model = CrashModel::kBufferLost;
  /// Fingerprint maintenance strategy; kAudit cross-checks the incremental
  /// fingerprint against a from-scratch recomputation on every call.
  FingerprintMode fingerprint = FingerprintMode::kIncremental;
};

/// A shared variable. Coherence-directory state lives in the CostObserver
/// (cost::CoherenceDirectory); awareness snapshots in the AwarenessObserver.
struct Variable {
  Value value = 0;
  Value initial = 0;
  /// owner(v): the process whose memory segment holds v (DSM model), or
  /// kNoProc when v is remote to everyone (always the case in CC).
  ProcId owner = kNoProc;
  /// writer(v, E): last process to commit a write to v.
  ProcId last_writer = kNoProc;
};

/// Classification of a process' pending (not yet executed) operation — what
/// its next event would be. Used by the adversary to run processes "until
/// about to execute a special event" (Lemma 5).
enum class PendingClass : std::uint8_t {
  kNone,             ///< no pending op (not started, or finished)
  kWriteIssue,       ///< write into buffer: never special
  kLocalRead,        ///< read from own buffer or a local variable
  kNonCriticalRead,  ///< remote read of an already remotely-read variable
  kCriticalRead,     ///< first remote read of the variable — special
  kBeginFence,       ///< fence instruction — special
  kCas,              ///< CAS barrier — special
  kCommitNonCritical,///< mid-fence commit, writer(v) == p
  kCommitCritical,   ///< mid-fence commit, writer(v) != p — special
  kEndFence,         ///< mid-fence, buffer empty — special
  kEnter,            ///< transition — special
  kCs,               ///< transition — special
  kExit,             ///< transition — special
};

const char* to_string(PendingClass c);

/// Inverse of to_string(PendingClass); throws CheckFailure on unknown names
/// (tested exhaustively by tests/test_enum_strings.cpp).
PendingClass pending_class_from_string(const std::string& name);

/// True for the classes the paper calls special events (critical events,
/// transition events, fence events).
bool is_special(PendingClass c);

/// A 128-bit canonical fingerprint of the full machine state, as computed by
/// Simulator::fingerprint(). Two states with equal fingerprints have (up to
/// hash collision, ~2^-128 per pair) identical futures under any schedule:
/// the fingerprint covers everything the transition relation reads and
/// nothing it does not (see the member doc on Simulator::fingerprint).
struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const Fingerprint&) const = default;
};


/// A full checkpoint of the simulator (and its observers) at a quiescent
/// point between scheduler steps. Move-only; share via shared_ptr when the
/// same checkpoint seeds several branches. Restoring re-runs the scenario
/// builder to recreate the process coroutines and fast-forwards them by
/// feeding back the recorded op results — coroutine frames themselves
/// cannot be copied.
struct SimSnapshot {
  struct ProcState {
    Status status = Status::kNcs;
    Mode mode = Mode::kRead;
    std::vector<BufferedWrite> buffer;
    SimOp pending{OpKind::kRead};
    bool has_pending = false;
    bool done = false;
    bool crashed = false;
    /// Recovery incarnations started so far (0 = the original program).
    std::uint32_t incarnations = 0;
    /// Results of the *current* incarnation's ops (cleared at each crash).
    std::vector<Value> op_results;
    std::uint32_t fences_total = 0;
    std::uint32_t passages_done = 0;
    PassageStats cur;
    DynBitset met;
    std::vector<PassageStats> finished;
  };

  std::uint64_t seq = 0;
  std::vector<Value> var_values;
  std::vector<ProcId> var_writers;
  std::vector<ProcState> procs;
  DynBitset touched;
  /// One entry per attached observer, in registration order (nullptr for
  /// stateless observers).
  std::vector<std::unique_ptr<ObserverSnapshot>> observers;
};

class Simulator {
 public:
  explicit Simulator(std::size_t n_procs, SimConfig config = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  std::size_t num_procs() const { return procs_.size(); }
  std::size_t num_vars() const { return vars_.size(); }
  const SimConfig& config() const { return config_; }

  /// Attaches an observer; only legal before the execution starts.
  /// Observers fire in registration order, after the standard set installed
  /// by SimConfig.
  void add_observer(std::unique_ptr<SimObserver> observer);

  const std::vector<std::unique_ptr<SimObserver>>& observers() const {
    return observers_;
  }

  /// Allocates a shared variable. `owner` places it in a process' local
  /// memory segment (DSM model); default is remote-to-all (CC model).
  VarId alloc_var(Value init = 0, ProcId owner = kNoProc);

  /// Sets a variable's (initial) value before the execution starts — for
  /// building pre-populated object states (e.g. a queue seeded with
  /// tickets). Only legal while no event has been recorded.
  void poke(VarId v, Value value);

  /// Installs and starts a process' top-level program; it runs until its
  /// first suspension point (typically a pending Enter).
  void spawn(ProcId p, Task<> program);

  /// Factory for a process' recovery section: invoked (with the process)
  /// each time the process recovers from a crash, producing a fresh
  /// incarnation's program. Must be deterministic, like scenario builders.
  using RecoveryFactory = std::function<Task<>(Proc&)>;

  /// Registers p's recovery section. Without one, a crashed process never
  /// restarts (it counts as done — a permanent, fail-stop crash).
  void set_recovery(ProcId p, RecoveryFactory factory);

  /// True if a recovery section was registered for p.
  bool has_recovery(ProcId p) const;

  /// True if the crash adversary move is legal for p right now: the process
  /// was spawned, is not already crashed, and has work left (a finished
  /// program with a drained buffer has nothing left to lose).
  bool can_crash(ProcId p) const;

  /// The crash adversary move: p's volatile state — program counter,
  /// pending op, current passage — is destroyed and its write buffer is
  /// lost or flushed per SimConfig::crash_model (a flush commits each entry
  /// in order as an ordinary WriteCommit before the Crash event). The
  /// process re-enters ncs; it restarts only via recover(). Returns false
  /// if the move is not legal (see can_crash).
  bool crash(ProcId p);

  /// Restarts a crashed process in a fresh incarnation of its recovery
  /// section (set_recovery). Returns false if p is not crashed or has no
  /// recovery section.
  bool recover(ProcId p);

  Proc& proc(ProcId p);
  const Proc& proc(ProcId p) const;

  Value value(VarId v) const;
  ProcId var_owner(VarId v) const;
  ProcId last_writer(VarId v) const;
  const Variable& variable(VarId v) const;

  /// Performs one scheduler step for p: delivers its next program event, or
  /// (mid-fence) commits the next buffered write / ends the fence. Returns
  /// false if p has nothing to do (done or not pending).
  bool deliver(ProcId p);

  /// Commits a write from p's buffer (the adversary's "commit" move — legal
  /// in any mode). `v == kNoVar` commits the head; naming a variable is
  /// only legal under PSO (write-write reordering) unless it is the head.
  /// Returns false if the buffer is empty (or v is not buffered).
  bool commit(ProcId p, VarId v = kNoVar);

  /// Classifies p's next event without executing it.
  PendingClass classify_pending(ProcId p) const;

  /// True if p's next event would be special (critical/transition/fence).
  bool pending_special(ProcId p) const {
    return is_special(classify_pending(p));
  }

  /// Act(E): processes that started a passage and have not completed it.
  std::vector<ProcId> active() const;

  /// Fin(E): processes that completed at least one passage.
  std::vector<ProcId> finished() const;

  /// Total contention of the execution: number of processes that issued at
  /// least one event (tracked by the core; works without a trace).
  std::size_t total_contention() const;

  /// The recorded execution, from the TraceRecorder; empty when
  /// record_trace is off.
  const Execution& execution() const;

  /// Number of events recorded so far (0 when record_trace is off).
  std::uint64_t num_events() const;

  /// Machine events this simulator actually executed (monotone; restore()
  /// executes none — the whole point of checkpointing).
  std::uint64_t events_executed() const { return work_events_; }

  /// Additionally count every executed machine event into *sink (explorers
  /// aggregate work across many short-lived simulators this way).
  void count_events_into(std::uint64_t* sink) { events_sink_ = sink; }

  /// Owners of all variables, indexed by VarId (kNoProc = remote to all).
  std::vector<ProcId> var_owners() const;

  /// AW(p, E) from the AwarenessObserver; an empty set when awareness
  /// tracking is off.
  const DynBitset& awareness_of(ProcId p) const;

  /// Definition 2 bookkeeping from the CostObserver; false when cost
  /// tracking is off.
  bool remotely_read(ProcId p, VarId v) const;

  /// Canonical fingerprint of the complete *machine* state: committed shared
  /// memory (value + last_writer + owner per variable), each process'
  /// control location (an incrementally maintained hash of its op-result
  /// stream + incarnation count), write-buffer contents, pending op,
  /// status/mode/done/crashed flags, and the config bits the transition
  /// relation consults (pso, crash model). Pure instrumentation — observers,
  /// contention bookkeeping, passage statistics, the touched set — is
  /// deliberately excluded, so a bare core and a fully instrumented
  /// simulator in the same machine state fingerprint identically.
  ///
  /// Maintained *incrementally*: every deliver/commit/crash/recover marks
  /// the per-process and per-variable hash components it touched dirty, and
  /// fingerprint() folds just those back into two running accumulators — an
  /// O(1)-per-event cost, never a walk over the full state
  /// (docs/EXPLORER.md documents the maintenance invariant). Under
  /// FingerprintMode::kAudit every call is additionally cross-checked
  /// against fingerprint_oracle().
  ///
  /// `current` (optional) folds the scheduler's currently running process
  /// into the hash, so explorers can key visited sets on (state, current)
  /// with a single value.
  Fingerprint fingerprint(ProcId current = kNoProc) const;

  /// The debug oracle: the same fingerprint function recomputed from
  /// scratch by walking the complete machine state. Always equal to
  /// fingerprint() when `rename` is null — the differential tests pin this
  /// after every event kind. `rename` (optional, length num_procs, a
  /// permutation) renames every process-id the state mentions — blob
  /// positions, last_writer/owner fields, and `current` — as if processes
  /// had been permuted at spawn time; only meaningful for scenarios whose
  /// builders and programs are invariant under process renaming
  /// (runtime::Scenario's `symmetric` declaration).
  Fingerprint fingerprint_oracle(ProcId current = kNoProc,
                                 const ProcId* rename = nullptr) const;

  /// Canonical fingerprint under process-symmetry: fingerprint_oracle()
  /// evaluated at a canonical renaming chosen in O(vars + procs·log procs)
  /// by sorting processes on renaming-invariant signatures (blob hash,
  /// last-writer references, current flag) — near-linear, replacing the old
  /// min-over-n!-renamings scheme. States in the same renaming orbit map to
  /// the same key; distinct orbits stay distinct (up to hash collision).
  /// Only sound on declared-symmetric scenarios; see docs/EXPLORER.md.
  Fingerprint fingerprint_symmetric(ProcId current = kNoProc) const;

  /// The *progress* fingerprint: fingerprint() minus the per-process
  /// op-result history component. The history hash grows monotonically
  /// (every spin-loop iteration appends op results), so full-state
  /// fingerprints never repeat along a run — dropping exactly that
  /// component yields an abstraction under which a spinning process or a
  /// completed lock passage returns to an earlier state. Fair-cycle
  /// detection (ExplorerConfig::liveness) keys its DFS on-stack map on this
  /// value; soundness comes from re-applying any candidate cycle and
  /// checking the key re-closes, so a hash-collision false cycle is
  /// rejected rather than reported (see docs/LIVENESS.md). Maintained by
  /// the same dirty-tracking machinery as fingerprint(), O(1) per event; a
  /// distinct domain tag keeps progress and full keys from ever colliding
  /// across key spaces.
  Fingerprint fingerprint_progress(ProcId current = kNoProc) const;

  /// True when no progress-visible component has changed since the last
  /// flush/rebuild of the incremental-fingerprint baseline: no variable was
  /// dirtied, and every dirtied process' recomputed live blob equals its
  /// baseline value — i.e. only op histories grew. Read-only: neither
  /// flushes nor moves the baseline, so chained calls keep comparing
  /// against the same state. Callers must separately rule out variable
  /// *allocation* (compare n_vars() across the step): a fresh variable
  /// enters the baseline at allocation time, not through the dirty lists.
  /// This is what makes per-node liveness keying affordable — along forced
  /// spin chains the explorer proves "this step changed no progress state"
  /// from the dirty delta alone, never finalizing a key (see the fast path
  /// in explorer.cpp).
  bool progress_unchanged_since_baseline() const;

  /// Number of allocated variables (a component count of every
  /// fingerprint).
  std::size_t n_vars() const { return vars_.size(); }

  /// Debug oracle for fingerprint_progress, recomputed from scratch;
  /// `rename` as in fingerprint_oracle. Always equal to
  /// fingerprint_progress() when `rename` is null.
  Fingerprint fingerprint_progress_oracle(ProcId current = kNoProc,
                                          const ProcId* rename =
                                              nullptr) const;

  /// Canonical progress fingerprint under process-symmetry: like
  /// fingerprint_symmetric(), but both the sort signatures and the final
  /// walk use the history-free blobs — two abstractly-equal states whose
  /// histories differ must canonicalize identically, or cycles on the
  /// canonical key space would be missed.
  Fingerprint fingerprint_progress_symmetric(ProcId current = kNoProc) const;

  /// Checkpoints the complete machine + observer state. Call only between
  /// scheduler steps (never from inside an observer callback).
  SimSnapshot snapshot() const;

  /// snapshot() into an existing object, reusing its vector capacity —
  /// explorers pool snapshots to keep branch points allocation-free.
  void snapshot_into(SimSnapshot& out) const;

  /// Reinstates a snapshot taken from a simulator with the same shape: same
  /// process count, same config/observer set, and the same deterministic
  /// scenario `build` (it is re-run to recreate the coroutines). Works on
  /// the snapshot's own simulator or on a freshly constructed one.
  void restore(const SimSnapshot& snap,
               const std::function<void(Simulator&)>& build);

 private:
  friend struct Proc::OpAwaiter;
  friend class Proc;

  void resume(Proc& p);
  void note_new_pending(Proc& p);

  // ---- incremental fingerprint maintenance (see sim.cpp) ----

  /// Marks p's blob component stale; fingerprint() re-folds it. O(1).
  void fp_dirty_proc(ProcId p) const;
  /// Marks v's component stale; fingerprint() re-folds it. O(1).
  void fp_dirty_var(VarId v) const;
  /// Appends a component slot for a newly allocated variable.
  void fp_grow_var();
  /// Recomputes every component and both accumulators from the live state
  /// (used by restore(); also the body of the audit oracle).
  void fp_rebuild() const;
  /// Folds all dirty components back into the accumulators.
  void fp_flush() const;

  /// Stamps the event, counts it, and runs the observer pipeline.
  void dispatch(Proc& p, Event& e, const StepContext& ctx);
  void notify_directive(const Directive& d);

  void do_commit(Proc& p, std::size_t index = 0);
  void perform_read(Proc& p);
  void perform_write_issue(Proc& p);
  void perform_cas(Proc& p);
  void perform_transition(Proc& p);

  SimConfig config_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<Task<>> programs_;
  std::vector<RecoveryFactory> recovery_;
  std::vector<Variable> vars_;
  std::uint64_t seq_ = 0;
  DynBitset touched_;  ///< processes that issued at least one event
  std::uint64_t work_events_ = 0;
  std::uint64_t* events_sink_ = nullptr;
  bool restoring_ = false;

  // Incremental fingerprint state. The fingerprint is a pure function of
  // the machine state, so the caches are `mutable`: fingerprint() flushes
  // the dirty lists from const context. fp_x_ is an XOR of per-component
  // scrambles, fp_s_ a sum of independently scrambled ones — two invertible
  // commutative group operations, so a changed component folds out in O(1).
  mutable std::vector<std::uint64_t> fp_var_;   ///< per-variable components
  mutable std::vector<std::uint64_t> fp_proc_;  ///< per-process blob hashes
  /// History-free per-process blob hashes (the progress-fingerprint lane).
  /// A full blob is fp_fold(live blob, op_history_hash), so both are
  /// computed in one pass and share the dirty tracking below.
  mutable std::vector<std::uint64_t> fp_proc_live_;
  mutable std::uint64_t fp_x_ = 0;
  mutable std::uint64_t fp_s_ = 0;
  mutable std::uint64_t fp_lx_ = 0;  ///< progress-lane XOR accumulator
  mutable std::uint64_t fp_ls_ = 0;  ///< progress-lane SUM accumulator
  mutable std::vector<VarId> fp_dirty_vars_;
  mutable std::vector<ProcId> fp_dirty_procs_;
  mutable std::vector<std::uint8_t> fp_var_stale_;
  mutable std::vector<std::uint8_t> fp_proc_stale_;
  /// Scratch for fingerprint_symmetric (avoids per-call allocation).
  mutable std::vector<ProcId> fp_rank_;
  mutable std::vector<std::uint64_t> fp_wref_;
  mutable std::vector<ProcId> fp_order_;

  std::vector<std::unique_ptr<SimObserver>> observers_;
  // Raw views into observers_ for the hot paths / typed accessors.
  CostObserver* cost_ = nullptr;
  AwarenessObserver* awareness_ = nullptr;
  TraceRecorder* recorder_ = nullptr;
};

}  // namespace tpa::tso
