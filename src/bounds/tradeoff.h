// The quantitative content of the paper: Theorem 1's condition, Theorem 3's
// active-set bound, and the Corollary 2/3 closed forms.
//
// Theorem 1: if  f(i) <= N^{2^{-f(i)}} / (f(i)! * 4^{f(i)+2i})  then some
// execution with total contention i+1 forces i fences on one passage.
//
// Two evaluation modes:
//   * log2-domain (double): works for astronomically large N given log2(N),
//     e.g. log2N = 2^20 — the regime where the loglog/logloglog asymptotics
//     of Corollaries 2 and 3 become visible;
//   * exact (BigNat): the condition rewritten over the integers as
//       ( f * f! * 4^{f+2i} )^{2^f} <= N,
//     used to cross-validate the log-domain arithmetic for moderate f.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bignum.h"

namespace tpa::bounds {

/// An adaptivity function i -> f(i). Must be non-decreasing.
using AdaptivityFn = std::function<double(int)>;

/// f(i) = c * i (Corollary 2's regime).
AdaptivityFn linear_adaptivity(double c);

/// f(i) = 2^{c*i} (Corollary 3's regime).
AdaptivityFn exponential_adaptivity(double c);

/// f(i) = c (a constant-adaptivity straw man; Kim-Anderson rule out
/// sub-linear adaptivity, so this is used in tests only).
AdaptivityFn constant_adaptivity(double c);

/// log2(x!) via lgamma; exact enough for the bound tables.
double log2_factorial(double x);

/// log2-domain check of Theorem 1's condition for fence count f_i at round
/// i with log2(N) bits of processes.
bool theorem1_condition(double f_i, int i, double log2_n);

/// Smallest log2(N) for which the condition holds at (f_i, i):
/// log2 N >= 2^{f} * (log2 f + log2 f! + 2f + 4i).
double min_log2_n(double f_i, int i);

/// Largest i such that theorem1_condition(f(i), i, log2_n) holds — the
/// number of fences Theorem 1 forces for an f-adaptive algorithm on N =
/// 2^log2_n processes. Scans i upward; stops at i_cap.
int forced_fences(const AdaptivityFn& f, double log2_n, int i_cap = 1 << 20);

/// Corollary 2's closed form: for f(i) = c*i the condition holds up to
/// i = log2(log2 N) / (3c), i.e. fence complexity is Omega(log log N).
double corollary2_fences(double c, double log2_n);

/// Corollary 3's closed form: for f(i) = 2^{c*i} the condition holds up to
/// i = (log2(log2(log2 N)) - 1) / c, i.e. Omega(log log log N).
double corollary3_fences(double c, double log2_n);

/// Theorem 3: log2 of the guaranteed active-set size after round i with
/// critical-event count l (= l_i):
/// log2 |Act(H_i)| >= 2^{-l} * log2 N - log2(l!) - 2*(l + 2i).
double log2_act_lower_bound(double l, int i, double log2_n);

/// Exact integer form of Theorem 1's condition:
/// (f * f! * 4^{f+2i})^{2^f} <= N. Intended for f <= ~16 (the left side has
/// about 2^f * (log2 f + log2 f! + 2f + 4i) bits).
bool theorem1_condition_exact(std::uint32_t f, std::uint32_t i,
                              const BigNat& n);

/// The left side of the exact condition, for tests/tables.
BigNat theorem1_lhs_exact(std::uint32_t f, std::uint32_t i);

}  // namespace tpa::bounds
