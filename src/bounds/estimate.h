// Empirical adaptivity estimation.
//
// The paper's definitions quantify over all executions; for concrete
// algorithms we can *measure* per-passage cost against contention k (arena
// size n held fixed) and against n (k held fixed), and classify:
//
//   adaptive      — cost grows with k and is flat in n;
//   non-adaptive  — cost is flat in k but grows with n (e.g. bakery), or
//                   flat in both (e.g. a centralized CAS lock).
//
// The growth exponent is estimated by least-squares in log-log space
// (cost ~ a * x^b), which also recovers the adaptivity function's shape:
// b ≈ 1 for the active-set bakery (linear f), b ≈ 2 for the splitter
// lock's quadratic collect.
#pragma once

#include <cstddef>
#include <vector>

namespace tpa::bounds {

struct Sample {
  double x;     ///< contention k, or arena size n
  double cost;  ///< measured per-passage cost (critical events, RMRs, ...)
};

/// Least-squares fit of log(cost) = log(a) + b*log(x); returns the exponent
/// b. Samples with non-positive x or cost are ignored; fewer than two
/// usable samples yield 0.
double growth_exponent(const std::vector<Sample>& samples);

enum class AdaptivityClass {
  kAdaptive,     ///< cost tracks contention, not arena size
  kNonAdaptive,  ///< cost tracks arena size (or is flat in both)
};

const char* to_string(AdaptivityClass c);

/// Classifies from two sweeps: cost vs k (n fixed) and cost vs n (k fixed).
/// `threshold` is the growth exponent above which a dependence counts.
AdaptivityClass classify_adaptivity(const std::vector<Sample>& cost_vs_k,
                                    const std::vector<Sample>& cost_vs_n,
                                    double threshold = 0.5);

}  // namespace tpa::bounds
