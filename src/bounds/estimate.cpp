#include "bounds/estimate.h"

#include <cmath>

namespace tpa::bounds {

double growth_exponent(const std::vector<Sample>& samples) {
  // Least squares on (log x, log cost).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (const auto& s : samples) {
    if (s.x <= 0 || s.cost <= 0) continue;
    const double lx = std::log(s.x);
    const double ly = std::log(s.cost);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++m;
  }
  if (m < 2) return 0.0;
  const double denom = static_cast<double>(m) * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (static_cast<double>(m) * sxy - sx * sy) / denom;
}

const char* to_string(AdaptivityClass c) {
  return c == AdaptivityClass::kAdaptive ? "adaptive" : "non-adaptive";
}

AdaptivityClass classify_adaptivity(const std::vector<Sample>& cost_vs_k,
                                    const std::vector<Sample>& cost_vs_n,
                                    double threshold) {
  const double bk = growth_exponent(cost_vs_k);
  const double bn = growth_exponent(cost_vs_n);
  // Adaptive: depends on contention but not on the arena. Anything whose
  // cost scales with n — regardless of k-dependence — is non-adaptive.
  if (bn >= threshold) return AdaptivityClass::kNonAdaptive;
  if (bk >= threshold) return AdaptivityClass::kAdaptive;
  // Flat in both (e.g. a centralized lock's solo cost): not adaptive in the
  // paper's sense — its cost simply never was a function of contention.
  return AdaptivityClass::kNonAdaptive;
}

}  // namespace tpa::bounds
