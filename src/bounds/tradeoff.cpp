#include "bounds/tradeoff.h"

#include <cmath>

#include "util/check.h"

namespace tpa::bounds {

AdaptivityFn linear_adaptivity(double c) {
  TPA_CHECK(c > 0, "adaptivity coefficient must be positive");
  return [c](int i) { return c * i; };
}

AdaptivityFn exponential_adaptivity(double c) {
  TPA_CHECK(c > 0, "adaptivity coefficient must be positive");
  return [c](int i) { return std::exp2(c * i); };
}

AdaptivityFn constant_adaptivity(double c) {
  TPA_CHECK(c > 0, "adaptivity constant must be positive");
  return [c](int) { return c; };
}

double log2_factorial(double x) {
  if (x < 1.0) return 0.0;
  return std::lgamma(x + 1.0) / std::log(2.0);
}

bool theorem1_condition(double f_i, int i, double log2_n) {
  return min_log2_n(f_i, i) <= log2_n;
}

double min_log2_n(double f_i, int i) {
  // f <= N^{2^-f} / (f! 4^{f+2i})
  // <=> log2 f + log2 f! + 2(f + 2i) <= 2^{-f} log2 N
  // <=> log2 N >= 2^f (log2 f + log2 f! + 2f + 4i).
  if (f_i < 1.0) f_i = 1.0;  // f(i) >= 1 once any critical event happens
  const double inner =
      std::log2(f_i) + log2_factorial(f_i) + 2.0 * f_i + 4.0 * i;
  return std::exp2(f_i) * inner;
}

int forced_fences(const AdaptivityFn& f, double log2_n, int i_cap) {
  int best = 0;
  for (int i = 1; i <= i_cap; ++i) {
    const double fi = f(i);
    if (!std::isfinite(fi)) break;
    if (theorem1_condition(fi, i, log2_n))
      best = i;
    else
      break;  // min_log2_n is increasing in i for non-decreasing f
  }
  return best;
}

double corollary2_fences(double c, double log2_n) {
  TPA_CHECK(c > 0 && log2_n > 1, "need c>0 and N>2");
  const double ll = std::log2(log2_n);
  return std::max(0.0, ll / (3.0 * c));
}

double corollary3_fences(double c, double log2_n) {
  TPA_CHECK(c > 0 && log2_n > 1, "need c>0 and N>2");
  if (log2_n <= 2.0) return 0.0;
  const double lll = std::log2(std::log2(log2_n));
  return std::max(0.0, (lll - 1.0) / c);
}

double log2_act_lower_bound(double l, int i, double log2_n) {
  return std::exp2(-l) * log2_n - log2_factorial(l) - 2.0 * (l + 2.0 * i);
}

BigNat theorem1_lhs_exact(std::uint32_t f, std::uint32_t i) {
  TPA_CHECK(f >= 1, "f must be at least 1");
  TPA_CHECK(f <= 20, "exact mode supports f <= 20 (use the log domain)");
  BigNat base = BigNat(f) * BigNat::factorial(f);
  base = base * BigNat(4).pow(f + 2ull * i);
  return base.pow(1ull << f);
}

bool theorem1_condition_exact(std::uint32_t f, std::uint32_t i,
                              const BigNat& n) {
  return theorem1_lhs_exact(f, i) <= n;
}

}  // namespace tpa::bounds
