#include "objects/reduction.h"

#include "util/check.h"

namespace tpa::objects {

// ---------------------------------------------------------------------------
// CounterMutex — Algorithm 1 of the paper.
// ---------------------------------------------------------------------------

CounterMutex::CounterMutex(Simulator& sim, int n,
                           std::shared_ptr<SimCounter> counter)
    : n_(n),
      counter_(std::move(counter)),
      ticket_(static_cast<std::size_t>(n), -1) {
  // release[0..N], waiting[0..N] (ticket N-1's exit touches index N),
  // spin[p] local to p in the DSM model.
  release_.reserve(static_cast<std::size_t>(n) + 1);
  waiting_.reserve(static_cast<std::size_t>(n) + 1);
  spin_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i <= n; ++i) {
    release_.push_back(sim.alloc_var(i == 0 ? 1 : 0));
    waiting_.push_back(sim.alloc_var(0));  // 0 = ⊥; process p stored as p+1
  }
  for (int i = 0; i < n; ++i)
    spin_.push_back(sim.alloc_var(0, static_cast<tso::ProcId>(i)));
}

Task<> CounterMutex::acquire(Proc& p) {
  const Value v = co_await counter_->fetch_increment(p);
  TPA_CHECK(v >= 0 && v < n_, "counter returned out-of-range ticket " << v);
  ticket_[static_cast<std::size_t>(p.id())] = v;
  // Paper: every write is followed by a fence (omitted there for brevity).
  co_await p.write(waiting_[static_cast<std::size_t>(v)], p.id() + 1);
  co_await p.fence();
  const Value rel = co_await p.read(release_[static_cast<std::size_t>(v)]);
  if (rel == 0) {
    while (true) {
      const Value s =
          co_await p.read(spin_[static_cast<std::size_t>(p.id())]);
      if (s != 0) break;  // local spin (spin[p] lives in p's segment)
    }
  }
}

Task<> CounterMutex::release(Proc& p) {
  const Value v = ticket_[static_cast<std::size_t>(p.id())];
  TPA_CHECK(v >= 0, "release without a ticket for p" << p.id());
  co_await p.write(release_[static_cast<std::size_t>(v + 1)], 1);
  co_await p.fence();
  const Value q = co_await p.read(waiting_[static_cast<std::size_t>(v + 1)]);
  if (q != 0) {
    co_await p.write(spin_[static_cast<std::size_t>(q - 1)], 1);
    co_await p.fence();
  }
}

// ---------------------------------------------------------------------------
// Counters from queue / stack.
// ---------------------------------------------------------------------------

Task<Value> QueueCounter::fetch_increment(Proc& p) {
  const Value v = co_await queue_->dequeue(p);
  TPA_CHECK(v != kEmpty, "limited-use queue counter exhausted");
  co_return v;
}

Task<Value> StackCounter::fetch_increment(Proc& p) {
  const Value v = co_await stack_->pop(p);
  TPA_CHECK(v != kEmpty, "limited-use stack counter exhausted");
  co_return v;
}

// ---------------------------------------------------------------------------
// Objects from a lock (the easy direction).
// ---------------------------------------------------------------------------

LockedCounter::LockedCounter(Simulator& sim,
                             std::shared_ptr<algos::SimLock> lock)
    : lock_(std::move(lock)), value_(sim.alloc_var(0)) {}

Task<Value> LockedCounter::fetch_increment(Proc& p) {
  co_await lock_->acquire(p);
  const Value v = co_await p.read(value_);
  co_await p.write(value_, v + 1);
  co_await p.fence();
  co_await lock_->release(p);
  co_return v;
}

LockedQueue::LockedQueue(Simulator& sim,
                         std::shared_ptr<algos::SimLock> lock, int capacity)
    : lock_(std::move(lock)),
      capacity_(capacity),
      head_(sim.alloc_var(0)),
      tail_(sim.alloc_var(0)) {
  slots_.reserve(static_cast<std::size_t>(capacity));
  for (int i = 0; i < capacity; ++i) slots_.push_back(sim.alloc_var(0));
}

Task<> LockedQueue::enqueue(Proc& p, Value v) {
  co_await lock_->acquire(p);
  const Value t = co_await p.read(tail_);
  const Value h = co_await p.read(head_);
  TPA_CHECK(t - h < capacity_, "locked queue overflow");
  co_await p.write(slots_[static_cast<std::size_t>(t % capacity_)], v);
  co_await p.write(tail_, t + 1);
  co_await p.fence();
  co_await lock_->release(p);
}

Task<Value> LockedQueue::dequeue(Proc& p) {
  co_await lock_->acquire(p);
  const Value h = co_await p.read(head_);
  const Value t = co_await p.read(tail_);
  Value out = kEmpty;
  if (h < t) {
    out = co_await p.read(slots_[static_cast<std::size_t>(h % capacity_)]);
    co_await p.write(head_, h + 1);
    co_await p.fence();
  }
  co_await lock_->release(p);
  co_return out;
}

LockedStack::LockedStack(Simulator& sim,
                         std::shared_ptr<algos::SimLock> lock, int capacity)
    : lock_(std::move(lock)), capacity_(capacity), top_(sim.alloc_var(0)) {
  slots_.reserve(static_cast<std::size_t>(capacity));
  for (int i = 0; i < capacity; ++i) slots_.push_back(sim.alloc_var(0));
}

Task<> LockedStack::push(Proc& p, Value v) {
  co_await lock_->acquire(p);
  const Value t = co_await p.read(top_);
  TPA_CHECK(t < capacity_, "locked stack overflow");
  co_await p.write(slots_[static_cast<std::size_t>(t)], v);
  co_await p.write(top_, t + 1);
  co_await p.fence();
  co_await lock_->release(p);
}

Task<Value> LockedStack::pop(Proc& p) {
  co_await lock_->acquire(p);
  const Value t = co_await p.read(top_);
  Value out = kEmpty;
  if (t > 0) {
    out = co_await p.read(slots_[static_cast<std::size_t>(t - 1)]);
    co_await p.write(top_, t - 1);
    co_await p.fence();
  }
  co_await lock_->release(p);
  co_return out;
}

}  // namespace tpa::objects
