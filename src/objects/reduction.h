// Section 5 reductions.
//
// Lemma 9 (the direction that transfers the lower bound): a one-time
// mutual-exclusion lock built from a counter (Algorithm 1 of the paper),
// with counters in turn built from a queue (seed 0..N, fetch&increment =
// dequeue) or a stack (seed N..0, fetch&increment = pop). Each passage
// invokes exactly one object operation and adds only O(1) fences/RMRs, so a
// fence lower bound on the lock is a fence lower bound on the object.
//
// The converse (easy) direction: counter/stack/queue protected by any
// SimLock, giving object implementations with the lock's complexities.
#pragma once

#include <memory>
#include <vector>

#include "algos/lock.h"
#include "objects/objects.h"

namespace tpa::objects {

/// Algorithm 1: N-process one-time mutual exclusion from an N-limited-use
/// counter. Every passage performs a single fetch&increment plus O(1) reads,
/// writes and fences. In the DSM model spin[p] is local to p.
class CounterMutex : public algos::SimLock {
 public:
  CounterMutex(Simulator& sim, int n, std::shared_ptr<SimCounter> counter);
  Task<> acquire(Proc& p) override;
  Task<> release(Proc& p) override;
  std::string name() const override {
    return "mutex<" + counter_->name() + ">";
  }

 private:
  int n_;
  std::shared_ptr<SimCounter> counter_;
  std::vector<VarId> release_;  ///< release[v]: ticket v may enter
  std::vector<VarId> waiting_;  ///< waiting[v]: which process holds ticket v
  std::vector<VarId> spin_;     ///< spin[p]: p's local spin flag
  std::vector<Value> ticket_;   ///< private: p's ticket
};

/// N-limited-use counter from a queue seeded with 0..N-1 (paper, Section 5):
/// fetch&increment is just dequeue.
class QueueCounter : public SimCounter {
 public:
  explicit QueueCounter(std::shared_ptr<SimQueue> queue)
      : queue_(std::move(queue)) {}
  Task<Value> fetch_increment(Proc& p) override;
  std::string name() const override { return "counter<" + queue_->name() + ">"; }

 private:
  std::shared_ptr<SimQueue> queue_;
};

/// N-limited-use counter from a stack seeded with N-1..0: fetch&increment
/// is just pop.
class StackCounter : public SimCounter {
 public:
  explicit StackCounter(std::shared_ptr<SimStack> stack)
      : stack_(std::move(stack)) {}
  Task<Value> fetch_increment(Proc& p) override;
  std::string name() const override { return "counter<" + stack_->name() + ">"; }

 private:
  std::shared_ptr<SimStack> stack_;
};

// ---- Easy direction: objects from a lock ----------------------------------

/// Counter protected by a lock.
class LockedCounter : public SimCounter {
 public:
  LockedCounter(Simulator& sim, std::shared_ptr<algos::SimLock> lock);
  Task<Value> fetch_increment(Proc& p) override;
  std::string name() const override { return "locked-counter"; }

 private:
  std::shared_ptr<algos::SimLock> lock_;
  VarId value_;
};

/// Bounded queue protected by a lock (circular buffer).
class LockedQueue : public SimQueue {
 public:
  LockedQueue(Simulator& sim, std::shared_ptr<algos::SimLock> lock,
              int capacity);
  Task<> enqueue(Proc& p, Value v) override;
  Task<Value> dequeue(Proc& p) override;
  std::string name() const override { return "locked-queue"; }

 private:
  std::shared_ptr<algos::SimLock> lock_;
  int capacity_;
  VarId head_;
  VarId tail_;
  std::vector<VarId> slots_;
};

/// Bounded stack protected by a lock.
class LockedStack : public SimStack {
 public:
  LockedStack(Simulator& sim, std::shared_ptr<algos::SimLock> lock,
              int capacity);
  Task<> push(Proc& p, Value v) override;
  Task<Value> pop(Proc& p) override;
  std::string name() const override { return "locked-stack"; }

 private:
  std::shared_ptr<algos::SimLock> lock_;
  int capacity_;
  VarId top_;
  std::vector<VarId> slots_;
};

}  // namespace tpa::objects
