// Obstruction-free (in fact lock-free) object implementations on the TSO
// simulator: a CAS counter, a Treiber stack, and a Michael-Scott queue.
//
// Nodes for the linked structures come from *per-process pre-allocated
// pools* with deterministic variable ids — allocation order must not depend
// on the schedule, or the construction's erasure-replay (E^{-Y}) would
// change node identities for surviving processes and break Lemma 4.
#pragma once

#include <vector>

#include "objects/objects.h"

namespace tpa::objects {

/// fetch&increment by CAS loop on a single variable. Lock-free.
class CasCounter : public SimCounter {
 public:
  explicit CasCounter(Simulator& sim, Value initial = 0);
  Task<Value> fetch_increment(Proc& p) override;
  std::string name() const override { return "cas-counter"; }

  VarId var() const { return v_; }

 private:
  VarId v_;
};

/// Node pool shared by the linked structures: node i is a (value, next)
/// pair of simulator variables. Node ids are Values; kNilNode is the null
/// pointer. Per-process free-lists keep allocation deterministic.
class NodePool {
 public:
  static constexpr Value kNilNode = -1;

  /// Pre-allocates `per_proc` nodes for each of n processes, plus `extra`
  /// shared nodes usable by the constructor (e.g. queue dummies).
  NodePool(Simulator& sim, int n_procs, int per_proc, int extra = 1);

  /// Takes the next free node of process p (private bookkeeping; never
  /// recycled — sufficient for bounded test/bench scenarios).
  Value take(Proc& p);

  /// One of the `extra` nodes, for initial-state construction.
  Value take_shared();

  VarId value_var(Value node) const;
  VarId next_var(Value node) const;

  /// Directly seeds a node (used to build initial object states).
  void seed(Simulator& sim, Value node, Value value, Value next);

 private:
  std::vector<VarId> value_vars_;
  std::vector<VarId> next_vars_;
  std::vector<int> next_free_;   ///< per-process cursor into its range
  std::vector<int> range_base_;  ///< per-process first node id
  int per_proc_;
  int shared_cursor_;
  int shared_base_;
  int shared_count_;
};

/// Treiber's lock-free stack.
class TreiberStack : public SimStack {
 public:
  /// `per_proc_ops` bounds the number of push operations per process;
  /// `seed_capacity` reserves nodes for seed_initial.
  TreiberStack(Simulator& sim, int n_procs, int per_proc_ops,
               int seed_capacity = 0);
  Task<> push(Proc& p, Value v) override;
  Task<Value> pop(Proc& p) override;
  std::string name() const override { return "treiber-stack"; }

  /// Pre-populates the stack so that pops return `values` in order
  /// (values.front() popped first). Must be called before any operation.
  void seed_initial(Simulator& sim, const std::vector<Value>& values);

 private:
  NodePool pool_;
  VarId top_;
};

/// Michael & Scott's lock-free queue (with dummy node).
class MichaelScottQueue : public SimQueue {
 public:
  MichaelScottQueue(Simulator& sim, int n_procs, int per_proc_ops,
                    int seed_capacity = 0);
  Task<> enqueue(Proc& p, Value v) override;
  Task<Value> dequeue(Proc& p) override;
  std::string name() const override { return "ms-queue"; }

  /// Pre-populates the queue so that dequeues return `values` in order.
  /// Must be called before any operation; capacity set via seed_capacity.
  void seed_initial(Simulator& sim, const std::vector<Value>& values);

 private:
  NodePool pool_;
  VarId head_;
  VarId tail_;
  int seed_capacity_;
};

}  // namespace tpa::objects
