#include "objects/lockfree.h"

#include "util/check.h"

namespace tpa::objects {

CasCounter::CasCounter(Simulator& sim, Value initial)
    : v_(sim.alloc_var(initial)) {}

Task<Value> CasCounter::fetch_increment(Proc& p) {
  while (true) {
    const Value cur = co_await p.read(v_);
    const Value old = co_await p.cas(v_, cur, cur + 1);
    if (old == cur) co_return cur;
  }
}

// ---------------------------------------------------------------------------
// NodePool
// ---------------------------------------------------------------------------

NodePool::NodePool(Simulator& sim, int n_procs, int per_proc, int extra)
    : next_free_(static_cast<std::size_t>(n_procs), 0),
      range_base_(static_cast<std::size_t>(n_procs), 0),
      per_proc_(per_proc),
      shared_cursor_(0),
      shared_count_(extra) {
  const int total = n_procs * per_proc + extra;
  value_vars_.reserve(static_cast<std::size_t>(total));
  next_vars_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    value_vars_.push_back(sim.alloc_var(0));
    next_vars_.push_back(sim.alloc_var(kNilNode));
  }
  for (int p = 0; p < n_procs; ++p)
    range_base_[static_cast<std::size_t>(p)] = p * per_proc;
  shared_base_ = n_procs * per_proc;
}

Value NodePool::take(Proc& p) {
  const auto pid = static_cast<std::size_t>(p.id());
  TPA_CHECK(next_free_[pid] < per_proc_,
            "node pool of p" << p.id() << " exhausted (" << per_proc_
                             << " nodes)");
  return range_base_[pid] + next_free_[pid]++;
}

Value NodePool::take_shared() {
  TPA_CHECK(shared_cursor_ < shared_count_, "shared node pool exhausted");
  return shared_base_ + shared_cursor_++;
}

VarId NodePool::value_var(Value node) const {
  TPA_CHECK(node >= 0 && node < static_cast<Value>(value_vars_.size()),
            "invalid node " << node);
  return value_vars_[static_cast<std::size_t>(node)];
}

VarId NodePool::next_var(Value node) const {
  TPA_CHECK(node >= 0 && node < static_cast<Value>(next_vars_.size()),
            "invalid node " << node);
  return next_vars_[static_cast<std::size_t>(node)];
}

void NodePool::seed(Simulator& sim, Value node, Value value, Value next) {
  sim.poke(value_var(node), value);
  sim.poke(next_var(node), next);
}

// ---------------------------------------------------------------------------
// TreiberStack
// ---------------------------------------------------------------------------

TreiberStack::TreiberStack(Simulator& sim, int n_procs, int per_proc_ops,
                           int seed_capacity)
    : pool_(sim, n_procs, per_proc_ops, /*extra=*/seed_capacity),
      top_(sim.alloc_var(NodePool::kNilNode)) {}

void TreiberStack::seed_initial(Simulator& sim,
                                const std::vector<Value>& values) {
  // values.front() must pop first, i.e. be the top of the stack.
  Value below = NodePool::kNilNode;
  for (std::size_t i = values.size(); i-- > 0;) {
    const Value node = pool_.take_shared();
    pool_.seed(sim, node, values[i], below);
    below = node;
  }
  sim.poke(top_, below);
}

Task<> TreiberStack::push(Proc& p, Value v) {
  const Value node = pool_.take(p);
  co_await p.write(pool_.value_var(node), v);
  while (true) {
    const Value old_top = co_await p.read(top_);
    co_await p.write(pool_.next_var(node), old_top);
    // The CAS drains our buffer, publishing value/next before the node
    // becomes reachable.
    const Value seen = co_await p.cas(top_, old_top, node);
    if (seen == old_top) co_return;
  }
}

Task<Value> TreiberStack::pop(Proc& p) {
  while (true) {
    const Value old_top = co_await p.read(top_);
    if (old_top == NodePool::kNilNode) co_return kEmpty;
    const Value next = co_await p.read(pool_.next_var(old_top));
    const Value seen = co_await p.cas(top_, old_top, next);
    if (seen == old_top) {
      const Value v = co_await p.read(pool_.value_var(old_top));
      co_return v;
    }
  }
}

// ---------------------------------------------------------------------------
// MichaelScottQueue
// ---------------------------------------------------------------------------

MichaelScottQueue::MichaelScottQueue(Simulator& sim, int n_procs,
                                     int per_proc_ops, int seed_capacity)
    : pool_(sim, n_procs, per_proc_ops, /*extra=*/1 + seed_capacity),
      seed_capacity_(seed_capacity) {
  const Value dummy = pool_.take_shared();
  head_ = sim.alloc_var(dummy);
  tail_ = sim.alloc_var(dummy);
}

void MichaelScottQueue::seed_initial(Simulator& sim,
                                     const std::vector<Value>& values) {
  TPA_CHECK(values.size() <= static_cast<std::size_t>(seed_capacity_),
            "seed larger than seed_capacity");
  // Chain the seeded nodes behind the dummy; values.front() dequeues first.
  Value prev = sim.value(head_);  // the dummy node
  for (const Value v : values) {
    const Value node = pool_.take_shared();
    pool_.seed(sim, node, v, NodePool::kNilNode);
    sim.poke(pool_.next_var(prev), node);
    prev = node;
  }
  sim.poke(tail_, prev);
}

Task<> MichaelScottQueue::enqueue(Proc& p, Value v) {
  const Value node = pool_.take(p);
  co_await p.write(pool_.value_var(node), v);
  co_await p.write(pool_.next_var(node), NodePool::kNilNode);
  while (true) {
    const Value last = co_await p.read(tail_);
    const Value next = co_await p.read(pool_.next_var(last));
    const Value last2 = co_await p.read(tail_);
    if (last != last2) continue;  // tail moved under us
    if (next == NodePool::kNilNode) {
      const Value seen = co_await p.cas(pool_.next_var(last),
                                        NodePool::kNilNode, node);
      if (seen == NodePool::kNilNode) {
        co_await p.cas(tail_, last, node);  // swing tail (may fail, fine)
        co_return;
      }
    } else {
      co_await p.cas(tail_, last, next);  // help a lagging enqueuer
    }
  }
}

Task<Value> MichaelScottQueue::dequeue(Proc& p) {
  while (true) {
    const Value first = co_await p.read(head_);
    const Value last = co_await p.read(tail_);
    const Value next = co_await p.read(pool_.next_var(first));
    const Value first2 = co_await p.read(head_);
    if (first != first2) continue;
    if (first == last) {
      if (next == NodePool::kNilNode) co_return kEmpty;
      co_await p.cas(tail_, last, next);  // help
      continue;
    }
    const Value v = co_await p.read(pool_.value_var(next));
    const Value seen = co_await p.cas(head_, first, next);
    if (seen == first) co_return v;
  }
}

}  // namespace tpa::objects
