// Shared-object interfaces from Section 5 of the paper: counter, stack,
// queue — the objects whose adaptive implementations inherit the paper's
// fence lower bound through the Lemma 9 reduction.
#pragma once

#include <limits>

#include "tso/proc.h"
#include "tso/sim.h"
#include "tso/task.h"

namespace tpa::objects {

using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

/// Returned by pop/dequeue on an empty container.
inline constexpr Value kEmpty = std::numeric_limits<Value>::min();

/// Counter: fetch&increment atomically returns the pre-increment value.
class SimCounter {
 public:
  virtual ~SimCounter() = default;
  virtual Task<Value> fetch_increment(Proc& p) = 0;
  virtual std::string name() const = 0;
};

/// LIFO stack of Values.
class SimStack {
 public:
  virtual ~SimStack() = default;
  virtual Task<> push(Proc& p, Value v) = 0;
  /// Returns kEmpty when the stack is empty.
  virtual Task<Value> pop(Proc& p) = 0;
  virtual std::string name() const = 0;
};

/// FIFO queue of Values.
class SimQueue {
 public:
  virtual ~SimQueue() = default;
  virtual Task<> enqueue(Proc& p, Value v) = 0;
  /// Returns kEmpty when the queue is empty.
  virtual Task<Value> dequeue(Proc& p) = 0;
  virtual std::string name() const = 0;
};

}  // namespace tpa::objects
