#include "runtime/harness.h"

#include <chrono>
#include <thread>
#include <vector>

namespace tpa::runtime {

StressResult run_stress(RtLock& lock, int threads,
                        std::uint64_t ops_per_thread) {
  std::uint64_t shared_counter = 0;  // deliberately non-atomic: the lock
                                     // must make increments exclusive
  std::vector<OpCounters> per_thread(static_cast<std::size_t>(threads));
  std::atomic<int> start_gate{0};

  auto worker = [&](int tid) {
    start_gate.fetch_add(1, std::memory_order_acq_rel);
    while (start_gate.load(std::memory_order_acquire) < threads) {
    }
    const OpCounters before = thread_counters();
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      lock.lock(tid);
      ++shared_counter;
      lock.unlock(tid);
    }
    per_thread[static_cast<std::size_t>(tid)] =
        thread_counters() - before;
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  StressResult r;
  r.total_ops = static_cast<std::uint64_t>(threads) * ops_per_thread;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ops_per_sec = r.seconds > 0 ? static_cast<double>(r.total_ops) / r.seconds
                                : 0;
  OpCounters total;
  for (const auto& c : per_thread) {
    total += c;
    const double per_op =
        static_cast<double>(c.barriers()) / static_cast<double>(ops_per_thread);
    r.max_thread_barriers_per_op =
        std::max(r.max_thread_barriers_per_op, per_op);
  }
  const auto ops = static_cast<double>(r.total_ops);
  r.fences_per_op = static_cast<double>(total.fences) / ops;
  r.rmws_per_op = static_cast<double>(total.rmws) / ops;
  r.barriers_per_op = static_cast<double>(total.barriers()) / ops;
  r.total_cost = total.to_cost_vector();
  r.exclusion_ok = shared_counter == r.total_ops;
  return r;
}

}  // namespace tpa::runtime
