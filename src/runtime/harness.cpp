#include "runtime/harness.h"

#include <chrono>
#include <thread>
#include <vector>

namespace tpa::runtime {

StressResult run_stress(RtLock& lock, int threads,
                        std::uint64_t ops_per_thread,
                        std::uint64_t time_budget_ms) {
  std::uint64_t shared_counter = 0;  // deliberately non-atomic: the lock
                                     // must make increments exclusive
  std::vector<OpCounters> per_thread(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> ops_done(static_cast<std::size_t>(threads), 0);
  std::atomic<int> start_gate{0};
  // Watchdog: checked at passage boundaries (every few ops, to keep the
  // clock off the hot path). A thread stuck *inside* lock() cannot be
  // interrupted; the watchdog bounds livelock and starvation, which is
  // what experimental locks actually exhibit.
  const bool has_deadline = time_budget_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(time_budget_ms);
  std::atomic<bool> stop{false};

  auto worker = [&](int tid) {
    start_gate.fetch_add(1, std::memory_order_acq_rel);
    while (start_gate.load(std::memory_order_acquire) < threads) {
    }
    const OpCounters before = thread_counters();
    std::uint64_t done = 0;
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      if (has_deadline && (i & 0xff) == 0 &&
          (stop.load(std::memory_order_relaxed) ||
           std::chrono::steady_clock::now() >= deadline)) {
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      lock.lock(tid);
      ++shared_counter;
      lock.unlock(tid);
      ++done;
    }
    ops_done[static_cast<std::size_t>(tid)] = done;
    per_thread[static_cast<std::size_t>(tid)] =
        thread_counters() - before;
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  StressResult r;
  r.deadline_hit = stop.load(std::memory_order_relaxed);
  for (const std::uint64_t d : ops_done) r.total_ops += d;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ops_per_sec = r.seconds > 0 ? static_cast<double>(r.total_ops) / r.seconds
                                : 0;
  OpCounters total;
  for (int t = 0; t < threads; ++t) {
    const auto& c = per_thread[static_cast<std::size_t>(t)];
    total += c;
    const std::uint64_t done = ops_done[static_cast<std::size_t>(t)];
    if (done == 0) continue;
    const double per_op =
        static_cast<double>(c.barriers()) / static_cast<double>(done);
    r.max_thread_barriers_per_op =
        std::max(r.max_thread_barriers_per_op, per_op);
  }
  const auto ops = static_cast<double>(r.total_ops);
  if (r.total_ops > 0) {
    r.fences_per_op = static_cast<double>(total.fences) / ops;
    r.rmws_per_op = static_cast<double>(total.rmws) / ops;
    r.barriers_per_op = static_cast<double>(total.barriers()) / ops;
  }
  r.total_cost = total.to_cost_vector();
  r.exclusion_ok = shared_counter == r.total_ops;
  return r;
}

}  // namespace tpa::runtime
