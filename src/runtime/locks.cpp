#include "runtime/locks.h"

#include "util/check.h"

namespace tpa::runtime {

OpCounters& thread_counters() {
  thread_local OpCounters counters;
  return counters;
}

// ---------------------------------------------------------------------------
// TAS / TTAS
// ---------------------------------------------------------------------------

void RtTasLock::lock(int) {
  while (true) {
    int expected = 0;
    if (flag_.compare_exchange(expected, 1)) return;
  }
}

void RtTasLock::unlock(int) {
  flag_.store(0);  // plain store suffices on TSO; commit is asynchronous
}

void RtTtasLock::lock(int) {
  while (true) {
    while (flag_.load() != 0) {
    }
    int expected = 0;
    if (flag_.compare_exchange(expected, 1)) return;
  }
}

void RtTtasLock::unlock(int) { flag_.store(0); }

// ---------------------------------------------------------------------------
// Ticket
// ---------------------------------------------------------------------------

void RtTicketLock::lock(int) {
  const std::uint64_t ticket = next_.fetch_add(1);
  while (serving_.load() != ticket) {
  }
}

void RtTicketLock::unlock(int) {
  serving_.store(serving_.load() + 1);
}

// ---------------------------------------------------------------------------
// MCS
// ---------------------------------------------------------------------------

RtMcsLock::RtMcsLock(int n)
    : locked_(static_cast<std::size_t>(n)), next_(static_cast<std::size_t>(n)) {
  for (auto& x : next_) x.value.store(kNil);
}

void RtMcsLock::lock(int tid) {
  const auto me = static_cast<std::size_t>(tid);
  next_[me].value.store(kNil);
  const int pred = tail_.exchange(tid);
  if (pred != kNil) {
    locked_[me].value.store(1);
    counted_fence();  // locked flag visible before the link
    next_[static_cast<std::size_t>(pred)].value.store(tid);
    counted_fence();  // publish the link
    while (locked_[me].value.load() == 1) {
    }
  }
}

void RtMcsLock::unlock(int tid) {
  const auto me = static_cast<std::size_t>(tid);
  int succ = next_[me].value.load();
  if (succ == kNil) {
    int expected = tid;
    if (tail_.compare_exchange(expected, kNil)) return;
    while ((succ = next_[me].value.load()) == kNil) {
    }
  }
  locked_[static_cast<std::size_t>(succ)].value.store(0);
}

// ---------------------------------------------------------------------------
// CLH
// ---------------------------------------------------------------------------

RtClhLock::RtClhLock(int n)
    : tail_(n),  // dummy node index n, released
      flags_(static_cast<std::size_t>(n) + 1),
      node_of_(static_cast<std::size_t>(n)),
      pred_of_(static_cast<std::size_t>(n), -1) {
  for (int i = 0; i < n; ++i) node_of_[static_cast<std::size_t>(i)] = i;
}

void RtClhLock::lock(int tid) {
  const auto me = static_cast<std::size_t>(tid);
  const int my_node = node_of_[me];
  flags_[static_cast<std::size_t>(my_node)].value.store(1);
  const int pred = tail_.exchange(my_node);  // RMW drains the store
  pred_of_[me] = pred;
  while (flags_[static_cast<std::size_t>(pred)].value.load() == 1) {
  }
}

void RtClhLock::unlock(int tid) {
  const auto me = static_cast<std::size_t>(tid);
  flags_[static_cast<std::size_t>(node_of_[me])].value.store(0);
  node_of_[me] = pred_of_[me];
}

// ---------------------------------------------------------------------------
// Bakery
// ---------------------------------------------------------------------------

RtBakeryLock::RtBakeryLock(int n)
    : n_(n),
      choosing_(static_cast<std::size_t>(n)),
      number_(static_cast<std::size_t>(n)) {}

void RtBakeryLock::lock(int tid) {
  const auto me = static_cast<std::size_t>(tid);
  choosing_[me].value.store(1);
  counted_fence();  // choosing visible before scanning
  std::uint64_t mx = 0;
  for (int j = 0; j < n_; ++j)
    mx = std::max(mx, number_[static_cast<std::size_t>(j)].value.load());
  const std::uint64_t my_number = mx + 1;
  number_[me].value.store(my_number);
  choosing_[me].value.store(0);
  counted_fence();  // ticket visible before inspecting competitors
  for (int j = 0; j < n_; ++j) {
    if (j == tid) continue;
    const auto ju = static_cast<std::size_t>(j);
    while (choosing_[ju].value.load() == 1) {
    }
    while (true) {
      const std::uint64_t nj = number_[ju].value.load();
      if (nj == 0 || nj > my_number || (nj == my_number && j > tid)) break;
    }
  }
}

void RtBakeryLock::unlock(int tid) {
  number_[static_cast<std::size_t>(tid)].value.store(0);
}

// ---------------------------------------------------------------------------
// Tournament
// ---------------------------------------------------------------------------

RtTournamentLock::RtTournamentLock(int n) {
  TPA_CHECK(n >= 1, "tournament lock needs at least one thread");
  int leaves = 1;
  while (leaves < n) leaves *= 2;
  leaf_base_ = leaves;
  nodes_ = std::vector<Padded<Node>>(static_cast<std::size_t>(leaves));
}

void RtTournamentLock::lock(int tid) {
  int pos = leaf_base_ + tid;
  while (pos > 1) {
    const int node = pos / 2;
    const int side = pos % 2;
    Node& nd = nodes_[static_cast<std::size_t>(node)].value;
    auto& mine = side == 0 ? nd.flag0 : nd.flag1;
    auto& theirs = side == 0 ? nd.flag1 : nd.flag0;
    mine.store(1);
    nd.turn.store(side);
    counted_fence();  // Peterson on TSO: publish before reading opponent
    while (theirs.load() == 1 && nd.turn.load() == side) {
    }
    pos = node;
  }
}

void RtTournamentLock::unlock(int tid) {
  // Release root-to-leaf; a single trailing fence commits all resets.
  std::vector<int> path;
  int pos = leaf_base_ + tid;
  while (pos > 1) {
    path.push_back(pos);
    pos /= 2;
  }
  for (std::size_t i = path.size(); i-- > 0;) {
    const int node = path[i] / 2;
    const int side = path[i] % 2;
    Node& nd = nodes_[static_cast<std::size_t>(node)].value;
    (side == 0 ? nd.flag0 : nd.flag1).store(0);
  }
  counted_fence();
}

// ---------------------------------------------------------------------------
// Adaptive active-set bakery
// ---------------------------------------------------------------------------

RtAdaptiveBakery::RtAdaptiveBakery(int n)
    : n_(n),
      slots_(static_cast<std::size_t>(n)),
      choosing_(static_cast<std::size_t>(n)),
      number_(static_cast<std::size_t>(n)),
      slot_of_(static_cast<std::size_t>(n)) {
  for (auto& s : slot_of_) s.value = -1;
}

void RtAdaptiveBakery::lock(int tid) {
  const auto me = static_cast<std::size_t>(tid);
  if (slot_of_[me].value < 0) {
    // Registration: claim the first free slot. Under contention this costs
    // up to Θ(k) CAS barriers — the price of adaptivity, counted in rmws.
    for (int s = 0; s < n_; ++s) {
      auto& slot = slots_[static_cast<std::size_t>(s)].value;
      if (slot.load() != 0) continue;
      int expected = 0;
      if (slot.compare_exchange(expected, tid + 1)) {
        slot_of_[me].value = s;
        break;
      }
    }
    TPA_CHECK(slot_of_[me].value >= 0, "failed to claim a slot");
  }

  choosing_[me].value.store(1);
  counted_fence();
  std::uint64_t mx = 0;
  for (int s = 0; s < n_; ++s) {
    const int owner = slots_[static_cast<std::size_t>(s)].value.load();
    if (owner == 0) break;
    mx = std::max(mx,
                  number_[static_cast<std::size_t>(owner - 1)].value.load());
  }
  const std::uint64_t my_number = mx + 1;
  number_[me].value.store(my_number);
  choosing_[me].value.store(0);
  counted_fence();
  for (int s = 0; s < n_; ++s) {
    const int owner = slots_[static_cast<std::size_t>(s)].value.load();
    if (owner == 0) break;
    const int j = owner - 1;
    if (j == tid) continue;
    const auto ju = static_cast<std::size_t>(j);
    while (choosing_[ju].value.load() == 1) {
    }
    while (true) {
      const std::uint64_t nj = number_[ju].value.load();
      if (nj == 0 || nj > my_number || (nj == my_number && j > tid)) break;
    }
  }
}

void RtAdaptiveBakery::unlock(int tid) {
  number_[static_cast<std::size_t>(tid)].value.store(0);
}

// ---------------------------------------------------------------------------
// Adaptive splitter lock (pure read/write)
// ---------------------------------------------------------------------------

RtAdaptiveSplitter::RtAdaptiveSplitter(int n)
    : n_(n),
      cells_(static_cast<std::size_t>(n * (n + 1) / 2)),
      choosing_(static_cast<std::size_t>(n)),
      number_(static_cast<std::size_t>(n)),
      cell_of_(static_cast<std::size_t>(n)) {
  for (auto& s : cell_of_) s.value = -1;
}

void RtAdaptiveSplitter::lock(int tid) {
  const auto me = static_cast<std::size_t>(tid);

  if (cell_of_[me].value < 0) {
    // Moir-Anderson grid walk: every visit costs two fences — the pure
    // read/write registration price the paper proves unavoidable.
    int r = 0, col = 0;
    while (true) {
      Cell& cell = cells_[static_cast<std::size_t>(cell_index(r, col))].value;
      cell.touched.store(1);
      cell.x.store(tid);
      counted_fence();
      if (cell.y.load() == 1) {
        ++col;  // RIGHT
        continue;
      }
      cell.y.store(1);
      counted_fence();
      if (cell.x.load() == tid) {
        cell.present.store(tid + 1);
        counted_fence();
        cell_of_[me].value = cell_index(r, col);
        break;  // STOP
      }
      ++r;  // DOWN
    }
  }

  auto collect = [&](auto&& visit) {
    for (int d = 0; d < n_; ++d) {
      bool any = false;
      for (int rr = 0; rr <= d; ++rr) {
        Cell& cell = cells_[static_cast<std::size_t>(d * (d + 1) / 2 + rr)]
                         .value;
        if (cell.touched.load() == 0) continue;
        any = true;
        const int who = cell.present.load();
        if (who != 0) visit(who - 1);
      }
      if (!any) break;
    }
  };

  choosing_[me].value.store(1);
  counted_fence();
  std::uint64_t mx = 0;
  collect([&](int j) {
    mx = std::max(mx, number_[static_cast<std::size_t>(j)].value.load());
  });
  const std::uint64_t my_number = mx + 1;
  number_[me].value.store(my_number);
  choosing_[me].value.store(0);
  counted_fence();
  collect([&](int j) {
    if (j == tid) return;
    const auto ju = static_cast<std::size_t>(j);
    while (choosing_[ju].value.load() == 1) {
    }
    while (true) {
      const std::uint64_t nj = number_[ju].value.load();
      if (nj == 0 || nj > my_number || (nj == my_number && j > tid)) break;
    }
  });
}

void RtAdaptiveSplitter::unlock(int tid) {
  number_[static_cast<std::size_t>(tid)].value.store(0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

template <typename L>
std::unique_ptr<RtLock> make_simple(int) {
  return std::make_unique<L>();
}

template <typename L>
std::unique_ptr<RtLock> make_sized(int n) {
  return std::make_unique<L>(n);
}

}  // namespace

const std::vector<RtLockFactory>& rt_lock_zoo() {
  static const std::vector<RtLockFactory> kZoo = {
      {"tas", false, &make_simple<RtTasLock>},
      {"ttas", false, &make_simple<RtTtasLock>},
      {"ticket", false, &make_simple<RtTicketLock>},
      {"mcs", false, &make_sized<RtMcsLock>},
      {"clh", false, &make_sized<RtClhLock>},
      {"bakery", false, &make_sized<RtBakeryLock>},
      {"tournament", false, &make_sized<RtTournamentLock>},
      {"adaptive-bakery", true, &make_sized<RtAdaptiveBakery>},
      {"adaptive-splitter", true, &make_sized<RtAdaptiveSplitter>},
  };
  return kZoo;
}

}  // namespace tpa::runtime
