#include "runtime/scenario.h"

#include <utility>

#include "algos/zoo.h"
#include "trace/campaign.h"
#include "util/check.h"

namespace tpa::runtime {

std::unique_ptr<tso::Simulator> Scenario::make_simulator() const {
  auto out = std::make_unique<tso::Simulator>(n_procs, sim);
  build(*out);
  return out;
}

tso::ExplorerResult Scenario::explore(tso::ExplorerConfig config) const {
  TPA_CHECK(config.symmetric_processes == tso::SymmetryMode::kOff || symmetric,
            "scenario '" << name << "' does not declare symmetric processes "
            "— symmetry reduction would be unsound on it");
  if (!config.campaign_path.empty()) config.campaign_scenario = name;
  return tso::explore(n_procs, sim, build, std::move(config));
}

tso::ExplorerResult resume(const std::string& campaign_path,
                           const tso::ResumeOptions& options) {
  const trace::Campaign header = trace::read_campaign_file(campaign_path);
  TPA_CHECK(!header.scenario.empty(),
            "resume: campaign '" << campaign_path << "' records no scenario "
            "id — it was started via raw tso::explore; resume it with "
            "tso::resume and an explicit builder");
  const Scenario* scenario = find_scenario(header.scenario);
  TPA_CHECK(scenario != nullptr, "resume: campaign scenario '"
                                     << header.scenario
                                     << "' is not in the registry");
  return tso::resume(campaign_path, scenario->n_procs, scenario->sim,
                     scenario->build, options);
}

tso::FuzzResult Scenario::fuzz(const tso::FuzzConfig& config) const {
  return tso::fuzz(n_procs, sim, build, config);
}

std::unique_ptr<tso::Simulator> Scenario::replay(
    const std::vector<tso::Directive>& directives) const {
  return tso::replay(n_procs, sim, build, directives);
}

tso::LenientReplay Scenario::replay_lenient(
    const std::vector<tso::Directive>& directives) const {
  return tso::replay_lenient(n_procs, sim, build, directives);
}

tso::ScenarioBuilder bakery_scenario(int n, algos::BakeryFencing fencing,
                                     int passages) {
  return [n, fencing, passages](tso::Simulator& sim) {
    auto lock = std::make_shared<algos::BakeryLock>(sim, n, fencing);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
  };
}

tso::ScenarioBuilder recoverable_scenario(int n,
                                          algos::RecoverableFencing fencing) {
  return [n, fencing](tso::Simulator& sim) {
    auto lock = std::make_shared<algos::RecoverableLock>(sim, fencing);
    for (int p = 0; p < n; ++p) {
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
      sim.set_recovery(p, [lock](tso::Proc& proc) {
        return algos::run_recovered_passages(proc, lock);
      });
    }
  };
}

tso::ScenarioBuilder zoo_scenario(const char* name, int n, int passages) {
  const auto& factory = algos::lock_factory(name);
  return [&factory, n, passages](tso::Simulator& sim) {
    auto lock = factory.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
  };
}

const std::vector<Scenario>& scenario_registry() {
  static const std::vector<Scenario>* kAll = [] {
    auto* v = new std::vector<Scenario>;
    tso::SimConfig pso;
    pso.pso = true;
    // The fence-free bakery: the paper's "fences are unavoidable" premise.
    v->push_back({"bakery-none-2p", 2, {},
                  bakery_scenario(2, algos::BakeryFencing::kNone), true});
    v->push_back({"bakery-none-3p", 3, {},
                  bakery_scenario(3, algos::BakeryFencing::kNone), true});
    // The TSO-correct fence placement is exploitable once writes to
    // different variables may reorder (Section 6 / tests/test_pso.cpp).
    v->push_back({"bakery-tso-pso-2p", 2, pso,
                  bakery_scenario(2, algos::BakeryFencing::kTso), true});
    // Safe controls for the fuzzer and smoke tests.
    v->push_back({"bakery-tso-2p", 2, {},
                  bakery_scenario(2, algos::BakeryFencing::kTso), false});
    v->push_back({"mcs-2p", 2, {}, zoo_scenario("mcs", 2, 1), false});
    // Crash–recovery (RME) scenarios: violations only become discoverable
    // under fault injection (ExplorerConfig::max_crashes > 0 or
    // FuzzConfig::crash_prob > 0) — without crashes both are safe, so the
    // fence-free variant is a *safe* control for crash-free passes.
    v->push_back({"recoverable-2p", 2, {},
                  recoverable_scenario(2, algos::RecoverableFencing::kFull),
                  false});
    v->push_back({"recoverable-nofence-2p", 2, {},  // crash_model: lost
                  recoverable_scenario(2, algos::RecoverableFencing::kNone),
                  true, true});
    // Three-process scopes for the stateful-exploration benchmarks
    // (bench/perf_explorer.cpp) and the dedup ablation tests. Not part of
    // the violating corpus, so corpus regeneration ignores them.
    v->push_back({"bakery-tso-3p", 3, {},
                  bakery_scenario(3, algos::BakeryFencing::kTso), false});
    v->push_back({"tournament-3p", 3, {}, zoo_scenario("tournament", 3, 1),
                  false});
    // Genuinely symmetric scenarios: shared variables only, no pid
    // dependence in program or builder — the only registry entries where
    // process-symmetry reduction is valid.
    v->push_back({"ticket-3p", 3, {}, zoo_scenario("ticket", 3, 1), false,
                  false, /*symmetric=*/true});
    v->push_back({"tas-2p", 2, {}, zoo_scenario("tas", 2, 1), false, false,
                  /*symmetric=*/true});
    // The canonical *unfair* lock: safe (mutual exclusion holds, so it is
    // not `violating` and the safety corpus ignores it) but starvable — one
    // process can loop through full passages while the other spins in its
    // entry section forever. Multiple passages make the winner a renewable
    // client, which is what lets the abstract state recur and the fair
    // starvation cycle close under LivenessMode::kCheck.
    v->push_back({"tas-loop-2p", 2, {}, zoo_scenario("tas", 2, 4), false,
                  false, /*symmetric=*/true, /*liveness_violating=*/true});
    return v;
  }();
  return *kAll;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& s : scenario_registry())
    if (s.name == name) return &s;
  return nullptr;
}

std::string violation_detail(const std::string& message) {
  const auto pos = message.find(" — ");
  if (pos == std::string::npos) return message;
  return message.substr(pos + std::string(" — ").size());
}

}  // namespace tpa::runtime
