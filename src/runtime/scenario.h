// Scenario — the public bundle tying a named concurrent algorithm setup
// (process count, simulator configuration, builder) to the analyses that run
// against it: exhaustive exploration (tso/explorer.h), schedule fuzzing
// (tso/fuzz.h), and deterministic witness replay (tso/schedule.h).
//
// Grown out of the test-only registry the fuzz/corpus tests shared; the
// registry itself lives here too, so examples, benchmarks and tests resolve
// the scenario ids stored in witness files (tests/corpus/*.witness) through
// one place. Builders must be schedule-independent and safe to invoke
// concurrently (the parallel explorer shares them across workers).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algos/bakery.h"
#include "algos/recoverable.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "tso/sim.h"

namespace tpa::runtime {

struct Scenario {
  std::string name;
  std::size_t n_procs = 0;
  tso::SimConfig sim;
  tso::ScenarioBuilder build;
  bool violating = false;  ///< a violation is expected to be discoverable
  /// The violation needs fault injection (crash directives) to surface;
  /// crash-free passes should treat the scenario as safe.
  bool needs_crashes = false;
  /// The processes are interchangeable: builder and programs are invariant
  /// under process renaming. Declaring this is the precondition for
  /// ExplorerConfig::symmetric_processes — explore() rejects a symmetry
  /// request on a scenario that does not declare it. Most lock scenarios are
  /// *not* symmetric: pid tie-breaks (bakery), per-process slots (mcs,
  /// anderson), pid-derived tournament paths, or pid-encoded values
  /// (recoverable) all break renaming invariance.
  bool symmetric = false;
  /// A *liveness* violation (a fair starvation/livelock cycle) is expected
  /// to be discoverable by the explorer's LivenessMode::kCheck. Deliberately
  /// distinct from `violating`: the fuzzer and the safety-corpus
  /// regeneration iterate `violating` scenarios and can only observe safety
  /// failures, so a merely unfair lock must not be marked `violating`.
  bool liveness_violating = false;

  /// A freshly built simulator for this scenario.
  std::unique_ptr<tso::Simulator> make_simulator() const;

  /// Exhaustive exploration under `config`. Rejects (via check.h)
  /// config.symmetric_processes != kOff unless the scenario declares
  /// `symmetric` — the structural probe inside tso::explore cannot see
  /// late pid-dependence, so the declaration is load-bearing. When
  /// config.campaign_path is set, the campaign header records this
  /// scenario's name so runtime::resume() can resolve the builder from the
  /// registry alone.
  tso::ExplorerResult explore(tso::ExplorerConfig config = {}) const;

  /// Seeded schedule fuzzing under `config`.
  tso::FuzzResult fuzz(const tso::FuzzConfig& config = {}) const;

  /// Strict witness replay: every directive must apply (tso::replay).
  std::unique_ptr<tso::Simulator> replay(
      const std::vector<tso::Directive>& directives) const;

  /// Lenient replay: inapplicable directives are skipped (tso::replay_lenient).
  tso::LenientReplay replay_lenient(
      const std::vector<tso::Directive>& directives) const;
};

// ---- builder helpers ------------------------------------------------------

/// n processes, `passages` passages each, through a BakeryLock with the
/// given fence placement. Multiple passages make processes renewable
/// clients — the abstraction under which starvation-freedom certification
/// (LivenessMode::kCheck) closes its cycles; see docs/LIVENESS.md.
tso::ScenarioBuilder bakery_scenario(int n, algos::BakeryFencing fencing,
                                     int passages = 1);

/// n processes with recovery sections, one passage each, through a
/// RecoverableLock (the RME crash-safety scenario).
tso::ScenarioBuilder recoverable_scenario(int n,
                                          algos::RecoverableFencing fencing);

/// n processes, `passages` passages each, through a lock from the
/// algos/zoo.h factory table ("tas", "ticket", "mcs", "tournament", ...).
tso::ScenarioBuilder zoo_scenario(const char* name, int n, int passages);

// ---- the registry ---------------------------------------------------------

/// Continues (or reports) the exploration campaign checkpointed at
/// `campaign_path` (see tso::resume). The scenario is resolved from the
/// campaign header through the registry — a campaign started via
/// Scenario::explore resumes with nothing but the file path. Rejects (via
/// check.h) campaigns whose scenario id is absent from the registry.
tso::ExplorerResult resume(const std::string& campaign_path,
                           const tso::ResumeOptions& options = {});

/// Every named scenario, stable across runs. Ids are stored in corpus
/// witness files; renaming or removing an entry invalidates the corpus.
const std::vector<Scenario>& scenario_registry();

/// Registry lookup by name; nullptr when absent.
const Scenario* find_scenario(const std::string& name);

/// TPA_CHECK messages carry "<expr> at <file>:<line> — <detail>"; corpus
/// files store only the detail part so they stay valid across unrelated
/// source-line churn.
std::string violation_detail(const std::string& message);

}  // namespace tpa::runtime
