// Native instrumented locks — the runnable x86-TSO counterparts of the
// simulated zoo. Each lock counts fences and atomic RMWs per passage via
// runtime/counters.h, so the "price of being adaptive" can be observed on
// real hardware: the adaptive active-set bakery pays CAS barriers on
// registration where the plain bakery pays a constant number of fences.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/counters.h"

namespace tpa::runtime {

class RtLock {
 public:
  virtual ~RtLock() = default;
  virtual void lock(int tid) = 0;
  virtual void unlock(int tid) = 0;
  virtual std::string name() const = 0;
};

/// Test-and-set (via CAS).
class RtTasLock : public RtLock {
 public:
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "tas"; }

 private:
  CountedAtomic<int> flag_{0};
};

/// Test-and-test-and-set.
class RtTtasLock : public RtLock {
 public:
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "ttas"; }

 private:
  CountedAtomic<int> flag_{0};
};

/// Ticket lock (fetch_add + FIFO spin).
class RtTicketLock : public RtLock {
 public:
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "ticket"; }

 private:
  CountedAtomic<std::uint64_t> next_{0};
  CountedAtomic<std::uint64_t> serving_{0};
};

/// MCS queue lock with per-thread nodes.
class RtMcsLock : public RtLock {
 public:
  explicit RtMcsLock(int n);
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "mcs"; }

 private:
  static constexpr int kNil = -1;
  CountedAtomic<int> tail_{kNil};
  std::vector<Padded<CountedAtomic<int>>> locked_;
  std::vector<Padded<CountedAtomic<int>>> next_;
};

/// CLH queue lock with node recycling.
class RtClhLock : public RtLock {
 public:
  explicit RtClhLock(int n);
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "clh"; }

 private:
  CountedAtomic<int> tail_;
  std::vector<Padded<CountedAtomic<int>>> flags_;  // n+1 nodes
  std::vector<int> node_of_;
  std::vector<int> pred_of_;
};

/// Lamport's bakery: pure loads/stores + explicit fences (O(1) fences,
/// Θ(n) work — the non-adaptive read/write baseline).
class RtBakeryLock : public RtLock {
 public:
  explicit RtBakeryLock(int n);
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "bakery"; }

 private:
  int n_;
  std::vector<Padded<CountedAtomic<int>>> choosing_;
  std::vector<Padded<CountedAtomic<std::uint64_t>>> number_;
};

/// Peterson tournament tree: Θ(log n) fences per passage.
class RtTournamentLock : public RtLock {
 public:
  explicit RtTournamentLock(int n);
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "tournament"; }

 private:
  struct Node {
    CountedAtomic<int> flag0{0};
    CountedAtomic<int> flag1{0};
    CountedAtomic<int> turn{0};
  };
  int leaf_base_;
  std::vector<Padded<Node>> nodes_;
};

/// Active-set bakery: adaptive (work O(k) in total contention k) at the
/// price of CAS barriers on first-passage registration.
class RtAdaptiveBakery : public RtLock {
 public:
  explicit RtAdaptiveBakery(int n);
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "adaptive-bakery"; }

 private:
  int n_;
  std::vector<Padded<CountedAtomic<int>>> slots_;  // 0 free, tid+1 taken
  std::vector<Padded<CountedAtomic<int>>> choosing_;
  std::vector<Padded<CountedAtomic<std::uint64_t>>> number_;
  std::vector<Padded<int>> slot_of_;  // -1 until registered
};

/// Pure read/write adaptive lock: Moir-Anderson splitter-grid renaming
/// (2 counted fences per splitter visit — the read/write price of
/// adaptivity) + bakery over the adaptively collected names.
class RtAdaptiveSplitter : public RtLock {
 public:
  explicit RtAdaptiveSplitter(int n);
  void lock(int tid) override;
  void unlock(int tid) override;
  std::string name() const override { return "adaptive-splitter"; }

 private:
  struct Cell {
    CountedAtomic<int> x{-1};
    CountedAtomic<int> y{0};
    CountedAtomic<int> touched{0};
    CountedAtomic<int> present{0};  // tid + 1
  };

  int cell_index(int r, int c) const { return (r + c) * (r + c + 1) / 2 + r; }

  int n_;
  std::vector<Padded<Cell>> cells_;
  std::vector<Padded<CountedAtomic<int>>> choosing_;
  std::vector<Padded<CountedAtomic<std::uint64_t>>> number_;
  std::vector<Padded<int>> cell_of_;  // -1 until registered
};

struct RtLockFactory {
  std::string name;
  bool adaptive;
  std::unique_ptr<RtLock> (*make)(int n);
};

/// All native locks.
const std::vector<RtLockFactory>& rt_lock_zoo();

}  // namespace tpa::runtime
