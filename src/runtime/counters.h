// Per-thread instrumentation for the native (real std::atomic) locks.
//
// On x86 — a TSO machine, the paper's model — a relaxed load/store compiles
// to a plain MOV, an std::atomic_thread_fence(seq_cst) to MFENCE, and a
// seq_cst RMW to a LOCK-prefixed instruction (which is also a full barrier).
// The native locks in runtime/locks.h are written TSO-style: relaxed
// accesses plus explicit counted fences exactly where the simulated
// versions fence, so the per-passage fence counts of the two worlds can be
// compared side by side (bench/perf_native_locks).
#pragma once

#include <atomic>
#include <cstdint>

#include "cost/model.h"

namespace tpa::runtime {

struct OpCounters {
  std::uint64_t fences = 0;  ///< explicit memory fences
  std::uint64_t rmws = 0;    ///< atomic read-modify-writes (LOCK-prefixed)
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  std::uint64_t barriers() const { return fences + rmws; }

  OpCounters operator-(const OpCounters& o) const {
    return {fences - o.fences, rmws - o.rmws, loads - o.loads,
            stores - o.stores};
  }
  OpCounters& operator+=(const OpCounters& o) {
    fences += o.fences;
    rmws += o.rmws;
    loads += o.loads;
    stores += o.stores;
    return *this;
  }

  /// These counters in the shared cross-world cost model (cost/model.h).
  /// The native runtime has no RMR oracle, so those fields stay zero.
  cost::CostVector to_cost_vector() const {
    cost::CostVector c;
    c.loads = loads;
    c.stores = stores;
    c.fences = fences;
    c.rmws = rmws;
    return c;
  }
};

/// The calling thread's counters.
OpCounters& thread_counters();

/// Full seq_cst fence, counted.
inline void counted_fence() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  thread_counters().fences++;
}

/// A shared variable with counted accesses. Loads default to acquire and
/// stores to release — both compile to plain MOVs on x86 (the hardware is
/// TSO) while preventing the *compiler* from reordering them; RMWs are
/// seq_cst (LOCK-prefixed, a full barrier).
template <typename T>
class CountedAtomic {
 public:
  CountedAtomic() : v_(T{}) {}
  explicit CountedAtomic(T init) : v_(init) {}

  T load(std::memory_order mo = std::memory_order_acquire) const {
    thread_counters().loads++;
    return v_.load(mo);
  }
  void store(T x, std::memory_order mo = std::memory_order_release) {
    thread_counters().stores++;
    v_.store(x, mo);
  }
  T exchange(T x) {
    thread_counters().rmws++;
    return v_.exchange(x, std::memory_order_seq_cst);
  }
  bool compare_exchange(T& expected, T desired) {
    thread_counters().rmws++;
    return v_.compare_exchange_strong(expected, desired,
                                      std::memory_order_seq_cst);
  }
  T fetch_add(T x) {
    thread_counters().rmws++;
    return v_.fetch_add(x, std::memory_order_seq_cst);
  }

 private:
  std::atomic<T> v_;
};

/// Cache-line-aligned wrapper to keep per-thread spin flags from sharing
/// lines (the native analogue of DSM-local variables).
template <typename T>
struct alignas(64) Padded {
  T value{};
};

}  // namespace tpa::runtime
