// Stress/measurement harness for the native instrumented locks.
#pragma once

#include <cstdint>

#include "cost/model.h"
#include "runtime/locks.h"

namespace tpa::runtime {

struct StressResult {
  std::uint64_t total_ops = 0;
  /// The wall-clock watchdog fired and the run was cut short: total_ops is
  /// the work actually performed, not threads * ops_per_thread. A stuck
  /// lock (a livelocked acquire, a lost handoff) surfaces as deadline_hit
  /// with exclusion still checked over the completed passages, instead of
  /// hanging the harness forever.
  bool deadline_hit = false;
  double seconds = 0;
  double ops_per_sec = 0;
  double fences_per_op = 0;
  double rmws_per_op = 0;
  double barriers_per_op = 0;
  /// Exclusion check: a plain (non-atomic) counter incremented inside the
  /// critical section must equal total_ops at the end.
  bool exclusion_ok = false;
  /// Maximum barriers any single thread spent per passage (average within
  /// that thread) — highlights registration spikes of adaptive locks.
  double max_thread_barriers_per_op = 0;
  /// Aggregate counters of all threads in the shared cross-world cost model
  /// (cost/model.h) — directly comparable with the simulator's per-passage
  /// PassageStats::to_cost_vector().
  cost::CostVector total_cost;
};

/// Runs `threads` threads, each performing `ops_per_thread` lock/unlock
/// passages around a shared plain counter increment. Collects the counted
/// fences/RMWs of the lock/unlock sections only. `time_budget_ms` is a
/// wall-clock watchdog (0 disables it): when it expires, threads stop at
/// their next passage boundary and the result reports deadline_hit — the
/// same contract as ExplorerConfig::time_budget_ms, so CI sweeps over
/// experimental locks are bounded even when a lock deadlocks.
StressResult run_stress(RtLock& lock, int threads,
                        std::uint64_t ops_per_thread,
                        std::uint64_t time_budget_ms = 0);

}  // namespace tpa::runtime
