#include "trace/format.h"

#include <ostream>
#include <set>
#include <sstream>
#include <vector>

namespace tpa::trace {

namespace {

std::string var_label(const tso::Event& e, const FormatOptions& options) {
  if (e.var == tso::kNoVar) return "";
  if (options.var_names &&
      static_cast<std::size_t>(e.var) < options.var_names->size() &&
      !(*options.var_names)[static_cast<std::size_t>(e.var)].empty())
    return (*options.var_names)[static_cast<std::size_t>(e.var)];
  return "v" + std::to_string(e.var);
}

}  // namespace

void print_execution(std::ostream& os, const tso::Execution& execution,
                     const FormatOptions& options) {
  std::size_t printed = 0;
  for (const auto& e : execution.events) {
    if (options.limit && printed++ >= options.limit) {
      os << "  ... (" << execution.events.size() - options.limit
         << " more events)\n";
      return;
    }
    os << "#" << e.seq << "\tp" << e.proc << "\t" << tso::to_string(e.kind);
    if (e.var != tso::kNoVar) {
      os << " " << var_label(e, options) << "=" << e.value;
      if (e.kind == tso::EventKind::kCas)
        os << (e.cas_success ? " (won, was " : " (lost, was ") << e.value2
           << ")";
    }
    if (options.show_passage) os << "\t[passage " << e.passage << "]";
    if (options.show_costs) {
      std::string flags;
      if (e.from_buffer) flags += " buf";
      if (e.critical) flags += " crit";
      if (e.rmr_dsm) flags += " rmr:dsm";
      if (e.rmr_wt) flags += " rmr:wt";
      if (e.rmr_wb) flags += " rmr:wb";
      if (!flags.empty()) os << "\t[" << flags.substr(1) << "]";
    }
    os << "\n";
  }
}

void write_csv(std::ostream& os, const tso::Execution& execution) {
  os << "seq,proc,kind,var,value,from_buffer,critical,rmr_dsm,rmr_wt,rmr_wb,"
        "passage\n";
  for (const auto& e : execution.events) {
    os << e.seq << ',' << e.proc << ',' << tso::to_string(e.kind) << ','
       << e.var << ',' << e.value << ',' << e.from_buffer << ',' << e.critical
       << ',' << e.rmr_dsm << ',' << e.rmr_wt << ',' << e.rmr_wb << ','
       << e.passage << '\n';
  }
}

std::string summarize(const tso::Execution& execution) {
  std::set<tso::ProcId> procs;
  for (const auto& e : execution.events) procs.insert(e.proc);
  std::ostringstream os;
  os << execution.events.size() << " events, "
     << execution.directives.size() << " directives, " << procs.size()
     << " participating processes";
  return os.str();
}

}  // namespace tpa::trace
