#include "trace/format.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "trace/atomic_io.h"
#include "util/check.h"

namespace tpa::trace {

namespace {

std::string var_label(const tso::Event& e, const FormatOptions& options) {
  if (e.var == tso::kNoVar) return "";
  if (options.var_names &&
      static_cast<std::size_t>(e.var) < options.var_names->size() &&
      !(*options.var_names)[static_cast<std::size_t>(e.var)].empty())
    return (*options.var_names)[static_cast<std::size_t>(e.var)];
  return "v" + std::to_string(e.var);
}

}  // namespace

void print_execution(std::ostream& os, const tso::Execution& execution,
                     const FormatOptions& options) {
  std::size_t printed = 0;
  for (const auto& e : execution.events) {
    if (options.limit && printed++ >= options.limit) {
      os << "  ... (" << execution.events.size() - options.limit
         << " more events)\n";
      return;
    }
    os << "#" << e.seq << "\tp" << e.proc << "\t" << tso::to_string(e.kind);
    if (e.var != tso::kNoVar) {
      os << " " << var_label(e, options) << "=" << e.value;
      if (e.kind == tso::EventKind::kCas)
        os << (e.cas_success ? " (won, was " : " (lost, was ") << e.value2
           << ")";
    }
    if (options.show_passage) os << "\t[passage " << e.passage << "]";
    if (options.show_costs) {
      std::string flags;
      if (e.from_buffer) flags += " buf";
      if (e.critical) flags += " crit";
      if (e.rmr_dsm) flags += " rmr:dsm";
      if (e.rmr_wt) flags += " rmr:wt";
      if (e.rmr_wb) flags += " rmr:wb";
      if (!flags.empty()) os << "\t[" << flags.substr(1) << "]";
    }
    os << "\n";
  }
}

void write_csv(std::ostream& os, const tso::Execution& execution) {
  os << "seq,proc,kind,var,value,from_buffer,critical,rmr_dsm,rmr_wt,rmr_wb,"
        "passage\n";
  for (const auto& e : execution.events) {
    os << e.seq << ',' << e.proc << ',' << tso::to_string(e.kind) << ','
       << e.var << ',' << e.value << ',' << e.from_buffer << ',' << e.critical
       << ',' << e.rmr_dsm << ',' << e.rmr_wt << ',' << e.rmr_wb << ','
       << e.passage << '\n';
  }
}

std::string summarize(const tso::Execution& execution) {
  std::set<tso::ProcId> procs;
  for (const auto& e : execution.events) procs.insert(e.proc);
  std::ostringstream os;
  os << execution.events.size() << " events, "
     << execution.directives.size() << " directives, " << procs.size()
     << " participating processes";
  return os.str();
}

bool Witness::has_crashes() const {
  for (const auto& d : directives)
    if (d.kind == tso::ActionKind::kCrash ||
        d.kind == tso::ActionKind::kRecover)
      return true;
  return false;
}

void write_witness(std::ostream& os, const Witness& witness) {
  // Crash-free safety witnesses keep the v1 format byte-for-byte; the v2
  // header and crash-model line appear only when there is crash content, so
  // old corpus files never churn. Liveness verdicts (and only they) bump
  // the header to v3 and add the verdict / cycle-start lines.
  const bool crashes = witness.has_crashes();
  const bool liveness = witness.verdict_kind != tso::VerdictKind::kSafety &&
                        witness.verdict_kind != tso::VerdictKind::kClean;
  os << (liveness  ? "tpa-witness v3\n"
         : crashes ? "tpa-witness v2\n"
                   : "tpa-witness v1\n");
  os << "scenario " << witness.scenario << "\n";
  os << "procs " << witness.n_procs << "\n";
  os << "pso " << (witness.pso ? 1 : 0) << "\n";
  if (crashes)
    os << "crash-model " << tso::to_string(witness.crash_model) << "\n";
  std::string msg = witness.violation;
  for (char& c : msg)
    if (c == '\n' || c == '\r') c = ' ';
  os << "violation " << msg << "\n";
  if (liveness) {
    os << "verdict " << tso::to_string(witness.verdict_kind) << "\n";
    if (witness.is_lasso()) os << "cycle-start " << witness.cycle_start << "\n";
  }
  for (const auto& d : witness.directives) {
    switch (d.kind) {
      case tso::ActionKind::kDeliver:
        os << "d " << d.proc << "\n";
        break;
      case tso::ActionKind::kCommit:
        os << "c " << d.proc;
        if (d.var != tso::kNoVar) os << " " << d.var;
        os << "\n";
        break;
      case tso::ActionKind::kCrash:
        os << "x " << d.proc << "\n";
        break;
      case tso::ActionKind::kRecover:
        os << "r " << d.proc << "\n";
        break;
    }
  }
  os << "end\n";
}

namespace {

std::string chomp(std::string line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
    line.pop_back();
  return line;
}

}  // namespace

Witness read_witness(std::istream& is) {
  Witness w;
  std::string line;
  TPA_CHECK(static_cast<bool>(std::getline(is, line)),
            "witness: empty input");
  line = chomp(line);
  TPA_CHECK(line == "tpa-witness v1" || line == "tpa-witness v2" ||
                line == "tpa-witness v3",
            "witness: bad header '" << line << "'");
  const bool v3 = line == "tpa-witness v3";
  bool saw_end = false;
  bool saw_cycle_start = false;
  while (std::getline(is, line)) {
    line = chomp(line);
    if (line.empty() || line[0] == '#') continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "scenario") {
      ls >> std::ws;
      std::getline(ls, w.scenario);
    } else if (key == "procs") {
      TPA_CHECK(static_cast<bool>(ls >> w.n_procs),
                "witness: bad procs line '" << line << "'");
    } else if (key == "pso") {
      int v = 0;
      TPA_CHECK(static_cast<bool>(ls >> v),
                "witness: bad pso line '" << line << "'");
      w.pso = v != 0;
    } else if (key == "violation") {
      ls >> std::ws;
      std::getline(ls, w.violation);
    } else if (key == "crash-model") {
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "witness: bad crash-model line '" << line << "'");
      w.crash_model = tso::crash_model_from_string(name);
    } else if (key == "verdict") {
      TPA_CHECK(v3, "witness: 'verdict' requires the v3 header");
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "witness: bad verdict line '" << line << "'");
      w.verdict_kind = tso::verdict_kind_from_string(name);
      TPA_CHECK(w.verdict_kind != tso::VerdictKind::kClean &&
                    w.verdict_kind != tso::VerdictKind::kSafety,
                "witness: v3 verdict must be a liveness kind, got '" << name
                                                                    << "'");
    } else if (key == "cycle-start") {
      TPA_CHECK(v3, "witness: 'cycle-start' requires the v3 header");
      TPA_CHECK(static_cast<bool>(ls >> w.cycle_start),
                "witness: bad cycle-start line '" << line << "'");
      saw_cycle_start = true;
    } else if (key == "d" || key == "c" || key == "x" || key == "r") {
      tso::Directive d;
      d.kind = key == "d"   ? tso::ActionKind::kDeliver
               : key == "c" ? tso::ActionKind::kCommit
               : key == "x" ? tso::ActionKind::kCrash
                            : tso::ActionKind::kRecover;
      TPA_CHECK(static_cast<bool>(ls >> d.proc),
                "witness: bad directive line '" << line << "'");
      d.var = tso::kNoVar;
      if (key == "c") {
        tso::VarId v;
        if (ls >> v) d.var = v;
      }
      w.directives.push_back(d);
    } else {
      TPA_FAIL("witness: unknown key '" << key << "'");
    }
  }
  TPA_CHECK(saw_end, "witness: missing 'end' terminator");
  TPA_CHECK(w.n_procs > 0, "witness: missing or zero 'procs'");
  if (v3)
    TPA_CHECK(w.verdict_kind != tso::VerdictKind::kSafety,
              "witness: v3 requires a 'verdict' line");
  if (saw_cycle_start)
    TPA_CHECK(w.cycle_start < w.directives.size(),
              "witness: cycle-start " << w.cycle_start
                                      << " out of range (schedule has "
                                      << w.directives.size()
                                      << " directives)");
  return w;
}

std::string witness_to_string(const Witness& witness) {
  std::ostringstream os;
  write_witness(os, witness);
  return os.str();
}

Witness witness_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_witness(is);
}

void write_witness_file(const std::string& path, const Witness& witness) {
  // tmp + fsync + rename (trace/atomic_io.h): the final name only ever
  // holds a complete witness, even across a SIGKILL or power loss.
  atomic_write_file(path, witness_to_string(witness));
}

bool try_read_witness_file(const std::string& path, Witness* out,
                           std::string* error) {
  std::ifstream is(path);
  if (!is.good()) {
    if (error) *error = "cannot open '" + path + "'";
    return false;
  }
  try {
    Witness w = read_witness(is);
    *out = std::move(w);
    return true;
  } catch (const CheckFailure& e) {
    if (error) *error = e.what();
    return false;
  }
}

}  // namespace tpa::trace
