// ExecutionAnalyzer — offline recomputation of the paper's definitions from
// a raw event trace.
//
// The simulator computes criticality (Definition 2), awareness (Definition
// 1), RMRs, and fence/passage bookkeeping online. This module recomputes
// all of it from nothing but the event list and the variable layout — an
// independent implementation used to cross-check the simulator
// (tests/test_analyzer.cpp asserts online == offline on every event) and to
// evaluate the IN-set and regularity predicates (trace/inset.h).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "tso/event.h"
#include "tso/types.h"
#include "util/bitset.h"

namespace tpa::trace {

using tso::Event;
using tso::Execution;
using tso::Mode;
using tso::ProcId;
using tso::Status;
using tso::Value;
using tso::VarId;

/// Static variable layout: owners[v] is the process v is local to, or
/// kNoProc. Obtain from Simulator::var_owners().
struct VarLayout {
  std::vector<ProcId> owners;
};

/// Per-event facts recomputed offline.
struct EventFacts {
  bool accesses_var = false;
  bool remote = false;
  bool critical = false;
  bool from_buffer = false;
  // RMR charges per model, recomputed by stepping the same
  // cost::CoherenceDirectory the simulator's CostObserver uses — online and
  // offline charging share one implementation and cannot drift apart.
  bool rmr_dsm = false;
  bool rmr_wt = false;
  bool rmr_wb = false;
};

/// Full offline analysis of an execution.
struct Analysis {
  std::size_t n_procs = 0;

  std::vector<EventFacts> facts;  ///< parallel to execution.events

  // Final per-process state.
  std::vector<Status> status;
  std::vector<Mode> mode;
  std::vector<DynBitset> awareness;          ///< AW(p, E)
  std::vector<std::uint32_t> fences_completed;
  std::vector<std::uint32_t> critical_events;
  std::vector<std::uint32_t> passages_done;

  // Final per-variable state.
  std::vector<ProcId> last_writer;                       ///< writer(v, E)
  std::vector<DynBitset> writer_awareness;               ///< AW at issue
  std::vector<std::unordered_set<ProcId>> accessed_by;   ///< Accessed(v, E)

  /// Act(E): started a passage, not yet completed it.
  std::vector<ProcId> active() const;
  /// Fin(E): completed at least one passage.
  std::vector<ProcId> finished() const;
};

/// Recomputes everything from the event list. Throws CheckFailure if the
/// trace is structurally inconsistent (e.g. a commit without a matching
/// buffered write) — such traces cannot come from the simulator.
Analysis analyze(const Execution& execution, std::size_t n_procs,
                 const VarLayout& layout);

struct ConsistencyReport {
  bool ok = true;
  std::string detail;
};

/// Compares the simulator's online per-event flags with the offline
/// recomputation. Any disagreement is a bug in one of the two.
ConsistencyReport check_consistency(const Execution& execution,
                                    const Analysis& analysis);

}  // namespace tpa::trace
