// Human-readable and CSV rendering of executions — for examples, debugging
// adversary runs, and exporting traces to external tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "tso/event.h"

namespace tpa::trace {

struct FormatOptions {
  bool show_costs = true;     ///< criticality + RMR flags per event
  bool show_passage = false;  ///< each event's passage index
  std::size_t limit = 0;      ///< 0 = all events
  /// Optional map from VarId to a human name (e.g. "number[2]"); events
  /// whose var is not in the map print as "v<id>".
  const std::vector<std::string>* var_names = nullptr;
};

/// Pretty-prints the event trace, one line per event.
void print_execution(std::ostream& os, const tso::Execution& execution,
                     const FormatOptions& options = {});

/// CSV with header: seq,proc,kind,var,value,from_buffer,critical,
/// rmr_dsm,rmr_wt,rmr_wb,passage.
void write_csv(std::ostream& os, const tso::Execution& execution);

/// One-line summary: "#events, #directives, participants".
std::string summarize(const tso::Execution& execution);

}  // namespace tpa::trace
