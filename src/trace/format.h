// Human-readable and CSV rendering of executions — for examples, debugging
// adversary runs, and exporting traces to external tooling — plus the
// witness text format that makes every explorer/fuzzer violation a
// replayable artifact (the regression corpus under tests/corpus/; workflow
// in docs/FUZZING.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "tso/event.h"

namespace tpa::trace {

struct FormatOptions {
  bool show_costs = true;     ///< criticality + RMR flags per event
  bool show_passage = false;  ///< each event's passage index
  std::size_t limit = 0;      ///< 0 = all events
  /// Optional map from VarId to a human name (e.g. "number[2]"); events
  /// whose var is not in the map print as "v<id>".
  const std::vector<std::string>* var_names = nullptr;
};

/// Pretty-prints the event trace, one line per event.
void print_execution(std::ostream& os, const tso::Execution& execution,
                     const FormatOptions& options = {});

/// CSV with header: seq,proc,kind,var,value,from_buffer,critical,
/// rmr_dsm,rmr_wt,rmr_wb,passage.
void write_csv(std::ostream& os, const tso::Execution& execution);

/// One-line summary: "#events, #directives, participants".
std::string summarize(const tso::Execution& execution);

/// A replayable violation artifact: a scenario identifier (resolved back to
/// a ScenarioBuilder by the replaying harness), the simulator parameters
/// needed to rebuild it, the recorded violation message, and the (typically
/// shrunk) directive schedule that reproduces it.
struct Witness {
  std::string scenario;   ///< free-form id, e.g. "bakery-none-2p"
  std::size_t n_procs = 0;
  bool pso = false;       ///< SimConfig::pso in effect when recorded
  std::string violation;  ///< expected failure (or a recognizable part)
  std::vector<tso::Directive> directives;
};

/// Serializes a witness in the line-oriented text format:
///
///   tpa-witness v1
///   scenario <id>
///   procs <n>
///   pso <0|1>
///   violation <message, single line>
///   d <proc>          # deliver
///   c <proc> [<var>]  # commit (head when <var> is omitted; PSO names one)
///   end
///
/// Blank lines and lines starting with '#' are ignored by the reader.
void write_witness(std::ostream& os, const Witness& witness);

/// Parses write_witness output; raises CheckFailure on malformed input.
Witness read_witness(std::istream& is);

/// String-based conveniences over the stream versions.
std::string witness_to_string(const Witness& witness);
Witness witness_from_string(const std::string& text);

}  // namespace tpa::trace
