// Human-readable and CSV rendering of executions — for examples, debugging
// adversary runs, and exporting traces to external tooling — plus the
// witness text format that makes every explorer/fuzzer violation a
// replayable artifact (the regression corpus under tests/corpus/; workflow
// in docs/FUZZING.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "tso/event.h"
#include "tso/run_stats.h"

namespace tpa::trace {

struct FormatOptions {
  bool show_costs = true;     ///< criticality + RMR flags per event
  bool show_passage = false;  ///< each event's passage index
  std::size_t limit = 0;      ///< 0 = all events
  /// Optional map from VarId to a human name (e.g. "number[2]"); events
  /// whose var is not in the map print as "v<id>".
  const std::vector<std::string>* var_names = nullptr;
};

/// Pretty-prints the event trace, one line per event.
void print_execution(std::ostream& os, const tso::Execution& execution,
                     const FormatOptions& options = {});

/// CSV with header: seq,proc,kind,var,value,from_buffer,critical,
/// rmr_dsm,rmr_wt,rmr_wb,passage.
void write_csv(std::ostream& os, const tso::Execution& execution);

/// One-line summary: "#events, #directives, participants".
std::string summarize(const tso::Execution& execution);

/// A replayable violation artifact: a scenario identifier (resolved back to
/// a ScenarioBuilder by the replaying harness), the simulator parameters
/// needed to rebuild it, the recorded violation message, and the (typically
/// shrunk) directive schedule that reproduces it.
struct Witness {
  std::string scenario;   ///< free-form id, e.g. "bakery-none-2p"
  std::size_t n_procs = 0;
  bool pso = false;       ///< SimConfig::pso in effect when recorded
  /// SimConfig::crash_model in effect when recorded; only meaningful (and
  /// only serialized) when the schedule carries crash directives.
  tso::CrashModel crash_model = tso::CrashModel::kBufferLost;
  std::string violation;  ///< expected failure (or a recognizable part)
  std::vector<tso::Directive> directives;
  /// What kind of violation the schedule demonstrates. Safety witnesses
  /// (the whole pre-liveness corpus) leave the default; liveness witnesses
  /// carry kStarvation / kLivelock / kDeadlock and serialize as v3.
  tso::VerdictKind verdict_kind = tso::VerdictKind::kSafety;
  /// For lasso witnesses: index into `directives` where the cycle begins —
  /// [0, cycle_start) is the stem, [cycle_start, end) the cycle the replay
  /// must re-close under the progress fingerprint. kNoCycle for stem-only
  /// witnesses (safety, deadlock).
  std::size_t cycle_start = tso::kNoCycle;

  /// True when any directive is a Crash or Recover.
  bool has_crashes() const;
  /// True when the witness carries a cycle (a liveness lasso).
  bool is_lasso() const { return cycle_start != tso::kNoCycle; }
};

/// Serializes a witness in the line-oriented text format:
///
///   tpa-witness v1
///   scenario <id>
///   procs <n>
///   pso <0|1>
///   violation <message, single line>
///   d <proc>          # deliver
///   c <proc> [<var>]  # commit (head when <var> is omitted; PSO names one)
///   end
///
/// Witnesses carrying crash directives are written as "tpa-witness v2" with
/// an extra "crash-model <lost|flushed>" line and two more directive kinds,
/// "x <proc>" (crash) and "r <proc>" (recover); crash-free witnesses stay
/// byte-identical to the v1 format.
///
/// Liveness witnesses are written as "tpa-witness v3", adding a
/// "verdict <starvation|livelock|deadlock>" line after the violation and —
/// for lassos — a "cycle-start <index>" line marking where the cycle
/// begins; the replaying harness re-applies the cycle and asserts the
/// progress fingerprint at the cycle entry equals the one at its end.
/// Safety witnesses never get the v3 header, so the whole pre-liveness
/// corpus stays byte-identical. Blank lines and lines starting with '#' are
/// ignored by the reader, which accepts all three versions.
void write_witness(std::ostream& os, const Witness& witness);

/// Parses write_witness output; raises CheckFailure on malformed input —
/// including a v3 cycle-start at or past the end of the schedule.
Witness read_witness(std::istream& is);

/// String-based conveniences over the stream versions.
std::string witness_to_string(const Witness& witness);
Witness witness_from_string(const std::string& text);

/// Writes the witness to `path` atomically (trace/atomic_io.h): the text is
/// written to a sibling "<path>.tmp" file, fsync'd, and only then renamed
/// over the target, so a crash (or full disk, or SIGKILL) mid-write can
/// never leave a truncated witness under the final name. Raises
/// CheckFailure on I/O errors.
void write_witness_file(const std::string& path, const Witness& witness);

/// Lenient counterpart to read_witness for corpus loading: returns false —
/// with a diagnostic in `*error` when given — instead of raising when the
/// file is missing, unreadable, truncated or malformed. `*out` is only
/// assigned on success.
bool try_read_witness_file(const std::string& path, Witness* out,
                           std::string* error = nullptr);

}  // namespace tpa::trace
