#include "trace/inset.h"

#include <sstream>

#include "util/check.h"

namespace tpa::trace {

namespace {

std::vector<bool> to_mask(const std::vector<ProcId>& ids, std::size_t n) {
  std::vector<bool> mask(n, false);
  for (ProcId p : ids) mask[static_cast<std::size_t>(p)] = true;
  return mask;
}

InsetReport fail(const std::string& what) { return {false, what}; }

InsetReport check_in1_in2_in4(const Execution& execution,
                              const Analysis& analysis,
                              const VarLayout& layout,
                              const std::vector<bool>& inv) {
  const std::size_t n = analysis.n_procs;
  const auto act_mask = to_mask(analysis.active(), n);

  // Invisible processes must be active (INV ⊆ Act(E)).
  for (std::size_t p = 0; p < n; ++p) {
    if (inv[p] && !act_mask[p])
      return fail("INV member p" + std::to_string(p) + " is not active");
  }

  // IN1: AW(p, E) ∩ INV ⊆ {p}.
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p || !inv[q]) continue;
      if (analysis.awareness[p].test(q)) {
        std::ostringstream os;
        os << "IN1 violated: p" << p << " is aware of invisible p" << q;
        return fail(os.str());
      }
    }
  }

  // IN2: every invisible process is in its entry section.
  for (std::size_t p = 0; p < n; ++p) {
    if (inv[p] && analysis.status[p] != Status::kEntry) {
      std::ostringstream os;
      os << "IN2 violated: invisible p" << p << " has status "
         << tso::to_string(analysis.status[p]);
      return fail(os.str());
    }
  }

  // IN4: remote accesses never touch a variable owned by an active process.
  for (std::size_t i = 0; i < execution.events.size(); ++i) {
    const EventFacts& f = analysis.facts[i];
    if (!f.accesses_var || !f.remote) continue;
    const Event& e = execution.events[i];
    const ProcId owner = layout.owners[static_cast<std::size_t>(e.var)];
    if (owner != tso::kNoProc && act_mask[static_cast<std::size_t>(owner)]) {
      std::ostringstream os;
      os << "IN4 violated: event {" << e.to_string()
         << "} remotely accesses v" << e.var << " owned by active p" << owner;
      return fail(os.str());
    }
  }
  return {};
}

}  // namespace

InsetReport check_inset_semi(const Execution& execution,
                             const Analysis& analysis, const VarLayout& layout,
                             const std::vector<bool>& inv) {
  return check_in1_in2_in4(execution, analysis, layout, inv);
}

InsetReport check_inset_static(const Execution& execution,
                               const Analysis& analysis,
                               const VarLayout& layout,
                               const std::vector<bool>& inv) {
  InsetReport base = check_in1_in2_in4(execution, analysis, layout, inv);
  if (!base.ok) return base;

  // IN5: if |Accessed(v, E) ∩ Act(E)| > 1 then writer(v, E) ∉ INV.
  const auto act_mask = to_mask(analysis.active(), analysis.n_procs);
  for (std::size_t v = 0; v < analysis.last_writer.size(); ++v) {
    int active_accessors = 0;
    for (ProcId q : analysis.accessed_by[v])
      if (act_mask[static_cast<std::size_t>(q)]) ++active_accessors;
    if (active_accessors <= 1) continue;
    const ProcId w = analysis.last_writer[v];
    if (w != tso::kNoProc && inv[static_cast<std::size_t>(w)]) {
      std::ostringstream os;
      os << "IN5 violated: v" << v << " has " << active_accessors
         << " active accessors but its last writer p" << w << " is invisible";
      return fail(os.str());
    }
  }
  return {};
}

InsetReport check_regular(const Execution& execution, const Analysis& analysis,
                          const VarLayout& layout) {
  return check_inset_static(execution, analysis, layout,
                            to_mask(analysis.active(), analysis.n_procs));
}

InsetReport check_semi_regular(const Execution& execution,
                               const Analysis& analysis,
                               const VarLayout& layout) {
  return check_inset_semi(execution, analysis, layout,
                          to_mask(analysis.active(), analysis.n_procs));
}

InsetReport check_ordered(const Execution& execution, const Analysis& analysis,
                          const VarLayout& layout) {
  (void)layout;
  const std::size_t n = analysis.n_procs;
  const auto act = analysis.active();
  const auto act_mask = to_mask(act, n);

  // Per-process index of the last EndFence event, to verify condition (c)'s
  // "still executing the fence" clause.
  std::vector<std::ptrdiff_t> last_end_fence(n, -1);
  for (std::size_t i = 0; i < execution.events.size(); ++i) {
    const Event& e = execution.events[i];
    if (e.kind == tso::EventKind::kEndFence)
      last_end_fence[static_cast<std::size_t>(e.proc)] =
          static_cast<std::ptrdiff_t>(i);
  }

  for (std::size_t v = 0; v < analysis.last_writer.size(); ++v) {
    const ProcId w = analysis.last_writer[v];
    // (a) the last writer is not active.
    if (w == tso::kNoProc || !act_mask[static_cast<std::size_t>(w)]) continue;
    // (b) the writer is the unique active accessor.
    int active_accessors = 0;
    for (ProcId q : analysis.accessed_by[v])
      if (act_mask[static_cast<std::size_t>(q)]) ++active_accessors;
    if (active_accessors == 1) continue;

    // (c) a run of consecutive commits to v by all active processes in
    // increasing ID order, none of which completed its fence afterwards.
    bool found = false;
    std::size_t i = 0;
    const auto is_commit_v = [&](std::size_t k) {
      return execution.events[k].kind == tso::EventKind::kWriteCommit &&
             execution.events[k].var == static_cast<VarId>(v);
    };
    while (i < execution.events.size() && !found) {
      if (!is_commit_v(i)) {
        ++i;
        continue;
      }
      std::size_t j = i;
      std::vector<std::pair<ProcId, std::size_t>> run;  // (proc, event idx)
      while (j < execution.events.size() && is_commit_v(j)) {
        run.emplace_back(execution.events[j].proc, j);
        ++j;
      }
      // The run must be exactly the active set in increasing ID order.
      if (run.size() == act.size()) {
        bool matches = true;
        for (std::size_t k = 0; k < run.size(); ++k) {
          if (run[k].first != act[k]) {
            matches = false;
            break;
          }
          const auto pid = static_cast<std::size_t>(run[k].first);
          if (last_end_fence[pid] >= static_cast<std::ptrdiff_t>(run[k].second)) {
            matches = false;  // completed the fence after its commit
            break;
          }
        }
        found = matches;
      }
      i = j;
    }
    if (!found) {
      std::ostringstream os;
      os << "not ordered: v" << v << " is last-written by active p" << w
         << ", has " << active_accessors
         << " active accessors, and no qualifying commit run exists";
      return fail(os.str());
    }
  }
  return {};
}

InsetReport check_in3_subset(std::size_t n_procs, tso::SimConfig config,
                             const tso::ScenarioBuilder& build,
                             const Execution& execution,
                             const std::vector<bool>& erase) {
  auto replayed = tso::replay(n_procs, config, build, execution.directives,
                              &erase);
  const auto check = tso::verify_replay_equivalence(
      execution, replayed->execution(), erase);
  if (!check.ok) return fail("IN3 replay mismatch: " + check.detail);
  return {};
}

}  // namespace tpa::trace
