#include "trace/campaign.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "trace/atomic_io.h"
#include "util/check.h"

namespace tpa::trace {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // Field separator, so adjacent fields cannot alias across the boundary.
  h ^= 0x1f;
  h *= 0x100000001b3ull;
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_directive(std::ostream& os, const tso::Directive& d) {
  switch (d.kind) {
    case tso::ActionKind::kDeliver:
      os << "d " << d.proc << "\n";
      break;
    case tso::ActionKind::kCommit:
      os << "c " << d.proc;
      if (d.var != tso::kNoVar) os << " " << d.var;
      os << "\n";
      break;
    case tso::ActionKind::kCrash:
      os << "x " << d.proc << "\n";
      break;
    case tso::ActionKind::kRecover:
      os << "r " << d.proc << "\n";
      break;
  }
}

bool is_directive_key(const std::string& key) {
  return key == "d" || key == "c" || key == "x" || key == "r";
}

tso::Directive parse_directive(const std::string& key, std::istringstream& ls,
                               const std::string& line) {
  tso::Directive d;
  d.kind = key == "d"   ? tso::ActionKind::kDeliver
           : key == "c" ? tso::ActionKind::kCommit
           : key == "x" ? tso::ActionKind::kCrash
                        : tso::ActionKind::kRecover;
  TPA_CHECK(static_cast<bool>(ls >> d.proc),
            "campaign: bad directive line '" << line << "'");
  d.var = tso::kNoVar;
  if (key == "c") {
    tso::VarId v;
    if (ls >> v) d.var = v;
  }
  return d;
}

std::string chomp(std::string line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
    line.pop_back();
  return line;
}

}  // namespace

std::uint64_t campaign_config_hash(const Campaign& c) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  h = fnv1a(h, c.scenario);
  h = fnv1a_u64(h, c.n_procs);
  h = fnv1a_u64(h, c.pso ? 1 : 0);
  h = fnv1a(h, tso::to_string(c.crash_model));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(c.preemptions));
  h = fnv1a_u64(h, c.max_steps);
  h = fnv1a_u64(h, c.max_schedules);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(c.max_crashes));
  h = fnv1a(h, tso::to_string(c.dedup));
  h = fnv1a(h, tso::to_string(c.symmetry));
  h = fnv1a(h, tso::to_string(c.liveness));
  h = fnv1a_u64(h, c.dedup_max_bytes);
  h = fnv1a_u64(h, c.shrink ? 1 : 0);
  h = fnv1a_u64(h, c.checkpoint ? 1 : 0);
  return h;
}

void write_campaign(std::ostream& os, const Campaign& c) {
  os << "tpa-campaign v2\n";
  if (!c.scenario.empty()) os << "scenario " << c.scenario << "\n";
  os << "procs " << c.n_procs << "\n";
  os << "pso " << (c.pso ? 1 : 0) << "\n";
  os << "crash-model " << tso::to_string(c.crash_model) << "\n";
  os << "preemptions " << c.preemptions << "\n";
  os << "max-steps " << c.max_steps << "\n";
  os << "max-schedules " << c.max_schedules << "\n";
  os << "max-crashes " << c.max_crashes << "\n";
  os << "dedup " << tso::to_string(c.dedup) << "\n";
  os << "symmetry " << tso::to_string(c.symmetry) << "\n";
  os << "liveness " << tso::to_string(c.liveness) << "\n";
  os << "dedup-max-bytes " << c.dedup_max_bytes << "\n";
  os << "shrink " << (c.shrink ? 1 : 0) << "\n";
  os << "checkpoint " << (c.checkpoint ? 1 : 0) << "\n";
  os << "config-hash " << std::hex << campaign_config_hash(c) << std::dec
     << "\n";
  os << "schedules " << c.schedules << "\n";
  os << "steps " << c.steps << "\n";
  os << "truncated " << c.truncated << "\n";
  os << "snapshots " << c.snapshots << "\n";
  os << "restores " << c.restores << "\n";
  os << "dedup-hits " << c.dedup_hits << "\n";
  os << "dedup-states " << c.dedup_states << "\n";
  os << "dedup-evictions " << c.dedup_evictions << "\n";
  os << "complete " << (c.complete ? 1 : 0) << "\n";
  os << "exhausted " << (c.exhausted ? 1 : 0) << "\n";
  if (c.verdict.found()) {
    os << "verdict " << tso::to_string(c.verdict.kind) << "\n";
    std::string msg = c.verdict.message;
    for (char& ch : msg)
      if (ch == '\n' || ch == '\r') ch = ' ';
    os << "violation " << msg << "\n";
    if (c.verdict.is_lasso())
      os << "cycle-start " << c.verdict.cycle_start << "\n";
    if (!c.verdict.witness.empty()) {
      os << "witness\n";
      for (const auto& d : c.verdict.witness) write_directive(os, d);
    }
  }
  for (const auto& node : c.frontier) {
    os << "node " << node.current << " " << node.preemptions << " "
       << node.crashes_left << "\n";
    for (const auto& d : node.dirs) write_directive(os, d);
  }
  os << "end\n";
}

Campaign read_campaign(std::istream& is) {
  Campaign c;
  std::string line;
  TPA_CHECK(static_cast<bool>(std::getline(is, line)),
            "campaign: empty input");
  // v1 files predate the liveness config field: their hash cannot cover the
  // liveness mode a resume needs, so they are stale, not parseable-as-v2.
  TPA_CHECK(chomp(line) != "tpa-campaign v1",
            "campaign: stale v1 file — the format gained the liveness "
            "config field in v2; restart the campaign");
  TPA_CHECK(chomp(line) == "tpa-campaign v2",
            "campaign: bad header '" << chomp(line) << "'");

  // Directive lines attach to whichever section is open: the witness, or
  // the most recently declared frontier node.
  enum class Section { kNone, kWitness, kNode };
  Section section = Section::kNone;
  bool saw_end = false;
  bool saw_hash = false;
  std::uint64_t stored_hash = 0;
  auto read_flag = [&](std::istringstream& ls, const char* what) {
    int v = 0;
    TPA_CHECK(static_cast<bool>(ls >> v), "campaign: bad " << what << " line");
    return v != 0;
  };
  while (std::getline(is, line)) {
    line = chomp(line);
    if (line.empty() || line[0] == '#') continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (is_directive_key(key)) {
      const tso::Directive d = parse_directive(key, ls, line);
      if (section == Section::kWitness) {
        c.verdict.witness.push_back(d);
      } else {
        TPA_CHECK(section == Section::kNode,
                  "campaign: directive line '" << line
                                               << "' outside any section");
        c.frontier.back().dirs.push_back(d);
      }
      continue;
    }
    if (key == "witness") {
      section = Section::kWitness;
    } else if (key == "node") {
      CampaignNode node;
      TPA_CHECK(static_cast<bool>(ls >> node.current >> node.preemptions >>
                                  node.crashes_left),
                "campaign: bad node line '" << line << "'");
      c.frontier.push_back(std::move(node));
      section = Section::kNode;
    } else if (key == "scenario") {
      ls >> std::ws;
      std::getline(ls, c.scenario);
    } else if (key == "procs") {
      TPA_CHECK(static_cast<bool>(ls >> c.n_procs),
                "campaign: bad procs line '" << line << "'");
    } else if (key == "pso") {
      c.pso = read_flag(ls, "pso");
    } else if (key == "crash-model") {
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "campaign: bad crash-model line '" << line << "'");
      c.crash_model = tso::crash_model_from_string(name);
    } else if (key == "preemptions") {
      TPA_CHECK(static_cast<bool>(ls >> c.preemptions),
                "campaign: bad preemptions line '" << line << "'");
    } else if (key == "max-steps") {
      TPA_CHECK(static_cast<bool>(ls >> c.max_steps),
                "campaign: bad max-steps line '" << line << "'");
    } else if (key == "max-schedules") {
      TPA_CHECK(static_cast<bool>(ls >> c.max_schedules),
                "campaign: bad max-schedules line '" << line << "'");
    } else if (key == "max-crashes") {
      TPA_CHECK(static_cast<bool>(ls >> c.max_crashes),
                "campaign: bad max-crashes line '" << line << "'");
    } else if (key == "dedup") {
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "campaign: bad dedup line '" << line << "'");
      c.dedup = tso::dedup_mode_from_string(name);
    } else if (key == "symmetry") {
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "campaign: bad symmetry line '" << line << "'");
      c.symmetry = tso::symmetry_mode_from_string(name);
    } else if (key == "liveness") {
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "campaign: bad liveness line '" << line << "'");
      c.liveness = tso::liveness_mode_from_string(name);
    } else if (key == "dedup-max-bytes") {
      TPA_CHECK(static_cast<bool>(ls >> c.dedup_max_bytes),
                "campaign: bad dedup-max-bytes line '" << line << "'");
    } else if (key == "shrink") {
      c.shrink = read_flag(ls, "shrink");
    } else if (key == "checkpoint") {
      c.checkpoint = read_flag(ls, "checkpoint");
    } else if (key == "config-hash") {
      TPA_CHECK(static_cast<bool>(ls >> std::hex >> stored_hash),
                "campaign: bad config-hash line '" << line << "'");
      saw_hash = true;
    } else if (key == "schedules") {
      TPA_CHECK(static_cast<bool>(ls >> c.schedules),
                "campaign: bad schedules line '" << line << "'");
    } else if (key == "steps") {
      TPA_CHECK(static_cast<bool>(ls >> c.steps),
                "campaign: bad steps line '" << line << "'");
    } else if (key == "truncated") {
      TPA_CHECK(static_cast<bool>(ls >> c.truncated),
                "campaign: bad truncated line '" << line << "'");
    } else if (key == "snapshots") {
      TPA_CHECK(static_cast<bool>(ls >> c.snapshots),
                "campaign: bad snapshots line '" << line << "'");
    } else if (key == "restores") {
      TPA_CHECK(static_cast<bool>(ls >> c.restores),
                "campaign: bad restores line '" << line << "'");
    } else if (key == "dedup-hits") {
      TPA_CHECK(static_cast<bool>(ls >> c.dedup_hits),
                "campaign: bad dedup-hits line '" << line << "'");
    } else if (key == "dedup-states") {
      TPA_CHECK(static_cast<bool>(ls >> c.dedup_states),
                "campaign: bad dedup-states line '" << line << "'");
    } else if (key == "dedup-evictions") {
      TPA_CHECK(static_cast<bool>(ls >> c.dedup_evictions),
                "campaign: bad dedup-evictions line '" << line << "'");
    } else if (key == "complete") {
      c.complete = read_flag(ls, "complete");
    } else if (key == "exhausted") {
      c.exhausted = read_flag(ls, "exhausted");
    } else if (key == "verdict") {
      std::string name;
      TPA_CHECK(static_cast<bool>(ls >> name),
                "campaign: bad verdict line '" << line << "'");
      c.verdict.kind = tso::verdict_kind_from_string(name);
      TPA_CHECK(c.verdict.found(),
                "campaign: explicit 'verdict clean' line is not written — "
                "the file is corrupt");
    } else if (key == "violation") {
      ls >> std::ws;
      std::getline(ls, c.verdict.message);
      // v2 always writes the verdict line before the violation message; a
      // file carrying a message without a kind is malformed.
      TPA_CHECK(c.verdict.found(),
                "campaign: 'violation' line without a preceding 'verdict'");
    } else if (key == "cycle-start") {
      TPA_CHECK(static_cast<bool>(ls >> c.verdict.cycle_start),
                "campaign: bad cycle-start line '" << line << "'");
    } else {
      TPA_FAIL("campaign: unknown key '" << key << "'");
    }
  }
  TPA_CHECK(saw_end, "campaign: missing 'end' terminator");
  TPA_CHECK(c.n_procs > 0, "campaign: missing or zero 'procs'");
  TPA_CHECK(saw_hash, "campaign: missing 'config-hash'");
  TPA_CHECK(stored_hash == campaign_config_hash(c),
            "campaign: config-hash mismatch — the file was edited or the "
            "configuration fields are corrupt");
  TPA_CHECK(c.complete == c.frontier.empty(),
            "campaign: " << (c.complete ? "complete campaign carries frontier "
                                          "nodes"
                                        : "incomplete campaign has an empty "
                                          "frontier"));
  TPA_CHECK(!c.verdict.is_lasso() ||
                c.verdict.cycle_start < c.verdict.witness.size(),
            "campaign: cycle-start " << c.verdict.cycle_start
                                     << " out of range for a witness of "
                                     << c.verdict.witness.size()
                                     << " directives");
  return c;
}

std::string campaign_to_string(const Campaign& campaign) {
  std::ostringstream os;
  write_campaign(os, campaign);
  return os.str();
}

Campaign campaign_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_campaign(is);
}

void write_campaign_file(const std::string& path, const Campaign& campaign) {
  atomic_write_file(path, campaign_to_string(campaign));
}

Campaign read_campaign_file(const std::string& path) {
  std::ifstream is(path);
  TPA_CHECK(is.good(), "campaign: cannot open '" << path << "'");
  return read_campaign(is);
}

bool try_read_campaign_file(const std::string& path, Campaign* out,
                            std::string* error) {
  std::ifstream is(path);
  if (!is.good()) {
    if (error) *error = "cannot open '" + path + "'";
    return false;
  }
  try {
    Campaign c = read_campaign(is);
    *out = std::move(c);
    return true;
  } catch (const CheckFailure& e) {
    if (error) *error = e.what();
    return false;
  }
}

}  // namespace tpa::trace
