// Campaign file format v2 — the durable state of an exploration campaign.
//
// A campaign file is everything a fresh process needs to continue (or just
// report) an exploration another process started: the scenario identity, the
// RNG-free explorer configuration (guarded by a hash so a resume with
// mismatched parameters is rejected instead of silently diverging), the
// aggregate RunStats of the work already completed, and the *frontier* — the
// roots of the still-unexplored subtrees, each a directive prefix plus the
// adversary budgets remaining at that node. The frontier is the same exact
// partition representation the parallel explorer's work queue uses: the
// listed subtrees and the completed work tile the schedule tree with no
// overlap, so resuming from any checkpoint reproduces the uninterrupted
// run's verdict, witness and (dedup off) schedule/truncated counts exactly.
//
// Files are only ever published through trace::atomic_write_file
// (tmp + fsync + rename), so a SIGKILL at any point — including mid-write —
// leaves either the previous checkpoint or the new one, never a torn file.
// See docs/ROBUSTNESS.md for the format grammar and the resume semantics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tso/event.h"
#include "tso/explorer.h"

namespace tpa::trace {

/// One unexplored subtree root: the directive prefix from the initial state
/// plus the scheduler/adversary context at its end. Frontier order is DFS
/// completion order, so replaying nodes front to back preserves the
/// first-in-DFS-order witness rule.
struct CampaignNode {
  tso::ProcId current = tso::kNoProc;  ///< scheduled process after `dirs`
  int preemptions = 0;                 ///< preemption budget remaining
  int crashes_left = 0;                ///< crash budget remaining
  std::vector<tso::Directive> dirs;    ///< prefix from the initial state
};

/// A parsed (or to-be-written) campaign file.
struct Campaign {
  // -- identity -------------------------------------------------------------
  std::string scenario;  ///< registry id; may be empty for raw tso runs
  std::size_t n_procs = 0;
  bool pso = false;
  tso::CrashModel crash_model = tso::CrashModel::kBufferLost;

  // -- the RNG-free explorer configuration ----------------------------------
  // Exactly the ExplorerConfig fields that determine the schedule tree and
  // its verdict. Wall-clock knobs (time budget, checkpoint interval) are
  // deliberately absent: a resume may pick fresh ones without changing what
  // is explored.
  int preemptions = 2;
  std::uint64_t max_steps = 600;
  std::uint64_t max_schedules = 2'000'000;
  int max_crashes = 0;
  tso::DedupMode dedup = tso::DedupMode::kOff;
  tso::SymmetryMode symmetry = tso::SymmetryMode::kOff;
  tso::LivenessMode liveness = tso::LivenessMode::kOff;
  std::uint64_t dedup_max_bytes = ~0ull;
  bool shrink = true;
  bool checkpoint = true;

  // -- aggregate stats of the completed work --------------------------------
  std::uint64_t schedules = 0;
  std::uint64_t steps = 0;
  std::uint64_t truncated = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t restores = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t dedup_states = 0;
  std::uint64_t dedup_evictions = 0;

  // -- terminal state -------------------------------------------------------
  /// True once the exploration finished (exhausted, budget-capped, or
  /// violation found). A complete campaign has an empty frontier and resume
  /// simply returns the recorded result.
  bool complete = false;
  bool exhausted = true;
  /// The recorded outcome: kind, message, witness and (for liveness
  /// verdicts) the lasso cycle entry. Clean unless the campaign ended in a
  /// violation. raw_witness is not persisted — a campaign records only the
  /// final (shrunk) witness.
  tso::Verdict verdict;

  // -- remaining work -------------------------------------------------------
  std::vector<CampaignNode> frontier;  ///< empty iff complete
};

/// The FNV-1a hash over the identity + configuration fields above. Written
/// into the file and re-verified on read, so a campaign resumed against an
/// edited config (or a corrupted file) fails loudly instead of producing a
/// verdict for a different exploration.
std::uint64_t campaign_config_hash(const Campaign& c);

/// Serializes the campaign in the line-oriented v2 text format (grammar in
/// docs/ROBUSTNESS.md). The config-hash line is always recomputed. v2 added
/// the `liveness` config line (part of the hash) and the structured
/// verdict/cycle-start terminal fields.
void write_campaign(std::ostream& os, const Campaign& campaign);

/// Parses write_campaign output; raises CheckFailure on malformed input or
/// a config-hash mismatch. v1 files (no liveness line, pre-verdict terminal
/// fields) are rejected with an explicit stale-version message: their hash
/// does not cover the liveness mode a resume would need.
Campaign read_campaign(std::istream& is);

/// String-based conveniences over the stream versions.
std::string campaign_to_string(const Campaign& campaign);
Campaign campaign_from_string(const std::string& text);

/// Publishes the campaign at `path` via atomic_write_file — a kill at any
/// point leaves the previous checkpoint intact.
void write_campaign_file(const std::string& path, const Campaign& campaign);

/// Strict read of a campaign file; raises CheckFailure when the file is
/// missing or malformed.
Campaign read_campaign_file(const std::string& path);

/// Lenient counterpart: returns false — with a diagnostic in `*error` when
/// given — instead of raising. `*out` is only assigned on success.
bool try_read_campaign_file(const std::string& path, Campaign* out,
                            std::string* error = nullptr);

}  // namespace tpa::trace
