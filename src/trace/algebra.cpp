#include "trace/algebra.h"

namespace tpa::trace {

namespace {

bool event_equal(const Event& a, const Event& b) {
  return a.kind == b.kind && a.proc == b.proc && a.var == b.var &&
         a.value == b.value && a.seq == b.seq;
}

}  // namespace

EventSeq project(const EventSeq& events, const std::vector<bool>& keep) {
  EventSeq out;
  for (const Event& e : events)
    if (keep[static_cast<std::size_t>(e.proc)]) out.push_back(e);
  return out;
}

EventSeq erase_procs(const EventSeq& events, const std::vector<bool>& erase) {
  EventSeq out;
  for (const Event& e : events)
    if (!erase[static_cast<std::size_t>(e.proc)]) out.push_back(e);
  return out;
}

bool is_subexecution(const EventSeq& sub, const EventSeq& super) {
  std::size_t i = 0;
  for (const Event& e : super) {
    if (i == sub.size()) return true;
    if (event_equal(sub[i], e)) ++i;
  }
  return i == sub.size();
}

EventSeq concat(const EventSeq& a, const EventSeq& b) {
  EventSeq out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool same_events(const EventSeq& a, const EventSeq& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!event_equal(a[i], b[i])) return false;
  return true;
}

}  // namespace tpa::trace
