#include "trace/analyzer.h"

#include <algorithm>
#include <sstream>

#include "cost/model.h"
#include "util/check.h"

namespace tpa::trace {

namespace {

/// Offline model of one process' write buffer (var, value, awareness
/// snapshot at issue time).
struct BufEntry {
  VarId var;
  Value value;
  DynBitset aw;
};

void charge_rmrs(EventFacts* f, const cost::RmrFlags& flags) {
  f->rmr_dsm = flags.dsm;
  f->rmr_wt = flags.wt;
  f->rmr_wb = flags.wb;
}

}  // namespace

std::vector<ProcId> Analysis::active() const {
  std::vector<ProcId> out;
  for (std::size_t p = 0; p < n_procs; ++p)
    if (status[p] != Status::kNcs) out.push_back(static_cast<ProcId>(p));
  return out;
}

std::vector<ProcId> Analysis::finished() const {
  std::vector<ProcId> out;
  for (std::size_t p = 0; p < n_procs; ++p)
    if (passages_done[p] > 0) out.push_back(static_cast<ProcId>(p));
  return out;
}

Analysis analyze(const Execution& execution, std::size_t n_procs,
                 const VarLayout& layout) {
  const std::size_t n_vars = layout.owners.size();

  Analysis a;
  a.n_procs = n_procs;
  a.facts.reserve(execution.events.size());
  a.status.assign(n_procs, Status::kNcs);
  a.mode.assign(n_procs, Mode::kRead);
  a.awareness.assign(n_procs, DynBitset(n_procs));
  a.fences_completed.assign(n_procs, 0);
  a.critical_events.assign(n_procs, 0);
  a.passages_done.assign(n_procs, 0);
  a.last_writer.assign(n_vars, tso::kNoProc);
  a.writer_awareness.assign(n_vars, DynBitset(n_procs));
  a.accessed_by.assign(n_vars, {});
  for (std::size_t p = 0; p < n_procs; ++p) a.awareness[p].set(p);

  std::vector<std::vector<BufEntry>> buffers(n_procs);
  std::vector<std::unordered_set<VarId>> remote_reads(n_procs);
  std::vector<cost::CoherenceDirectory> directories(n_vars);

  auto is_remote = [&](ProcId p, VarId v) {
    return layout.owners[static_cast<std::size_t>(v)] != p;
  };

  // Accesses index per-variable state; a var outside the layout would read
  // (or write) past the owner/directory arrays, so fail with coordinates
  // instead.
  auto check_var = [&](const Event& e) {
    TPA_CHECK(e.var != tso::kNoVar && e.var >= 0 &&
                  static_cast<std::size_t>(e.var) < n_vars,
              "event #" << e.seq << " names var " << e.var
                        << " outside the layout (" << n_vars << " vars)");
  };

  for (const Event& e : execution.events) {
    const auto p = static_cast<std::size_t>(e.proc);
    TPA_CHECK(p < n_procs, "event by unknown process p" << e.proc);
    EventFacts f;

    switch (e.kind) {
      case tso::EventKind::kWriteIssue: {
        // Coalesce in place, TSO-style.
        bool replaced = false;
        for (auto& entry : buffers[p]) {
          if (entry.var == e.var) {
            entry.value = e.value;
            entry.aw = a.awareness[p];
            replaced = true;
            break;
          }
        }
        if (!replaced)
          buffers[p].push_back({e.var, e.value, a.awareness[p]});
        break;
      }
      case tso::EventKind::kWriteCommit: {
        // Under TSO commits pop the head; under PSO any buffered variable
        // may commit. The analyzer accepts any buffered entry matching the
        // event (per-variable order is implied by coalescing).
        std::size_t idx = buffers[p].size();
        for (std::size_t i = 0; i < buffers[p].size(); ++i) {
          if (buffers[p][i].var == e.var) {
            idx = i;
            break;
          }
        }
        TPA_CHECK(idx < buffers[p].size(),
                  "commit without a buffered write at event #" << e.seq);
        BufEntry entry = std::move(buffers[p][idx]);
        buffers[p].erase(buffers[p].begin() +
                         static_cast<std::ptrdiff_t>(idx));
        TPA_CHECK(entry.value == e.value,
                  "commit value mismatch at event #" << e.seq);
        check_var(e);
        const auto v = static_cast<std::size_t>(e.var);
        f.accesses_var = true;
        f.remote = is_remote(e.proc, e.var);
        f.critical = f.remote && a.last_writer[v] != e.proc;
        charge_rmrs(&f, directories[v].on_write(e.proc, layout.owners[v]));
        a.last_writer[v] = e.proc;
        a.writer_awareness[v] = std::move(entry.aw);
        a.accessed_by[v].insert(e.proc);
        if (f.critical) a.critical_events[p]++;
        break;
      }
      case tso::EventKind::kRead: {
        Value buffered = 0;
        bool in_buffer = false;
        for (const auto& entry : buffers[p]) {
          if (entry.var == e.var) {
            buffered = entry.value;
            in_buffer = true;
            break;
          }
        }
        if (in_buffer) {
          f.from_buffer = true;
          TPA_CHECK(buffered == e.value,
                    "buffered read value mismatch at event #" << e.seq);
        } else {
          check_var(e);
          const auto v = static_cast<std::size_t>(e.var);
          f.accesses_var = true;
          f.remote = is_remote(e.proc, e.var);
          f.critical = f.remote && remote_reads[p].count(e.var) == 0;
          if (f.remote) remote_reads[p].insert(e.var);
          charge_rmrs(&f, directories[v].on_read(e.proc, layout.owners[v]));
          a.accessed_by[v].insert(e.proc);
          if (a.last_writer[v] != tso::kNoProc) {
            a.awareness[p] |= a.writer_awareness[v];
            a.awareness[p].set(static_cast<std::size_t>(a.last_writer[v]));
          }
          if (f.critical) a.critical_events[p]++;
        }
        break;
      }
      case tso::EventKind::kBeginFence:
        TPA_CHECK(a.mode[p] == Mode::kRead,
                  "BeginFence while already fencing at event #" << e.seq);
        a.mode[p] = Mode::kWrite;
        break;
      case tso::EventKind::kEndFence:
        TPA_CHECK(a.mode[p] == Mode::kWrite,
                  "EndFence without BeginFence at event #" << e.seq);
        TPA_CHECK(buffers[p].empty(),
                  "EndFence with non-empty buffer at event #" << e.seq);
        a.mode[p] = Mode::kRead;
        if (!e.implied_by_cas) a.fences_completed[p]++;
        break;
      case tso::EventKind::kCas: {
        TPA_CHECK(buffers[p].empty(),
                  "CAS with non-empty buffer at event #" << e.seq);
        check_var(e);
        const auto v = static_cast<std::size_t>(e.var);
        f.accesses_var = true;
        f.remote = is_remote(e.proc, e.var);
        std::uint32_t crit = 0;
        if (f.remote && remote_reads[p].count(e.var) == 0) crit++;
        if (f.remote) remote_reads[p].insert(e.var);
        if (e.cas_success && f.remote && a.last_writer[v] != e.proc) crit++;
        f.critical = crit > 0;
        a.critical_events[p] += crit;
        charge_rmrs(&f, e.cas_success
                            ? directories[v].on_write(e.proc, layout.owners[v])
                            : directories[v].on_read(e.proc, layout.owners[v]));
        a.accessed_by[v].insert(e.proc);
        if (a.last_writer[v] != tso::kNoProc) {
          a.awareness[p] |= a.writer_awareness[v];
          a.awareness[p].set(static_cast<std::size_t>(a.last_writer[v]));
        }
        if (e.cas_success) {
          a.last_writer[v] = e.proc;
          a.writer_awareness[v] = a.awareness[p];
        }
        break;
      }
      case tso::EventKind::kEnter:
        TPA_CHECK(a.status[p] == Status::kNcs,
                  "Enter from non-ncs at event #" << e.seq);
        a.status[p] = Status::kEntry;
        break;
      case tso::EventKind::kCs:
        TPA_CHECK(a.status[p] == Status::kEntry,
                  "CS from non-entry at event #" << e.seq);
        a.status[p] = Status::kExit;
        break;
      case tso::EventKind::kExit:
        TPA_CHECK(a.status[p] == Status::kExit,
                  "Exit from non-exit at event #" << e.seq);
        a.status[p] = Status::kNcs;
        a.passages_done[p]++;
        break;
      case tso::EventKind::kCrash:
        // Volatile state gone, mirroring the online observers exactly:
        // un-committed buffered writes vanish (under the flushed model their
        // commits precede this event, so the buffer is already empty),
        // awareness collapses back to {p}, and the crashed process' cache
        // lines and remote-read history are dropped.
        buffers[p].clear();
        a.mode[p] = Mode::kRead;
        a.status[p] = Status::kNcs;
        a.awareness[p].reset();
        a.awareness[p].set(p);
        remote_reads[p].clear();
        for (auto& dir : directories) dir.evict(e.proc);
        break;
      case tso::EventKind::kRecover:
        // The next incarnation starts from the post-crash state; nothing
        // else to track until its first events arrive.
        break;
    }
    a.facts.push_back(std::move(f));
  }
  return a;
}

ConsistencyReport check_consistency(const Execution& execution,
                                    const Analysis& analysis) {
  TPA_CHECK(execution.events.size() == analysis.facts.size(),
            "analysis does not match execution length");
  for (std::size_t i = 0; i < execution.events.size(); ++i) {
    const Event& e = execution.events[i];
    const EventFacts& f = analysis.facts[i];
    if (e.accesses_var != f.accesses_var || e.remote != f.remote ||
        e.critical != f.critical || e.from_buffer != f.from_buffer ||
        e.rmr_dsm != f.rmr_dsm || e.rmr_wt != f.rmr_wt ||
        e.rmr_wb != f.rmr_wb) {
      std::ostringstream os;
      os << "online/offline disagreement at event {" << e.to_string()
         << "}: offline accesses=" << f.accesses_var
         << " remote=" << f.remote << " critical=" << f.critical
         << " from_buffer=" << f.from_buffer << " rmr=" << f.rmr_dsm << "/"
         << f.rmr_wt << "/" << f.rmr_wb;
      return {false, os.str()};
    }
  }
  return {};
}

}  // namespace tpa::trace
