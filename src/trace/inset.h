// IN-set and regularity predicates (Definitions 4, 5, 6 of the paper).
//
// Given an offline Analysis of an execution E and a candidate process set
// INV, these checkers decide:
//   * IN1: no process is aware of an invisible process other than itself;
//   * IN2: every invisible process is in its entry section;
//   * IN4: no event accesses a remote variable owned by an active process;
//   * IN5: if more than one active process accessed v, the last writer of v
//          is not invisible.
// IN3 ("erasure preserves criticality") quantifies over all subsets and all
// erased executions; it is checked dynamically via replay
// (tso::verify_replay_equivalence) by the lower-bound construction, and
// check_in3_subset() exposes the same check for individual subsets here.
//
// regularity(E): Act(E) is an IN-set (Definition 5); semi-regularity drops
// IN5. is_ordered() implements Definition 6 for write-phase executions.
#pragma once

#include <string>
#include <vector>

#include "trace/analyzer.h"
#include "tso/schedule.h"

namespace tpa::trace {

struct InsetReport {
  bool ok = true;
  std::string detail;  ///< first violated condition, human-readable
};

/// Checks IN1, IN2, IN4 and IN5 for `inv` (given as a membership mask over
/// process ids) against the analyzed execution.
InsetReport check_inset_static(const Execution& execution,
                               const Analysis& analysis,
                               const VarLayout& layout,
                               const std::vector<bool>& inv);

/// Checks IN1, IN2 and IN4 only (the semi-regular conditions).
InsetReport check_inset_semi(const Execution& execution,
                             const Analysis& analysis,
                             const VarLayout& layout,
                             const std::vector<bool>& inv);

/// Definition 5: E is regular iff Act(E) satisfies IN1-IN5.
InsetReport check_regular(const Execution& execution, const Analysis& analysis,
                          const VarLayout& layout);

/// Definition 5 (relaxed): E is semi-regular iff Act(E) satisfies IN1-IN4.
InsetReport check_semi_regular(const Execution& execution,
                               const Analysis& analysis,
                               const VarLayout& layout);

/// Definition 6: E is ordered — for every variable v, (a) writer(v) is not
/// active, or (b) the writer is the unique active accessor of v, or (c) E
/// contains a run of consecutive commits to v by all active processes in
/// increasing ID order, none of which completed the surrounding fence.
InsetReport check_ordered(const Execution& execution, const Analysis& analysis,
                          const VarLayout& layout);

/// IN3 for one subset Y: replays the schedule with Y erased and verifies
/// the surviving processes execute the same events with the same
/// criticality. `n_procs`, `config` and `build` must reconstruct the
/// original scenario.
InsetReport check_in3_subset(std::size_t n_procs, tso::SimConfig config,
                             const tso::ScenarioBuilder& build,
                             const Execution& execution,
                             const std::vector<bool>& erase);

}  // namespace tpa::trace
