// Atomic, durable file publication — the one write path every artifact the
// tool leaves behind goes through (witness files, campaign checkpoints,
// bench JSON, finalized JSONL trace streams).
//
// The contract: the final name either holds the complete previous content or
// the complete new content, never a torn mix, even if the writing process is
// SIGKILLed at an arbitrary instruction. Content is written to a sibling
// "<path>.tmp", fsync'd to stable storage *before* the rename, and only then
// renamed over the target — rename(2) is atomic on POSIX, and the fsync
// ensures the data the rename publishes is actually on disk (without it, a
// power loss shortly after the rename can surface a zero-length file).
#pragma once

#include <string>

namespace tpa::trace {

/// Writes `content` to "<path>.tmp", fsyncs it, and renames it over `path`.
/// Raises CheckFailure on any I/O error (the tmp file is removed on
/// failure, so retries start clean).
void atomic_write_file(const std::string& path, const std::string& content);

/// Publishes an already-written temporary file: fsyncs `tmp_path`, then
/// renames it to `path`. For streaming writers (JsonlTraceSink) that build
/// the temporary incrementally and publish once on close. Raises
/// CheckFailure on failure, removing `tmp_path` first.
void fsync_rename(const std::string& tmp_path, const std::string& path);

}  // namespace tpa::trace
