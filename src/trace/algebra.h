// Execution algebra on raw event sequences: projection E|Y, erasure E^{-Y},
// concatenation, and the sub-execution relation F ≤ E.
//
// These are purely syntactic operators on event lists (no re-simulation) —
// exactly the objects Fact 1 of the paper manipulates:
//   1. (E1 E2)^{-Y} = E1^{-Y} E2^{-Y}
//   2. (E^{-Y})^{-Z} = E^{-Y ∪ Z}
// Semantic erasure (producing a *valid* execution, Lemma 1/4) lives in
// tso/schedule.h; the two agree on event sequences when the erased set is
// invisible, which tests/test_algebra.cpp checks.
#pragma once

#include <vector>

#include "tso/event.h"

namespace tpa::trace {

using tso::Event;
using tso::ProcId;

using EventSeq = std::vector<Event>;

/// E | Y — keep only events issued by processes in `keep`.
EventSeq project(const EventSeq& events, const std::vector<bool>& keep);

/// E^{-Y} — remove all events issued by processes in `erase`.
EventSeq erase_procs(const EventSeq& events, const std::vector<bool>& erase);

/// F ≤ E — F is a (possibly non-contiguous) subsequence of E's events.
/// Events are matched by sequence number (Event::seq).
bool is_subexecution(const EventSeq& sub, const EventSeq& super);

/// Concatenation EF.
EventSeq concat(const EventSeq& a, const EventSeq& b);

/// Pointwise equality on (kind, proc, var, value, seq).
bool same_events(const EventSeq& a, const EventSeq& b);

}  // namespace tpa::trace
