#include "trace/atomic_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace tpa::trace {

namespace {

/// fsync through a fresh descriptor: fsync(2) flushes the *file* (inode),
/// not the descriptor, so syncing via a reopened fd covers data written
/// through any earlier stream to the same file.
bool fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  TPA_CHECK(fd >= 0, "atomic write: cannot open '" << tmp
                         << "': " << std::strerror(errno));
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  ok = (::fsync(fd) == 0) && ok;
  ok = (::close(fd) == 0) && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    TPA_FAIL("atomic write: short write or failed fsync on '" << tmp << "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    TPA_FAIL("atomic write: rename '" << tmp << "' -> '" << path
                                      << "' failed: " << std::strerror(err));
  }
}

void fsync_rename(const std::string& tmp_path, const std::string& path) {
  if (!fsync_path(tmp_path)) {
    const int err = errno;
    ::unlink(tmp_path.c_str());
    TPA_FAIL("atomic write: fsync '" << tmp_path
                                     << "' failed: " << std::strerror(err));
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_path.c_str());
    TPA_FAIL("atomic write: rename '" << tmp_path << "' -> '" << path
                                      << "' failed: " << std::strerror(err));
  }
}

}  // namespace tpa::trace
