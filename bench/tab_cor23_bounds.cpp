// COR2/COR3 — the fence-complexity lower-bound tables.
//
// For an f-adaptive algorithm on N processes, Theorem 1 forces i fences
// whenever f(i) <= N^{2^-f(i)} / (f(i)! 4^{f(i)+2i}). This bench evaluates
// the largest such i ("forced fences") in the log2 domain — N is given as
// log2(N), so rows reach N = 2^{2^20} — together with the Corollary 2/3
// closed forms, and cross-checks small rows against exact BigNat
// arithmetic.
#include <cmath>
#include <iostream>

#include "bounds/tradeoff.h"
#include "util/table.h"

using namespace tpa;
using namespace tpa::bounds;

int main() {
  std::puts("== COR2: linear adaptivity f(i) = c*i  =>  Omega(log log N) fences\n");
  {
    TextTable t({"log2 N", "c=1 forced", "c=1 closed", "c=2 forced",
                 "c=2 closed", "c=4 forced", "c=4 closed"});
    for (double log2n :
         {16.0, 64.0, 256.0, 1024.0, 65536.0, 1048576.0, 1073741824.0}) {
      std::vector<std::string> row = {fmt_fixed(log2n, 0)};
      for (double c : {1.0, 2.0, 4.0}) {
        row.push_back(
            std::to_string(forced_fences(linear_adaptivity(c), log2n)));
        row.push_back(fmt_fixed(corollary2_fences(c, log2n), 2));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::puts("\n== COR3: exponential adaptivity f(i) = 2^{c*i}  =>  Omega(log log log N)\n");
  {
    TextTable t({"log2 N", "c=1 forced", "c=1 closed", "c=2 forced",
                 "c=2 closed"});
    for (double log2n :
         {16.0, 256.0, 65536.0, 4294967296.0, 1.8446744073709552e19}) {
      std::vector<std::string> row = {fmt_fixed(log2n, 0)};
      for (double c : {1.0, 2.0}) {
        row.push_back(
            std::to_string(forced_fences(exponential_adaptivity(c), log2n)));
        row.push_back(fmt_fixed(corollary3_fences(c, log2n), 2));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::puts("\n== Exact BigNat cross-check of Theorem 1's condition (small rows)");
  std::puts("lhs = (f * f! * 4^{f+2i})^{2^f};  condition holds iff lhs <= N\n");
  {
    TextTable t({"f", "i", "lhs bits", "min log2 N (log-domain)",
                 "exact @ ceil", "exact @ floor-2"});
    for (std::uint32_t f = 1; f <= 8; ++f) {
      const std::uint32_t i = f;  // linear adaptivity with c=1 at round i=f
      const BigNat lhs = theorem1_lhs_exact(f, i);
      const double ml = min_log2_n(f, static_cast<int>(i));
      const auto up = static_cast<std::uint64_t>(std::ceil(ml)) + 1;
      const auto down = static_cast<std::uint64_t>(std::floor(ml)) - 2;
      t.add_row({std::to_string(f), std::to_string(i),
                 std::to_string(lhs.bit_length()), fmt_fixed(ml, 1),
                 theorem1_condition_exact(f, i, BigNat::pow2(up)) ? "holds"
                                                                  : "FAILS",
                 theorem1_condition_exact(f, i, BigNat::pow2(down))
                     ? "HOLDS?!"
                     : "fails"});
    }
    t.print(std::cout);
  }

  std::puts("\nReading: forced fences grow like log log N for linear f and");
  std::puts("log log log N for exponential f; the exact and log-domain");
  std::puts("evaluations agree at the threshold.");
  return 0;
}
