// PERF2 — parallel schedule exploration (google-benchmark): wall-clock
// scaling of the work-queue explorer on the paper's bakery lock, TSO
// fencing, 3 processes, preemption bound 3 (the smallest bound where the
// schedule tree is deep enough for frontier partitioning to pay off). All
// scenarios come from the public registry (runtime/scenario.h), so the
// benchmarks measure exactly the configurations the tests pin.
//
// BM_ParallelExplore/threads:N reports real time (UseRealTime) for the same
// bounded workload at 1/2/4 worker threads; the `schedules/s` counter is the
// comparable throughput figure. On a multicore host, 2 threads should come
// in at >= 2x the single-thread throughput (the frontier partition is exact,
// so the workers never duplicate or skip subtrees); on a single hardware
// thread the variants time-slice and merely tie. The explored-schedule count
// is identical across thread counts whenever the run is exhausted rather
// than budget-capped.
//
// BM_SleepSets measures what the partial-order reduction buys on the same
// scenario: fewer schedules per exhausted bound, at the price of per-step
// signature bookkeeping. BM_StateDedup does the same for visited-set pruning
// (DedupMode::kState) and its symmetry-canonicalized variant on the
// interchangeable-process ticket lock. BM_FuzzThroughput tracks the
// randomized pipeline (runs/s on a safe lock, i.e. no early exit).
// BM_CheckpointVsReplay pits snapshot/restore at branch points against
// replaying every prefix from the root — same schedule tree, so the
// `events/schedule` counter isolates the redundant re-execution that
// checkpointing eliminates.
//
// Before the google-benchmark suite runs, main() measures two head-to-head
// comparisons on exhausted bounds and writes them for machine consumption by
// CI trend tracking:
//   BENCH_explorer.json        checkpoint vs replay (events_reduction)
//   BENCH_explorer_dedup.json  dedup off vs on across bakery / tournament /
//                              recoverable / ticket+symmetry scopes, each
//                              recording events_reduction and verdicts_match
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/scenario.h"
#include "trace/atomic_io.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/sim.h"
#include "util/check.h"

using namespace tpa;

namespace {

const runtime::Scenario& scenario(const char* name) {
  const runtime::Scenario* s = runtime::find_scenario(name);
  if (s == nullptr) {
    std::fprintf(stderr, "scenario %s missing from the registry\n", name);
    std::abort();
  }
  return *s;
}

void BM_ParallelExplore(benchmark::State& state) {
  const auto& s = scenario("bakery-tso-3p");
  tso::ExplorerConfig cfg;
  cfg.preemptions = 3;
  // The full bound has ~2M schedules (about a minute sequentially); a fixed
  // budget keeps one iteration at a few seconds while giving every thread
  // count the same amount of work to chew through.
  cfg.max_schedules = 100'000;
  cfg.threads = static_cast<int>(state.range(0));
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = s.explore(cfg);
    benchmark::DoNotOptimize(r.verdict.found());
    schedules += r.schedules + r.truncated;
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

void BM_SleepSets(benchmark::State& state) {
  const auto& s = scenario("bakery-tso-3p");
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_schedules = 20'000;
  cfg.sleep_sets = state.range(0) != 0;
  state.SetLabel(cfg.sleep_sets ? "sleep-sets" : "plain");
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = s.explore(cfg);
    benchmark::DoNotOptimize(r.verdict.found());
    schedules += r.schedules + r.truncated;
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

void BM_StateDedup(benchmark::State& state) {
  const auto& s = scenario("ticket-3p");
  tso::ExplorerConfig cfg;
  cfg.preemptions = 1;
  switch (state.range(0)) {
    case 0: state.SetLabel("off"); break;
    case 1:
      cfg.dedup = tso::DedupMode::kState;
      state.SetLabel("state");
      break;
    default:
      cfg.dedup = tso::DedupMode::kState;
      cfg.symmetric_processes = tso::SymmetryMode::kCanonical;
      state.SetLabel("state+symmetry");
      break;
  }
  std::uint64_t steps = 0, schedules = 0;
  for (auto _ : state) {
    const auto r = s.explore(cfg);
    benchmark::DoNotOptimize(r.verdict.found());
    steps += r.steps;
    schedules += r.schedules + r.truncated;
  }
  state.counters["events/schedule"] =
      static_cast<double>(steps) / static_cast<double>(schedules);
}

void BM_FuzzThroughput(benchmark::State& state) {
  const auto& s = scenario("bakery-tso-2p");
  tso::FuzzConfig cfg;
  cfg.seed = 0x5eed;
  cfg.runs = 2'000;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = s.fuzz(cfg);
    benchmark::DoNotOptimize(r.schedule_digest);
    runs += r.schedules;
  }
  state.counters["runs/s"] = benchmark::Counter(static_cast<double>(runs),
                                                benchmark::Counter::kIsRate);
}

void BM_CheckpointVsReplay(benchmark::State& state) {
  const auto& s = scenario("bakery-tso-2p");
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.checkpoint = state.range(0) != 0;
  state.SetLabel(cfg.checkpoint ? "checkpoint" : "replay");
  std::uint64_t events = 0, schedules = 0;
  for (auto _ : state) {
    const auto r = s.explore(cfg);
    benchmark::DoNotOptimize(r.verdict.found());
    events += r.steps;
    schedules += r.schedules + r.truncated;
  }
  state.counters["events/schedule"] =
      static_cast<double>(events) / static_cast<double>(schedules);
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

/// One exhausted explore() in the given mode, timed.
struct ModeResult {
  tso::ExplorerResult result;
  double wall_ms = 0;
};

ModeResult run_mode(const runtime::Scenario& s,
                    const tso::ExplorerConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  ModeResult m;
  m.result = s.explore(cfg);
  m.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return m;
}

/// Best-of-`reps` wall time (the min filters scheduler noise; the counters
/// are deterministic, so any rep's result serves as the representative).
ModeResult run_mode_best_of(const runtime::Scenario& s,
                            const tso::ExplorerConfig& cfg, int reps) {
  ModeResult best = run_mode(s, cfg);
  for (int r = 1; r < reps; ++r) {
    ModeResult m = run_mode(s, cfg);
    if (m.wall_ms < best.wall_ms) best = std::move(m);
  }
  return best;
}

void emit_json(std::ostream& out, const char* mode, const ModeResult& m) {
  out << "    {\"mode\":\"" << mode << "\""
      << ",\"schedules\":" << m.result.schedules
      << ",\"truncated\":" << m.result.truncated
      << ",\"events_executed\":" << m.result.steps
      << ",\"snapshots\":" << m.result.snapshots
      << ",\"restores\":" << m.result.restores
      << ",\"dedup_hits\":" << m.result.dedup_hits
      << ",\"dedup_states\":" << m.result.dedup_states
      << ",\"dedup_entries\":" << m.result.dedup_entries
      << ",\"dedup_bytes\":" << m.result.dedup_bytes
      << ",\"dedup_evictions\":" << m.result.dedup_evictions
      << ",\"wall_ms\":" << m.wall_ms << "}";
}

/// Publishes bench JSON via tmp+fsync+rename (trace/atomic_io.h): an
/// interrupted bench run leaves the previous trend file intact, never a
/// truncated one.
int publish_json(const char* path, const std::string& content) {
  try {
    trace::atomic_write_file(path, content);
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "cannot write %s: %s\n", path, e.what());
    return 1;
  }
  return 0;
}

/// Head-to-head checkpoint-vs-replay run, written to BENCH_explorer.json.
int write_comparison(const char* path) {
  const auto& s = scenario("bakery-tso-2p");
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.checkpoint = false;
  const ModeResult replay = run_mode(s, cfg);
  cfg.checkpoint = true;
  const ModeResult ckpt = run_mode(s, cfg);
  const double ratio =
      static_cast<double>(replay.result.steps) /
      static_cast<double>(ckpt.result.steps ? ckpt.result.steps : 1);

  std::ostringstream out;
  out << "{\n  \"bench\": \"explorer-checkpoint\",\n"
      << "  \"scenario\": \"bakery-tso-2p\",\n  \"preemptions\": 2,\n"
      << "  \"modes\": [\n";
  emit_json(out, "replay", replay);
  out << ",\n";
  emit_json(out, "checkpoint", ckpt);
  out << "\n  ],\n  \"events_reduction\": " << ratio << ",\n"
      << "  \"schedules_match\": "
      << (replay.result.schedules == ckpt.result.schedules ? "true" : "false")
      << "\n}\n";
  if (const int rc = publish_json(path, out.str()); rc != 0) return rc;

  std::printf(
      "checkpoint/restore: %llu events vs %llu replayed (%.2fx reduction), "
      "%llu schedules both modes -> %s\n",
      static_cast<unsigned long long>(ckpt.result.steps),
      static_cast<unsigned long long>(replay.result.steps), ratio,
      static_cast<unsigned long long>(ckpt.result.schedules), path);
  return 0;
}

/// One dedup ablation scope: the scenario plus the bound it runs under.
struct DedupScope {
  const char* scenario;
  int preemptions;
  int max_crashes;
  std::uint64_t max_steps;
  bool symmetry;  ///< canonicalize fingerprints (scenario must declare it)
};

bool same_witness(const std::vector<tso::Directive>& a,
                  const std::vector<tso::Directive>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].kind != b[i].kind || a[i].proc != b[i].proc ||
        a[i].var != b[i].var)
      return false;
  return true;
}

/// Dedup-off vs dedup-on across the scope list, written to
/// BENCH_explorer_dedup.json. `events_reduction` is the executed-machine-
/// event ratio and `wall_ratio` the on/off wall-clock ratio (< 1 means
/// dedup is faster); `verdicts_match` asserts the soundness contract
/// (identical verdict, violation message, witness, and exhaustion) scope by
/// scope. With `max_wall_ratio` >= 0 the run doubles as a regression gate:
/// nonzero exit when any scope's wall_ratio exceeds it.
int write_dedup_comparison(const char* path, int reps,
                           double max_wall_ratio) {
  // Spin-heavy truncated schedules dominate the 3p bakery/tournament trees
  // at the default step cap; capping at 200 keeps both modes exhausted in
  // seconds while preserving the comparison (both modes share the cap).
  const DedupScope scopes[] = {
      {"bakery-tso-3p", 2, 0, 200, false},
      {"tournament-3p", 2, 0, 200, false},
      {"recoverable-2p", 1, 1, 600, false},
      {"ticket-3p", 2, 0, 600, true},
  };

  std::ostringstream out;
  out << "{\n  \"bench\": \"explorer-dedup\",\n  \"scopes\": [\n";
  bool all_match = true;
  bool all_fast = true;
  double best_3p_reduction = 0;
  for (std::size_t i = 0; i < std::size(scopes); ++i) {
    const DedupScope& scope = scopes[i];
    const auto& s = scenario(scope.scenario);
    tso::ExplorerConfig cfg;
    cfg.preemptions = scope.preemptions;
    cfg.max_crashes = scope.max_crashes;
    cfg.max_steps = scope.max_steps;
    const ModeResult off = run_mode_best_of(s, cfg, reps);
    cfg.dedup = tso::DedupMode::kState;
    if (scope.symmetry)
      cfg.symmetric_processes = tso::SymmetryMode::kCanonical;
    const ModeResult on = run_mode_best_of(s, cfg, reps);

    const double ratio =
        static_cast<double>(off.result.steps) /
        static_cast<double>(on.result.steps ? on.result.steps : 1);
    const double wall_ratio =
        on.wall_ms / (off.wall_ms > 0 ? off.wall_ms : 1e-9);
    const bool match =
        off.result.verdict.found() == on.result.verdict.found() &&
        off.result.verdict.message == on.result.verdict.message &&
        same_witness(off.result.verdict.witness, on.result.verdict.witness) &&
        off.result.exhausted == on.result.exhausted;
    all_match = all_match && match;
    const bool fast = max_wall_ratio < 0 || wall_ratio <= max_wall_ratio;
    all_fast = all_fast && fast;
    if (s.n_procs >= 3 && ratio > best_3p_reduction)
      best_3p_reduction = ratio;

    out << "  {\"scenario\":\"" << scope.scenario << "\""
        << ",\"preemptions\":" << scope.preemptions
        << ",\"max_crashes\":" << scope.max_crashes
        << ",\"max_steps\":" << scope.max_steps << ",\"symmetry\":"
        << (scope.symmetry ? "true" : "false") << ",\n   \"modes\": [\n";
    emit_json(out, "off", off);
    out << ",\n";
    emit_json(out, scope.symmetry ? "state+symmetry" : "state", on);
    out << "\n   ],\n   \"events_reduction\": " << ratio
        << ",\n   \"wall_ratio\": " << wall_ratio
        << ",\n   \"verdicts_match\": " << (match ? "true" : "false")
        << "\n  }" << (i + 1 < std::size(scopes) ? "," : "") << "\n";

    std::printf(
        "dedup %-16s pre=%d: %llu events vs %llu (%.2fx reduction), "
        "wall %.0fms vs %.0fms (ratio %.2f%s), verdicts %s\n",
        scope.scenario, scope.preemptions,
        static_cast<unsigned long long>(on.result.steps),
        static_cast<unsigned long long>(off.result.steps), ratio, on.wall_ms,
        off.wall_ms, wall_ratio, fast ? "" : " — TOO SLOW",
        match ? "match" : "DIVERGED");
  }
  out << "  ],\n  \"best_3p_events_reduction\": " << best_3p_reduction
      << ",\n  \"verdicts_match\": " << (all_match ? "true" : "false")
      << ",\n  \"dedup_faster_everywhere\": " << (all_fast ? "true" : "false")
      << "\n}\n";
  if (const int rc = publish_json(path, out.str()); rc != 0) return rc;
  std::printf("dedup ablation -> %s (best 3p reduction %.2fx)\n", path,
              best_3p_reduction);
  return all_match && all_fast ? 0 : 1;
}

/// Liveness-off vs liveness-on (LivenessMode::kCheck) across clean scopes,
/// written to BENCH_explorer_liveness.json. On a clean scope the checker
/// must be a bystander: schedule/truncated counts stay identical (its
/// verifications never fire thanks to the weak-fairness pre-filter) and the
/// per-node progress-key + on-stack-index bookkeeping is the entire cost —
/// `wall_ratio` pins it. With `max_wall_ratio` >= 0 the run doubles as a
/// regression gate: nonzero exit when any scope exceeds it (the perf-smoke
/// budget is 1.10, i.e. <= 10% overhead). A final detection scope records
/// the tas-loop-2p starvation lasso end-to-end (found + shrunk), ungated on
/// wall time.
int write_liveness_comparison(const char* path, int reps,
                              double max_wall_ratio) {
  const DedupScope scopes[] = {
      {"bakery-tso-3p", 2, 0, 200, false},
      {"tournament-3p", 2, 0, 200, false},
      {"ticket-3p", 2, 0, 600, false},
  };

  std::ostringstream out;
  out << "{\n  \"bench\": \"explorer-liveness\",\n  \"scopes\": [\n";
  bool all_clean = true;
  bool all_fast = true;
  for (std::size_t i = 0; i < std::size(scopes); ++i) {
    const DedupScope& scope = scopes[i];
    const auto& s = scenario(scope.scenario);
    tso::ExplorerConfig cfg;
    cfg.preemptions = scope.preemptions;
    cfg.max_steps = scope.max_steps;
    cfg.dedup = tso::DedupMode::kState;
    tso::ExplorerConfig cfg_on = cfg;
    cfg_on.liveness = tso::LivenessMode::kCheck;
    // The gated statistic is the *median of per-pair ratios*: each rep runs
    // off then on back to back and contributes one on/off ratio, so slow
    // load drift cancels inside the pair, and a load spike that lands on a
    // couple of pairs is discarded by the median — where a ratio of
    // best-of-N minima lets one spiked side bias the whole scope.
    ModeResult off = run_mode(s, cfg);
    ModeResult on = run_mode(s, cfg_on);
    std::vector<double> ratios{on.wall_ms /
                               (off.wall_ms > 0 ? off.wall_ms : 1e-9)};
    for (int r = 1; r < reps; ++r) {
      ModeResult o = run_mode(s, cfg);
      ModeResult m = run_mode(s, cfg_on);
      ratios.push_back(m.wall_ms / (o.wall_ms > 0 ? o.wall_ms : 1e-9));
      if (o.wall_ms < off.wall_ms) off = std::move(o);
      if (m.wall_ms < on.wall_ms) on = std::move(m);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    const double wall_ratio = ratios[ratios.size() / 2];
    const bool clean = !off.result.verdict.found() &&
                       !on.result.verdict.found() &&
                       off.result.schedules == on.result.schedules &&
                       off.result.truncated == on.result.truncated;
    all_clean = all_clean && clean;
    const bool fast = max_wall_ratio < 0 || wall_ratio <= max_wall_ratio;
    all_fast = all_fast && fast;

    out << "  {\"scenario\":\"" << scope.scenario << "\""
        << ",\"preemptions\":" << scope.preemptions
        << ",\"max_steps\":" << scope.max_steps << ",\n   \"modes\": [\n";
    emit_json(out, "off", off);
    out << ",\n";
    emit_json(out, "check", on);
    out << "\n   ],\n   \"wall_ratio\": " << wall_ratio
        << ",\n   \"counts_match\": " << (clean ? "true" : "false") << "\n  },"
        << "\n";

    std::printf(
        "liveness %-16s pre=%d: wall %.0fms vs %.0fms (ratio %.2f%s), "
        "counts %s\n",
        scope.scenario, scope.preemptions, on.wall_ms, off.wall_ms,
        wall_ratio, fast ? "" : " — TOO SLOW", clean ? "match" : "DIVERGED");
  }

  // Detection end-to-end: the unfair spin lock's starvation lasso is found,
  // shrunk, and carries a valid cycle marker.
  const auto& tas = scenario("tas-loop-2p");
  tso::ExplorerConfig detect;
  detect.preemptions = 4;
  detect.dedup = tso::DedupMode::kState;
  detect.liveness = tso::LivenessMode::kCheck;
  const ModeResult found = run_mode_best_of(tas, detect, reps);
  const bool starved =
      found.result.verdict.kind == tso::VerdictKind::kStarvation &&
      found.result.verdict.is_lasso() &&
      found.result.verdict.cycle_start < found.result.verdict.witness.size();
  all_clean = all_clean && starved;
  out << "  {\"scenario\":\"tas-loop-2p\",\"preemptions\":4,\"modes\": [\n";
  emit_json(out, "detect", found);
  out << "\n   ],\n   \"verdict\":\""
      << tso::to_string(found.result.verdict.kind)
      << "\",\n   \"witness_directives\":"
      << found.result.verdict.witness.size()
      << ",\n   \"cycle_start\":" << found.result.verdict.cycle_start
      << "\n  }\n";
  out << "  ],\n  \"starvation_found\": " << (starved ? "true" : "false")
      << ",\n  \"clean_counts_match\": " << (all_clean ? "true" : "false")
      << ",\n  \"within_budget\": " << (all_fast ? "true" : "false")
      << "\n}\n";
  if (const int rc = publish_json(path, out.str()); rc != 0) return rc;
  std::printf("liveness overhead -> %s (starvation lasso %s, %zu directives)\n",
              path, starved ? "found" : "MISSING",
              found.result.verdict.witness.size());
  return all_clean && all_fast ? 0 : 1;
}

}  // namespace

BENCHMARK(BM_ParallelExplore)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SleepSets)
    ->ArgName("sleep")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StateDedup)
    ->ArgName("dedup")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FuzzThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointVsReplay)
    ->ArgName("ckpt")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Gate mode (the `perf-smoke` ctest): only the dedup ablation runs, and
  // any scope where dedup is slower wall-clock than raw enumeration fails
  // the run. The generous 1.0x default just pins "dedup must not lose";
  // best-of-3 per mode per scope keeps one noisy scheduler slice from
  // failing the gate.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--dedup-gate";
    if (arg.rfind(prefix, 0) != 0) continue;
    double threshold = 1.0;
    if (arg.size() > prefix.size() && arg[prefix.size()] == '=')
      threshold = std::atof(arg.c_str() + prefix.size() + 1);
    return write_dedup_comparison("BENCH_explorer_dedup.json", /*reps=*/3,
                                  threshold);
  }
  // Same shape for the liveness checker (perf.LivenessWallClockGate): clean
  // scopes must stay within the overhead budget, and the detection scope
  // must produce the starvation lasso.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--liveness-gate";
    if (arg.rfind(prefix, 0) != 0) continue;
    double threshold = 1.10;
    if (arg.size() > prefix.size() && arg[prefix.size()] == '=')
      threshold = std::atof(arg.c_str() + prefix.size() + 1);
    // 5 interleaved reps per scope: the gate compares ~5% real overhead
    // against a 10% budget, so it needs tighter min-estimates than the
    // ungated trend run below.
    return write_liveness_comparison("BENCH_explorer_liveness.json",
                                     /*reps=*/5, threshold);
  }

  if (const int rc = write_comparison("BENCH_explorer.json"); rc != 0)
    return rc;
  if (const int rc = write_dedup_comparison("BENCH_explorer_dedup.json",
                                            /*reps=*/3, /*max_wall_ratio=*/-1);
      rc != 0)
    return rc;
  if (const int rc =
          write_liveness_comparison("BENCH_explorer_liveness.json",
                                    /*reps=*/3, /*max_wall_ratio=*/-1);
      rc != 0)
    return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
