// PERF2 — parallel schedule exploration (google-benchmark): wall-clock
// scaling of the work-queue explorer on the paper's bakery lock, TSO
// fencing, 3 processes, preemption bound 3 (the smallest bound where the
// schedule tree is deep enough for frontier partitioning to pay off).
//
// BM_ParallelExplore/threads:N reports real time (UseRealTime) for the same
// bounded workload at 1/2/4 worker threads; the `schedules/s` counter is the
// comparable throughput figure. On a multicore host, 2 threads should come
// in at >= 2x the single-thread throughput (the frontier partition is exact,
// so the workers never duplicate or skip subtrees); on a single hardware
// thread the variants time-slice and merely tie. The explored-schedule count
// is identical across thread counts whenever the run is exhausted rather
// than budget-capped.
//
// BM_SleepSets measures what the partial-order reduction buys on the same
// scenario: fewer schedules per exhausted bound, at the price of per-step
// signature bookkeeping. BM_FuzzThroughput tracks the randomized pipeline
// (runs/s on a safe lock, i.e. no early exit). BM_CheckpointVsReplay pits
// snapshot/restore at branch points against replaying every prefix from the
// root — same schedule tree, so the `events/schedule` counter isolates the
// redundant re-execution that checkpointing eliminates.
//
// Before the google-benchmark suite runs, main() measures the checkpoint
// win head-to-head on an exhausted bound and writes the numbers to
// BENCH_explorer.json (events executed, schedules, wall ms per mode) for
// machine consumption by CI trend tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "algos/bakery.h"
#include "algos/zoo.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/sim.h"

using namespace tpa;

namespace {

tso::ScenarioBuilder bakery_tso(int n) {
  return [n](tso::Simulator& sim) {
    auto lock =
        std::make_shared<algos::BakeryLock>(sim, n, algos::BakeryFencing::kTso);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
}

void BM_ParallelExplore(benchmark::State& state) {
  const auto build = bakery_tso(3);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 3;
  // The full bound has ~2M schedules (about a minute sequentially); a fixed
  // budget keeps one iteration at a few seconds while giving every thread
  // count the same amount of work to chew through.
  cfg.max_schedules = 100'000;
  cfg.threads = static_cast<int>(state.range(0));
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = tso::explore(3, {}, build, cfg);
    benchmark::DoNotOptimize(r.violation_found);
    schedules += r.schedules + r.truncated;
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

void BM_SleepSets(benchmark::State& state) {
  const auto build = bakery_tso(3);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_schedules = 20'000;
  cfg.sleep_sets = state.range(0) != 0;
  state.SetLabel(cfg.sleep_sets ? "sleep-sets" : "plain");
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = tso::explore(3, {}, build, cfg);
    benchmark::DoNotOptimize(r.violation_found);
    schedules += r.schedules + r.truncated;
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

void BM_FuzzThroughput(benchmark::State& state) {
  const auto build = bakery_tso(2);
  tso::FuzzConfig cfg;
  cfg.seed = 0x5eed;
  cfg.runs = 2'000;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = tso::fuzz(2, {}, build, cfg);
    benchmark::DoNotOptimize(r.schedule_digest);
    runs += r.runs;
  }
  state.counters["runs/s"] = benchmark::Counter(static_cast<double>(runs),
                                                benchmark::Counter::kIsRate);
}

void BM_CheckpointVsReplay(benchmark::State& state) {
  const auto build = bakery_tso(2);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.checkpoint = state.range(0) != 0;
  state.SetLabel(cfg.checkpoint ? "checkpoint" : "replay");
  std::uint64_t events = 0, schedules = 0;
  for (auto _ : state) {
    const auto r = tso::explore(2, {}, build, cfg);
    benchmark::DoNotOptimize(r.violation_found);
    events += r.events_executed;
    schedules += r.schedules + r.truncated;
  }
  state.counters["events/schedule"] =
      static_cast<double>(events) / static_cast<double>(schedules);
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

/// One exhausted explore() in the given mode, timed.
struct ModeResult {
  tso::ExplorerResult result;
  double wall_ms = 0;
};

ModeResult run_mode(bool checkpoint) {
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.checkpoint = checkpoint;
  const auto t0 = std::chrono::steady_clock::now();
  ModeResult m;
  m.result = tso::explore(2, {}, bakery_tso(2), cfg);
  m.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return m;
}

void emit_json(std::ostream& out, const char* mode, const ModeResult& m) {
  out << "    {\"mode\":\"" << mode << "\""
      << ",\"schedules\":" << m.result.schedules
      << ",\"truncated\":" << m.result.truncated
      << ",\"events_executed\":" << m.result.events_executed
      << ",\"snapshots\":" << m.result.snapshots
      << ",\"restores\":" << m.result.restores << ",\"wall_ms\":" << m.wall_ms
      << "}";
}

/// Head-to-head checkpoint-vs-replay run, written to BENCH_explorer.json.
int write_comparison(const char* path) {
  const ModeResult replay = run_mode(false);
  const ModeResult ckpt = run_mode(true);
  const double ratio =
      static_cast<double>(replay.result.events_executed) /
      static_cast<double>(ckpt.result.events_executed ? ckpt.result.events_executed : 1);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << "{\n  \"bench\": \"explorer-checkpoint\",\n"
      << "  \"scenario\": \"bakery-tso-2p\",\n  \"preemptions\": 2,\n"
      << "  \"modes\": [\n";
  emit_json(out, "replay", replay);
  out << ",\n";
  emit_json(out, "checkpoint", ckpt);
  out << "\n  ],\n  \"events_reduction\": " << ratio << ",\n"
      << "  \"schedules_match\": "
      << (replay.result.schedules == ckpt.result.schedules ? "true" : "false")
      << "\n}\n";

  std::printf(
      "checkpoint/restore: %llu events vs %llu replayed (%.2fx reduction), "
      "%llu schedules both modes -> %s\n",
      static_cast<unsigned long long>(ckpt.result.events_executed),
      static_cast<unsigned long long>(replay.result.events_executed), ratio,
      static_cast<unsigned long long>(ckpt.result.schedules), path);
  return 0;
}

}  // namespace

BENCHMARK(BM_ParallelExplore)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SleepSets)
    ->ArgName("sleep")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FuzzThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointVsReplay)
    ->ArgName("ckpt")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  if (const int rc = write_comparison("BENCH_explorer.json"); rc != 0)
    return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
