// PERF2 — parallel schedule exploration (google-benchmark): wall-clock
// scaling of the work-queue explorer on the paper's bakery lock, TSO
// fencing, 3 processes, preemption bound 3 (the smallest bound where the
// schedule tree is deep enough for frontier partitioning to pay off).
//
// BM_ParallelExplore/threads:N reports real time (UseRealTime) for the same
// bounded workload at 1/2/4 worker threads; the `schedules/s` counter is the
// comparable throughput figure. On a multicore host, 2 threads should come
// in at >= 2x the single-thread throughput (the frontier partition is exact,
// so the workers never duplicate or skip subtrees); on a single hardware
// thread the variants time-slice and merely tie. The explored-schedule count
// is identical across thread counts whenever the run is exhausted rather
// than budget-capped.
//
// BM_SleepSets measures what the partial-order reduction buys on the same
// scenario: fewer schedules per exhausted bound, at the price of per-step
// signature bookkeeping. BM_FuzzThroughput tracks the randomized pipeline
// (runs/s on a safe lock, i.e. no early exit).
#include <benchmark/benchmark.h>

#include <memory>

#include "algos/bakery.h"
#include "algos/zoo.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/sim.h"

using namespace tpa;

namespace {

tso::ScenarioBuilder bakery_tso(int n) {
  return [n](tso::Simulator& sim) {
    auto lock =
        std::make_shared<algos::BakeryLock>(sim, n, algos::BakeryFencing::kTso);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
}

void BM_ParallelExplore(benchmark::State& state) {
  const auto build = bakery_tso(3);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 3;
  // The full bound has ~2M schedules (about a minute sequentially); a fixed
  // budget keeps one iteration at a few seconds while giving every thread
  // count the same amount of work to chew through.
  cfg.max_schedules = 100'000;
  cfg.threads = static_cast<int>(state.range(0));
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = tso::explore(3, {}, build, cfg);
    benchmark::DoNotOptimize(r.violation_found);
    schedules += r.schedules + r.truncated;
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

void BM_SleepSets(benchmark::State& state) {
  const auto build = bakery_tso(3);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_schedules = 20'000;
  cfg.sleep_sets = state.range(0) != 0;
  state.SetLabel(cfg.sleep_sets ? "sleep-sets" : "plain");
  std::uint64_t schedules = 0;
  for (auto _ : state) {
    const auto r = tso::explore(3, {}, build, cfg);
    benchmark::DoNotOptimize(r.violation_found);
    schedules += r.schedules + r.truncated;
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

void BM_FuzzThroughput(benchmark::State& state) {
  const auto build = bakery_tso(2);
  tso::FuzzConfig cfg;
  cfg.seed = 0x5eed;
  cfg.runs = 2'000;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = tso::fuzz(2, {}, build, cfg);
    benchmark::DoNotOptimize(r.schedule_digest);
    runs += r.runs;
  }
  state.counters["runs/s"] = benchmark::Counter(static_cast<double>(runs),
                                                benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_ParallelExplore)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SleepSets)
    ->ArgName("sleep")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FuzzThroughput)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
