// FIG1 — reproduces the structure of Figure 1: one inductive step of the
// lower-bound construction (read phase -> write phase -> regularization,
// with erasures), shown as a phase-by-phase log against the adaptive
// active-set bakery, plus a per-N summary.
#include <cstdio>
#include <iostream>

#include "algos/zoo.h"
#include "lowerbound/construction.h"
#include "util/table.h"

using namespace tpa;
using lowerbound::Construction;
using lowerbound::ConstructionConfig;
using tso::ScenarioBuilder;
using tso::Simulator;

namespace {

ScenarioBuilder builder(const std::string& lock, int n) {
  const auto& f = algos::lock_factory(lock);
  return [&f, n](Simulator& sim) {
    auto l = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), l, 1));
  };
}

}  // namespace

int main() {
  std::puts("== FIG1: structure of the inductive construction (paper Fig. 1)");
  std::puts("Adversary vs adaptive-bakery; every phase verified against");
  std::puts("Definitions 4-6 and every erasure against Lemma 4.\n");

  {
    const int n = 16;
    Construction c(n, builder("adaptive-bakery", n), {});
    const auto r = c.run();
    std::printf("-- detailed phase log, N=%d --\n", n);
    TextTable t({"round", "phase", "case", "act before", "act after",
                 "erased", "events"});
    for (const auto& ph : r.phases)
      t.add_row({std::to_string(ph.round), std::string(1, ph.phase),
                 ph.case_name, std::to_string(ph.active_before),
                 std::to_string(ph.active_after), std::to_string(ph.erased),
                 std::to_string(ph.events_after)});
    t.print(std::cout);
    std::printf("invariants verified: %s\n\n", r.invariants_ok ? "yes" : "NO");
  }

  std::puts("-- one full inductive step against plain bakery, N=16 --");
  std::puts("(read phase Case I -> write phase Cases II/I -> regularization");
  std::puts(" erases all rivals: the non-adaptive escape hatch)");
  {
    const int n = 16;
    Construction c(n, builder("bakery", n), {});
    const auto r = c.run();
    TextTable t({"round", "phase", "case", "act before", "act after",
                 "erased", "events"});
    for (const auto& ph : r.phases)
      t.add_row({std::to_string(ph.round), std::string(1, ph.phase),
                 ph.case_name, std::to_string(ph.active_before),
                 std::to_string(ph.active_after), std::to_string(ph.erased),
                 std::to_string(ph.events_after)});
    t.print(std::cout);
    std::printf("invariants verified: %s\n\n", r.invariants_ok ? "yes" : "NO");
  }

  std::puts("-- summary across N (adaptive-bakery) --");
  TextTable s({"N", "rounds", "finished", "final active", "min barriers",
               "events", "replays"});
  for (int n : {16, 32, 64, 128}) {
    Construction c(static_cast<std::size_t>(n),
                   builder("adaptive-bakery", n), {});
    const auto r = c.run();
    s.add_row({std::to_string(n), std::to_string(r.rounds),
               std::to_string(r.finished), std::to_string(r.final_active),
               std::to_string(r.min_barriers_active),
               std::to_string(r.total_events), std::to_string(r.replays)});
  }
  s.print(std::cout);
  return 0;
}
