// THM3 — Theorem 3's guaranteed active-set size versus the measured
// survivors of the executable construction.
//
//   |Act(H_i)| >= N^{2^-l} / (l! * 4^{l+2i})
//
// The analytic bound is a worst-case guarantee over all f-adaptive
// algorithms; the measured survivor counts for our concrete locks must lie
// at or above it (for the adaptive lock, far above: its CAS-contended
// rounds lose only one process per round).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "algos/zoo.h"
#include "bounds/tradeoff.h"
#include "lowerbound/construction.h"
#include "util/table.h"

using namespace tpa;
using lowerbound::Construction;
using tso::ScenarioBuilder;
using tso::Simulator;

namespace {

// Survivors after each completed round (phase records 'X' or 'C' close a
// round).
std::vector<std::size_t> survivors_per_round(
    const lowerbound::ConstructionResult& r) {
  std::vector<std::size_t> out;
  int last_round = 0;
  for (const auto& ph : r.phases) {
    if ((ph.phase == 'X' || ph.phase == 'C') && ph.round > last_round) {
      out.push_back(ph.active_after);
      last_round = ph.round;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::puts("== THM3: measured survivors per inductive round vs the analytic bound");
  std::puts("bound(i) = N^(2^-l) / (l! 4^(l+2i)), evaluated with l = i");
  std::puts("(each round of our adaptive run adds one critical CAS event).\n");

  for (int n : {32, 128, 512}) {
    const auto& f = algos::lock_factory("adaptive-bakery");
    ScenarioBuilder build = [&f, n](Simulator& sim) {
      auto l = f.make(sim, n);
      for (int p = 0; p < n; ++p)
        sim.spawn(p, algos::run_passages(sim.proc(p), l, 1));
    };
    lowerbound::ConstructionConfig cfg;
    cfg.max_rounds = 8;
    cfg.verify_invariants = n <= 128;  // keep the big run fast
    Construction c(static_cast<std::size_t>(n), build, cfg);
    const auto r = c.run();
    const auto measured = survivors_per_round(r);

    std::printf("-- N = %d (adaptive-bakery, verified=%s) --\n", n,
                cfg.verify_invariants ? "yes" : "no");
    TextTable t({"round i", "measured |Act|", "analytic bound",
                 "log2 bound"});
    const double log2n = std::log2(static_cast<double>(n));
    for (std::size_t i = 0; i < measured.size(); ++i) {
      const double lb = bounds::log2_act_lower_bound(
          static_cast<double>(i + 1), static_cast<int>(i + 1), log2n);
      const double bound = lb <= 0 ? 0.0 : std::exp2(lb);
      t.add_row({std::to_string(i + 1), std::to_string(measured[i]),
                 fmt_fixed(std::max(0.0, bound), 2), fmt_fixed(lb, 2)});
    }
    t.print(std::cout);
    std::puts("");
  }
  std::puts("-- the analytic guarantee at paper-scale N (no simulation) --");
  std::puts("log2 |Act(H_i)| >= 2^-l log2 N - log2(l!) - 2(l+2i), with l = i:\n");
  TextTable big({"log2 N", "i=1", "i=2", "i=3", "i=4", "i=6", "i=8"});
  for (double log2n : {1024.0, 65536.0, 1048576.0, 16777216.0, 1073741824.0}) {
    std::vector<std::string> row = {fmt_fixed(log2n, 0)};
    for (int i : {1, 2, 3, 4, 6, 8}) {
      const double lb = bounds::log2_act_lower_bound(i, i, log2n);
      row.push_back(fmt_fixed(lb, 1));
    }
    big.add_row(row);
  }
  big.print(std::cout);
  std::puts("(positive entries: that many *bits* of processes are guaranteed");
  std::puts(" to survive round i — e.g. log2N=2^30 still guarantees 2^4e6");
  std::puts(" survivors after 8 rounds.)\n");

  std::puts("Reading: at simulator-scale N the analytic guarantee is loose");
  std::puts("(it shrinks doubly exponentially); the measured adaptive run");
  std::puts("keeps nearly all processes because contended CAS rounds cost");
  std::puts("only the sacrificed winner — the bound is respected everywhere.");
  return 0;
}
