// RMR — remote-memory-reference accounting behind Definition 2.
//
// Mean RMRs per passage for the full zoo as n grows, under the three cost
// models the paper covers: DSM, CC write-through, CC write-back. Shows the
// classic asymmetries (MCS is local-spin in DSM; CLH only under CC;
// bakery's Θ(n) scans dominate in every model).
#include <iostream>

#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"
#include "util/table.h"

using namespace tpa;
using tso::Simulator;

namespace {

struct Rmrs {
  double dsm = 0, wt = 0, wb = 0;
};

Rmrs measure(const algos::LockFactory& f, int n, std::uint64_t seed) {
  Simulator sim(static_cast<std::size_t>(n), {.track_awareness = false});
  auto lock = f.make(sim, n);
  const int passages = 2;
  for (int p = 0; p < n; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
  Rng rng(seed);
  tso::run_random(sim, rng, 0.3, 200'000'000);

  Rmrs r;
  std::size_t count = 0;
  for (int p = 0; p < n; ++p) {
    for (const auto& st : sim.proc(p).finished_passages()) {
      r.dsm += st.rmr_dsm;
      r.wt += st.rmr_wt;
      r.wb += st.rmr_wb;
      ++count;
    }
  }
  if (count) {
    r.dsm /= static_cast<double>(count);
    r.wt /= static_cast<double>(count);
    r.wb /= static_cast<double>(count);
  }
  return r;
}

}  // namespace

int main() {
  std::puts("== RMR: mean RMRs per passage, all n processes contending\n");
  for (const auto& f : algos::lock_zoo()) {
    TextTable t({"n", "DSM", "CC write-through", "CC write-back"});
    for (int n : {2, 4, 8, 16, 32}) {
      const Rmrs r = measure(f, n, 7);
      t.add_row({std::to_string(n), fmt_fixed(r.dsm, 1), fmt_fixed(r.wt, 1),
                 fmt_fixed(r.wb, 1)});
    }
    std::printf("-- %s --\n", f.name.c_str());
    t.print(std::cout);
    std::puts("");
  }
  std::puts("Reading: MCS spins on variables in the waiter's own DSM segment");
  std::puts("(flat DSM column); CLH spins on the predecessor's node (flat");
  std::puts("only under CC); spin locks burn unbounded remote reads in DSM;");
  std::puts("the bakery family's scans grow linearly in every model.");
  return 0;
}
