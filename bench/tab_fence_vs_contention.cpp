// SEP — the adaptive/non-adaptive separation, measured.
//
// For each lock, k of n=64 processes perform passages under a randomized
// TSO schedule; we report per-passage barriers (fences + CAS) and critical
// events as functions of total contention k. Adaptive algorithms' critical
// events track k; non-adaptive ones pay Θ(n) regardless. Barriers are flat
// for the bakery family (the paper's "cheap fences" side) and spike for
// the adaptive lock's registration (its "price").
#include <algorithm>
#include <iostream>

#include "algos/zoo.h"
#include "bounds/estimate.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"
#include "util/table.h"

using namespace tpa;
using tso::Simulator;

namespace {

struct Costs {
  double mean_barriers = 0, max_barriers = 0;
  double mean_critical = 0, max_critical = 0;
};

Costs measure(const algos::LockFactory& f, int n, int k, int passages,
              std::uint64_t seed) {
  Simulator sim(static_cast<std::size_t>(n), {.track_awareness = false});
  auto lock = f.make(sim, n);
  for (int p = 0; p < k; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
  Rng rng(seed);
  tso::run_random(sim, rng, 0.3, 200'000'000);

  Costs c;
  std::size_t count = 0;
  for (int p = 0; p < k; ++p) {
    for (const auto& st : sim.proc(p).finished_passages()) {
      const double barriers = st.barriers();
      const double critical = st.critical;
      c.mean_barriers += barriers;
      c.mean_critical += critical;
      c.max_barriers = std::max(c.max_barriers, barriers);
      c.max_critical = std::max(c.max_critical, critical);
      ++count;
    }
  }
  if (count) {
    c.mean_barriers /= static_cast<double>(count);
    c.mean_critical /= static_cast<double>(count);
  }
  return c;
}

}  // namespace

int main() {
  const int n = 64;
  const int passages = 2;
  std::printf(
      "== SEP: per-passage cost vs total contention k (arena n=%d, %d "
      "passages, random TSO schedule)\n\n",
      n, passages);

  for (const auto& f : algos::lock_zoo()) {
    TextTable t({"k", "barriers mean", "barriers max", "critical mean",
                 "critical max"});
    std::vector<bounds::Sample> vs_k;
    for (int k : {1, 2, 4, 8, 16, 32, 64}) {
      const Costs c = measure(f, n, k, passages, 42 + static_cast<std::uint64_t>(k));
      vs_k.push_back({static_cast<double>(k), c.mean_critical});
      t.add_row({std::to_string(k), fmt_fixed(c.mean_barriers, 2),
                 fmt_fixed(c.max_barriers, 0), fmt_fixed(c.mean_critical, 2),
                 fmt_fixed(c.max_critical, 0)});
    }
    // Empirical adaptivity classification: work vs k above, work vs n at
    // fixed k=4 below.
    std::vector<bounds::Sample> vs_n;
    for (int arena : {8, 16, 32, 64}) {
      const Costs c = measure(f, arena, std::min(4, arena), passages, 7);
      vs_n.push_back({static_cast<double>(arena), c.mean_critical});
    }
    const auto cls = bounds::classify_adaptivity(vs_k, vs_n);
    std::printf("-- %s (declared %s; measured %s, k-exp %.2f, n-exp %.2f) --\n",
                f.name.c_str(), f.adaptive ? "adaptive" : "non-adaptive",
                bounds::to_string(cls), bounds::growth_exponent(vs_k),
                bounds::growth_exponent(vs_n));
    t.print(std::cout);
    std::puts("");
  }

  std::puts("Reading: bakery/tournament/lamport-fast keep critical events at");
  std::puts("Θ(n) for every k (non-adaptive); adaptive-bakery's critical");
  std::puts("events track k but its max barriers include the Θ(k)");
  std::puts("registration CAS — the separation Corollary 1 proves inherent.");
  return 0;
}
