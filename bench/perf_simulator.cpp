// PERF1 — simulator throughput (google-benchmark): events/second for each
// zoo lock under round-robin and randomized scheduling, and the cost of
// awareness tracking / trace recording.
#include <benchmark/benchmark.h>

#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

using namespace tpa;
using tso::SimConfig;
using tso::Simulator;

namespace {

void run_one(const algos::LockFactory& f, int n, int passages, SimConfig cfg,
             bool random_sched, benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Simulator sim(static_cast<std::size_t>(n), cfg);
    auto lock = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
    if (random_sched) {
      Rng rng(7);
      tso::run_random(sim, rng, 0.3, 100'000'000);
    } else {
      tso::run_round_robin(sim, 100'000'000);
    }
    // Counted by the core, so the lean/bare variants (no TraceRecorder)
    // report a real rate instead of zero.
    events += sim.events_executed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_RoundRobin(benchmark::State& state) {
  const auto& f = algos::lock_zoo()[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(f.name);
  run_one(f, 8, 3, {}, false, state);
}

void BM_Random(benchmark::State& state) {
  const auto& f = algos::lock_zoo()[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(f.name);
  run_one(f, 8, 3, {}, true, state);
}

void BM_NoTracking(benchmark::State& state) {
  const auto& f = algos::lock_zoo()[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(f.name + "/lean");
  SimConfig cfg;
  cfg.track_awareness = false;
  cfg.record_trace = false;
  run_one(f, 8, 3, cfg, true, state);
}

void BM_BareCore(benchmark::State& state) {
  // Every observer off: the naked TSO state machine, the explorer's hot
  // configuration (exclusion violations still surface as CheckFailure from
  // whatever the harness chooses to attach — here, nothing).
  const auto& f = algos::lock_zoo()[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(f.name + "/bare");
  SimConfig cfg;
  cfg.track_awareness = false;
  cfg.record_trace = false;
  cfg.track_costs = false;
  cfg.check_exclusion = false;
  run_one(f, 8, 3, cfg, true, state);
}

}  // namespace

BENCHMARK(BM_RoundRobin)->DenseRange(0, 11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random)->DenseRange(0, 11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoTracking)->DenseRange(0, 11)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BareCore)->DenseRange(0, 11)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
