// ABLATION — engineering costs of the executable construction.
//
// DESIGN.md calls out two implementation choices: (a) erasure realized by
// full deterministic replay (correct by Lemma 4, but O(|E|) per erasure)
// and (b) per-phase invariant verification with the offline analyzer. This
// bench quantifies both: wall time and event counts of the construction
// with verification on/off, across N, for a replay-heavy target (bakery —
// its regularization erases almost everyone) and a replay-free target
// (adaptive-bakery — its CAS rounds erase nobody).
#include <chrono>
#include <iostream>

#include "algos/zoo.h"
#include "lowerbound/construction.h"
#include "util/table.h"

using namespace tpa;
using lowerbound::Construction;
using lowerbound::ConstructionConfig;
using tso::ScenarioBuilder;
using tso::Simulator;

namespace {

struct Run {
  double ms = 0;
  lowerbound::ConstructionResult r;
};

Run run_once(const std::string& lock, int n, bool verify) {
  const auto& f = algos::lock_factory(lock);
  ScenarioBuilder build = [&f, n](Simulator& sim) {
    auto l = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), l, 1));
  };
  ConstructionConfig cfg;
  cfg.verify_invariants = verify;
  const auto t0 = std::chrono::steady_clock::now();
  Construction c(static_cast<std::size_t>(n), build, cfg);
  Run out;
  out.r = c.run();
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  return out;
}

}  // namespace

int main() {
  std::puts("== ABLATION: construction cost with/without invariant verification\n");
  for (const char* lock : {"adaptive-bakery", "bakery", "adaptive-splitter"}) {
    TextTable t({"N", "events", "replays", "rounds", "verified ms",
                 "unverified ms", "verify overhead"});
    for (int n : {16, 32, 64}) {
      if (std::string(lock) == "adaptive-splitter" && n > 32) continue;
      const Run v = run_once(lock, n, true);
      const Run u = run_once(lock, n, false);
      const double overhead = u.ms > 0 ? v.ms / u.ms : 0;
      t.add_row({std::to_string(n), std::to_string(v.r.total_events),
                 std::to_string(v.r.replays), std::to_string(v.r.rounds),
                 fmt_fixed(v.ms, 1), fmt_fixed(u.ms, 1),
                 fmt_fixed(overhead, 1) + "x"});
    }
    std::printf("-- %s --\n", lock);
    t.print(std::cout);
    std::puts("");
  }
  std::puts("Reading: verification re-analyzes the whole trace at every phase");
  std::puts("boundary and re-replays on every erasure, so its overhead grows");
  std::puts("with the number of phases (adaptive targets) and erasures");
  std::puts("(non-adaptive targets). For exploratory runs at large N, turn");
  std::puts("ConstructionConfig::verify_invariants off — the produced");
  std::puts("executions are identical (tests/test_construction_scale.cpp).");
  return 0;
}
