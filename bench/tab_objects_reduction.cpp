// LEM9 — Lemma 9's complexity parity, measured.
//
// A passage of Algorithm 1's one-time mutex performs exactly one counter
// operation plus O(1) reads/writes/fences — so the mutex's fence/RMR
// complexity equals the object's, up to an additive constant. We measure
// solo and contended costs of (a) the raw objects, (b) the derived one-time
// mutexes over a CAS counter, a seeded Michael-Scott queue, and a seeded
// Treiber stack.
#include <iostream>

#include "algos/lock.h"
#include "objects/lockfree.h"
#include "objects/reduction.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"
#include "util/table.h"

using namespace tpa;
using objects::CasCounter;
using objects::CounterMutex;
using objects::MichaelScottQueue;
using objects::QueueCounter;
using objects::SimCounter;
using objects::StackCounter;
using objects::TreiberStack;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;

namespace {

Task<> one_op(Proc& p, std::shared_ptr<SimCounter> c) {
  co_await c->fetch_increment(p);
}

struct Cost {
  double barriers = 0, critical = 0, rmr_wb = 0;
};

// Cost of one solo fetch&increment on a fresh counter of the given kind.
Cost solo_counter_cost(const std::string& kind, int n) {
  Simulator sim(static_cast<std::size_t>(n));
  std::shared_ptr<SimCounter> counter;
  if (kind == "cas") {
    counter = std::make_shared<CasCounter>(sim);
  } else if (kind == "queue") {
    auto q = std::make_shared<MichaelScottQueue>(sim, n, 0, n);
    std::vector<Value> seed;
    for (int i = 0; i < n; ++i) seed.push_back(i);
    q->seed_initial(sim, seed);
    counter = std::make_shared<QueueCounter>(q);
  } else {
    auto s = std::make_shared<TreiberStack>(sim, n, 0, n);
    std::vector<Value> seed;
    for (int i = 0; i < n; ++i) seed.push_back(i);
    s->seed_initial(sim, seed);
    counter = std::make_shared<StackCounter>(s);
  }
  sim.spawn(0, one_op(sim.proc(0), counter));
  while (!sim.proc(0).done()) sim.deliver(0);
  const auto& st = sim.proc(0).current_passage();
  return {static_cast<double>(st.barriers()),
          static_cast<double>(st.critical), static_cast<double>(st.rmr_wb)};
}

// Mean passage cost of the derived one-time mutex under full contention.
Cost mutex_cost(const std::string& kind, int n, std::uint64_t seed) {
  Simulator sim(static_cast<std::size_t>(n));
  std::shared_ptr<SimCounter> counter;
  if (kind == "cas") {
    counter = std::make_shared<CasCounter>(sim);
  } else if (kind == "queue") {
    auto q = std::make_shared<MichaelScottQueue>(sim, n, 0, n);
    std::vector<Value> sv;
    for (int i = 0; i < n; ++i) sv.push_back(i);
    q->seed_initial(sim, sv);
    counter = std::make_shared<QueueCounter>(q);
  } else {
    auto s = std::make_shared<TreiberStack>(sim, n, 0, n);
    std::vector<Value> sv;
    for (int i = 0; i < n; ++i) sv.push_back(i);
    s->seed_initial(sim, sv);
    counter = std::make_shared<StackCounter>(s);
  }
  auto mutex = std::make_shared<CounterMutex>(sim, n, counter);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), mutex, 1));
  Rng rng(seed);
  tso::run_random(sim, rng, 0.3, 100'000'000);

  Cost c;
  std::size_t count = 0;
  for (int p = 0; p < n; ++p) {
    for (const auto& st : sim.proc(p).finished_passages()) {
      c.barriers += st.barriers();
      c.critical += st.critical;
      c.rmr_wb += st.rmr_wb;
      ++count;
    }
  }
  if (count) {
    c.barriers /= static_cast<double>(count);
    c.critical /= static_cast<double>(count);
    c.rmr_wb /= static_cast<double>(count);
  }
  return c;
}

}  // namespace

int main() {
  std::puts("== LEM9: object-operation cost vs derived one-time mutex passage cost\n");
  const int n = 8;

  std::puts("-- solo fetch&increment (the raw object) --");
  TextTable solo({"counter backend", "barriers", "critical", "RMR (CC-WB)"});
  for (const char* kind : {"cas", "queue", "stack"}) {
    const Cost c = solo_counter_cost(kind, n);
    solo.add_row({kind, fmt_fixed(c.barriers, 1), fmt_fixed(c.critical, 1),
                  fmt_fixed(c.rmr_wb, 1)});
  }
  solo.print(std::cout);

  std::printf(
      "\n-- Algorithm 1 one-time mutex over each backend, n=%d contending "
      "(mean per passage) --\n",
      n);
  TextTable mux({"counter backend", "barriers", "critical", "RMR (CC-WB)"});
  for (const char* kind : {"cas", "queue", "stack"}) {
    const Cost c = mutex_cost(kind, n, 31);
    mux.add_row({kind, fmt_fixed(c.barriers, 1), fmt_fixed(c.critical, 1),
                 fmt_fixed(c.rmr_wb, 1)});
  }
  mux.print(std::cout);

  std::puts("\nReading: the mutex rows exceed the object rows by a small");
  std::puts("additive constant (Algorithm 1's own writes/fences) — Lemma 9's");
  std::puts("parity. Any fence lower bound for the mutex therefore transfers");
  std::puts("to counters, queues and stacks (Corollary 1).");
  return 0;
}
