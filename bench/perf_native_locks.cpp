// PERF2 — native fence-counting locks on real threads (x86 is TSO, the
// paper's model). Reports throughput plus measured fences/RMWs per passage
// for the whole native zoo across thread counts, including the adaptive
// lock whose extra barriers are exactly the "price" of adaptivity.
#include <iostream>

#include "runtime/harness.h"
#include "runtime/locks.h"
#include "util/table.h"

using namespace tpa;
using runtime::rt_lock_zoo;
using runtime::run_stress;

int main() {
  std::puts("== PERF2: native instrumented locks (std::atomic, counted fences)\n");
  const std::uint64_t ops = 20'000;
  for (int threads : {1, 2, 4}) {
    std::printf("-- %d thread(s), %llu passages each --\n", threads,
                static_cast<unsigned long long>(ops));
    TextTable t({"lock", "ops/s", "fences/op", "rmws/op", "barriers/op",
                 "max-thread barriers/op", "exclusion"});
    for (const auto& f : rt_lock_zoo()) {
      auto lock = f.make(threads);
      const auto r = run_stress(*lock, threads, ops);
      t.add_row({f.name, fmt_fixed(r.ops_per_sec / 1e6, 2) + "M",
                 fmt_fixed(r.fences_per_op, 2), fmt_fixed(r.rmws_per_op, 2),
                 fmt_fixed(r.barriers_per_op, 2),
                 fmt_fixed(r.max_thread_barriers_per_op, 2),
                 r.exclusion_ok ? "ok" : "VIOLATED"});
    }
    t.print(std::cout);
    std::puts("");
  }
  std::puts("Reading: bakery keeps 2 fences/op at every thread count but");
  std::puts("scans Θ(n); tournament pays Θ(log n) fences; adaptive-bakery");
  std::puts("matches bakery's 2 fences *after* registration — its barriers/op");
  std::puts("exceed 2 only by the amortized registration CAS, which is the");
  std::puts("per-passage worst case the paper's lower bound speaks about.");
  return 0;
}
