// FENCE-NECESSITY — "the use of fences was shown to be unavoidable for
// read/write mutual exclusion algorithms" (the paper's premise, citing
// Attiya et al.'s Laws of Order), demonstrated by exhaustive context-
// bounded exploration: for each bakery fence placement and memory model,
// either a violating schedule is found automatically or the bounded state
// space is certified violation-free.
#include <iostream>

#include "algos/bakery.h"
#include "algos/zoo.h"
#include "tso/explorer.h"
#include "util/table.h"

using namespace tpa;
using algos::BakeryFencing;
using algos::BakeryLock;
using tso::ExplorerConfig;
using tso::ScenarioBuilder;
using tso::SimConfig;
using tso::Simulator;

namespace {

tso::ExplorerResult run(int n, BakeryFencing fencing, int preemptions) {
  ScenarioBuilder build = [n, fencing](Simulator& sim) {
    auto lock = std::make_shared<BakeryLock>(sim, n, fencing);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
  ExplorerConfig cfg;
  cfg.preemptions = preemptions;
  cfg.max_schedules = 500'000;
  return tso::explore(static_cast<std::size_t>(n), SimConfig{}, build, cfg);
}

const char* fencing_name(BakeryFencing f) {
  switch (f) {
    case BakeryFencing::kNone: return "no fences";
    case BakeryFencing::kTso: return "TSO placement";
    case BakeryFencing::kPso: return "PSO placement";
  }
  return "?";
}

}  // namespace

int main() {
  std::puts("== FENCE-NECESSITY: exhaustive context-bounded exploration of the bakery\n");
  TextTable t({"fencing", "n", "preemptions", "schedules", "truncated",
               "verdict"});
  for (const BakeryFencing f :
       {BakeryFencing::kNone, BakeryFencing::kTso, BakeryFencing::kPso}) {
    for (int n : {2, 3}) {
      for (int b : {1, 2}) {
        if (n == 3 && b == 2) continue;  // keep the bench quick
        const auto r = run(n, f, b);
        t.add_row({fencing_name(f), std::to_string(n), std::to_string(b),
                   std::to_string(r.schedules), std::to_string(r.truncated),
                   r.verdict.found()
                       ? "VIOLATION (witness schedule recorded)"
                       : (r.exhausted ? "safe (exhausted bound)"
                                      : "safe (budget hit)")});
      }
    }
  }
  t.print(std::cout);
  std::puts("\nReading: stripping the fences from the TSO-correct bakery is");
  std::puts("caught automatically with a single preemption — read/write");
  std::puts("mutual exclusion cannot do without fences, which is why the");
  std::puts("paper's question (how FEW fences can an adaptive algorithm");
  std::puts("get away with) is the right one to ask.");
  return 0;
}
