// THM1 — Theorem 1 witnesses: for each algorithm and N, the construction
// produces an execution of total contention i+1 in which one process
// executes i barriers during a single passage. The paper proves existence;
// this bench constructs the witness and reports (contention, barriers).
#include <iostream>

#include "algos/zoo.h"
#include "lowerbound/construction.h"
#include "util/table.h"

using namespace tpa;
using lowerbound::Construction;
using tso::ScenarioBuilder;
using tso::Simulator;

int main() {
  std::puts("== THM1: constructed witness executions (contention vs forced barriers)");
  std::puts("Theorem 1 shape: barriers == contention - 1 for adaptive algorithms.\n");

  TextTable t({"lock", "N", "rounds", "|Fin|", "witness contention",
               "witness barriers", "invariants"});
  for (const auto& f : algos::lock_zoo()) {
    for (int n : {8, 16, 32}) {
      ScenarioBuilder build = [&f, n](Simulator& sim) {
        auto l = f.make(sim, n);
        for (int p = 0; p < n; ++p)
          sim.spawn(p, algos::run_passages(sim.proc(p), l, 1));
      };
      Construction c(static_cast<std::size_t>(n), build, {});
      const auto r = c.run();
      t.add_row({f.name, std::to_string(n), std::to_string(r.rounds),
                 std::to_string(r.finished),
                 std::to_string(r.witness_contention),
                 std::to_string(r.witness_barriers),
                 r.invariants_ok ? "ok" : "VIOLATED"});
    }
  }
  t.print(std::cout);
  std::puts("\nReading: the adaptive locks (adaptive-splitter — pure");
  std::puts("read/write — and adaptive-bakery) plus the CAS-retry locks");
  std::puts("(ticket/clh/anderson) pay barriers linear in contention, the");
  std::puts("paper's tradeoff; tournament and yang-anderson surrender their");
  std::puts("Θ(log n) fences; bakery and lamport-fast escape by scanning");
  std::puts("Θ(n) (their witness collapses early); tas/ttas/mcs serialize");
  std::puts("hand-offs through one visible word.");
  return 0;
}
