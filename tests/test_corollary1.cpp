// Corollary 1, composed end-to-end: the fence lower bound transfers through
// the Lemma 9 reduction to counters (and hence stacks/queues).
//
// (a) An *adaptive* counter (built from the pure read/write adaptive
//     splitter lock) pays registration fences scaling with contention —
//     an adaptive O(1)-fence counter cannot exist, and ours indeed is not.
// (b) The construction attacks a mutex built *from a counter* (Algorithm 1
//     over the CAS counter): the forced barriers land on the counter
//     operations, which is exactly how the lower bound transfers.
#include <gtest/gtest.h>

#include <memory>

#include "algos/splitter.h"
#include "lowerbound/construction.h"
#include "objects/lockfree.h"
#include "objects/reduction.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using objects::CasCounter;
using objects::CounterMutex;
using objects::LockedCounter;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;

Task<> inc_n(Proc& p, std::shared_ptr<objects::SimCounter> c, int times) {
  for (int i = 0; i < times; ++i) co_await c->fetch_increment(p);
}

TEST(Corollary1, AdaptiveCounterPaysFencesNotProportionalWork) {
  // Counter ops through the adaptive splitter lock: solo op cost is O(1)
  // (independent of n), but the first contended op pays the registration
  // fences — the counter inherits the lock's tradeoff.
  const int n = 32;
  Simulator sim(n);
  auto lock = std::make_shared<algos::AdaptiveSplitterLock>(sim, n);
  auto counter = std::make_shared<LockedCounter>(sim, lock);
  sim.spawn(0, inc_n(sim.proc(0), counter, 3));
  std::uint64_t guard = 0;
  while (!sim.proc(0).done()) {
    ASSERT_TRUE(sim.deliver(0));
    ASSERT_LT(++guard, 100'000u);
  }
  // Solo: registration (2 fences) happened once; ops stay O(1).
  EXPECT_LE(sim.proc(0).fences_completed(), 20u)
      << "3 solo ops through a 32-process arena must not cost Θ(n) fences";
  EXPECT_EQ(sim.value(/*counter's var*/ sim.num_vars() - 1), 3)
      << "the last allocated variable is the counter cell";
}

TEST(Corollary1, ConstructionAttacksTheMutexFromCounter) {
  // Algorithm 1 over a CAS counter: each passage performs exactly one
  // fetch&increment. The adversary's forced barriers are therefore forced
  // onto counter operations — the reduction transferring the bound.
  const int n = 8;
  tso::ScenarioBuilder build = [n](Simulator& sim) {
    auto counter = std::make_shared<CasCounter>(sim);
    auto mutex = std::make_shared<CounterMutex>(sim, n, counter);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), mutex, 1));
  };
  lowerbound::Construction c(n, build, {});
  const auto r = c.run();
  EXPECT_TRUE(r.invariants_ok) << r.invariant_detail;
  EXPECT_GE(r.finished, 1u);
  // The witness's barriers all pass through fetch&increment retries plus
  // Algorithm 1's O(1) own fences.
  EXPECT_EQ(r.witness_contention, static_cast<std::size_t>(n));
  EXPECT_GE(r.witness_barriers, static_cast<std::uint32_t>(n - 1));
}

TEST(Corollary1, CounterValuesStayCorrectUnderTheAdversary) {
  // Even while the adversary starves and erases processes, the finished
  // passages' tickets must be the counter's unique increasing values.
  const int n = 6;
  std::shared_ptr<CasCounter> counter_keep;
  tso::ScenarioBuilder build = [&counter_keep, n](Simulator& sim) {
    counter_keep = std::make_shared<CasCounter>(sim);
    auto mutex = std::make_shared<CounterMutex>(sim, n, counter_keep);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), mutex, 1));
  };
  lowerbound::Construction c(n, build, {});
  const auto r = c.run();
  EXPECT_TRUE(r.invariants_ok);
  // |Fin| processes completed; they consumed tickets 0..|Fin|-1 among the
  // participants (the erased/witness processes may hold later tickets).
  EXPECT_GE(c.sim().value(counter_keep->var()),
            static_cast<Value>(r.finished));
}

}  // namespace
}  // namespace tpa
