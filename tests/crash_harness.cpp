// Self-fault-injection harness: kill the tool, then hold it to the
// uninterrupted answer.
//
// For every scenario in the registry this runner first computes the
// uninterrupted reference result in-process, then runs the same exploration
// as a durable campaign in a forked child and SIGKILLs the child at a
// randomized (fixed-seed) point — including, statistically, mid-checkpoint
// write, since the child checkpoints every 10ms and each checkpoint
// serializes and fsyncs the whole frontier. After each kill the
// campaign file must still parse (atomic tmp+fsync+rename publication:
// either the previous checkpoint or the new one, never a torn file). The
// child is restarted with resume() until a final un-killed leg completes,
// and the terminal campaign must carry the reference verdict, witness, and
// — dedup off — the exact schedule/truncated counts.
//
// Plain main() rather than gtest: the fork/exec-free child must _exit()
// without running atexit handlers, which is awkward inside a test fixture.
// Registered with ctest under the `robustness` label (an ASan/UBSan twin
// runs when the toolchain supports it).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "runtime/scenario.h"
#include "trace/campaign.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "util/check.h"

namespace {

using tpa::CheckFailure;
using tpa::runtime::find_scenario;
using tpa::runtime::Scenario;
using tpa::tso::DedupMode;
using tpa::tso::ExplorerConfig;
using tpa::tso::ExplorerResult;
using tpa::tso::ResumeOptions;

struct Scope {
  const char* scenario;
  int preemptions;
  int max_crashes;
  std::uint64_t dedup_max_bytes;  ///< ~0: dedup off; else kState + budget
  int kills;                      ///< SIGKILL rounds before the final leg
  std::uint64_t max_sleep_ms;     ///< cap on the randomized kill delay
  /// Liveness checking (implies state dedup). Parity for these scopes is
  /// verdict *kind* plus lasso validity, not byte equality: the liveness
  /// keying cadence restarts at every resume root, so an interrupted
  /// campaign may close a different — equally real — fair cycle than the
  /// uninterrupted run.
  bool liveness = false;
};

// Every registry scenario appears at a scope sized for a few seconds of
// total harness wall time: 3-process scopes at preemption bound 1, the
// slow 2-process scopes with capped kill delays (a kill early in the run
// still lands among hundreds of 1ms-spaced checkpoint writes). The
// recoverable scopes carry a crash budget — the fault model the paper's
// adversary uses — and the final scope re-runs tas-2p with the memory
// governor capped, where parity is verdict-only (a resumed visited set
// restarts empty, so dedup counts legitimately differ).
constexpr Scope kScopes[] = {
    {"bakery-none-2p", 2, 0, ~0ull, 6, 50},
    {"bakery-none-3p", 1, 0, ~0ull, 4, 50},
    {"bakery-tso-pso-2p", 1, 0, ~0ull, 6, 50},
    {"bakery-tso-2p", 2, 0, ~0ull, 8, 150},
    {"bakery-tso-3p", 1, 0, ~0ull, 6, 100},
    {"mcs-2p", 2, 0, ~0ull, 8, 50},
    {"tournament-3p", 1, 0, ~0ull, 6, 100},
    {"ticket-3p", 1, 0, ~0ull, 6, 50},
    {"tas-2p", 2, 0, ~0ull, 8, 50},
    {"recoverable-nofence-2p", 2, 1, ~0ull, 6, 50},
    {"recoverable-2p", 1, 1, ~0ull, 8, 120},
    {"tas-2p", 2, 0, 64 * 1024, 8, 50},
    {"tas-loop-2p", 4, 0, ~0ull, 6, 50, true},
};

// The checkpoint cadence. Writes serialize the full frontier and fsync, so
// a 1ms cadence turns exploration I/O-bound on the bigger scopes; 10ms
// still yields hundreds of mid-run checkpoints for the kills to land in.
constexpr std::uint64_t kIntervalMs = 10;

int failures = 0;

void fail(const Scope& scope, const std::string& why) {
  std::fprintf(stderr, "FAIL %s pre=%d cr=%d%s: %s\n", scope.scenario,
               scope.preemptions, scope.max_crashes,
               scope.dedup_max_bytes != ~0ull ? " governed" : "",
               why.c_str());
  ++failures;
}

ExplorerConfig scope_config(const Scope& scope) {
  ExplorerConfig cfg;
  cfg.preemptions = scope.preemptions;
  cfg.max_crashes = scope.max_crashes;
  if (scope.dedup_max_bytes != ~0ull) {
    cfg.dedup = DedupMode::kState;
    cfg.dedup_max_bytes = scope.dedup_max_bytes;
  }
  if (scope.liveness) {
    cfg.dedup = DedupMode::kState;
    cfg.liveness = tpa::tso::LivenessMode::kCheck;
  }
  return cfg;
}

/// The child's whole life: start or resume the campaign, then _exit before
/// any atexit/static-destructor machinery (the parent may have SIGKILLed
/// siblings mid-anything; this child must not depend on inherited state).
[[noreturn]] void run_child(const Scenario& s, const Scope& scope,
                            const std::string& path) {
  try {
    tpa::trace::Campaign probe;
    if (tpa::trace::try_read_campaign_file(path, &probe)) {
      ResumeOptions opts;
      opts.checkpoint_interval_ms = kIntervalMs;
      (void)tpa::runtime::resume(path, opts);
    } else {
      ExplorerConfig cfg = scope_config(scope);
      cfg.campaign_path = path;
      cfg.checkpoint_interval_ms = kIntervalMs;
      (void)s.explore(cfg);
    }
    _exit(0);
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "child %s: %s\n", scope.scenario, e.what());
    _exit(3);
  }
}

bool same_directives(const std::vector<tpa::tso::Directive>& a,
                     const std::vector<tpa::tso::Directive>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].kind != b[i].kind || a[i].proc != b[i].proc ||
        a[i].var != b[i].var)
      return false;
  return true;
}

/// One scope: reference run, kill rounds, final leg, parity check. Returns
/// the number of legs that were actually SIGKILLed mid-flight.
int run_scope(const Scope& scope, const std::string& dir, std::mt19937& rng) {
  const Scenario* s = find_scenario(scope.scenario);
  if (s == nullptr) {
    fail(scope, "scenario not in registry");
    return 0;
  }
  const ExplorerResult ref = s->explore(scope_config(scope));

  const std::string path = dir + "/" + scope.scenario + "-pre" +
                           std::to_string(scope.preemptions) +
                           (scope.dedup_max_bytes != ~0ull ? "-gov" : "") +
                           ".tpc";
  std::remove(path.c_str());

  int killed = 0;
  for (int round = 0; round < scope.kills; ++round) {
    const pid_t pid = fork();
    if (pid < 0) {
      fail(scope, "fork failed");
      return killed;
    }
    if (pid == 0) run_child(*s, scope, path);

    std::uniform_int_distribution<std::uint64_t> delay(
        0, scope.max_sleep_ms * 1000);
    std::this_thread::sleep_for(std::chrono::microseconds(delay(rng)));
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
      ++killed;
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fail(scope, "child failed with status " + std::to_string(status));
      return killed;
    }

    // Durability after every kill: whatever is on disk parses — a kill
    // mid-checkpoint-write must leave the previous checkpoint intact.
    tpa::trace::Campaign snap;
    std::string error;
    if (tpa::trace::try_read_campaign_file(path, &snap, &error)) {
      if (snap.complete) break;  // finished before (or despite) the kill
    } else if (error.find("cannot open") == std::string::npos) {
      fail(scope, "torn campaign file after kill: " + error);
      return killed;
    }
    // else: killed before the very first checkpoint — next leg starts fresh.
  }

  // The final, un-killed leg drives the campaign to completion.
  const pid_t pid = fork();
  if (pid < 0) {
    fail(scope, "fork failed");
    return killed;
  }
  if (pid == 0) run_child(*s, scope, path);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    fail(scope, "final leg failed with status " + std::to_string(status));
    return killed;
  }

  tpa::trace::Campaign done;
  try {
    done = tpa::trace::read_campaign_file(path);
  } catch (const CheckFailure& e) {
    fail(scope, std::string("terminal campaign unreadable: ") + e.what());
    return killed;
  }
  if (!done.complete) {
    fail(scope, "final leg did not complete the campaign");
    return killed;
  }
  if (scope.liveness) {
    // Kind parity + replayability (see the Scope field comment for why not
    // byte parity): both the interrupted and the reference run must find
    // the same class of verdict, and each recorded lasso must replay as a
    // strictly-closing fair cycle of that class on a fresh simulator.
    if (done.verdict.kind != ref.verdict.kind) {
      fail(scope, std::string("liveness verdict kind diverged: ") +
                      tpa::tso::to_string(done.verdict.kind) +
                      " vs reference " + tpa::tso::to_string(ref.verdict.kind));
      return killed;
    }
    const tpa::tso::Verdict* lassos[] = {&done.verdict, &ref.verdict};
    for (const tpa::tso::Verdict* v : lassos) {
      if (!v->is_lasso()) {
        fail(scope, "liveness verdict without a lasso witness");
        return killed;
      }
      const auto at = v->witness.begin() +
                      static_cast<std::ptrdiff_t>(v->cycle_start);
      const std::vector<tpa::tso::Directive> stem(v->witness.begin(), at);
      const std::vector<tpa::tso::Directive> cycle(at, v->witness.end());
      const tpa::tso::LassoReplay rep =
          tpa::tso::replay_lasso(s->n_procs, s->sim, s->build, stem, cycle);
      if (!rep.closes || rep.kind != v->kind) {
        fail(scope, "recorded lasso does not replay as its verdict kind");
        return killed;
      }
    }
  } else if (done.verdict.found() != ref.verdict.found() ||
             done.verdict.message != ref.verdict.message) {
    fail(scope, "verdict diverged: '" + done.verdict.message + "' vs reference '" +
                    ref.verdict.message + "'");
    return killed;
  } else if (!same_directives(done.verdict.witness, ref.verdict.witness)) {
    fail(scope, "witness diverged from the uninterrupted run");
    return killed;
  }
  if (!scope.liveness && done.exhausted != ref.exhausted) {
    fail(scope, "exhausted flag diverged");
    return killed;
  }
  // Exact count parity holds whenever dedup is off; under the governor a
  // resumed visited set restarts empty, so only the verdict is pinned.
  if (scope.dedup_max_bytes == ~0ull && !scope.liveness &&
      (done.schedules != ref.schedules || done.truncated != ref.truncated)) {
    fail(scope, "counts diverged: " + std::to_string(done.schedules) + "/" +
                    std::to_string(done.truncated) + " vs reference " +
                    std::to_string(ref.schedules) + "/" +
                    std::to_string(ref.truncated));
    return killed;
  }

  std::printf("ok   %-22s pre=%d cr=%d%s kills=%d schedules=%llu%s\n",
              scope.scenario, scope.preemptions, scope.max_crashes,
              scope.dedup_max_bytes != ~0ull ? " governed" : "", killed,
              static_cast<unsigned long long>(done.schedules),
              done.verdict.found() ? " (violation reproduced)" : "");
  std::remove(path.c_str());
  return killed;
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/tpa_crash_harness_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "FAIL cannot create scratch directory\n");
    return 1;
  }

  // Fixed seed: the kill schedule is randomized but reproducible run to run.
  std::mt19937 rng(0x7c0ffee5u);
  int total_kills = 0;
  for (const Scope& scope : kScopes) total_kills += run_scope(scope, dir, rng);

  if (total_kills == 0) {
    std::fprintf(stderr,
                 "FAIL no leg was ever killed mid-flight — the harness is "
                 "not exercising recovery\n");
    ++failures;
  }
  rmdir(dir);
  if (failures != 0) {
    std::fprintf(stderr, "%d scope(s) failed\n", failures);
    return 1;
  }
  std::printf("all scopes recovered to the uninterrupted verdict (%d kills)\n",
              total_kills);
  return 0;
}
