// Parallel schedule exploration: the frontier partitioning must explore
// exactly the sequential DFS' schedule space — identical `schedules` and
// `truncated` counts for any worker count — report violations
// deterministically (first-in-frontier-order wins, independent of thread
// timing), and sleep-set pruning must cut schedules without changing any
// verdict.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "util/check.h"

namespace tpa {
namespace {

using runtime::find_scenario;
using tso::ExplorerConfig;
using tso::ExplorerResult;
using tso::explore;

struct Case {
  const char* scenario;
  int preemptions;
};

TEST(ExplorerParallel, CountsMatchSequentialOnSafeScenarios) {
  const Case cases[] = {
      {"bakery-tso-2p", 2},
      {"mcs-2p", 2},
      {"bakery-tso-2p", 1},
  };
  for (const Case& c : cases) {
    const auto* s = find_scenario(c.scenario);
    ASSERT_NE(s, nullptr);
    ExplorerConfig cfg;
    cfg.preemptions = c.preemptions;
    const ExplorerResult seq = explore(s->n_procs, s->sim, s->build, cfg);
    ASSERT_FALSE(seq.verdict.found()) << seq.verdict.message;
    ASSERT_TRUE(seq.exhausted);
    for (int threads : {1, 2, 4}) {
      ExplorerConfig pcfg = cfg;
      pcfg.threads = threads;
      const ExplorerResult par =
          explore(s->n_procs, s->sim, s->build, pcfg);
      EXPECT_EQ(par.verdict.found(), seq.verdict.found())
          << c.scenario << " threads=" << threads;
      EXPECT_EQ(par.schedules, seq.schedules)
          << c.scenario << " threads=" << threads
          << ": the frontier partition must be exact";
      EXPECT_EQ(par.truncated, seq.truncated)
          << c.scenario << " threads=" << threads;
      EXPECT_TRUE(par.exhausted) << c.scenario << " threads=" << threads;
    }
  }
}

TEST(ExplorerParallel, ThreeProcessCountsMatchSequential) {
  const auto* s = find_scenario("bakery-none-3p");
  ASSERT_NE(s, nullptr);
  // Use the *safe* TSO bakery at 3 procs for count parity.
  const auto build = runtime::bakery_scenario(3, algos::BakeryFencing::kTso);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  const ExplorerResult seq = explore(3, {}, build, cfg);
  ASSERT_FALSE(seq.verdict.found()) << seq.verdict.message;
  for (int threads : {2, 4}) {
    ExplorerConfig pcfg = cfg;
    pcfg.threads = threads;
    const ExplorerResult par = explore(3, {}, build, pcfg);
    EXPECT_EQ(par.schedules, seq.schedules) << "threads=" << threads;
    EXPECT_EQ(par.truncated, seq.truncated) << "threads=" << threads;
    EXPECT_TRUE(par.exhausted);
  }
}

TEST(ExplorerParallel, ViolationIsFoundAndDeterministicAcrossThreadCounts) {
  const auto* s = find_scenario("bakery-none-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  std::vector<tso::Directive> first_witness;
  for (int threads : {1, 2, 4}) {
    ExplorerConfig pcfg = cfg;
    pcfg.threads = threads;
    const ExplorerResult r = explore(s->n_procs, s->sim, s->build, pcfg);
    ASSERT_TRUE(r.verdict.found()) << "threads=" << threads;
    EXPECT_NE(r.verdict.message.find("mutual exclusion violated"),
              std::string::npos)
        << r.verdict.message;
    ASSERT_FALSE(r.verdict.witness.empty());
    // Every reported witness replays deterministically.
    EXPECT_THROW(tso::replay(s->n_procs, s->sim, s->build, r.verdict.witness),
                 CheckFailure)
        << "threads=" << threads;
    // And the parallel run is reproducible: same config, same witness.
    const ExplorerResult again =
        explore(s->n_procs, s->sim, s->build, pcfg);
    ASSERT_TRUE(again.verdict.found());
    ASSERT_EQ(again.verdict.witness.size(), r.verdict.witness.size())
        << "threads=" << threads << " must be reproducible";
    for (std::size_t i = 0; i < r.verdict.witness.size(); ++i) {
      EXPECT_EQ(again.verdict.witness[i].kind, r.verdict.witness[i].kind) << i;
      EXPECT_EQ(again.verdict.witness[i].proc, r.verdict.witness[i].proc) << i;
      EXPECT_EQ(again.verdict.witness[i].var, r.verdict.witness[i].var) << i;
    }
  }
}

TEST(ExplorerParallel, ThreeProcessViolationFoundAtAllThreadCounts) {
  const auto* s = find_scenario("bakery-none-3p");
  ASSERT_NE(s, nullptr);
  for (int threads : {1, 2, 4}) {
    ExplorerConfig cfg;
    cfg.preemptions = 1;
    cfg.threads = threads;
    const ExplorerResult r = explore(s->n_procs, s->sim, s->build, cfg);
    EXPECT_TRUE(r.verdict.found()) << "threads=" << threads;
  }
}

TEST(ExplorerParallel, RespectsScheduleBudget) {
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.threads = 4;
  cfg.max_schedules = 50;
  const ExplorerResult r = explore(s->n_procs, s->sim, s->build, cfg);
  EXPECT_FALSE(r.exhausted);
}

TEST(ExplorerParallel, TimeBudgetStopsParallelExploration) {
  // A scope far too big to finish in the budget: the watchdog must stop the
  // worker pool and report deadline_hit instead of an exhaustive proof.
  const auto* s = find_scenario("bakery-tso-3p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 3;
  cfg.threads = 2;
  cfg.time_budget_ms = 50;
  const ExplorerResult r = explore(s->n_procs, s->sim, s->build, cfg);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_FALSE(r.exhausted)
      << "a deadline-stopped run must not claim an exhaustive proof";
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
}

TEST(ExplorerParallel, SleepSetsCutSchedulesWithoutChangingVerdicts) {
  // Safe scenarios: same (clean) verdict from strictly less work.
  for (const char* name : {"bakery-tso-2p", "mcs-2p"}) {
    const auto* s = find_scenario(name);
    ASSERT_NE(s, nullptr);
    ExplorerConfig cfg;
    cfg.preemptions = 2;
    const ExplorerResult plain = explore(s->n_procs, s->sim, s->build, cfg);
    ExplorerConfig pruned = cfg;
    pruned.sleep_sets = true;
    const ExplorerResult slept =
        explore(s->n_procs, s->sim, s->build, pruned);
    EXPECT_FALSE(plain.verdict.found()) << name;
    EXPECT_FALSE(slept.verdict.found())
        << name << ": pruning must not invent violations";
    EXPECT_TRUE(slept.exhausted) << name;
    EXPECT_LT(slept.schedules, plain.schedules)
        << name << ": commutative interleavings should be cut";
  }
  // Violating scenario: the violation must survive pruning.
  const auto* broken = find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.sleep_sets = true;
  const ExplorerResult r =
      explore(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(r.verdict.found())
      << "sleep sets skipped the fence-free bakery violation";
  EXPECT_THROW(
      tso::replay(broken->n_procs, broken->sim, broken->build, r.verdict.witness),
      CheckFailure);
}

TEST(ExplorerParallel, SleepSetsComposeWithParallelExploration) {
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.sleep_sets = true;
  const ExplorerResult seq = explore(s->n_procs, s->sim, s->build, cfg);
  for (int threads : {2, 4}) {
    ExplorerConfig pcfg = cfg;
    pcfg.threads = threads;
    const ExplorerResult par = explore(s->n_procs, s->sim, s->build, pcfg);
    EXPECT_EQ(par.schedules, seq.schedules)
        << "threads=" << threads
        << ": sleep sets thread through frontier prefixes";
    EXPECT_EQ(par.truncated, seq.truncated) << "threads=" << threads;
    EXPECT_FALSE(par.verdict.found());
  }
}

}  // namespace
}  // namespace tpa
