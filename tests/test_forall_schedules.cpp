// For-all-schedules property testing via the explorer's on_complete hook:
// within the context bound, EVERY schedule must satisfy the paper's
// bookkeeping invariants — online/offline cost agreement (Definitions 1-3)
// and Lemma 4 erasure equivalence for invisible processes.
#include <gtest/gtest.h>

#include <memory>

#include "algos/zoo.h"
#include "trace/analyzer.h"
#include "tso/explorer.h"
#include "tso/schedule.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using tso::Proc;
using tso::ScenarioBuilder;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

ScenarioBuilder lock_builder(const std::string& name, int n) {
  const auto& f = algos::lock_factory(name);
  return [&f, n](Simulator& sim) {
    auto lock = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
}

TEST(ForAllSchedules, AnalyzerAgreesOnEverySchedule) {
  for (const char* name : {"tas", "bakery", "adaptive-bakery"}) {
    const int n = 2;
    const auto build = lock_builder(name, n);
    tso::ExplorerConfig cfg;
    cfg.preemptions = 2;
    cfg.on_complete = [n](const Simulator& sim) {
      const trace::VarLayout layout{sim.var_owners()};
      const auto analysis =
          trace::analyze(sim.execution(), static_cast<std::size_t>(n), layout);
      const auto rep = trace::check_consistency(sim.execution(), analysis);
      TPA_CHECK(rep.ok, rep.detail);
    };
    const auto r = tso::explore(n, {}, build, cfg);
    EXPECT_FALSE(r.verdict.found()) << name << ": " << r.verdict.message;
    EXPECT_TRUE(r.exhausted) << name;
    EXPECT_GT(r.schedules, 10u) << name;
  }
}

// Disjoint scenario: each process touches only its own variable, so every
// process is invisible to every other and ANY erasure must replay cleanly
// (Lemma 4) — on every schedule within the bound.
Task<> private_incr(Proc& p, VarId v, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const Value cur = co_await p.read(v);
    co_await p.write(v, cur + 1);
    co_await p.fence();
  }
}

TEST(ForAllSchedules, Lemma4HoldsForEveryScheduleOfDisjointProcs) {
  const int n = 3;
  ScenarioBuilder build = [n](Simulator& sim) {
    std::vector<VarId> vars;
    for (int p = 0; p < n; ++p) vars.push_back(sim.alloc_var(0));
    for (int p = 0; p < n; ++p)
      sim.spawn(p,
                private_incr(sim.proc(p), vars[static_cast<std::size_t>(p)],
                             2));
  };
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.on_complete = [n, &build](const Simulator& sim) {
    for (int victim = 0; victim < n; ++victim) {
      std::vector<bool> erased(static_cast<std::size_t>(n), false);
      erased[static_cast<std::size_t>(victim)] = true;
      auto replayed = tso::replay(static_cast<std::size_t>(n), {}, build,
                                  sim.execution().directives, &erased);
      const auto check = tso::verify_replay_equivalence(
          sim.execution(), replayed->execution(), erased);
      TPA_CHECK(check.ok, "Lemma 4 failed erasing p" << victim << ": "
                                                     << check.detail);
    }
  };
  const auto r = tso::explore(n, {}, build, cfg);
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.schedules, 50u);
}

TEST(ForAllSchedules, ContentionBoundsOnEverySchedule) {
  // point <= interval <= n must hold on every schedule of a contended run.
  const int n = 2;
  const auto build = lock_builder("ticket", n);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.on_complete = [n](const Simulator& sim) {
    for (int p = 0; p < n; ++p) {
      for (const auto& st : sim.proc(p).finished_passages()) {
        TPA_CHECK(st.point_contention >= 1 &&
                      st.point_contention <= st.interval_contention &&
                      st.interval_contention <= static_cast<std::uint32_t>(n),
                  "contention bounds violated for p" << p);
      }
    }
  };
  const auto r = tso::explore(n, {}, build, cfg);
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace tpa
