// Replayable regression corpus: every witness file under tests/corpus/ is a
// shrunk, serialized schedule for a known violation. Replaying it through a
// freshly built simulator must still reproduce the recorded violation — if
// an algorithm or simulator change ever makes one pass, that is a regression
// (or an intentional fix, in which case regenerate: see docs/FUZZING.md and
// the TPA_REGEN_CORPUS env var below).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "trace/format.h"
#include "tso/fuzz.h"
#include "util/check.h"

#ifndef TPA_CORPUS_DIR
#error "TPA_CORPUS_DIR must point at tests/corpus (set by tests/CMakeLists.txt)"
#endif

namespace tpa {
namespace {

namespace fs = std::filesystem;
using runtime::find_scenario;
using runtime::violation_detail;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(TPA_CORPUS_DIR))
    if (entry.path().extension() == ".witness") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

/// Lenient corpus loading: a truncated or corrupt witness file (a crashed
/// regen, a bad merge) is skipped with a visible warning instead of
/// aborting the whole suite — the remaining corpus still runs.
std::vector<std::pair<fs::path, trace::Witness>> load_corpus() {
  std::vector<std::pair<fs::path, trace::Witness>> out;
  for (const fs::path& path : corpus_files()) {
    trace::Witness w;
    std::string error;
    if (!trace::try_read_witness_file(path.string(), &w, &error)) {
      ADD_FAILURE() << "skipping unreadable corpus witness " << path << ": "
                    << error;
      continue;
    }
    out.emplace_back(path, std::move(w));
  }
  return out;
}

/// The simulator config a witness replays under: the registry scenario's,
/// with the witness' recorded crash model (meaningful only for crash-bearing
/// schedules) applied on top.
tso::SimConfig replay_config(const runtime::Scenario& s,
                             const trace::Witness& w) {
  tso::SimConfig cfg = s.sim;
  cfg.crash_model = w.crash_model;
  return cfg;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 3u)
      << "the checked-in corpus should cover the known violations";
}

TEST(CorpusReplay, EveryWitnessStillReproducesItsViolation) {
  for (const auto& [path, w] : load_corpus()) {
    SCOPED_TRACE(path.filename().string());
    const auto* s = find_scenario(w.scenario);
    ASSERT_NE(s, nullptr) << "unknown scenario id '" << w.scenario << "'";
    ASSERT_EQ(s->n_procs, w.n_procs);
    ASSERT_EQ(s->sim.pso, w.pso);
    ASSERT_FALSE(w.directives.empty());

    const tso::LenientReplay r = tso::replay_lenient(
        w.n_procs, replay_config(*s, w), s->build, w.directives);
    EXPECT_TRUE(r.violated)
        << "corpus witness no longer reproduces — regression or intentional "
           "fix (regenerate via TPA_REGEN_CORPUS, see docs/FUZZING.md)";
    // Witnesses are stored shrunk, so they are strictly replayable: every
    // directive must have applied.
    EXPECT_EQ(r.applied.size(), w.directives.size());
    // The recorded failure (its stable detail part) must match.
    EXPECT_NE(violation_detail(r.violation).find(w.violation),
              std::string::npos)
        << "recorded: " << w.violation << "\nreplayed: " << r.violation;
  }
}

TEST(CorpusReplay, WitnessesAreLocallyMinimal) {
  for (const auto& [path, w] : load_corpus()) {
    SCOPED_TRACE(path.filename().string());
    const auto* s = find_scenario(w.scenario);
    ASSERT_NE(s, nullptr);
    for (std::size_t i = 0; i < w.directives.size(); ++i) {
      std::vector<tso::Directive> cand = w.directives;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      EXPECT_FALSE(tso::replay_lenient(w.n_procs, replay_config(*s, w),
                                       s->build, cand)
                       .violated)
          << "directive " << i << " is removable — the witness is stale "
             "(regenerate to keep the corpus minimal)";
    }
  }
}

// Regeneration: TPA_REGEN_CORPUS=1 ctest -R CorpusRegen re-fuzzes every
// violating registry scenario with a fixed seed, shrinks the witness, and
// rewrites tests/corpus/<scenario>.witness. Skipped in normal runs.
TEST(CorpusRegen, RegenerateAllWitnessFiles) {
  if (std::getenv("TPA_REGEN_CORPUS") == nullptr)
    GTEST_SKIP() << "set TPA_REGEN_CORPUS=1 to rewrite tests/corpus/";
  for (const auto& s : runtime::scenario_registry()) {
    if (!s.violating) continue;
    tso::FuzzConfig cfg;
    cfg.seed = 0x5eedULL;
    cfg.runs = 20'000;
    if (s.needs_crashes) {
      cfg.crash_prob = 0.1;
      cfg.max_crashes = 1;
    }
    const tso::FuzzResult r = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
    ASSERT_TRUE(r.violation_found) << s.name;
    trace::Witness w;
    w.scenario = s.name;
    w.n_procs = s.n_procs;
    w.pso = s.sim.pso;
    w.crash_model = s.sim.crash_model;
    w.violation = violation_detail(r.violation);
    w.directives = r.witness;
    const fs::path path =
        fs::path(TPA_CORPUS_DIR) / (s.name + ".witness");
    // Atomic tmp-then-rename: an interrupted regen never leaves a
    // truncated witness under the final name.
    trace::write_witness_file(path.string(), w);
  }
}

}  // namespace
}  // namespace tpa
