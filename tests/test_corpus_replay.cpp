// Replayable regression corpus: every witness file under tests/corpus/ is a
// shrunk, serialized schedule for a known violation. Replaying it through a
// freshly built simulator must still reproduce the recorded violation — if
// an algorithm or simulator change ever makes one pass, that is a regression
// (or an intentional fix, in which case regenerate: see docs/FUZZING.md and
// the TPA_REGEN_CORPUS env var below).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "trace/format.h"
#include "tso/fuzz.h"
#include "util/check.h"

#ifndef TPA_CORPUS_DIR
#error "TPA_CORPUS_DIR must point at tests/corpus (set by tests/CMakeLists.txt)"
#endif

namespace tpa {
namespace {

namespace fs = std::filesystem;
using runtime::find_scenario;
using runtime::violation_detail;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(TPA_CORPUS_DIR))
    if (entry.path().extension() == ".witness") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

/// Lenient corpus loading: a truncated or corrupt witness file (a crashed
/// regen, a bad merge) is skipped with a visible warning instead of
/// aborting the whole suite — the remaining corpus still runs.
std::vector<std::pair<fs::path, trace::Witness>> load_corpus() {
  std::vector<std::pair<fs::path, trace::Witness>> out;
  for (const fs::path& path : corpus_files()) {
    trace::Witness w;
    std::string error;
    if (!trace::try_read_witness_file(path.string(), &w, &error)) {
      ADD_FAILURE() << "skipping unreadable corpus witness " << path << ": "
                    << error;
      continue;
    }
    out.emplace_back(path, std::move(w));
  }
  return out;
}

/// The simulator config a witness replays under: the registry scenario's,
/// with the witness' recorded crash model (meaningful only for crash-bearing
/// schedules) applied on top.
tso::SimConfig replay_config(const runtime::Scenario& s,
                             const trace::Witness& w) {
  tso::SimConfig cfg = s.sim;
  cfg.crash_model = w.crash_model;
  return cfg;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 3u)
      << "the checked-in corpus should cover the known violations";
}

/// Splits a lasso witness at its recorded cycle entry.
void split_lasso(const trace::Witness& w, std::vector<tso::Directive>* stem,
                 std::vector<tso::Directive>* cycle) {
  const auto at =
      w.directives.begin() + static_cast<std::ptrdiff_t>(w.cycle_start);
  stem->assign(w.directives.begin(), at);
  cycle->assign(at, w.directives.end());
}

TEST(CorpusReplay, EveryWitnessStillReproducesItsViolation) {
  for (const auto& [path, w] : load_corpus()) {
    SCOPED_TRACE(path.filename().string());
    const auto* s = find_scenario(w.scenario);
    ASSERT_NE(s, nullptr) << "unknown scenario id '" << w.scenario << "'";
    ASSERT_EQ(s->n_procs, w.n_procs);
    ASSERT_EQ(s->sim.pso, w.pso);
    ASSERT_FALSE(w.directives.empty());

    if (w.is_lasso()) {
      // A v3 lasso replays through the liveness oracle: the cycle must
      // strictly apply, re-close under the progress fingerprint (entry
      // state == end state), and classify as the recorded verdict kind.
      std::vector<tso::Directive> stem, cycle;
      split_lasso(w, &stem, &cycle);
      const tso::LassoReplay r = tso::replay_lasso(
          w.n_procs, replay_config(*s, w), s->build, stem, cycle);
      EXPECT_TRUE(r.closes)
          << "lasso witness no longer closes — regression or intentional "
             "fix (regenerate via TPA_REGEN_CORPUS, see docs/LIVENESS.md)";
      EXPECT_EQ(r.kind, w.verdict_kind);
      EXPECT_EQ(r.stem.size(), stem.size())
          << "stored lassos are shrunk, so the whole stem must apply";
      continue;
    }
    const tso::LenientReplay r = tso::replay_lenient(
        w.n_procs, replay_config(*s, w), s->build, w.directives);
    EXPECT_TRUE(r.violated)
        << "corpus witness no longer reproduces — regression or intentional "
           "fix (regenerate via TPA_REGEN_CORPUS, see docs/FUZZING.md)";
    // Witnesses are stored shrunk, so they are strictly replayable: every
    // directive must have applied.
    EXPECT_EQ(r.applied.size(), w.directives.size());
    // The recorded failure (its stable detail part) must match.
    EXPECT_NE(violation_detail(r.violation).find(w.violation),
              std::string::npos)
        << "recorded: " << w.violation << "\nreplayed: " << r.violation;
  }
}

TEST(CorpusReplay, WitnessesAreLocallyMinimal) {
  for (const auto& [path, w] : load_corpus()) {
    SCOPED_TRACE(path.filename().string());
    const auto* s = find_scenario(w.scenario);
    ASSERT_NE(s, nullptr);
    for (std::size_t i = 0; i < w.directives.size(); ++i) {
      std::vector<tso::Directive> cand = w.directives;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (w.is_lasso()) {
        // Minimality for lassos: dropping any single directive — from the
        // stem or the cycle — must stop the lasso from closing with the
        // recorded verdict kind.
        trace::Witness c = w;
        c.directives = std::move(cand);
        if (i < w.cycle_start) c.cycle_start--;
        std::vector<tso::Directive> stem, cycle;
        split_lasso(c, &stem, &cycle);
        const tso::LassoReplay r = tso::replay_lasso(
            w.n_procs, replay_config(*s, w), s->build, stem, cycle);
        EXPECT_FALSE(r.closes && r.kind == w.verdict_kind)
            << "directive " << i << " is removable — the lasso is stale "
               "(regenerate to keep the corpus minimal)";
        continue;
      }
      EXPECT_FALSE(tso::replay_lenient(w.n_procs, replay_config(*s, w),
                                       s->build, cand)
                       .violated)
          << "directive " << i << " is removable — the witness is stale "
             "(regenerate to keep the corpus minimal)";
    }
  }
}

// Regeneration: TPA_REGEN_CORPUS=1 ctest -R CorpusRegen re-fuzzes every
// violating registry scenario with a fixed seed, shrinks the witness, and
// rewrites tests/corpus/<scenario>.witness. Skipped in normal runs.
TEST(CorpusRegen, RegenerateAllWitnessFiles) {
  if (std::getenv("TPA_REGEN_CORPUS") == nullptr)
    GTEST_SKIP() << "set TPA_REGEN_CORPUS=1 to rewrite tests/corpus/";
  for (const auto& s : runtime::scenario_registry()) {
    if (!s.violating) continue;
    tso::FuzzConfig cfg;
    cfg.seed = 0x5eedULL;
    cfg.runs = 20'000;
    if (s.needs_crashes) {
      cfg.crash_prob = 0.1;
      cfg.max_crashes = 1;
    }
    const tso::FuzzResult r = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
    ASSERT_TRUE(r.verdict.found()) << s.name;
    trace::Witness w;
    w.scenario = s.name;
    w.n_procs = s.n_procs;
    w.pso = s.sim.pso;
    w.crash_model = s.sim.crash_model;
    w.violation = violation_detail(r.verdict.message);
    w.directives = r.verdict.witness;
    const fs::path path =
        fs::path(TPA_CORPUS_DIR) / (s.name + ".witness");
    // Atomic tmp-then-rename: an interrupted regen never leaves a
    // truncated witness under the final name.
    trace::write_witness_file(path.string(), w);
  }
  // Liveness corpus: fair-cycle violations are invisible to the fuzzer, so
  // liveness_violating scenarios regenerate through the explorer's cycle
  // detector instead, and serialize as v3 lassos. Symmetry stays off so the
  // shrunk lasso re-closes under the plain (concrete) progress fingerprint
  // the replay harness uses.
  for (const auto& s : runtime::scenario_registry()) {
    if (!s.liveness_violating) continue;
    tso::ExplorerConfig cfg;
    cfg.dedup = tso::DedupMode::kState;
    cfg.liveness = tso::LivenessMode::kCheck;
    cfg.shrink = true;
    cfg.preemptions = 4;
    const tso::ExplorerResult r = tso::explore(s.n_procs, s.sim, s.build, cfg);
    ASSERT_TRUE(r.verdict.found()) << s.name;
    ASSERT_TRUE(r.verdict.is_lasso()) << s.name;
    trace::Witness w;
    w.scenario = s.name;
    w.n_procs = s.n_procs;
    w.pso = s.sim.pso;
    w.crash_model = s.sim.crash_model;
    w.violation = violation_detail(r.verdict.message);
    w.directives = r.verdict.witness;
    w.verdict_kind = r.verdict.kind;
    w.cycle_start = r.verdict.cycle_start;
    const fs::path path = fs::path(TPA_CORPUS_DIR) / (s.name + ".witness");
    trace::write_witness_file(path.string(), w);
  }
}

}  // namespace
}  // namespace tpa
