// Liveness verdicts on the state graph: fair-cycle (lasso) detection under
// LivenessMode::kCheck, starvation-freedom certification of fair locks,
// lasso-aware shrinking, and the liveness=off bit-identical ablation.
//
// The detector walks the same DFS the safety explorer does, keyed by the
// *progress* fingerprint (state minus op histories): a revisit of a key on
// the DFS stack closes a candidate cycle, which is verified by strict
// re-application and kept only if it is weakly fair — every process enabled
// at the cycle's entry is scheduled inside it. See docs/LIVENESS.md.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/visited.h"
#include "util/check.h"

namespace tpa {
namespace {

using runtime::find_scenario;
using runtime::Scenario;
using tso::DedupMode;
using tso::Directive;
using tso::ExplorerConfig;
using tso::ExplorerResult;
using tso::Fingerprint;
using tso::LivenessMode;
using tso::OnStackMap;
using tso::VerdictKind;

ExplorerConfig liveness_config(int preemptions) {
  ExplorerConfig cfg;
  cfg.dedup = DedupMode::kState;
  cfg.liveness = LivenessMode::kCheck;
  cfg.preemptions = preemptions;
  return cfg;
}

void split_lasso(const std::vector<Directive>& all, std::size_t cycle_start,
                 std::vector<Directive>* stem, std::vector<Directive>* cycle) {
  const auto at = all.begin() + static_cast<std::ptrdiff_t>(cycle_start);
  stem->assign(all.begin(), at);
  cycle->assign(at, all.end());
}

// ---- detection ------------------------------------------------------------

TEST(Liveness, UnfairSpinLockHasAStarvationLasso) {
  const Scenario* s = find_scenario("tas-loop-2p");
  ASSERT_NE(s, nullptr);
  const ExplorerResult r = s->explore(liveness_config(4));
  ASSERT_TRUE(r.verdict.found());
  EXPECT_EQ(r.verdict.kind, VerdictKind::kStarvation);
  ASSERT_TRUE(r.verdict.is_lasso());
  EXPECT_NE(r.verdict.message.find("starves"), std::string::npos)
      << r.verdict.message;
  EXPECT_LT(r.verdict.cycle_start, r.verdict.witness.size());
  // Shrinking fired and helped: the raw lasso is kept for forensics.
  EXPECT_FALSE(r.verdict.raw_witness.empty());
  EXPECT_LT(r.verdict.witness.size(), r.verdict.raw_witness.size());

  // The shrunk lasso replays deterministically: the stem applies in full,
  // the cycle strictly re-applies and re-closes under the progress
  // fingerprint, and classification reproduces the verdict kind.
  std::vector<Directive> stem, cycle;
  split_lasso(r.verdict.witness, r.verdict.cycle_start, &stem, &cycle);
  const tso::LassoReplay lr =
      tso::replay_lasso(s->n_procs, s->sim, s->build, stem, cycle);
  EXPECT_TRUE(lr.closes);
  EXPECT_EQ(lr.kind, VerdictKind::kStarvation);
  EXPECT_EQ(lr.stem.size(), stem.size());
}

TEST(Liveness, ShrunkLassoIsLocallyMinimal) {
  const Scenario* s = find_scenario("tas-loop-2p");
  ASSERT_NE(s, nullptr);
  const ExplorerResult r = s->explore(liveness_config(4));
  ASSERT_TRUE(r.verdict.is_lasso());
  for (std::size_t i = 0; i < r.verdict.witness.size(); ++i) {
    std::vector<Directive> cand = r.verdict.witness;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    const std::size_t cs =
        r.verdict.cycle_start - (i < r.verdict.cycle_start ? 1 : 0);
    std::vector<Directive> stem, cycle;
    split_lasso(cand, cs, &stem, &cycle);
    const tso::LassoReplay lr =
        tso::replay_lasso(s->n_procs, s->sim, s->build, stem, cycle);
    EXPECT_FALSE(lr.closes && lr.kind == r.verdict.kind)
        << "directive " << i << " is removable — ddmin left slack";
  }
}

TEST(Liveness, SymmetryReductionStillFindsTheStarvationVerdict) {
  // Under canonical symmetry the cycle closes on the *orbit* of states, so
  // the verdict kind is reproduced even though the renamed lasso need not
  // re-close concretely (shrinking hands such witnesses back unchanged; the
  // corpus lasso is generated with symmetry off for exactly that reason).
  const Scenario* s = find_scenario("tas-loop-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg = liveness_config(4);
  cfg.symmetric_processes = tso::SymmetryMode::kCanonical;
  const ExplorerResult r = s->explore(cfg);
  ASSERT_TRUE(r.verdict.found());
  EXPECT_EQ(r.verdict.kind, VerdictKind::kStarvation);
  EXPECT_TRUE(r.verdict.is_lasso());
}

// ---- certification --------------------------------------------------------

TEST(Liveness, FairLocksCertifyStarvationFreeAtTwoProcesses) {
  // Renewable clients (>= 2 passages) are what make abstract states recur;
  // a certification over single-passage programs would be vacuous. Ticket
  // and tournament grant in arrival/bracket order, bakery in token order —
  // no fair cycle may starve anyone within this scope.
  struct Scope {
    const char* label;
    tso::ScenarioBuilder build;
  };
  const Scope scopes[] = {
      {"ticket-2p-x2", runtime::zoo_scenario("ticket", 2, 2)},
      {"tournament-2p-x2", runtime::zoo_scenario("tournament", 2, 2)},
      {"bakery-tso-2p-x2",
       runtime::bakery_scenario(2, algos::BakeryFencing::kTso, 2)},
  };
  for (const Scope& sc : scopes) {
    const ExplorerResult r =
        tso::explore(2, {}, sc.build, liveness_config(2));
    EXPECT_FALSE(r.verdict.found()) << sc.label << ": " << r.verdict.message;
    EXPECT_EQ(r.verdict.kind, VerdictKind::kClean) << sc.label;
  }
}

// ---- ablation -------------------------------------------------------------

TEST(Liveness, OffIsBitIdenticalAndOnOnlyAddsLivenessVerdicts) {
  // Registry-wide: with the checker off nothing changes at all, and turning
  // it on never perturbs a clean exploration's schedule enumeration — it
  // can only add a liveness verdict (tas-loop-2p). steps/snapshots are
  // deliberately not compared when a verdict is found: cycle verification
  // re-applies events through the counted simulator.
  for (const auto& s : runtime::scenario_registry()) {
    ExplorerConfig off;
    off.dedup = DedupMode::kState;
    off.preemptions = s.n_procs >= 3 ? 1 : 2;
    if (s.needs_crashes) off.max_crashes = 1;
    ExplorerConfig on = off;
    on.liveness = LivenessMode::kCheck;
    const ExplorerResult a = s.explore(off);
    const ExplorerResult b = s.explore(on);
    EXPECT_EQ(a.verdict.kind == VerdictKind::kClean ||
                  a.verdict.kind == VerdictKind::kSafety,
              true)
        << s.name << ": liveness off can only see safety";
    if (b.verdict.kind == VerdictKind::kClean ||
        b.verdict.kind == VerdictKind::kSafety) {
      EXPECT_EQ(a.verdict.kind, b.verdict.kind) << s.name;
      EXPECT_EQ(a.verdict.message, b.verdict.message) << s.name;
      EXPECT_EQ(a.schedules, b.schedules) << s.name;
      EXPECT_EQ(a.truncated, b.truncated) << s.name;
      EXPECT_EQ(a.verdict.witness.size(), b.verdict.witness.size()) << s.name;
    } else {
      // A liveness verdict may legitimately preempt a safety violation
      // that lies later in DFS order: on recoverable-nofence-2p under
      // crashes, the post-crash spin on the corrupted lock is a genuine
      // one-step starvation self-loop the DFS reaches first.
      EXPECT_TRUE(b.verdict.kind == VerdictKind::kStarvation ||
                  b.verdict.kind == VerdictKind::kLivelock ||
                  b.verdict.kind == VerdictKind::kDeadlock)
          << s.name;
    }
  }
}

// ---- preconditions and the replay oracle ----------------------------------

TEST(Liveness, RequiresStateDedupAndSingleThread) {
  const Scenario* s = find_scenario("tas-loop-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig no_dedup;
  no_dedup.liveness = LivenessMode::kCheck;
  EXPECT_THROW((void)s->explore(no_dedup), CheckFailure);
  ExplorerConfig threaded = liveness_config(2);
  threaded.threads = 4;
  EXPECT_THROW((void)s->explore(threaded), CheckFailure);
}

TEST(Liveness, LassoReplayRejectsEmptyOrNonClosingCycles) {
  const Scenario* s = find_scenario("tas-loop-2p");
  ASSERT_NE(s, nullptr);
  // An empty cycle can never close.
  EXPECT_FALSE(tso::replay_lasso(s->n_procs, s->sim, s->build, {}, {}).closes);
  // A single step out of the initial state changes the progress state (the
  // scheduled process picks up or retires an operation), so it cannot close.
  const tso::LassoReplay r = tso::replay_lasso(
      s->n_procs, s->sim, s->build, {}, {{tso::ActionKind::kDeliver, 0}});
  EXPECT_FALSE(r.closes);
}

TEST(Liveness, OnStackMapKeepsNearestAncestorAndRestoresOnPop) {
  OnStackMap m;
  const Fingerprint a{1, 2}, b{3, 4};
  EXPECT_EQ(m.find(a), OnStackMap::kNotOnStack);
  EXPECT_EQ(m.push(a, 5), OnStackMap::kNotOnStack);
  EXPECT_EQ(m.push(b, 6), OnStackMap::kNotOnStack);
  EXPECT_EQ(m.find(a), 5u);
  // A deeper occurrence displaces — nearest-ancestor semantics — and pop
  // restores the shallower binding.
  EXPECT_EQ(m.push(a, 9), 5u);
  EXPECT_EQ(m.find(a), 9u);
  m.pop(a, 5);
  EXPECT_EQ(m.find(a), 5u);
  m.pop(a, OnStackMap::kNotOnStack);
  EXPECT_EQ(m.find(a), OnStackMap::kNotOnStack);
  EXPECT_EQ(m.find(b), 6u);
  EXPECT_EQ(m.size(), 1u);
  // Survives growth across many keys (forces at least one rehash).
  for (std::uint64_t i = 0; i < 3000; ++i)
    m.push(Fingerprint{i * 0x9e37ULL + 7, i}, i);
  for (std::uint64_t i = 0; i < 3000; ++i)
    EXPECT_EQ(m.find(Fingerprint{i * 0x9e37ULL + 7, i}), i) << i;
  EXPECT_EQ(m.find(b), 6u);
}

}  // namespace
}  // namespace tpa
