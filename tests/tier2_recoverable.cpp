// tier2: the recoverable-lock crash-safety proof, extended from the 2-process
// scope (tests/test_crash.cpp) to 3 processes. Minutes, not seconds — the
// crash adversary at 3p multiplies an already wide tree — so it is labelled
// `tier2`, skipped unless TPA_TIER2 is set in the environment, and excluded
// from the default ctest invocation's expectations:
//   TPA_TIER2=1 ctest -L tier2 --output-on-failure
// Stateful exploration (DedupMode::kState) is what makes the scope tractable;
// the 2p cross-check below pins that pruning changes no verdict before the
// 3p result is trusted.
#include <gtest/gtest.h>

#include <cstdlib>

#include "algos/recoverable.h"
#include "runtime/scenario.h"
#include "tso/explorer.h"

namespace tpa {
namespace {

using tso::DedupMode;
using tso::ExplorerConfig;

runtime::Scenario recoverable(int n, algos::RecoverableFencing fencing,
                              const char* name) {
  runtime::Scenario s;
  s.name = name;
  s.n_procs = static_cast<std::size_t>(n);
  s.build = runtime::recoverable_scenario(n, fencing);
  s.violating = fencing == algos::RecoverableFencing::kNone;
  s.needs_crashes = true;
  return s;
}

class Tier2 : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::getenv("TPA_TIER2") == nullptr)
      GTEST_SKIP() << "tier2 scope: set TPA_TIER2=1 to run";
  }
};

TEST_F(Tier2, FencedRecoverableLockIsCrashSafeAtThreeProcesses) {
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.max_crashes = 1;
  cfg.dedup = DedupMode::kState;
  cfg.max_schedules = 300'000'000;

  // Cross-check at the proven 2p scope first: dedup-on must agree with the
  // dedup-off verdict tests/test_crash.cpp already pins.
  const auto two =
      recoverable(2, algos::RecoverableFencing::kFull, "recoverable-2p");
  const auto r2 = two.explore(cfg);
  ASSERT_FALSE(r2.verdict.found()) << r2.verdict.message;
  ASSERT_TRUE(r2.exhausted);

  const auto three =
      recoverable(3, algos::RecoverableFencing::kFull, "recoverable-3p");
  const auto r3 = three.explore(cfg);
  EXPECT_FALSE(r3.verdict.found())
      << "crash-safety broken at 3p: " << r3.verdict.message;
  EXPECT_TRUE(r3.exhausted) << "raise max_schedules: the scope was cut off";
  EXPECT_GT(r3.dedup_hits, 0u);
}

TEST_F(Tier2, FenceFreeRecoverableLockStillFallsAtThreeProcesses) {
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.max_crashes = 1;
  cfg.dedup = DedupMode::kState;
  cfg.max_schedules = 300'000'000;

  const auto broken =
      recoverable(3, algos::RecoverableFencing::kNone, "recoverable-nofence-3p");
  const auto r = broken.explore(cfg);
  ASSERT_TRUE(r.verdict.found())
      << "the fence-free recoverable lock must fall at 3p too";
  EXPECT_THROW((void)broken.replay(r.verdict.witness), CheckFailure)
      << "the witness must replay deterministically";
}

}  // namespace
}  // namespace tpa
