// Stateful exploration: Simulator::fingerprint invariants, the visited-set
// ablation (dedup on/off must produce bit-identical verdicts and witnesses
// on every registry scenario), process-symmetry canonicalization, and the
// check.h-routed rejections of the unsound configuration combinations.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "tso/sim.h"
#include "tso/task.h"
#include "util/check.h"

namespace tpa {
namespace {

using runtime::find_scenario;
using runtime::Scenario;
using tso::DedupMode;
using tso::Directive;
using tso::ExplorerConfig;
using tso::ExplorerResult;
using tso::Fingerprint;
using tso::ProcId;
using tso::ScenarioBuilder;
using tso::SimConfig;
using tso::Simulator;
using tso::SymmetryMode;
using tso::Task;
using tso::Value;
using tso::VarId;

// ---- fingerprint unit tests ----------------------------------------------

Task<> write_and_fence(tso::Proc& p, VarId v, Value value) {
  co_await p.write(v, value);
  co_await p.fence();
}

/// Two processes writing constant values to distinct variables — every step
/// of one commutes with every step of the other.
ScenarioBuilder two_writers(Value v0 = 1, Value v1 = 1) {
  return [v0, v1](Simulator& sim) {
    const VarId x = sim.alloc_var();
    const VarId y = sim.alloc_var();
    sim.spawn(0, write_and_fence(sim.proc(0), x, v0));
    sim.spawn(1, write_and_fence(sim.proc(1), y, v1));
  };
}

/// Drives p until it is done and drained.
void run_to_completion(Simulator& sim, ProcId p) {
  while (true) {
    const tso::Proc& proc = sim.proc(p);
    if (!proc.done() && proc.has_pending()) {
      sim.deliver(p);
    } else if (!proc.buffer().empty()) {
      sim.commit(p);
    } else {
      return;
    }
  }
}

TEST(Fingerprint, InterleavingOrderDoesNotMatterStateDoes) {
  const auto build = two_writers();
  Simulator a(2, {}), b(2, {});
  build(a);
  build(b);
  run_to_completion(a, 0);
  run_to_completion(a, 1);
  run_to_completion(b, 1);
  run_to_completion(b, 0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint())
      << "independent events reordered must reach the same fingerprint";

  // A genuinely different state (different committed value) must differ.
  const auto build2 = two_writers(1, 2);
  Simulator c(2, {});
  build2(c);
  run_to_completion(c, 0);
  run_to_completion(c, 1);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  // The scheduler's current process is part of the key.
  EXPECT_NE(a.fingerprint(0), a.fingerprint(1));
}

TEST(Fingerprint, MidScheduleDivergentPathsToSameState) {
  // Both processes issue (buffer) their write; the issue steps commute, so
  // the two issue orders must fingerprint identically *mid-schedule* while
  // both buffers are still full.
  const auto build = two_writers();
  Simulator a(2, {}), b(2, {});
  build(a);
  build(b);
  ASSERT_TRUE(a.deliver(0));
  ASSERT_TRUE(a.deliver(1));
  ASSERT_TRUE(b.deliver(1));
  ASSERT_TRUE(b.deliver(0));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_FALSE(a.proc(0).buffer().empty()) << "writes must still be buffered";
}

TEST(Fingerprint, InstrumentationDoesNotLeakIntoTheFingerprint) {
  const Scenario* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  SimConfig bare = s->sim;
  bare.track_awareness = false;
  bare.track_costs = false;
  bare.record_trace = false;
  SimConfig full = s->sim;
  full.track_awareness = true;
  full.track_costs = true;
  full.record_trace = true;
  Simulator a(s->n_procs, bare), b(s->n_procs, full);
  s->build(a);
  s->build(b);
  run_to_completion(a, 0);
  run_to_completion(b, 0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint())
      << "observers and trace recording must not affect the machine state";
}

TEST(Fingerprint, SurvivesSnapshotRestore) {
  const Scenario* s = find_scenario("ticket-3p");
  ASSERT_NE(s, nullptr);
  auto sim = s->make_simulator();
  ASSERT_TRUE(sim->deliver(0));
  ASSERT_TRUE(sim->deliver(1));
  const tso::SimSnapshot snap = sim->snapshot();
  const Fingerprint before = sim->fingerprint(1);

  Simulator fresh(s->n_procs, s->sim);
  fresh.restore(snap, s->build);
  EXPECT_EQ(fresh.fingerprint(1), before);
}

TEST(Fingerprint, ProcessRenamingMapsSymmetricStatesOntoEachOther) {
  const Scenario* s = find_scenario("tas-2p");
  ASSERT_NE(s, nullptr);
  // One step by p0 in `a` vs. one step by p1 in `b`: the states are images
  // of each other under the swap renaming, so fingerprinting `a` *through*
  // the swap (current renamed too) must equal `b`'s identity fingerprint.
  auto a = s->make_simulator();
  auto b = s->make_simulator();
  ASSERT_TRUE(a->deliver(0));
  ASSERT_TRUE(b->deliver(1));
  const ProcId swap[] = {1, 0};
  EXPECT_EQ(a->fingerprint_oracle(0, swap), b->fingerprint(1));
  EXPECT_NE(a->fingerprint(0), b->fingerprint(1))
      << "without the renaming the states are distinct";
  // The canonical symmetry key quotients exactly that renaming away.
  EXPECT_EQ(a->fingerprint_symmetric(0), b->fingerprint_symmetric(1));
}

// ---- the ablation: dedup must not change any verdict ---------------------

bool same_schedule(const std::vector<Directive>& a,
                   const std::vector<Directive>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].kind != b[i].kind || a[i].proc != b[i].proc ||
        a[i].var != b[i].var)
      return false;
  return true;
}

ExplorerConfig ablation_config(const Scenario& s) {
  ExplorerConfig cfg;
  cfg.preemptions = s.n_procs >= 3 ? 1 : 2;
  // Crash–recovery scenarios are only meaningful under fault injection;
  // crash branching is wide, so drop a preemption to keep the scope small.
  if (s.name.find("recoverable") != std::string::npos) {
    cfg.max_crashes = 1;
    cfg.preemptions = 1;
  }
  return cfg;
}

TEST(DedupAblation, VerdictsAndWitnessesAreBitIdenticalOnEveryScenario) {
  for (const auto& s : runtime::scenario_registry()) {
    ExplorerConfig off = ablation_config(s);
    ExplorerConfig on = off;
    on.dedup = DedupMode::kState;
    const ExplorerResult a = s.explore(off);
    const ExplorerResult b = s.explore(on);
    EXPECT_EQ(a.verdict.found(), b.verdict.found()) << s.name;
    EXPECT_EQ(a.verdict.message, b.verdict.message) << s.name;
    EXPECT_TRUE(same_schedule(a.verdict.witness, b.verdict.witness)) << s.name;
    EXPECT_TRUE(same_schedule(a.verdict.raw_witness, b.verdict.raw_witness)) << s.name;
    EXPECT_EQ(a.exhausted, b.exhausted) << s.name;
    EXPECT_LE(b.schedules, a.schedules) << s.name;
    if (!a.verdict.found()) {
      // On safe scopes the whole tree is walked: pruning must have fired
      // somewhere, and the pruned run never explores *more*.
      EXPECT_GT(b.dedup_states, 0u) << s.name;
      EXPECT_LE(b.steps, a.steps) << s.name;
    }
    if (a.verdict.found()) {
      // The (identical) witness still replays to the violation.
      EXPECT_THROW((void)s.replay(b.verdict.witness), CheckFailure) << s.name;
    }
  }
}

TEST(DedupAblation, ParallelDedupMatchesSequentialDedup) {
  for (const char* name : {"bakery-none-2p", "bakery-tso-2p"}) {
    const Scenario* s = find_scenario(name);
    ASSERT_NE(s, nullptr);
    ExplorerConfig cfg;
    cfg.preemptions = 2;
    cfg.dedup = DedupMode::kState;
    const ExplorerResult seq = s->explore(cfg);
    cfg.threads = 4;
    const ExplorerResult par = s->explore(cfg);
    EXPECT_EQ(seq.verdict.found(), par.verdict.found()) << name;
    EXPECT_EQ(seq.verdict.message, par.verdict.message) << name;
    EXPECT_TRUE(same_schedule(seq.verdict.witness, par.verdict.witness)) << name;
  }
}

TEST(DedupAblation, SymmetryCanonicalizationPrunesMoreNotDifferently) {
  const Scenario* s = find_scenario("ticket-3p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig off;
  off.preemptions = 1;
  ExplorerConfig dedup = off;
  dedup.dedup = DedupMode::kState;
  ExplorerConfig sym = dedup;
  sym.symmetric_processes = SymmetryMode::kCanonical;

  const ExplorerResult a = s->explore(off);
  const ExplorerResult b = s->explore(dedup);
  const ExplorerResult c = s->explore(sym);
  EXPECT_FALSE(a.verdict.found()) << a.verdict.message;
  EXPECT_FALSE(b.verdict.found()) << b.verdict.message;
  EXPECT_FALSE(c.verdict.found()) << c.verdict.message;
  EXPECT_TRUE(a.exhausted && b.exhausted && c.exhausted);
  EXPECT_LT(b.steps, a.steps) << "dedup must reduce executed events";
  EXPECT_LE(c.dedup_states, b.dedup_states)
      << "canonicalization merges orbit states, never splits them";
  EXPECT_LE(c.steps, b.steps);
}

// ---- rejected configuration combinations ---------------------------------

TEST(DedupRejections, HookAndSleepSetsAndUndeclaredSymmetryAreRejected) {
  const Scenario* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);

  ExplorerConfig hook;
  hook.dedup = DedupMode::kState;
  hook.on_complete = [](const Simulator&) {};
  EXPECT_THROW((void)s->explore(hook), CheckFailure);

  ExplorerConfig sleep;
  sleep.dedup = DedupMode::kState;
  sleep.sleep_sets = true;
  EXPECT_THROW((void)s->explore(sleep), CheckFailure);

  // Symmetry needs dedup (it only canonicalizes visited-set keys) ...
  ExplorerConfig no_dedup;
  no_dedup.symmetric_processes = SymmetryMode::kCanonical;
  EXPECT_THROW((void)s->explore(no_dedup), CheckFailure);

  // ... and a scenario that declares its processes interchangeable; the
  // bakery's pid tie-break makes it asymmetric, and Scenario::explore
  // rejects the request before the structural probe even runs.
  ExplorerConfig sym;
  sym.dedup = DedupMode::kState;
  sym.symmetric_processes = SymmetryMode::kCanonical;
  try {
    (void)s->explore(sym);
    FAIL() << "symmetry on an asymmetric scenario must be rejected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("does not declare symmetric"),
              std::string::npos)
        << e.what();
  }
}

TEST(DedupRejections, StructuralProbeCatchesVisiblyAsymmetricScenarios) {
  ExplorerConfig sym;
  sym.dedup = DedupMode::kState;
  sym.symmetric_processes = SymmetryMode::kCanonical;

  // Different first ops per process.
  const ScenarioBuilder skewed = [](Simulator& sim) {
    const VarId x = sim.alloc_var();
    sim.spawn(0, write_and_fence(sim.proc(0), x, 1));
    sim.spawn(1, write_and_fence(sim.proc(1), x, 2));
  };
  EXPECT_THROW((void)tso::explore(2, {}, skewed, sym), CheckFailure);

  // A DSM variable owned by one process breaks renaming invariance.
  const ScenarioBuilder dsm = [](Simulator& sim) {
    const VarId x = sim.alloc_var(0, /*owner=*/0);
    sim.spawn(0, write_and_fence(sim.proc(0), x, 1));
    sim.spawn(1, write_and_fence(sim.proc(1), x, 1));
  };
  EXPECT_THROW((void)tso::explore(2, {}, dsm, sym), CheckFailure);

  // Canonicalization sorts invariant signatures instead of enumerating the
  // n! renamings, so wide symmetric scopes are no longer capped: 7 identical
  // writers collapse to a handful of orbit states.
  const ScenarioBuilder wide = [](Simulator& sim) {
    const VarId x = sim.alloc_var();
    for (ProcId p = 0; p < 7; ++p)
      sim.spawn(p, write_and_fence(sim.proc(p), x, 1));
  };
  ExplorerConfig wide_cfg = sym;
  wide_cfg.preemptions = 1;
  const ExplorerResult wide_result = tso::explore(7, {}, wide, wide_cfg);
  EXPECT_FALSE(wide_result.verdict.found()) << wide_result.verdict.message;
  EXPECT_TRUE(wide_result.exhausted);
  EXPECT_GT(wide_result.dedup_hits, 0u);
}

// ---- unified result JSON -------------------------------------------------

TEST(RunStatsJson, ExplorerAndFuzzResultsShareTheRunStatsFields) {
  const Scenario* s = find_scenario("tas-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.dedup = DedupMode::kState;
  const std::string ej = s->explore(cfg).to_json();
  for (const char* key :
       {"\"schedules\":", "\"steps\":", "\"truncated\":", "\"deadline_hit\":",
        "\"dedup_hits\":", "\"dedup_states\":", "\"exhausted\":"})
    EXPECT_NE(ej.find(key), std::string::npos) << ej;

  tso::FuzzConfig fc;
  fc.runs = 5;
  const std::string fj = s->fuzz(fc).to_json();
  for (const char* key :
       {"\"schedules\":", "\"steps\":", "\"truncated\":", "\"deadline_hit\":",
        "\"schedule_digest\":", "\"violating_run\":"})
    EXPECT_NE(fj.find(key), std::string::npos) << fj;
}

}  // namespace
}  // namespace tpa
