// Double-bookkeeping cross-check: the offline ExecutionAnalyzer recomputes
// Definitions 1-3 from raw event traces and must agree with the simulator's
// online flags on every event, for every lock in the zoo, under hostile and
// friendly schedules.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/zoo.h"
#include "trace/analyzer.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::lock_zoo;
using algos::run_passages;
using trace::analyze;
using trace::VarLayout;
using tso::Simulator;

class AnalyzerSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(AnalyzerSweep, OnlineEqualsOffline) {
  const auto& f = lock_zoo()[std::get<0>(GetParam())];
  const std::uint64_t seed = std::get<1>(GetParam());
  const int n = 4;
  Simulator sim(n);
  auto lock = f.make(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 2));
  if (seed == 0) {
    tso::run_round_robin(sim, 10'000'000);
  } else {
    Rng rng(seed);
    tso::run_random(sim, rng, 0.25, 10'000'000);
  }

  const VarLayout layout{sim.var_owners()};
  const auto analysis = analyze(sim.execution(), sim.num_procs(), layout);
  const auto report = trace::check_consistency(sim.execution(), analysis);
  EXPECT_TRUE(report.ok) << f.name << ": " << report.detail;

  // Aggregates must agree too.
  for (int p = 0; p < n; ++p) {
    EXPECT_EQ(analysis.fences_completed[static_cast<std::size_t>(p)],
              sim.proc(p).fences_completed())
        << f.name << " p" << p;
    EXPECT_EQ(analysis.passages_done[static_cast<std::size_t>(p)],
              sim.proc(p).passages_done())
        << f.name << " p" << p;
    EXPECT_EQ(analysis.status[static_cast<std::size_t>(p)],
              sim.proc(p).status())
        << f.name << " p" << p;
  }
  for (std::size_t v = 0; v < sim.num_vars(); ++v) {
    EXPECT_EQ(analysis.last_writer[v],
              sim.last_writer(static_cast<tso::VarId>(v)))
        << f.name << " v" << v;
  }
  // Awareness sets must match the simulator's.
  for (int p = 0; p < n; ++p) {
    EXPECT_TRUE(analysis.awareness[static_cast<std::size_t>(p)] ==
                sim.proc(p).awareness())
        << f.name << " p" << p;
  }
}

std::vector<std::tuple<std::size_t, std::uint64_t>> sweep_params() {
  std::vector<std::tuple<std::size_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < lock_zoo().size(); ++i)
    for (std::uint64_t seed : {0ull, 7ull, 1337ull}) out.emplace_back(i, seed);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AnalyzerSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<AnalyzerSweep::ParamType>& info) {
      std::string name = lock_zoo()[std::get<0>(info.param)].name + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Analyzer, ActFinTracking) {
  Simulator sim(3);
  const auto& f = algos::lock_factory("ticket");
  auto lock = f.make(sim, 3);
  for (int p = 0; p < 3; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  // Let only p0 run to completion.
  while (!sim.proc(0).done()) sim.deliver(0);
  sim.deliver(1);  // p1 enters
  const VarLayout layout{sim.var_owners()};
  const auto analysis = analyze(sim.execution(), 3, layout);
  EXPECT_EQ(analysis.finished(), (std::vector<tso::ProcId>{0}));
  EXPECT_EQ(analysis.active(), (std::vector<tso::ProcId>{1}));
}

TEST(Analyzer, RejectsCorruptTrace) {
  // A commit without a matching buffered write must be rejected.
  tso::Execution bogus;
  tso::Event e;
  e.kind = tso::EventKind::kWriteCommit;
  e.proc = 0;
  e.var = 0;
  e.value = 1;
  bogus.events.push_back(e);
  const VarLayout layout{{tso::kNoProc}};
  EXPECT_THROW(analyze(bogus, 1, layout), CheckFailure);
}

}  // namespace
}  // namespace tpa
