// Trace formatting: pretty-printer, CSV export, summaries.
#include <gtest/gtest.h>

#include <sstream>

#include "algos/zoo.h"
#include "trace/format.h"
#include "tso/schedulers.h"
#include "tso/sim.h"

namespace tpa {
namespace {

using tso::Simulator;

tso::Execution sample_trace() {
  Simulator sim(2);
  const auto& f = algos::lock_factory("tas");
  auto lock = f.make(sim, 2);
  for (int p = 0; p < 2; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  tso::run_round_robin(sim, 100'000);
  return sim.execution();
}

TEST(Format, PrintsEveryEvent) {
  const auto exec = sample_trace();
  std::ostringstream os;
  trace::print_execution(os, exec);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, exec.events.size());
  EXPECT_NE(out.find("Enter"), std::string::npos);
  EXPECT_NE(out.find("Cas"), std::string::npos);
  EXPECT_NE(out.find("crit"), std::string::npos);
}

TEST(Format, LimitTruncatesWithEllipsis) {
  const auto exec = sample_trace();
  std::ostringstream os;
  trace::FormatOptions opt;
  opt.limit = 3;
  trace::print_execution(os, exec, opt);
  EXPECT_NE(os.str().find("more events"), std::string::npos);
}

TEST(Format, VarNamesUsedWhenProvided) {
  const auto exec = sample_trace();
  std::vector<std::string> names(8, "");
  names[0] = "lock";
  std::ostringstream os;
  trace::FormatOptions opt;
  opt.var_names = &names;
  trace::print_execution(os, exec, opt);
  EXPECT_NE(os.str().find("lock="), std::string::npos);
  EXPECT_EQ(os.str().find("v0="), std::string::npos);
}

TEST(Format, CsvHasHeaderAndRows) {
  const auto exec = sample_trace();
  std::ostringstream os;
  trace::write_csv(os, exec);
  const std::string out = os.str();
  EXPECT_EQ(out.find("seq,proc,kind"), 0u);
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, exec.events.size() + 1);
}

TEST(Format, Summary) {
  const auto exec = sample_trace();
  const std::string s = trace::summarize(exec);
  EXPECT_NE(s.find("2 participating processes"), std::string::npos);
  EXPECT_NE(s.find("events"), std::string::npos);
}

}  // namespace
}  // namespace tpa
