// Trace formatting: pretty-printer, CSV export, summaries.
#include <gtest/gtest.h>

#include <sstream>

#include "algos/zoo.h"
#include "trace/format.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using tso::Simulator;

tso::Execution sample_trace() {
  Simulator sim(2);
  const auto& f = algos::lock_factory("tas");
  auto lock = f.make(sim, 2);
  for (int p = 0; p < 2; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  tso::run_round_robin(sim, 100'000);
  return sim.execution();
}

TEST(Format, PrintsEveryEvent) {
  const auto exec = sample_trace();
  std::ostringstream os;
  trace::print_execution(os, exec);
  const std::string out = os.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, exec.events.size());
  EXPECT_NE(out.find("Enter"), std::string::npos);
  EXPECT_NE(out.find("Cas"), std::string::npos);
  EXPECT_NE(out.find("crit"), std::string::npos);
}

TEST(Format, LimitTruncatesWithEllipsis) {
  const auto exec = sample_trace();
  std::ostringstream os;
  trace::FormatOptions opt;
  opt.limit = 3;
  trace::print_execution(os, exec, opt);
  EXPECT_NE(os.str().find("more events"), std::string::npos);
}

TEST(Format, VarNamesUsedWhenProvided) {
  const auto exec = sample_trace();
  std::vector<std::string> names(8, "");
  names[0] = "lock";
  std::ostringstream os;
  trace::FormatOptions opt;
  opt.var_names = &names;
  trace::print_execution(os, exec, opt);
  EXPECT_NE(os.str().find("lock="), std::string::npos);
  EXPECT_EQ(os.str().find("v0="), std::string::npos);
}

TEST(Format, CsvHasHeaderAndRows) {
  const auto exec = sample_trace();
  std::ostringstream os;
  trace::write_csv(os, exec);
  const std::string out = os.str();
  EXPECT_EQ(out.find("seq,proc,kind"), 0u);
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, exec.events.size() + 1);
}

TEST(Format, Summary) {
  const auto exec = sample_trace();
  const std::string s = trace::summarize(exec);
  EXPECT_NE(s.find("2 participating processes"), std::string::npos);
  EXPECT_NE(s.find("events"), std::string::npos);
}

// ---- witness format v3 (liveness lassos) ----------------------------------

trace::Witness sample_lasso() {
  trace::Witness w;
  w.scenario = "tas-loop-2p";
  w.n_procs = 2;
  w.violation = "fair cycle of 4 steps starves p0";
  w.verdict_kind = tso::VerdictKind::kStarvation;
  w.cycle_start = 2;
  w.directives = {{tso::ActionKind::kDeliver, 0},
                  {tso::ActionKind::kDeliver, 1},
                  {tso::ActionKind::kDeliver, 1},
                  {tso::ActionKind::kCommit, 1, tso::kNoVar}};
  return w;
}

TEST(WitnessV3, LassoRoundTripsThroughTheV3Format) {
  const trace::Witness w = sample_lasso();
  const std::string text = trace::witness_to_string(w);
  EXPECT_NE(text.find("tpa-witness v3"), std::string::npos) << text;
  EXPECT_NE(text.find("verdict starvation"), std::string::npos) << text;
  EXPECT_NE(text.find("cycle-start 2"), std::string::npos) << text;

  const trace::Witness back = trace::witness_from_string(text);
  EXPECT_EQ(back.scenario, w.scenario);
  EXPECT_EQ(back.n_procs, w.n_procs);
  EXPECT_EQ(back.verdict_kind, w.verdict_kind);
  EXPECT_EQ(back.cycle_start, w.cycle_start);
  EXPECT_TRUE(back.is_lasso());
  ASSERT_EQ(back.directives.size(), w.directives.size());
  for (std::size_t i = 0; i < w.directives.size(); ++i) {
    EXPECT_EQ(back.directives[i].kind, w.directives[i].kind) << i;
    EXPECT_EQ(back.directives[i].proc, w.directives[i].proc) << i;
  }
}

TEST(WitnessV3, DeadlockWitnessIsV3ButStemOnly) {
  trace::Witness w = sample_lasso();
  w.verdict_kind = tso::VerdictKind::kDeadlock;
  w.cycle_start = tso::kNoCycle;
  const std::string text = trace::witness_to_string(w);
  EXPECT_NE(text.find("tpa-witness v3"), std::string::npos) << text;
  EXPECT_NE(text.find("verdict deadlock"), std::string::npos) << text;
  EXPECT_EQ(text.find("cycle-start"), std::string::npos) << text;
  const trace::Witness back = trace::witness_from_string(text);
  EXPECT_EQ(back.verdict_kind, tso::VerdictKind::kDeadlock);
  EXPECT_FALSE(back.is_lasso());
}

TEST(WitnessV3, SafetyWitnessesNeverGetTheV3Header) {
  // The whole pre-liveness corpus must stay byte-identical: a safety
  // witness serializes as v1 even though the Witness struct now carries the
  // verdict fields.
  trace::Witness w = sample_lasso();
  w.verdict_kind = tso::VerdictKind::kSafety;
  w.cycle_start = tso::kNoCycle;
  const std::string text = trace::witness_to_string(w);
  EXPECT_NE(text.find("tpa-witness v1"), std::string::npos) << text;
  EXPECT_EQ(text.find("verdict"), std::string::npos) << text;
}

TEST(WitnessV3, ReaderRejectsMalformedLivenessLines) {
  const std::string v3 = trace::witness_to_string(sample_lasso());
  // cycle-start at or past the end of the schedule.
  {
    std::string bad = v3;
    const auto pos = bad.find("cycle-start 2");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, std::string("cycle-start 2").size(), "cycle-start 4");
    EXPECT_THROW(trace::witness_from_string(bad), CheckFailure);
  }
  // verdict / cycle-start keys without the v3 header.
  {
    std::string bad = v3;
    const auto pos = bad.find("tpa-witness v3");
    bad.replace(pos, std::string("tpa-witness v3").size(), "tpa-witness v1");
    EXPECT_THROW(trace::witness_from_string(bad), CheckFailure);
  }
  // a v3 header with no verdict line.
  {
    std::string bad = v3;
    const auto pos = bad.find("verdict starvation\n");
    bad.erase(pos, std::string("verdict starvation\n").size());
    EXPECT_THROW(trace::witness_from_string(bad), CheckFailure);
  }
  // a v3 verdict must be a liveness kind.
  {
    std::string bad = v3;
    const auto pos = bad.find("verdict starvation");
    bad.replace(pos, std::string("verdict starvation").size(),
                "verdict safety");
    EXPECT_THROW(trace::witness_from_string(bad), CheckFailure);
  }
}

}  // namespace
}  // namespace tpa
