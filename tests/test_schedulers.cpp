// Scheduler strategies: determinism, termination, drain behaviour, and the
// livelock/stuck distinction.
#include <gtest/gtest.h>

#include <memory>

#include "algos/zoo.h"
#include "trace/algebra.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::run_passages;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

Task<> writer_no_fence(Proc& p, VarId v) {
  co_await p.write(v, 1);
  // deliberately no fence: the scheduler must drain the buffer eventually
}

TEST(Schedulers, RoundRobinDrainsBuffersOfFinishedPrograms) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, writer_no_fence(sim.proc(0), v));
  tso::run_round_robin(sim, 1000, /*eager_commit=*/false);
  EXPECT_EQ(sim.value(v), 1) << "hardware flushes stores eventually";
  EXPECT_TRUE(tso::all_done(sim));
}

TEST(Schedulers, RoundRobinIsDeterministic) {
  auto trace = [](bool eager) {
    Simulator sim(3);
    const auto& f = algos::lock_factory("bakery");
    auto lock = f.make(sim, 3);
    for (int p = 0; p < 3; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 2));
    tso::run_round_robin(sim, 1'000'000, eager);
    return sim.execution().events;
  };
  EXPECT_TRUE(trace::same_events(trace(true), trace(true)));
  EXPECT_TRUE(trace::same_events(trace(false), trace(false)));
}

TEST(Schedulers, RandomIsDeterministicPerSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim(3);
    const auto& f = algos::lock_factory("mcs");
    auto lock = f.make(sim, 3);
    for (int p = 0; p < 3; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 2));
    Rng rng(seed);
    tso::run_random(sim, rng, 0.3, 1'000'000);
    return sim.execution().events;
  };
  EXPECT_TRUE(trace::same_events(trace(5), trace(5)));
  EXPECT_FALSE(trace::same_events(trace(5), trace(6)))
      << "different seeds should give different interleavings";
}

TEST(Schedulers, MaxStepsBoundsLivelock) {
  // A TTAS waiter spins forever while the holder never releases (we only
  // spawn the waiter after taking the lock away): run_random must stop at
  // the step bound without flagging "stuck" (delivering a spin read is
  // progress in the model).
  Simulator sim(2);
  const auto& f = algos::lock_factory("ttas");
  auto lock = f.make(sim, 2);
  sim.spawn(0, run_passages(sim.proc(0), lock, 1));
  sim.spawn(1, run_passages(sim.proc(1), lock, 1));
  // p0 acquires and stops before releasing (we never schedule it again).
  for (int i = 0; i < 4; ++i) sim.deliver(0);  // Enter, read, CAS, CS
  std::uint64_t steps = 0;
  while (steps < 5'000) {
    ASSERT_TRUE(sim.deliver(1)) << "spinning is progress in the model";
    ++steps;
  }
  EXPECT_EQ(sim.proc(1).passages_done(), 0u)
      << "the waiter spins forever while the holder is suspended";
}

TEST(Schedulers, AllDoneSemantics) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, writer_no_fence(sim.proc(0), v));
  EXPECT_FALSE(tso::all_done(sim)) << "p0 has a pending write issue";
  sim.deliver(0);  // issue; program ends but the buffer is non-empty
  EXPECT_FALSE(tso::all_done(sim)) << "buffered write still pending";
  sim.commit(0);
  EXPECT_TRUE(tso::all_done(sim))
      << "p1 never had a program; p0 done and drained";
}

TEST(Schedulers, RandomCommitProbZeroStillTerminates) {
  // commit_prob = 0 is the maximal-delay regime: buffered writes commit
  // only through fences (deliver in write mode) and the done-program drain
  // path. The bakery's fences guarantee progress, so the run must complete.
  Simulator sim(3);
  const auto& f = algos::lock_factory("bakery");
  auto lock = f.make(sim, 3);
  for (int p = 0; p < 3; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 2));
  Rng rng(17);
  const std::uint64_t steps = tso::run_random(sim, rng, 0.0, 1'000'000);
  EXPECT_LT(steps, 1'000'000u) << "must terminate, not hit the step cap";
  EXPECT_TRUE(tso::all_done(sim));
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(sim.proc(p).passages_done(), 2u) << "p" << p;
}

TEST(Schedulers, RandomCommitProbOneIsNearWriteThrough) {
  // commit_prob = 1: whenever a process with a non-empty buffer is picked
  // it commits, so buffers stay at depth <= 1 — the friendliest regime.
  Simulator sim(3);
  const auto& f = algos::lock_factory("bakery");
  auto lock = f.make(sim, 3);
  for (int p = 0; p < 3; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 2));
  Rng rng(17);
  const std::uint64_t steps = tso::run_random(sim, rng, 1.0, 1'000'000);
  EXPECT_LT(steps, 1'000'000u);
  EXPECT_TRUE(tso::all_done(sim));
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(sim.proc(p).passages_done(), 2u) << "p" << p;
}

TEST(Schedulers, RandomCommitProbZeroDrainsFinishedPrograms) {
  // Even at commit_prob = 0 a finished program's buffer must flush (the
  // hardware eventually drains stores): the done() branch commits
  // unconditionally.
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, writer_no_fence(sim.proc(0), v));
  Rng rng(1);
  tso::run_random(sim, rng, 0.0, 1'000);
  EXPECT_EQ(sim.value(v), 1);
  EXPECT_TRUE(tso::all_done(sim));
}

TEST(Schedulers, EagerCommitMakesWritesVisibleImmediately) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, writer_no_fence(sim.proc(0), v));
  tso::run_round_robin(sim, 3, /*eager_commit=*/true);
  EXPECT_EQ(sim.value(v), 1);
}

}  // namespace
}  // namespace tpa
