// Yang-Anderson tree lock ([28] in the paper): exhaustive small-scope
// exclusion, Θ(log n) fences, and the defining property — local spinning
// (constant RMRs per passage in the DSM model, even while waiting long).
#include <gtest/gtest.h>

#include <memory>

#include "algos/yang_anderson.h"
#include "algos/zoo.h"
#include "tso/explorer.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::run_passages;
using algos::YangAndersonLock;
using tso::Simulator;

TEST(YangAnderson, ExhaustivelySafeAtSmallScope) {
  const int n = 2;
  tso::ScenarioBuilder build = [n](Simulator& sim) {
    auto lock = std::make_shared<YangAndersonLock>(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  };
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_schedules = 500'000;
  const auto r = tso::explore(n, {}, build, cfg);
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
  EXPECT_TRUE(r.exhausted);
}

TEST(YangAnderson, SoloFencesAreOnePerLevelPlusExit) {
  for (int n : {2, 4, 8, 16}) {
    Simulator sim(static_cast<std::size_t>(n));
    auto lock = std::make_shared<YangAndersonLock>(sim, n);
    const int levels = lock->levels();
    sim.spawn(0, run_passages(sim.proc(0), lock, 1));
    while (!sim.proc(0).done()) sim.deliver(0);
    const auto& st = sim.proc(0).finished_passages().at(0);
    EXPECT_EQ(st.fences, static_cast<std::uint32_t>(2 * levels))
        << "one entry + one exit fence per level, n=" << n;
    EXPECT_EQ(st.cas_ops, 0u) << "pure read/write";
  }
}

TEST(YangAnderson, LocalSpinInDsm) {
  // Let p1 acquire, then make p0 wait a long time at the root: its DSM RMR
  // count must stay constant because it spins on its own segment.
  const int n = 2;
  Simulator sim(n);
  auto lock = std::make_shared<YangAndersonLock>(sim, n);
  sim.spawn(0, run_passages(sim.proc(0), lock, 1));
  sim.spawn(1, run_passages(sim.proc(1), lock, 1));
  // p1 acquires fully.
  std::uint64_t guard = 0;
  while (sim.classify_pending(1) != tso::PendingClass::kCs) {
    ASSERT_TRUE(sim.deliver(1));
    ASSERT_LT(++guard, 10'000u);
  }
  // p0 runs into the wait and spins for a long time.
  for (int i = 0; i < 5'000; ++i) sim.deliver(0);
  const auto& st = sim.proc(0).current_passage();
  EXPECT_LE(st.rmr_dsm, 12u)
      << "waiting must cost O(1) DSM RMRs (local spinning)";
  EXPECT_GT(st.events, 4'000u) << "p0 really did spin all that time";

  // Release and let everyone finish, for completeness.
  tso::run_round_robin(sim, 1'000'000);
  EXPECT_EQ(sim.proc(0).passages_done(), 1u);
  EXPECT_EQ(sim.proc(1).passages_done(), 1u);
}

TEST(YangAnderson, FairUnderHeavyRandomContention) {
  const int n = 8;
  Simulator sim(n);
  const auto& f = algos::lock_factory("yang-anderson");
  auto lock = f.make(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 3));
  Rng rng(2024);
  tso::run_random(sim, rng, 0.3, 50'000'000);
  for (int p = 0; p < n; ++p)
    EXPECT_EQ(sim.proc(p).passages_done(), 3u) << "p" << p;
}

}  // namespace
}  // namespace tpa
