// Regression tests for the coroutine patterns the library relies on.
//
// Background: GCC 12 miscompiles `co_await` expressions placed inside
// condition expressions (`if (co_await x == 0)`) — the temporary awaiter is
// not kept alive across the suspension, so await_suspend writes through a
// dangling reference and the op is silently lost. All library code uses the
// hoisted form; these tests pin that the hoisted form works through deep
// task nesting, loops, co_return, and virtual-dispatch coroutines.
#include <gtest/gtest.h>

#include <memory>

#include "algos/lock.h"
#include "tso/schedulers.h"
#include "tso/sim.h"

namespace tpa {
namespace {

using algos::SimLock;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

// A lock whose acquire exercises: loop + hoisted co_await + co_return,
// through virtual dispatch, awaited from two coroutine levels above.
struct PatternLock : SimLock {
  VarId v;
  explicit PatternLock(Simulator& sim) : v(sim.alloc_var(0)) {}
  Task<> acquire(Proc& p) override {
    while (true) {
      const Value old = co_await p.cas(v, 0, 1);
      if (old == 0) co_return;
    }
  }
  Task<> release(Proc& p) override {
    co_await p.write(v, 0);
    co_await p.fence();
  }
  std::string name() const override { return "pattern"; }
};

TEST(CoroutinePatterns, HoistedAwaitInLoopThroughThreeLevels) {
  Simulator sim(1);
  auto lock = std::make_shared<PatternLock>(sim);
  sim.spawn(0, algos::run_passages(sim.proc(0), lock, 3));
  tso::run_round_robin(sim, 10'000);
  EXPECT_EQ(sim.proc(0).passages_done(), 3u);
  EXPECT_TRUE(sim.proc(0).done());
}

Task<> deep3(Proc& p, VarId v) { co_await p.write(v, 3); }
Task<> deep2(Proc& p, VarId v) {
  co_await deep3(p, v);
  const Value got = co_await p.read(v);
  EXPECT_EQ(got, 3);  // read-own-buffer
}
Task<> deep1(Proc& p, VarId v) {
  co_await deep2(p, v);
  co_await p.fence();
}

TEST(CoroutinePatterns, ValuesPropagateThroughNestedTasks) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, deep1(sim.proc(0), v));
  tso::run_round_robin(sim, 1'000);
  EXPECT_TRUE(sim.proc(0).done());
  EXPECT_EQ(sim.value(v), 3);
}

Task<int> value_task(Proc& p, VarId v) {
  const Value got = co_await p.read(v);
  co_return static_cast<int>(got) * 2;
}
Task<> value_consumer(Proc& p, VarId v, int* out) {
  const int doubled = co_await value_task(p, v);
  *out = doubled;
}

TEST(CoroutinePatterns, ValueReturningTask) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(21);
  int out = 0;
  sim.spawn(0, value_consumer(sim.proc(0), v, &out));
  tso::run_round_robin(sim, 1'000);
  EXPECT_EQ(out, 42);
}

Task<> thrower(Proc& p, VarId v) {
  co_await p.read(v);
  throw std::runtime_error("boom");
}

TEST(CoroutinePatterns, ExceptionsPropagateToDeliver) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, thrower(sim.proc(0), v));
  EXPECT_THROW(sim.deliver(0), std::runtime_error);
}

}  // namespace
}  // namespace tpa
