// Differential tests for the incrementally maintained state fingerprint
// (tso/sim.h): after every applied directive — deliver, commit, crash,
// recover — the O(1)-maintained fingerprint must equal the full re-walk
// oracle, on every registry scenario and on randomized seeded schedules;
// snapshot()/restore() must round-trip the incremental state exactly; and
// the near-linear canonical symmetry key must be invariant under process
// renaming and induce exactly the same state partition as the old
// min-over-all-n!-renamings key on small scopes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/scenario.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using runtime::Scenario;
using runtime::find_scenario;
using runtime::scenario_registry;
using tso::ActionKind;
using tso::Directive;
using tso::Fingerprint;
using tso::ProcId;
using tso::Simulator;
using tso::kNoProc;

/// Total order for std::map keys (Fingerprint itself only defines ==).
using FpKey = std::pair<std::uint64_t, std::uint64_t>;
FpKey fp_key(const Fingerprint& f) { return {f.hi, f.lo}; }

/// The incremental fingerprint must match the from-scratch oracle for every
/// choice of current process (and for no current process at all).
void expect_matches_oracle(const Simulator& sim, const std::string& context) {
  ASSERT_EQ(sim.fingerprint(), sim.fingerprint_oracle()) << context;
  for (std::size_t p = 0; p < sim.num_procs(); ++p) {
    const auto pid = static_cast<ProcId>(p);
    ASSERT_EQ(sim.fingerprint(pid), sim.fingerprint_oracle(pid))
        << context << " (current=p" << p << ")";
  }
}

/// All directives the adversary could apply right now, in a stable order.
/// `crashes` gates fault injection so crash-free scenarios are also driven
/// through pure schedules.
std::vector<Directive> possible_directives(const Simulator& sim,
                                           bool crashes) {
  std::vector<Directive> out;
  for (std::size_t p = 0; p < sim.num_procs(); ++p) {
    const auto pid = static_cast<ProcId>(p);
    const tso::Proc& proc = sim.proc(pid);
    if (proc.crashed()) {
      if (sim.has_recovery(pid)) out.push_back({ActionKind::kRecover, pid});
    } else if (!proc.done() && proc.has_pending()) {
      out.push_back({ActionKind::kDeliver, pid});
    }
    if (!proc.crashed() && !proc.buffer().empty())
      out.push_back({ActionKind::kCommit, pid, tso::kNoVar});
    if (crashes && sim.can_crash(pid))
      out.push_back({ActionKind::kCrash, pid});
  }
  return out;
}

bool apply(Simulator& sim, const Directive& d) {
  switch (d.kind) {
    case ActionKind::kDeliver: return sim.deliver(d.proc);
    case ActionKind::kCommit: return sim.commit(d.proc, d.var);
    case ActionKind::kCrash: return sim.crash(d.proc);
    case ActionKind::kRecover: return sim.recover(d.proc);
  }
  return false;
}

/// Drives `sim` through a seeded random schedule, checking the incremental
/// fingerprint against the oracle after every single applied directive.
void drive_checked(Simulator& sim, std::uint64_t seed, std::size_t max_steps,
                   bool crashes, const std::string& context) {
  std::mt19937_64 rng(seed);
  expect_matches_oracle(sim, context + " (initial state)");
  for (std::size_t step = 0; step < max_steps; ++step) {
    std::vector<Directive> cand = possible_directives(sim, crashes);
    if (cand.empty()) break;
    const Directive d =
        cand[std::uniform_int_distribution<std::size_t>(0, cand.size() - 1)(
            rng)];
    bool applied = false;
    try {
      applied = apply(sim, d);
    } catch (const CheckFailure&) {
      // Intentionally violating registry scenarios throw from their safety
      // observer when the random schedule reaches the bug; the differential
      // check held for every step up to that point, so stop here.
      return;
    }
    ASSERT_TRUE(applied) << context << " step " << step;
    expect_matches_oracle(sim, context + " step " + std::to_string(step));
  }
}

// ---- incremental vs full-re-walk oracle ----------------------------------

TEST(FingerprintDifferential, MatchesOracleOnEveryRegistryScenario) {
  for (const Scenario& s : scenario_registry()) {
    auto sim = s.make_simulator();
    // Crash directives are injected everywhere they are legal — including
    // fail-stop crashes of scenarios without recovery sections.
    drive_checked(*sim, /*seed=*/0x5eed0000 + s.n_procs, /*max_steps=*/250,
                  /*crashes=*/true, s.name);
  }
}

TEST(FingerprintDifferential, MatchesOracleAcrossRandomSeeds) {
  for (const char* name : {"ticket-3p", "recoverable-2p", "bakery-tso-3p"}) {
    const Scenario* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
      auto sim = s->make_simulator();
      drive_checked(*sim, seed, /*max_steps=*/200, /*crashes=*/true,
                    std::string(name) + " seed " + std::to_string(seed));
    }
  }
}

TEST(FingerprintDifferential, AuditModeCrossChecksEveryCall) {
  const Scenario* s = find_scenario("recoverable-2p");
  ASSERT_NE(s, nullptr);
  tso::SimConfig cfg = s->sim;
  cfg.fingerprint = tso::FingerprintMode::kAudit;
  Simulator sim(s->n_procs, cfg);
  s->build(sim);
  std::mt19937_64 rng(7);
  for (std::size_t step = 0; step < 150; ++step) {
    std::vector<Directive> cand = possible_directives(sim, /*crashes=*/true);
    if (cand.empty()) break;
    ASSERT_TRUE(apply(
        sim, cand[std::uniform_int_distribution<std::size_t>(
                 0, cand.size() - 1)(rng)]));
    // In audit mode every fingerprint() call TPA_CHECKs itself against the
    // oracle; a divergence would throw CheckFailure here.
    (void)sim.fingerprint(cand.front().proc);
  }
}

// ---- snapshot / restore round-trips --------------------------------------

TEST(FingerprintDifferential, SnapshotRestoreRoundTripsIncrementalState) {
  for (const char* name : {"ticket-3p", "recoverable-2p"}) {
    const Scenario* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    auto sim = s->make_simulator();
    std::mt19937_64 rng(99);
    for (std::size_t step = 0; step < 60; ++step) {
      std::vector<Directive> cand =
          possible_directives(*sim, /*crashes=*/true);
      if (cand.empty()) break;
      ASSERT_TRUE(apply(*sim, cand[std::uniform_int_distribution<std::size_t>(
                                  0, cand.size() - 1)(rng)]));
      if (step % 10 != 9) continue;

      const tso::SimSnapshot snap = sim->snapshot();
      const Fingerprint before = sim->fingerprint();
      Simulator fresh(s->n_procs, s->sim);
      fresh.restore(snap, s->build);
      ASSERT_EQ(fresh.fingerprint(), before) << name << " step " << step;
      expect_matches_oracle(
          fresh, std::string(name) + " restored at step " +
                     std::to_string(step));

      // The restored simulator's *incremental* state must keep tracking
      // exactly: step both sims in lockstep and compare again.
      std::vector<Directive> next =
          possible_directives(*sim, /*crashes=*/false);
      if (!next.empty()) {
        ASSERT_TRUE(apply(*sim, next.front()));
        ASSERT_TRUE(apply(fresh, next.front()));
        ASSERT_EQ(fresh.fingerprint(), sim->fingerprint())
            << name << " diverged one step after restore";
        expect_matches_oracle(fresh, std::string(name) + " post-restore step");
      }
    }
  }
}

TEST(FingerprintDifferential, SnapshotIntoRecyclesBuffersExactly) {
  const Scenario* s = find_scenario("ticket-3p");
  ASSERT_NE(s, nullptr);
  auto a = s->make_simulator();
  auto b = s->make_simulator();
  ASSERT_TRUE(a->deliver(0));
  ASSERT_TRUE(a->deliver(1));
  ASSERT_TRUE(b->deliver(2));

  // One snapshot object, reused across states: the second snapshot_into
  // must fully overwrite the first (recycled capacity, identical contents).
  tso::SimSnapshot snap;
  a->snapshot_into(snap);
  b->snapshot_into(snap);
  Simulator fresh(s->n_procs, s->sim);
  fresh.restore(snap, s->build);
  EXPECT_EQ(fresh.fingerprint(), b->fingerprint());
  EXPECT_NE(fresh.fingerprint(), a->fingerprint());
}

// ---- symmetry canonicalization -------------------------------------------

/// The old symmetry key: minimize the (oracle) fingerprint over all n!
/// renamings. Cheap enough to enumerate on the 2p/3p scopes the test uses.
Fingerprint min_over_renamings(const Simulator& sim, ProcId current) {
  std::vector<ProcId> perm(sim.num_procs());
  std::iota(perm.begin(), perm.end(), 0);
  Fingerprint best = sim.fingerprint_oracle(current);
  while (std::next_permutation(perm.begin(), perm.end())) {
    const Fingerprint f = sim.fingerprint_oracle(current, perm.data());
    if (fp_key(f) < fp_key(best)) best = f;
  }
  return best;
}

TEST(SymmetryCanonicalization, InvariantUnderRandomProcessPermutations) {
  for (const char* name : {"tas-2p", "ticket-3p"}) {
    const Scenario* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    ASSERT_TRUE(s->symmetric) << name;

    std::vector<ProcId> perm(s->n_procs);
    std::iota(perm.begin(), perm.end(), 0);
    std::mt19937_64 rng(1234);
    for (int round = 0; round < 12; ++round) {
      std::shuffle(perm.begin(), perm.end(), rng);
      // Drive a random schedule S on `a` and its renamed image perm(S) on
      // `b`; b's state is then the perm-image of a's state, so the
      // canonical keys must agree at every step, for renamed currents.
      auto a = s->make_simulator();
      auto b = s->make_simulator();
      std::mt19937_64 sched(round * 7919 + 1);
      for (std::size_t step = 0; step < 60; ++step) {
        std::vector<Directive> cand =
            possible_directives(*a, /*crashes=*/false);
        if (cand.empty()) break;
        const Directive d = cand[std::uniform_int_distribution<std::size_t>(
            0, cand.size() - 1)(sched)];
        const Directive renamed{
            d.kind, perm[static_cast<std::size_t>(d.proc)], d.var};
        ASSERT_TRUE(apply(*a, d)) << name;
        ASSERT_TRUE(apply(*b, renamed)) << name;
        ASSERT_EQ(a->fingerprint_symmetric(d.proc),
                  b->fingerprint_symmetric(renamed.proc))
            << name << " round " << round << " step " << step;
        // And the renaming lemma for the oracle itself: fingerprinting a
        // *through* perm equals b's identity fingerprint.
        ASSERT_EQ(a->fingerprint_oracle(d.proc, perm.data()),
                  b->fingerprint(renamed.proc))
            << name << " round " << round << " step " << step;
      }
    }
  }
}

TEST(SymmetryCanonicalization, InducesSamePartitionAsMinOverAllRenamings) {
  // The canonical-order key is not numerically equal to the old
  // min-over-n! key (they canonicalize to different representatives), but
  // both must merge exactly the same states: the maps between them must be
  // one-to-one over every state either schedule family reaches.
  for (const char* name : {"tas-2p", "ticket-3p"}) {
    const Scenario* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    std::map<FpKey, std::set<FpKey>> new_to_old;
    std::map<FpKey, std::set<FpKey>> old_to_new;

    std::vector<ProcId> perm(s->n_procs);
    std::iota(perm.begin(), perm.end(), 0);
    std::mt19937_64 rng(5150);
    for (int round = 0; round < 10; ++round) {
      std::shuffle(perm.begin(), perm.end(), rng);
      auto sim = s->make_simulator();
      std::mt19937_64 sched(round * 104729 + 3);
      for (std::size_t step = 0; step < 50; ++step) {
        std::vector<Directive> cand =
            possible_directives(*sim, /*crashes=*/false);
        if (cand.empty()) break;
        const Directive d = cand[std::uniform_int_distribution<std::size_t>(
            0, cand.size() - 1)(sched)];
        ASSERT_TRUE(apply(*sim, d));
        const FpKey nk = fp_key(sim->fingerprint_symmetric(d.proc));
        const FpKey ok = fp_key(min_over_renamings(*sim, d.proc));
        new_to_old[nk].insert(ok);
        old_to_new[ok].insert(nk);
      }
    }
    for (const auto& [nk, olds] : new_to_old)
      EXPECT_EQ(olds.size(), 1u)
          << name << ": one canonical key maps to " << olds.size()
          << " min-over-n! keys — the new key merges states the old one "
             "distinguishes";
    for (const auto& [ok, news] : old_to_new)
      EXPECT_EQ(news.size(), 1u)
          << name << ": one min-over-n! key maps to " << news.size()
          << " canonical keys — the new key splits states the old one "
             "merges";
  }
}

TEST(SymmetryCanonicalization, IdentityOnAsymmetricStatesIsStillAFingerprint) {
  // Even on states with fully distinct per-process signatures the symmetric
  // key must be a *function of the orbit*: equal states get equal keys.
  const Scenario* s = find_scenario("ticket-3p");
  ASSERT_NE(s, nullptr);
  auto a = s->make_simulator();
  auto b = s->make_simulator();
  for (ProcId p : {0, 0, 1, 2, 1}) {
    ASSERT_TRUE(a->deliver(p));
    ASSERT_TRUE(b->deliver(p));
  }
  EXPECT_EQ(a->fingerprint_symmetric(1), b->fingerprint_symmetric(1));
  EXPECT_NE(fp_key(a->fingerprint_symmetric(1)),
            fp_key(a->fingerprint_symmetric(2)))
      << "the scheduler's current process must stay part of the key";
}

}  // namespace
}  // namespace tpa
