// Scenario registry shared by the fuzz, corpus-replay, and smoke tests:
// resolves the scenario ids stored in witness files (tests/corpus/*.witness)
// back to (n_procs, SimConfig, ScenarioBuilder) so serialized schedules can
// be replayed against a freshly built simulator. Builders must be
// schedule-independent and safe to invoke concurrently (the parallel
// explorer shares them across workers).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algos/bakery.h"
#include "algos/recoverable.h"
#include "algos/zoo.h"
#include "tso/schedule.h"
#include "tso/sim.h"

namespace tpa::testing {

struct NamedScenario {
  std::string name;
  std::size_t n_procs;
  tso::SimConfig sim;
  tso::ScenarioBuilder build;
  bool violating;  ///< a violation is expected to be discoverable
  /// The violation needs fault injection (crash directives) to surface;
  /// crash-free passes should treat the scenario as safe.
  bool needs_crashes = false;
};

inline tso::ScenarioBuilder bakery_scenario(int n,
                                            algos::BakeryFencing fencing) {
  return [n, fencing](tso::Simulator& sim) {
    auto lock = std::make_shared<algos::BakeryLock>(sim, n, fencing);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
}

inline tso::ScenarioBuilder recoverable_scenario(
    int n, algos::RecoverableFencing fencing) {
  return [n, fencing](tso::Simulator& sim) {
    auto lock = std::make_shared<algos::RecoverableLock>(sim, fencing);
    for (int p = 0; p < n; ++p) {
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
      sim.set_recovery(p, [lock](tso::Proc& proc) {
        return algos::run_recovered_passages(proc, lock);
      });
    }
  };
}

inline tso::ScenarioBuilder zoo_scenario(const char* name, int n,
                                         int passages) {
  const auto& factory = algos::lock_factory(name);
  return [&factory, n, passages](tso::Simulator& sim) {
    auto lock = factory.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
  };
}

inline const std::vector<NamedScenario>& scenario_registry() {
  static const std::vector<NamedScenario>* kAll = [] {
    auto* v = new std::vector<NamedScenario>;
    tso::SimConfig pso;
    pso.pso = true;
    // The fence-free bakery: the paper's "fences are unavoidable" premise.
    v->push_back({"bakery-none-2p", 2, {},
                  bakery_scenario(2, algos::BakeryFencing::kNone), true});
    v->push_back({"bakery-none-3p", 3, {},
                  bakery_scenario(3, algos::BakeryFencing::kNone), true});
    // The TSO-correct fence placement is exploitable once writes to
    // different variables may reorder (Section 6 / tests/test_pso.cpp).
    v->push_back({"bakery-tso-pso-2p", 2, pso,
                  bakery_scenario(2, algos::BakeryFencing::kTso), true});
    // Safe controls for the fuzzer and smoke tests.
    v->push_back({"bakery-tso-2p", 2, {},
                  bakery_scenario(2, algos::BakeryFencing::kTso), false});
    v->push_back({"mcs-2p", 2, {}, zoo_scenario("mcs", 2, 1), false});
    // Crash–recovery (RME) scenarios: violations only become discoverable
    // under fault injection (ExplorerConfig::max_crashes > 0 or
    // FuzzConfig::crash_prob > 0) — without crashes both are safe, so the
    // fence-free variant is a *safe* control for crash-free passes.
    v->push_back({"recoverable-2p", 2, {},
                  recoverable_scenario(2, algos::RecoverableFencing::kFull),
                  false});
    v->push_back({"recoverable-nofence-2p", 2, {},  // crash_model: lost
                  recoverable_scenario(2, algos::RecoverableFencing::kNone),
                  true, true});
    return v;
  }();
  return *kAll;
}

inline const NamedScenario* find_scenario(const std::string& name) {
  for (const auto& s : scenario_registry())
    if (s.name == name) return &s;
  return nullptr;
}

/// TPA_CHECK messages carry "<expr> at <file>:<line> — <detail>"; corpus
/// files store only the detail part so they stay valid across unrelated
/// source-line churn.
inline std::string violation_detail(const std::string& message) {
  const auto pos = message.find(" — ");
  if (pos == std::string::npos) return message;
  return message.substr(pos + std::string(" — ").size());
}

}  // namespace tpa::testing
