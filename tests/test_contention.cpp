// Interval and point contention accounting (the paper's Section 1 notions):
// point <= interval <= total, staggered passages separate them, and the
// adaptive locks' work correlates with the measured contention.
#include <gtest/gtest.h>

#include <memory>

#include "algos/bakery.h"
#include "algos/splitter.h"
#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::run_passages;
using tso::Simulator;

TEST(Contention, SoloPassageIsOne) {
  Simulator sim(4);
  const auto& f = algos::lock_factory("ticket");
  auto lock = f.make(sim, 4);
  sim.spawn(0, run_passages(sim.proc(0), lock, 2));
  while (!sim.proc(0).done()) sim.deliver(0);
  for (const auto& st : sim.proc(0).finished_passages()) {
    EXPECT_EQ(st.interval_contention, 1u);
    EXPECT_EQ(st.point_contention, 1u);
  }
}

TEST(Contention, ConcurrentPassagesSeeEachOther) {
  const int n = 3;
  Simulator sim(n);
  const auto& f = algos::lock_factory("bakery");
  auto lock = f.make(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  // All three enter before anyone finishes.
  for (int p = 0; p < n; ++p) sim.deliver(p);  // Enter x3
  tso::run_round_robin(sim, 10'000'000);
  for (int p = 0; p < n; ++p) {
    const auto& st = sim.proc(p).finished_passages().at(0);
    EXPECT_EQ(st.interval_contention, 3u) << "p" << p;
    EXPECT_EQ(st.point_contention, 3u) << "p" << p;
  }
}

TEST(Contention, StaggeredPassagesSeparateIntervalFromPoint) {
  // p0 holds its passage open while p1 then p2 run complete, disjoint
  // passages: p0's interval sees all three but its point stays at 2.
  const int n = 3;
  Simulator sim(n);
  const auto& f = algos::lock_factory("ticket");
  auto lock = f.make(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));

  // p0 enters and acquires (runs until it is about to take CS, then stops).
  std::uint64_t guard = 0;
  while (sim.classify_pending(0) != tso::PendingClass::kCs) {
    ASSERT_TRUE(sim.deliver(0));
    ASSERT_LT(++guard, 100'000u);
  }
  // p1 runs a full passage (it spins until p0... no: ticket FIFO means p1
  // waits for p0!). Use the other order: p0 holds the *passage* but we let
  // it pass CS and hold the exit section instead — simpler: finish p0's CS
  // and release, then keep its Exit pending while p1/p2 run.
  sim.deliver(0);  // CS
  while (sim.classify_pending(0) != tso::PendingClass::kExit) {
    ASSERT_TRUE(sim.deliver(0));
    ASSERT_LT(++guard, 100'000u);
  }
  // p1's complete passage, then p2's — never concurrent with each other.
  for (int q : {1, 2}) {
    while (!sim.proc(q).done()) {
      ASSERT_TRUE(sim.deliver(q));
      ASSERT_LT(++guard, 1'000'000u);
    }
  }
  sim.deliver(0);  // p0's Exit
  ASSERT_TRUE(sim.proc(0).done());

  const auto& p0 = sim.proc(0).finished_passages().at(0);
  EXPECT_EQ(p0.interval_contention, 3u)
      << "p0 overlapped with both p1 and p2";
  EXPECT_EQ(p0.point_contention, 2u)
      << "but never with more than one at a time";
  const auto& p1 = sim.proc(1).finished_passages().at(0);
  EXPECT_EQ(p1.interval_contention, 2u) << "p1 overlapped p0 only";
  EXPECT_EQ(p1.point_contention, 2u);
}

TEST(Contention, PointNeverExceedsIntervalAcrossZoo) {
  for (const auto& f : algos::lock_zoo()) {
    const int n = 4;
    Simulator sim(n);
    auto lock = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 2));
    Rng rng(71);
    tso::run_random(sim, rng, 0.3, 20'000'000);
    for (int p = 0; p < n; ++p) {
      for (const auto& st : sim.proc(p).finished_passages()) {
        EXPECT_GE(st.interval_contention, 1u) << f.name;
        EXPECT_LE(st.point_contention, st.interval_contention) << f.name;
        EXPECT_LE(st.interval_contention, static_cast<std::uint32_t>(n))
            << f.name;
      }
    }
  }
}

TEST(Contention, AdaptiveWorkTracksMeasuredInterval) {
  // For the adaptive splitter lock, per-passage critical events should be
  // bounded by a function of the measured interval contention, not of n.
  const int n = 32;
  const int k = 4;
  Simulator sim(n);
  auto lock = std::make_shared<algos::AdaptiveSplitterLock>(sim, n);
  for (int p = 0; p < k; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  Rng rng(9);
  tso::run_random(sim, rng, 0.3, 20'000'000);
  for (int p = 0; p < k; ++p) {
    const auto& st = sim.proc(p).finished_passages().at(0);
    ASSERT_LE(st.interval_contention, static_cast<std::uint32_t>(k));
    // O(k^2) collect over <= k diagonals of <= k cells, times 2 scans plus
    // registration: a generous bound that still excludes anything Θ(n).
    EXPECT_LE(st.critical,
              8u * st.interval_contention * st.interval_contention + 16u)
        << "p" << p;
  }
}

}  // namespace
}  // namespace tpa
