// Schedule fuzzing: seeded determinism, counterexample shrinking to local
// minimality, witness serialization round-trips, and the fuzzer rediscovering
// the fence-free bakery violation (and, under PSO, breaking the TSO-correct
// fence placement — beyond the exhaustive explorer's reach, which never
// reorders commits).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "trace/format.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "util/check.h"

namespace tpa {
namespace {

using runtime::find_scenario;
using tso::Directive;
using tso::FuzzConfig;
using tso::FuzzResult;
using tso::LenientReplay;
using tso::ShrinkOutcome;

const runtime::Scenario& scenario(const char* name) {
  const auto* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

TEST(Fuzz, SeededFuzzIsDeterministic) {
  const auto& s = scenario("bakery-tso-2p");
  FuzzConfig cfg;
  cfg.seed = 42;
  cfg.runs = 40;
  const FuzzResult a = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
  const FuzzResult b = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
  EXPECT_FALSE(a.verdict.found()) << a.verdict.message;
  EXPECT_EQ(a.schedules, 40u);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest)
      << "same seed must explore byte-identical schedules";

  cfg.seed = 43;
  const FuzzResult c = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
  EXPECT_NE(a.schedule_digest, c.schedule_digest)
      << "different seeds should explore different schedules";
}

TEST(Fuzz, FindsFenceFreeBakeryViolation) {
  const auto& s = scenario("bakery-none-2p");
  FuzzConfig cfg;
  cfg.seed = 7;
  cfg.runs = 500;
  const FuzzResult r = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
  ASSERT_TRUE(r.verdict.found())
      << "randomized schedules hit the fence-free bakery quickly";
  EXPECT_NE(r.verdict.message.find("mutual exclusion violated"), std::string::npos)
      << r.verdict.message;
  ASSERT_FALSE(r.verdict.witness.empty());
  ASSERT_FALSE(r.verdict.raw_witness.empty());
  EXPECT_LE(r.verdict.witness.size(), r.verdict.raw_witness.size());

  // The shrunk witness replays strictly: every directive applies and the
  // violation reproduces.
  const LenientReplay replay =
      tso::replay_lenient(s.n_procs, s.sim, s.build, r.verdict.witness);
  EXPECT_TRUE(replay.violated) << "shrunk witness must still violate";
  EXPECT_EQ(replay.applied.size(), r.verdict.witness.size())
      << "every directive of a shrunk witness must apply";
  EXPECT_THROW(tso::replay(s.n_procs, s.sim, s.build, r.verdict.witness),
               CheckFailure);
}

TEST(Fuzz, ShrinkerProducesLocallyMinimalWitness) {
  const auto& s = scenario("bakery-none-2p");
  // Take a *raw* (unshrunk) fuzzer witness: random schedules drag slack
  // along, unlike the explorer's already-tight DFS witnesses. Seed 3's
  // violating run carries several removable directives.
  FuzzConfig fcfg;
  fcfg.seed = 3;
  fcfg.runs = 500;
  fcfg.shrink = false;
  const FuzzResult found = tso::fuzz(s.n_procs, s.sim, s.build, fcfg);
  ASSERT_TRUE(found.verdict.found());

  const ShrinkOutcome shrunk =
      tso::shrink_witness(s.n_procs, s.sim, s.build, found.verdict.witness);
  EXPECT_GT(shrunk.replays, 0u);
  ASSERT_FALSE(shrunk.witness.empty());
  EXPECT_LT(shrunk.witness.size(), found.verdict.witness.size())
      << "seed 3's raw witness carries removable slack";
  EXPECT_NE(shrunk.violation.find("mutual exclusion violated"),
            std::string::npos)
      << shrunk.violation;

  // Still violating...
  EXPECT_TRUE(
      tso::replay_lenient(s.n_procs, s.sim, s.build, shrunk.witness).violated);
  // ...and locally minimal: removing any single directive no longer does.
  for (std::size_t i = 0; i < shrunk.witness.size(); ++i) {
    std::vector<Directive> cand = shrunk.witness;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(tso::replay_lenient(s.n_procs, s.sim, s.build, cand).violated)
        << "witness is not 1-minimal: directive " << i << " is removable";
  }
}

TEST(Fuzz, ExplorerWitnessIsShrunkByDefault) {
  const auto& s = scenario("bakery-none-2p");
  tso::ExplorerConfig ecfg;
  ecfg.preemptions = 1;  // shrink defaults to on
  const auto r = tso::explore(s.n_procs, s.sim, s.build, ecfg);
  ASSERT_TRUE(r.verdict.found());
  ASSERT_FALSE(r.verdict.witness.empty());
  EXPECT_THROW(tso::replay(s.n_procs, s.sim, s.build, r.verdict.witness),
               CheckFailure);
  // The reported witness is locally minimal (here the DFS-first witness is
  // often already tight, in which case shrinking was a verified no-op and
  // raw_witness stays empty).
  if (!r.verdict.raw_witness.empty()) {
    EXPECT_LT(r.verdict.witness.size(), r.verdict.raw_witness.size());
  }
  for (std::size_t i = 0; i < r.verdict.witness.size(); ++i) {
    std::vector<Directive> cand = r.verdict.witness;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(tso::replay_lenient(s.n_procs, s.sim, s.build, cand).violated)
        << "explorer witness not 1-minimal at directive " << i;
  }
}

TEST(Fuzz, FindsPsoExploitAgainstTsoFencedBakery) {
  // The exhaustive explorer only ever commits buffer heads, so this
  // violation — which needs a write-write reordering — is fuzzer territory.
  const auto& s = scenario("bakery-tso-pso-2p");
  FuzzConfig cfg;
  cfg.seed = 11;
  cfg.runs = 3'000;
  const FuzzResult r = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
  ASSERT_TRUE(r.verdict.found())
      << "PSO commit reordering breaks the TSO fence placement";
  EXPECT_NE(r.verdict.message.find("mutual exclusion violated"), std::string::npos)
      << r.verdict.message;
  // The witness must use an out-of-order commit (a named, non-head var) —
  // otherwise it would be a TSO schedule and the placement would be buggy.
  const LenientReplay replay =
      tso::replay_lenient(s.n_procs, s.sim, s.build, r.verdict.witness);
  EXPECT_TRUE(replay.violated);
}

TEST(Fuzz, WitnessRoundTripsThroughTextFormat) {
  trace::Witness w;
  w.scenario = "bakery-tso-pso-2p";
  w.n_procs = 2;
  w.pso = true;
  w.violation = "mutual exclusion violated: CS enabled for both p0 and p1";
  w.directives = {
      {tso::ActionKind::kDeliver, 0, tso::kNoVar},
      {tso::ActionKind::kCommit, 1, tso::kNoVar},
      {tso::ActionKind::kCommit, 1, 3},  // PSO: commit a named entry
      {tso::ActionKind::kDeliver, 1, tso::kNoVar},
  };
  const std::string text = trace::witness_to_string(w);
  const trace::Witness back = trace::witness_from_string(text);
  EXPECT_EQ(back.scenario, w.scenario);
  EXPECT_EQ(back.n_procs, w.n_procs);
  EXPECT_EQ(back.pso, w.pso);
  EXPECT_EQ(back.violation, w.violation);
  ASSERT_EQ(back.directives.size(), w.directives.size());
  for (std::size_t i = 0; i < w.directives.size(); ++i) {
    EXPECT_EQ(back.directives[i].kind, w.directives[i].kind) << i;
    EXPECT_EQ(back.directives[i].proc, w.directives[i].proc) << i;
    EXPECT_EQ(back.directives[i].var, w.directives[i].var) << i;
  }
  // Serialization is canonical: a second round-trip is byte-identical.
  EXPECT_EQ(trace::witness_to_string(back), text);
}

TEST(Fuzz, WitnessReaderRejectsMalformedInput) {
  EXPECT_THROW(trace::witness_from_string(""), CheckFailure);
  EXPECT_THROW(trace::witness_from_string("not-a-witness\nend\n"),
               CheckFailure);
  EXPECT_THROW(
      trace::witness_from_string("tpa-witness v1\nprocs 2\n"),  // no end
      CheckFailure);
  EXPECT_THROW(
      trace::witness_from_string("tpa-witness v1\nprocs 2\nq 0\nend\n"),
      CheckFailure);
  EXPECT_THROW(
      trace::witness_from_string("tpa-witness v1\nd 0\nend\n"),  // no procs
      CheckFailure);
}

TEST(Fuzz, LenientReplaySkipsInapplicableDirectives) {
  const auto& s = scenario("bakery-tso-2p");
  // A commit for a process whose buffer is empty simply does not apply.
  const std::vector<Directive> directives = {
      {tso::ActionKind::kCommit, 0, tso::kNoVar},
      {tso::ActionKind::kDeliver, 0, tso::kNoVar},
  };
  const LenientReplay r =
      tso::replay_lenient(s.n_procs, s.sim, s.build, directives);
  EXPECT_FALSE(r.violated);
  ASSERT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(r.applied[0].kind, tso::ActionKind::kDeliver);
  // Strict replay raises on the same input.
  EXPECT_THROW(tso::replay(s.n_procs, s.sim, s.build, directives),
               CheckFailure);
}

TEST(Fuzz, TimeBudgetBoundsThePass) {
  const auto& s = scenario("bakery-tso-2p");
  FuzzConfig cfg;
  cfg.seed = 3;
  cfg.runs = ~0ULL;  // effectively unbounded: only the clock stops it
  cfg.time_budget_ms = 100;
  const FuzzResult r = tso::fuzz(s.n_procs, s.sim, s.build, cfg);
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
  EXPECT_GT(r.schedules, 0u);
}

}  // namespace
}  // namespace tpa
