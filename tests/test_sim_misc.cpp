// Simulator odds and ends: argument validation, poke semantics, transition
// legality, pending classification coverage, contention accounting, and
// trace-off mode.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using tso::PendingClass;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

TEST(SimMisc, ArgumentValidation) {
  Simulator sim(2);
  EXPECT_THROW(sim.proc(-1), CheckFailure);
  EXPECT_THROW(sim.proc(2), CheckFailure);
  EXPECT_THROW(sim.value(0), CheckFailure) << "no variables allocated yet";
  EXPECT_THROW(sim.alloc_var(0, /*owner=*/5), CheckFailure);
  const VarId v = sim.alloc_var(7, /*owner=*/1);
  EXPECT_EQ(sim.value(v), 7);
  EXPECT_EQ(sim.var_owner(v), 1);
  EXPECT_EQ(sim.last_writer(v), tso::kNoProc);
}

Task<> read_only(Proc& p, VarId v) { co_await p.read(v); }

TEST(SimMisc, PokeOnlyBeforeExecution) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.poke(v, 99);
  EXPECT_EQ(sim.value(v), 99);
  sim.spawn(0, read_only(sim.proc(0), v));
  sim.deliver(0);  // first event recorded
  EXPECT_THROW(sim.poke(v, 1), CheckFailure);
}

Task<> just_cs(Proc& p) { co_await p.cs(); }

TEST(SimMisc, IllegalTransitionRejected) {
  Simulator sim(1);
  sim.spawn(0, just_cs(sim.proc(0)));
  EXPECT_THROW(sim.deliver(0), CheckFailure) << "CS without Enter";
}

Task<> classify_prog(Proc& p, VarId local, VarId remote) {
  co_await p.write(local, 1);  // kWriteIssue
  co_await p.read(local);      // kLocalRead (buffered)
  co_await p.read(remote);     // kCriticalRead then kNonCriticalRead
  co_await p.read(remote);
  co_await p.fence();          // kBeginFence / commits / kEndFence
  co_await p.cas(remote, 0, 1);  // kCas
}

TEST(SimMisc, PendingClassificationCoverage) {
  Simulator sim(2);
  const VarId local = sim.alloc_var(0, /*owner=*/0);
  const VarId remote = sim.alloc_var(0);
  sim.spawn(0, classify_prog(sim.proc(0), local, remote));
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kWriteIssue);
  sim.deliver(0);
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kLocalRead);
  sim.deliver(0);
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kCriticalRead);
  sim.deliver(0);
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kNonCriticalRead);
  sim.deliver(0);
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kBeginFence);
  sim.deliver(0);  // BeginFence
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kCommitNonCritical)
      << "the buffered write targets the process' own (local) variable";
  sim.deliver(0);  // commit local write
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kEndFence);
  sim.deliver(0);  // EndFence
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kCas);
  sim.deliver(0);
  EXPECT_EQ(sim.classify_pending(0), PendingClass::kNone);
  EXPECT_TRUE(sim.proc(0).done());
}

TEST(SimMisc, CommitOfLocalVarNotCritical) {
  // A commit to the process' own segment is never critical (Definition 2
  // requires a *remote* write).
  Simulator sim(1);
  const VarId local = sim.alloc_var(0, /*owner=*/0);
  sim.spawn(0, classify_prog(sim.proc(0), local, sim.alloc_var(0)));
  for (int i = 0; i < 6; ++i) sim.deliver(0);
  for (const auto& e : sim.execution().events) {
    if (e.kind == tso::EventKind::kWriteCommit) {
      EXPECT_FALSE(e.critical) << "local commit must not be critical";
    }
  }
}

TEST(SimMisc, TotalContentionCountsParticipants) {
  Simulator sim(4);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, read_only(sim.proc(0), v));
  sim.spawn(1, read_only(sim.proc(1), v));
  EXPECT_EQ(sim.total_contention(), 0u) << "nothing executed yet";
  sim.deliver(0);
  EXPECT_EQ(sim.total_contention(), 1u);
  sim.deliver(1);
  EXPECT_EQ(sim.total_contention(), 2u);
}

TEST(SimMisc, TraceOffModeStillComputesCosts) {
  tso::SimConfig cfg;
  cfg.record_trace = false;
  cfg.track_awareness = false;
  Simulator sim(2, cfg);
  const auto& f = algos::lock_factory("bakery");
  auto lock = f.make(sim, 2);
  for (int p = 0; p < 2; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  tso::run_round_robin(sim, 1'000'000);
  EXPECT_EQ(sim.num_events(), 0u) << "no trace recorded";
  for (int p = 0; p < 2; ++p) {
    EXPECT_EQ(sim.proc(p).passages_done(), 1u);
    EXPECT_EQ(sim.proc(p).finished_passages().at(0).fences, 3u)
        << "per-passage counters work without the trace";
  }
}

TEST(SimMisc, DoubleSpawnRejected) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, read_only(sim.proc(0), v));
  EXPECT_THROW(sim.spawn(0, read_only(sim.proc(0), v)), CheckFailure);
}

// ---- diagnostic message content ------------------------------------------
// All misuse goes through TPA_CHECK, and the messages must carry enough
// context to act on (which variable, which process, where in the buffer).

std::string message_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const CheckFailure& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CheckFailure";
  return {};
}

TEST(SimMisc, LatePokeMessageNamesTheVariable) {
  Simulator sim(1);
  sim.alloc_var(0);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, read_only(sim.proc(0), v));
  sim.deliver(0);
  const std::string msg = message_of([&] { sim.poke(v, 1); });
  EXPECT_NE(msg.find("poke(v1)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("after the execution started"), std::string::npos)
      << msg;
}

Task<> two_writes(Proc& p, VarId a, VarId b) {
  co_await p.write(a, 1);
  co_await p.write(b, 2);
}

TEST(SimMisc, NonHeadCommitUnderTsoMessageNamesVarAndPosition) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, two_writes(sim.proc(0), a, b));
  sim.deliver(0);
  sim.deliver(0);  // buffer now [a, b]
  const std::string msg = message_of([&] { sim.commit(0, b); });
  EXPECT_NE(msg.find("only the buffer head may commit"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("v1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("p0"), std::string::npos) << msg;

  tso::SimConfig pso;
  pso.pso = true;
  Simulator relaxed(1, pso);
  const VarId c = relaxed.alloc_var(0);
  const VarId d = relaxed.alloc_var(0);
  relaxed.spawn(0, two_writes(relaxed.proc(0), c, d));
  relaxed.deliver(0);
  relaxed.deliver(0);
  EXPECT_TRUE(relaxed.commit(0, d)) << "PSO allows non-head commits";
}

TEST(SimMisc, DoubleSpawnMessageNamesTheProcess) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(1, read_only(sim.proc(1), v));
  const std::string msg =
      message_of([&] { sim.spawn(1, read_only(sim.proc(1), v)); });
  EXPECT_NE(msg.find("p1 already has a program"), std::string::npos) << msg;
}

}  // namespace
}  // namespace tpa
