// BigNat arbitrary-precision arithmetic.
#include <gtest/gtest.h>

#include "util/bignum.h"
#include "util/check.h"
#include "util/rng.h"

namespace tpa {
namespace {

TEST(BigNat, BasicConstructionAndDecimal) {
  EXPECT_EQ(BigNat().to_decimal(), "0");
  EXPECT_EQ(BigNat(0).to_decimal(), "0");
  EXPECT_EQ(BigNat(12345).to_decimal(), "12345");
  EXPECT_EQ(BigNat(~0ULL).to_decimal(), "18446744073709551615");
}

TEST(BigNat, FromDecimalRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigNat::from_decimal(big).to_decimal(), big);
  EXPECT_EQ(BigNat::from_decimal("0").to_decimal(), "0");
  EXPECT_EQ(BigNat::from_decimal("000042").to_decimal(), "42");
  EXPECT_THROW(BigNat::from_decimal("12a3"), CheckFailure);
  EXPECT_THROW(BigNat::from_decimal(""), CheckFailure);
}

TEST(BigNat, AdditionWithCarries) {
  const BigNat a = BigNat(~0ULL);
  const BigNat b(1);
  EXPECT_EQ((a + b).to_decimal(), "18446744073709551616");
  EXPECT_EQ((a + a).to_decimal(), "36893488147419103230");
}

TEST(BigNat, SubtractionWithBorrows) {
  const BigNat a = BigNat::from_decimal("18446744073709551616");  // 2^64
  EXPECT_EQ((a - BigNat(1)).to_decimal(), "18446744073709551615");
  EXPECT_EQ((a - a).to_decimal(), "0");
  EXPECT_THROW(BigNat(1) - BigNat(2), CheckFailure);
}

TEST(BigNat, MultiplicationCrossLimb) {
  const BigNat a = BigNat(~0ULL);
  EXPECT_EQ((a * a).to_decimal(), "340282366920938463426481119284349108225");
  EXPECT_EQ((a * BigNat(0)).to_decimal(), "0");
  EXPECT_EQ((BigNat(0) * a).to_decimal(), "0");
}

TEST(BigNat, Pow2AndBitLength) {
  EXPECT_EQ(BigNat::pow2(0).to_decimal(), "1");
  EXPECT_EQ(BigNat::pow2(10).to_decimal(), "1024");
  EXPECT_EQ(BigNat::pow2(64).to_decimal(), "18446744073709551616");
  EXPECT_EQ(BigNat::pow2(100).bit_length(), 101u);
  EXPECT_EQ(BigNat(0).bit_length(), 0u);
  EXPECT_EQ(BigNat(1).bit_length(), 1u);
  EXPECT_EQ(BigNat(255).bit_length(), 8u);
}

TEST(BigNat, PowMatchesRepeatedMultiply) {
  const BigNat three(3);
  BigNat expect(1);
  for (int e = 0; e <= 40; ++e) {
    EXPECT_EQ(three.pow(static_cast<std::uint64_t>(e)).compare(expect), 0)
        << "3^" << e;
    expect = expect * three;
  }
  EXPECT_EQ(BigNat(0).pow(0).to_decimal(), "1") << "0^0 == 1 by convention";
  EXPECT_EQ(BigNat(0).pow(5).to_decimal(), "0");
}

TEST(BigNat, Factorial) {
  EXPECT_EQ(BigNat::factorial(0).to_decimal(), "1");
  EXPECT_EQ(BigNat::factorial(1).to_decimal(), "1");
  EXPECT_EQ(BigNat::factorial(5).to_decimal(), "120");
  EXPECT_EQ(BigNat::factorial(20).to_decimal(), "2432902008176640000");
  EXPECT_EQ(
      BigNat::factorial(30).to_decimal(),
      "265252859812191058636308480000000");
}

TEST(BigNat, ComparisonTotalOrder) {
  const BigNat a(5), b(7);
  const BigNat big = BigNat::pow2(200);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a < big);
  EXPECT_TRUE(big > b);
  EXPECT_TRUE(a == BigNat(5));
  EXPECT_TRUE(a != b);
}

TEST(BigNat, DivmodSmall) {
  BigNat a = BigNat::from_decimal("1000000000000000000000");
  EXPECT_EQ(a.divmod_small(7), 6u) << "10^21 mod 7 == 6";
  // a is now floor(10^21 / 7).
  EXPECT_EQ(a.to_decimal(), "142857142857142857142");
}

TEST(BigNat, Log2Accuracy) {
  EXPECT_NEAR(BigNat(1024).log2(), 10.0, 1e-9);
  EXPECT_NEAR(BigNat::pow2(500).log2(), 500.0, 1e-9);
  const BigNat f100 = BigNat::factorial(100);
  // log2(100!) = 524.76499...
  EXPECT_NEAR(f100.log2(), 524.76499, 1e-3);
}

TEST(BigNat, RandomizedAddSubInverse) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BigNat a(rng());
    BigNat b(rng());
    for (int i = 0; i < static_cast<int>(rng.below(4)); ++i) a = a * BigNat(rng());
    for (int i = 0; i < static_cast<int>(rng.below(4)); ++i) b = b * BigNat(rng());
    const BigNat sum = a + b;
    EXPECT_EQ((sum - b).compare(a), 0);
    EXPECT_EQ((sum - a).compare(b), 0);
  }
}

TEST(BigNat, RandomizedMulDistributes) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const BigNat a(rng()), b(rng()), c(rng());
    EXPECT_EQ((a * (b + c)).compare(a * b + a * c), 0);
  }
}

}  // namespace
}  // namespace tpa
