// fuzz-smoke: a ~2-second seeded fuzz pass that runs in tier-1 CI (ctest
// label "fuzz-smoke", its own binary so the label applies cleanly). One
// violating scenario proves the find→shrink→replay pipeline end to end; one
// safe scenario guards against false positives. Seeded, so any hit is
// immediately reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "runtime/scenario.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "util/check.h"

namespace tpa {
namespace {

TEST(FuzzSmoke, SeededPassFindsKnownViolationAndStaysQuietOnSafeLock) {
  const auto* broken = runtime::find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.violation_found)
      << "the fence-free bakery must fall within the smoke budget";
  ASSERT_FALSE(hit.witness.empty());
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.witness)
                  .violated)
      << "smoke witness must replay";

  const auto* safe = runtime::find_scenario("bakery-tso-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet;
  quiet.seed = 0xC0FFEEULL;
  quiet.runs = ~0ULL;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.violation_found) << ok.violation;
  EXPECT_GT(ok.schedules, 0u);
}

// Crash-injection smoke: the seeded fuzzer with crash_prob > 0 must take
// down the fence-free recoverable lock (buffer-lost crashes leave a stale
// owner announcement), and the same fault load must stay quiet on the
// fenced variant. Runs under both the fuzz-smoke and sanitize labels, so
// the crash/recover machinery gets an ASan+UBSan pass in tier-1 CI.
TEST(FuzzSmoke, CrashInjectionBreaksFenceFreeRecoverableLockOnly) {
  const auto* broken = runtime::find_scenario("recoverable-nofence-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  cfg.crash_prob = 0.1;
  cfg.max_crashes = 1;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.violation_found)
      << "the fence-free recoverable lock must fall under crash injection";
  ASSERT_FALSE(hit.witness.empty());
  EXPECT_TRUE(std::any_of(hit.witness.begin(), hit.witness.end(),
                          [](const tso::Directive& d) {
                            return d.kind == tso::ActionKind::kCrash;
                          }))
      << "the shrunk witness must retain a crash directive";
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.witness)
                  .violated)
      << "crash smoke witness must replay";

  const auto* safe = runtime::find_scenario("recoverable-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet = cfg;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.violation_found) << ok.violation;
  EXPECT_GT(ok.schedules, 0u);
}

// Dedup ablation smoke: stateful exploration (visited-set pruning) must
// find the very same violation, with the very same witness, as the raw
// enumeration — on a violating scope and on a safe one. Runs under both the
// fuzz-smoke and sanitize labels, so the fingerprint/visited-set machinery
// gets an ASan+UBSan pass in tier-1 CI.
TEST(FuzzSmoke, StateDedupKeepsVerdictsAndWitnessesBitIdentical) {
  const auto* broken = runtime::find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  tso::ExplorerConfig off;
  off.preemptions = 2;
  tso::ExplorerConfig on = off;
  on.dedup = tso::DedupMode::kState;
  const tso::ExplorerResult a = broken->explore(off);
  const tso::ExplorerResult b = broken->explore(on);
  ASSERT_TRUE(a.violation_found && b.violation_found);
  EXPECT_EQ(a.violation, b.violation);
  ASSERT_EQ(a.witness.size(), b.witness.size());
  for (std::size_t i = 0; i < a.witness.size(); ++i) {
    EXPECT_EQ(a.witness[i].kind, b.witness[i].kind) << i;
    EXPECT_EQ(a.witness[i].proc, b.witness[i].proc) << i;
    EXPECT_EQ(a.witness[i].var, b.witness[i].var) << i;
  }
  EXPECT_THROW((void)broken->replay(b.witness), CheckFailure)
      << "the dedup run's witness must still replay to the violation";

  const auto* safe = runtime::find_scenario("bakery-tso-2p");
  ASSERT_NE(safe, nullptr);
  const tso::ExplorerResult sa = safe->explore(off);
  const tso::ExplorerResult sb = safe->explore(on);
  EXPECT_FALSE(sa.violation_found) << sa.violation;
  EXPECT_FALSE(sb.violation_found) << sb.violation;
  EXPECT_TRUE(sa.exhausted && sb.exhausted);
  EXPECT_GT(sb.dedup_hits, 0u) << "pruning must fire on the safe scope";
  EXPECT_LT(sb.steps, sa.steps)
      << "pruning must reduce executed machine events";
}

}  // namespace
}  // namespace tpa
