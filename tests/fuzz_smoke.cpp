// fuzz-smoke: a ~2-second seeded fuzz pass that runs in tier-1 CI (ctest
// label "fuzz-smoke", its own binary so the label applies cleanly). One
// violating scenario proves the find→shrink→replay pipeline end to end; one
// safe scenario guards against false positives. Seeded, so any hit is
// immediately reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "scenario_registry.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "util/check.h"

namespace tpa {
namespace {

TEST(FuzzSmoke, SeededPassFindsKnownViolationAndStaysQuietOnSafeLock) {
  const auto* broken = testing::find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.violation_found)
      << "the fence-free bakery must fall within the smoke budget";
  ASSERT_FALSE(hit.witness.empty());
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.witness)
                  .violated)
      << "smoke witness must replay";

  const auto* safe = testing::find_scenario("bakery-tso-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet;
  quiet.seed = 0xC0FFEEULL;
  quiet.runs = ~0ULL;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.violation_found) << ok.violation;
  EXPECT_GT(ok.runs, 0u);
}

// Crash-injection smoke: the seeded fuzzer with crash_prob > 0 must take
// down the fence-free recoverable lock (buffer-lost crashes leave a stale
// owner announcement), and the same fault load must stay quiet on the
// fenced variant. Runs under both the fuzz-smoke and sanitize labels, so
// the crash/recover machinery gets an ASan+UBSan pass in tier-1 CI.
TEST(FuzzSmoke, CrashInjectionBreaksFenceFreeRecoverableLockOnly) {
  const auto* broken = testing::find_scenario("recoverable-nofence-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  cfg.crash_prob = 0.1;
  cfg.max_crashes = 1;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.violation_found)
      << "the fence-free recoverable lock must fall under crash injection";
  ASSERT_FALSE(hit.witness.empty());
  EXPECT_TRUE(std::any_of(hit.witness.begin(), hit.witness.end(),
                          [](const tso::Directive& d) {
                            return d.kind == tso::ActionKind::kCrash;
                          }))
      << "the shrunk witness must retain a crash directive";
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.witness)
                  .violated)
      << "crash smoke witness must replay";

  const auto* safe = testing::find_scenario("recoverable-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet = cfg;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.violation_found) << ok.violation;
  EXPECT_GT(ok.runs, 0u);
}

}  // namespace
}  // namespace tpa
