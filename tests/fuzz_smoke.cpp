// fuzz-smoke: a ~2-second seeded fuzz pass that runs in tier-1 CI (ctest
// label "fuzz-smoke", its own binary so the label applies cleanly). One
// violating scenario proves the find→shrink→replay pipeline end to end; one
// safe scenario guards against false positives. Seeded, so any hit is
// immediately reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/scenario.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "tso/visited.h"
#include "util/check.h"

namespace tpa {
namespace {

TEST(FuzzSmoke, SeededPassFindsKnownViolationAndStaysQuietOnSafeLock) {
  const auto* broken = runtime::find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.verdict.found())
      << "the fence-free bakery must fall within the smoke budget";
  ASSERT_FALSE(hit.verdict.witness.empty());
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.verdict.witness)
                  .violated)
      << "smoke witness must replay";

  const auto* safe = runtime::find_scenario("bakery-tso-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet;
  quiet.seed = 0xC0FFEEULL;
  quiet.runs = ~0ULL;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.verdict.found()) << ok.verdict.message;
  EXPECT_GT(ok.schedules, 0u);
}

// Crash-injection smoke: the seeded fuzzer with crash_prob > 0 must take
// down the fence-free recoverable lock (buffer-lost crashes leave a stale
// owner announcement), and the same fault load must stay quiet on the
// fenced variant. Runs under both the fuzz-smoke and sanitize labels, so
// the crash/recover machinery gets an ASan+UBSan pass in tier-1 CI.
TEST(FuzzSmoke, CrashInjectionBreaksFenceFreeRecoverableLockOnly) {
  const auto* broken = runtime::find_scenario("recoverable-nofence-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  cfg.crash_prob = 0.1;
  cfg.max_crashes = 1;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.verdict.found())
      << "the fence-free recoverable lock must fall under crash injection";
  ASSERT_FALSE(hit.verdict.witness.empty());
  EXPECT_TRUE(std::any_of(hit.verdict.witness.begin(), hit.verdict.witness.end(),
                          [](const tso::Directive& d) {
                            return d.kind == tso::ActionKind::kCrash;
                          }))
      << "the shrunk witness must retain a crash directive";
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.verdict.witness)
                  .violated)
      << "crash smoke witness must replay";

  const auto* safe = runtime::find_scenario("recoverable-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet = cfg;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.verdict.found()) << ok.verdict.message;
  EXPECT_GT(ok.schedules, 0u);
}

// Dedup ablation smoke: stateful exploration (visited-set pruning) must
// find the very same violation, with the very same witness, as the raw
// enumeration — on a violating scope and on a safe one. Runs under both the
// fuzz-smoke and sanitize labels, so the fingerprint/visited-set machinery
// gets an ASan+UBSan pass in tier-1 CI.
TEST(FuzzSmoke, StateDedupKeepsVerdictsAndWitnessesBitIdentical) {
  const auto* broken = runtime::find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  tso::ExplorerConfig off;
  off.preemptions = 2;
  tso::ExplorerConfig on = off;
  on.dedup = tso::DedupMode::kState;
  const tso::ExplorerResult a = broken->explore(off);
  const tso::ExplorerResult b = broken->explore(on);
  ASSERT_TRUE(a.verdict.found() && b.verdict.found());
  EXPECT_EQ(a.verdict.message, b.verdict.message);
  ASSERT_EQ(a.verdict.witness.size(), b.verdict.witness.size());
  for (std::size_t i = 0; i < a.verdict.witness.size(); ++i) {
    EXPECT_EQ(a.verdict.witness[i].kind, b.verdict.witness[i].kind) << i;
    EXPECT_EQ(a.verdict.witness[i].proc, b.verdict.witness[i].proc) << i;
    EXPECT_EQ(a.verdict.witness[i].var, b.verdict.witness[i].var) << i;
  }
  EXPECT_THROW((void)broken->replay(b.verdict.witness), CheckFailure)
      << "the dedup run's witness must still replay to the violation";

  const auto* safe = runtime::find_scenario("bakery-tso-2p");
  ASSERT_NE(safe, nullptr);
  const tso::ExplorerResult sa = safe->explore(off);
  const tso::ExplorerResult sb = safe->explore(on);
  EXPECT_FALSE(sa.verdict.found()) << sa.verdict.message;
  EXPECT_FALSE(sb.verdict.found()) << sb.verdict.message;
  EXPECT_TRUE(sa.exhausted && sb.exhausted);
  EXPECT_GT(sb.dedup_hits, 0u) << "pruning must fire on the safe scope";
  EXPECT_LT(sb.steps, sa.steps)
      << "pruning must reduce executed machine events";
}

// Visited-set semantics under forced shard collisions: every fingerprint
// shares the same `hi` word, so all entries land in one shard and the probe
// chains + in-place growth get exercised far past the initial table size.
// Runs under the sanitize label so the open-addressing code gets an
// ASan+UBSan pass in tier-1 CI.
TEST(FuzzSmoke, VisitedSetDominanceSurvivesForcedCollisionsAndGrowth) {
  using tso::VisitedSet;
  VisitedSet set(/*concurrent=*/false);
  const std::uint64_t hi = 0xABCDEF0123456789ULL;

  // Dominance ordering on a single key: weaker budgets are subsumed, a
  // strictly stronger claim overwrites in place (size must not grow).
  const tso::Fingerprint fp{/*lo=*/42, hi};
  EXPECT_FALSE(set.subsumed(fp, {1, 0, 50}));
  EXPECT_TRUE(set.insert(fp, {1, 0, 50}));
  EXPECT_TRUE(set.subsumed(fp, {1, 0, 50}));
  EXPECT_TRUE(set.subsumed(fp, {0, 0, 10}));
  EXPECT_FALSE(set.subsumed(fp, {2, 0, 50})) << "more preemptions left";
  EXPECT_FALSE(set.subsumed(fp, {1, 1, 50})) << "more crashes left";
  EXPECT_FALSE(set.subsumed(fp, {1, 0, 51})) << "more steps left";
  const std::size_t before = set.size();
  EXPECT_TRUE(set.insert(fp, {3, 1, 99})) << "stronger claim must land";
  EXPECT_EQ(set.size(), before) << "stronger claim overwrites in place";
  EXPECT_TRUE(set.subsumed(fp, {2, 1, 70}));
  EXPECT_FALSE(set.insert(fp, {2, 0, 40}))
      << "a dominated claim adds nothing";

  // Incomparable budgets must coexist: neither dominates the other.
  const tso::Fingerprint fp2{/*lo=*/43, hi};
  EXPECT_TRUE(set.insert(fp2, {2, 0, 10}));
  EXPECT_TRUE(set.insert(fp2, {0, 0, 99})) << "incomparable claim must land";
  EXPECT_TRUE(set.subsumed(fp2, {1, 0, 5}));
  EXPECT_TRUE(set.subsumed(fp2, {0, 0, 80}));

  // Growth: push one shard far past its initial capacity (1024 slots,
  // grows at ~70% load) and verify every claim is still retrievable.
  for (std::uint64_t lo = 0; lo < 4'000; ++lo)
    EXPECT_TRUE(set.insert({lo + 100, hi},
                           {static_cast<int>(lo % 3), 0, lo}));
  for (std::uint64_t lo = 0; lo < 4'000; ++lo) {
    EXPECT_TRUE(set.subsumed({lo + 100, hi},
                             {static_cast<int>(lo % 3), 0, lo}))
        << lo;
    EXPECT_FALSE(set.subsumed({lo + 100, hi},
                              {static_cast<int>(lo % 3), 1, lo}))
        << lo;
  }
  EXPECT_GE(set.size(), 4'000u);
}

// Concurrent stress: many threads hammer the same shard (shared `hi`) with
// overlapping keys and mixed budgets, forcing lock contention, probe-chain
// races, and under-lock growth. Sound outcome: after the dust settles every
// key holds a claim at least as strong as the strongest inserted one. The
// sanitize twin runs this under ASan+UBSan (and the spinlocks keep TSan-like
// interleavings honest on a single core via yielding contention).
TEST(FuzzSmoke, VisitedSetConcurrentInsertsKeepStrongestClaim) {
  using tso::VisitedSet;
  VisitedSet set(/*concurrent=*/true);
  const std::uint64_t hi = 0x5115511551155115ULL;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 1'500;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&set, hi, t] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        // Thread t claims key k with budget strength t (totally ordered so
        // the strongest surviving claim is well-defined: kThreads - 1).
        set.insert({k, hi}, {t, t, static_cast<std::uint64_t>(t)});
        // Interleave reads; any answer is fine, it must just not crash.
        (void)set.subsumed({(k * 7) % kKeys, hi}, {0, 0, 0});
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(set.subsumed(
        {k, hi}, {kThreads - 1, kThreads - 1, kThreads - 1}))
        << "key " << k << " lost the strongest inserted claim";
    EXPECT_FALSE(set.subsumed({k, hi}, {kThreads, 0, 0}))
        << "key " << k << " reports a claim nobody inserted";
  }
}

}  // namespace
}  // namespace tpa
