// fuzz-smoke: a ~2-second seeded fuzz pass that runs in tier-1 CI (ctest
// label "fuzz-smoke", its own binary so the label applies cleanly). One
// violating scenario proves the find→shrink→replay pipeline end to end; one
// safe scenario guards against false positives. Seeded, so any hit is
// immediately reproducible.
#include <gtest/gtest.h>

#include <string>

#include "scenario_registry.h"
#include "tso/fuzz.h"
#include "tso/schedule.h"
#include "util/check.h"

namespace tpa {
namespace {

TEST(FuzzSmoke, SeededPassFindsKnownViolationAndStaysQuietOnSafeLock) {
  const auto* broken = testing::find_scenario("bakery-none-2p");
  ASSERT_NE(broken, nullptr);
  tso::FuzzConfig cfg;
  cfg.seed = 0xC0FFEEULL;
  cfg.runs = ~0ULL;
  cfg.time_budget_ms = 1'500;
  const tso::FuzzResult hit =
      tso::fuzz(broken->n_procs, broken->sim, broken->build, cfg);
  ASSERT_TRUE(hit.violation_found)
      << "the fence-free bakery must fall within the smoke budget";
  ASSERT_FALSE(hit.witness.empty());
  EXPECT_TRUE(tso::replay_lenient(broken->n_procs, broken->sim, broken->build,
                                  hit.witness)
                  .violated)
      << "smoke witness must replay";

  const auto* safe = testing::find_scenario("bakery-tso-2p");
  ASSERT_NE(safe, nullptr);
  tso::FuzzConfig quiet;
  quiet.seed = 0xC0FFEEULL;
  quiet.runs = ~0ULL;
  quiet.time_budget_ms = 500;
  const tso::FuzzResult ok =
      tso::fuzz(safe->n_procs, safe->sim, safe->build, quiet);
  EXPECT_FALSE(ok.violation_found) << ok.violation;
  EXPECT_GT(ok.runs, 0u);
}

}  // namespace
}  // namespace tpa
