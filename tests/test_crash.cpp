// Crash–recovery fault model, end to end: simulator crash/recover
// semantics under both buffer models, the explorer's crash-point
// enumeration (proof for the fenced recoverable lock, refutation with a
// shrunk replayable witness for the fence-free one), witness v2
// serialization, the exploration watchdog, atomic witness files, and the
// structured-check plumbing the harness hardening added.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algos/recoverable.h"
#include "runtime/scenario.h"
#include "trace/analyzer.h"
#include "trace/format.h"
#include "tso/explorer.h"
#include "tso/fuzz.h"
#include "tso/observers.h"
#include "tso/schedule.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

namespace fs = std::filesystem;
using runtime::find_scenario;
using tso::ActionKind;
using tso::CrashModel;
using tso::Directive;
using tso::EventKind;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

Task<> write_two(Proc& p, VarId a, VarId b) {
  co_await p.write(a, 1);
  co_await p.write(b, 2);
  co_await p.fence();
}

// ---- simulator semantics -------------------------------------------------

TEST(CrashSim, FailStopCrashLosesBufferAndCountsAsDone) {
  Simulator sim(2);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, write_two(sim.proc(0), a, b));
  EXPECT_FALSE(sim.can_crash(1)) << "never spawned: nothing to crash";
  sim.deliver(0);  // issue a=1
  sim.deliver(0);  // issue b=2
  ASSERT_TRUE(sim.can_crash(0));
  ASSERT_TRUE(sim.crash(0));
  EXPECT_TRUE(sim.proc(0).crashed());
  EXPECT_TRUE(sim.proc(0).done()) << "no recovery section: fail-stop";
  EXPECT_TRUE(sim.proc(0).buffer().empty());
  EXPECT_EQ(sim.value(a), 0) << "buffer-lost: issued writes vanish";
  EXPECT_EQ(sim.value(b), 0);
  EXPECT_FALSE(sim.can_crash(0)) << "already crashed";
  EXPECT_FALSE(sim.crash(0));
  EXPECT_FALSE(sim.recover(0)) << "no recovery section registered";
  // The Crash event records how many buffered writes were lost.
  const auto& events = sim.execution().events;
  ASSERT_FALSE(events.empty());
  const tso::Event& crash = events.back();
  EXPECT_EQ(crash.kind, EventKind::kCrash);
  EXPECT_EQ(crash.proc, 0);
  EXPECT_EQ(crash.value, 2) << "two uncommitted writes were lost";
}

TEST(CrashSim, BufferLostAndBufferFlushedDiverge) {
  // The same program, the same crash point — opposite memory outcomes.
  tso::SimConfig lost;
  lost.crash_model = CrashModel::kBufferLost;
  Simulator sl(1, lost);
  const VarId la = sl.alloc_var(0);
  const VarId lb = sl.alloc_var(0);
  sl.spawn(0, write_two(sl.proc(0), la, lb));
  sl.deliver(0);
  sl.deliver(0);
  ASSERT_TRUE(sl.crash(0));
  EXPECT_EQ(sl.value(la), 0);
  EXPECT_EQ(sl.value(lb), 0);
  EXPECT_EQ(sl.execution().events.back().value, 2);

  tso::SimConfig flushed;
  flushed.crash_model = CrashModel::kBufferFlushed;
  Simulator sf(1, flushed);
  const VarId fa = sf.alloc_var(0);
  const VarId fb = sf.alloc_var(0);
  sf.spawn(0, write_two(sf.proc(0), fa, fb));
  sf.deliver(0);
  sf.deliver(0);
  ASSERT_TRUE(sf.crash(0));
  EXPECT_EQ(sf.value(fa), 1) << "flushed: the buffer drains at the crash";
  EXPECT_EQ(sf.value(fb), 2);
  // The flush shows up as ordinary WriteCommits *before* the Crash event,
  // which then has nothing left to lose.
  const auto& events = sf.execution().events;
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[events.size() - 3].kind, EventKind::kWriteCommit);
  EXPECT_EQ(events[events.size() - 2].kind, EventKind::kWriteCommit);
  EXPECT_EQ(events.back().kind, EventKind::kCrash);
  EXPECT_EQ(events.back().value, 0) << "nothing was lost";
}

Task<> read_into(Proc& p, VarId v, Value* out) {
  const Value got = co_await p.read(v);
  *out = got;
}

TEST(CrashSim, RecoverRunsAFreshIncarnation) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  Value seen = -1;
  sim.spawn(0, write_two(sim.proc(0), a, a));
  sim.set_recovery(0, [a, &seen](Proc& p) { return read_into(p, a, &seen); });
  sim.deliver(0);  // issue a=1 (coalesces with a=2 next)
  ASSERT_TRUE(sim.crash(0));
  EXPECT_TRUE(sim.proc(0).crashed());
  EXPECT_FALSE(sim.proc(0).done())
      << "a crashed process with a recovery section is not done";
  ASSERT_TRUE(sim.recover(0));
  EXPECT_FALSE(sim.proc(0).crashed());
  EXPECT_EQ(sim.proc(0).incarnations(), 1u);
  sim.deliver(0);  // the recovery section's read
  EXPECT_EQ(seen, 0) << "the lost write must not be visible post-recovery";
  EXPECT_TRUE(sim.proc(0).done());
  EXPECT_FALSE(sim.recover(0)) << "recover is only legal while crashed";
}

TEST(CrashSim, StrictReplayAppliesCrashAndRecoverDirectives) {
  // tso::replay drives the same machine through recorded x/r directives.
  const auto sink = std::make_shared<Value>(-1);
  const auto build = [sink](Simulator& sim) {
    const VarId a = sim.alloc_var(0);
    sim.spawn(0, write_two(sim.proc(0), a, sim.alloc_var(0)));
    sim.set_recovery(
        0, [a, sink](Proc& p) { return read_into(p, a, sink.get()); });
  };
  const std::vector<Directive> directives = {
      {ActionKind::kDeliver, 0}, {ActionKind::kDeliver, 0},
      {ActionKind::kCrash, 0},   {ActionKind::kRecover, 0},
      {ActionKind::kDeliver, 0},
  };
  const auto sim = tso::replay(1, {}, build, directives);
  ASSERT_NE(sim, nullptr);
  EXPECT_TRUE(sim->proc(0).done());
  EXPECT_EQ(sim->proc(0).incarnations(), 1u);
  // The directive log round-trips through the recorder too.
  ASSERT_EQ(sim->execution().directives.size(), directives.size());
  EXPECT_EQ(sim->execution().directives[2].kind, ActionKind::kCrash);
  EXPECT_EQ(sim->execution().directives[3].kind, ActionKind::kRecover);
}

// ---- observers over crash schedules --------------------------------------

const tso::CostObserver* cost_observer(const Simulator& sim) {
  for (const auto& o : sim.observers())
    if (const auto* c = dynamic_cast<const tso::CostObserver*>(o.get()))
      return c;
  return nullptr;
}

TEST(CrashObservers, PostRecoveryCriticalEventsAreChargedSeparately) {
  const auto* s = find_scenario("recoverable-2p");
  ASSERT_NE(s, nullptr);
  Simulator sim(s->n_procs, s->sim);
  s->build(sim);
  sim.deliver(0);  // p0 issues its owner announcement
  ASSERT_TRUE(sim.crash(0));
  ASSERT_TRUE(sim.recover(0));
  tso::run_round_robin(sim, 10'000);
  ASSERT_TRUE(tso::all_done(sim));
  const tso::CostObserver* cost = cost_observer(sim);
  ASSERT_NE(cost, nullptr);
  EXPECT_GT(cost->recovery_critical(0), 0u)
      << "the recovered process pays critical events again";
  EXPECT_EQ(cost->recovery_critical(1), 0u)
      << "a process that never crashed has no recovery charge";
}

TEST(CrashObservers, OfflineAnalyzerIsConsistentOnCrashTraces) {
  const auto* s = find_scenario("recoverable-2p");
  ASSERT_NE(s, nullptr);
  Simulator sim(s->n_procs, s->sim);
  s->build(sim);
  sim.deliver(0);
  sim.deliver(0);
  ASSERT_TRUE(sim.crash(0));
  ASSERT_TRUE(sim.recover(0));
  tso::run_round_robin(sim, 10'000);
  ASSERT_TRUE(tso::all_done(sim));
  const trace::VarLayout layout{sim.var_owners()};
  const auto analysis =
      trace::analyze(sim.execution(), sim.num_procs(), layout);
  const auto report = trace::check_consistency(sim.execution(), analysis);
  EXPECT_TRUE(report.ok) << report.detail;
  for (std::size_t p = 0; p < sim.num_procs(); ++p) {
    EXPECT_TRUE(analysis.awareness[p] ==
                sim.proc(static_cast<tso::ProcId>(p)).awareness())
        << "p" << p;
  }
}

// ---- explorer: proof, refutation, parity, watchdog -----------------------

TEST(CrashExplorer, ProvesRecoverableLockCrashSafeForSmallScope) {
  const auto* s = find_scenario("recoverable-2p");
  ASSERT_NE(s, nullptr);
  for (const CrashModel model :
       {CrashModel::kBufferLost, CrashModel::kBufferFlushed}) {
    SCOPED_TRACE(tso::to_string(model));
    tso::SimConfig sim = s->sim;
    sim.crash_model = model;
    tso::ExplorerConfig cfg;
    cfg.preemptions = 1;
    cfg.max_crashes = 1;
    const auto r = tso::explore(s->n_procs, sim, s->build, cfg);
    EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
    EXPECT_TRUE(r.exhausted) << "the scope must be fully explored (a proof)";
    EXPECT_FALSE(r.deadline_hit);
    if (model == CrashModel::kBufferLost) {
      EXPECT_EQ(r.schedules, 788u);
      EXPECT_EQ(r.truncated, 19352u);
    } else {
      EXPECT_EQ(r.schedules, 3050u);
      EXPECT_EQ(r.truncated, 17106u);
    }
  }
}

TEST(CrashExplorer, RefutesFenceFreeVariantWithShrunkCrashWitness) {
  const auto* s = find_scenario("recoverable-nofence-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.max_crashes = 1;
  const auto r = tso::explore(s->n_procs, s->sim, s->build, cfg);
  ASSERT_TRUE(r.verdict.found());
  EXPECT_EQ(r.schedules, 40u) << "DFS order is deterministic";
  EXPECT_NE(r.verdict.message.find("mutual exclusion violated"), std::string::npos)
      << r.verdict.message;
  ASSERT_EQ(r.verdict.witness.size(), 17u);
  const auto count_kind = [&r](ActionKind k) {
    return std::count_if(r.verdict.witness.begin(), r.verdict.witness.end(),
                         [k](const Directive& d) { return d.kind == k; });
  };
  EXPECT_EQ(count_kind(ActionKind::kCrash), 1);
  EXPECT_EQ(count_kind(ActionKind::kRecover), 1);

  // The shrunk witness replays deterministically, and is 1-minimal: no
  // single directive (crash and recover included) can be dropped.
  const auto replay =
      tso::replay_lenient(s->n_procs, s->sim, s->build, r.verdict.witness);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.applied.size(), r.verdict.witness.size());
  for (std::size_t i = 0; i < r.verdict.witness.size(); ++i) {
    std::vector<Directive> cand = r.verdict.witness;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(tso::replay_lenient(s->n_procs, s->sim, s->build, cand)
                     .violated)
        << "directive " << i << " is removable";
  }
}

TEST(CrashExplorer, CrashWitnessRoundTripsThroughTheV2Format) {
  const auto* s = find_scenario("recoverable-nofence-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.max_crashes = 1;
  const auto r = tso::explore(s->n_procs, s->sim, s->build, cfg);
  ASSERT_TRUE(r.verdict.found());

  trace::Witness w;
  w.scenario = s->name;
  w.n_procs = s->n_procs;
  w.crash_model = s->sim.crash_model;
  w.violation = runtime::violation_detail(r.verdict.message);
  w.directives = r.verdict.witness;
  const std::string text = trace::witness_to_string(w);
  EXPECT_NE(text.find("tpa-witness v2"), std::string::npos)
      << "crash-bearing witnesses use the v2 header";
  EXPECT_NE(text.find("crash-model lost"), std::string::npos) << text;
  EXPECT_NE(text.find("\nx 0\n"), std::string::npos)
      << "crash directives serialize as 'x <proc>'";
  EXPECT_NE(text.find("\nr 0\n"), std::string::npos)
      << "recover directives serialize as 'r <proc>'";

  const trace::Witness back = trace::witness_from_string(text);
  EXPECT_EQ(back.scenario, w.scenario);
  EXPECT_EQ(back.crash_model, w.crash_model);
  ASSERT_EQ(back.directives.size(), w.directives.size());
  for (std::size_t i = 0; i < w.directives.size(); ++i) {
    EXPECT_EQ(back.directives[i].kind, w.directives[i].kind) << i;
    EXPECT_EQ(back.directives[i].proc, w.directives[i].proc) << i;
  }
  // Crash-free witnesses keep the v1 header byte-for-byte, so the existing
  // corpus format is untouched.
  trace::Witness plain = w;
  plain.directives = {{ActionKind::kDeliver, 0}};
  EXPECT_NE(trace::witness_to_string(plain).find("tpa-witness v1"),
            std::string::npos);
}

TEST(CrashExplorer, MaxCrashesZeroKeepsScheduleCountsBitIdentical) {
  // The crash-free pins from tests/test_explorer.cpp, re-asserted with the
  // fault-injection machinery compiled in and explicitly disabled.
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  const std::vector<std::array<std::uint64_t, 3>> pins = {
      {0, 2, 0}, {1, 12, 30}, {2, 11486, 6396}};
  for (const auto& [pre, schedules, truncated] : pins) {
    tso::ExplorerConfig cfg;
    cfg.preemptions = static_cast<int>(pre);
    cfg.max_crashes = 0;
    const auto r = tso::explore(s->n_procs, s->sim, s->build, cfg);
    EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
    EXPECT_EQ(r.schedules, schedules) << "pre=" << pre;
    EXPECT_EQ(r.truncated, truncated) << "pre=" << pre;
    EXPECT_TRUE(r.exhausted);
  }
  const auto* b = find_scenario("bakery-none-2p");
  ASSERT_NE(b, nullptr);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_crashes = 0;
  const auto r = tso::explore(b->n_procs, b->sim, b->build, cfg);
  EXPECT_TRUE(r.verdict.found());
  EXPECT_EQ(r.schedules, 53u);
  EXPECT_EQ(r.verdict.witness.size(), 16u);
}

TEST(CrashExplorer, WatchdogStopsLongExplorations) {
  const auto* s = find_scenario("recoverable-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;  // minutes of work without the watchdog
  cfg.max_crashes = 1;
  cfg.time_budget_ms = 50;
  const auto r = tso::explore(s->n_procs, s->sim, s->build, cfg);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_FALSE(r.exhausted)
      << "a deadline-stopped exploration must not claim a proof";
  EXPECT_FALSE(r.verdict.found());
}

TEST(CrashExplorer, CheckpointingDoesNotChangeCrashExploration) {
  const auto* s = find_scenario("recoverable-nofence-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig with;
  with.preemptions = 1;
  with.max_crashes = 1;
  with.checkpoint = true;
  tso::ExplorerConfig without = with;
  without.checkpoint = false;
  const auto a = tso::explore(s->n_procs, s->sim, s->build, with);
  const auto b = tso::explore(s->n_procs, s->sim, s->build, without);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.verdict.found(), b.verdict.found());
  ASSERT_EQ(a.verdict.witness.size(), b.verdict.witness.size());
  for (std::size_t i = 0; i < a.verdict.witness.size(); ++i) {
    EXPECT_EQ(a.verdict.witness[i].kind, b.verdict.witness[i].kind) << i;
    EXPECT_EQ(a.verdict.witness[i].proc, b.verdict.witness[i].proc) << i;
  }
  EXPECT_GT(a.restores, 0u) << "checkpointing must actually engage";
  EXPECT_EQ(b.restores, 0u);
}

// ---- fuzzer ---------------------------------------------------------------

TEST(CrashFuzz, CrashKnobsDoNotPerturbTheRngStreamWhenDisabled) {
  // crash_prob == 0 must leave the schedule digest bit-identical no matter
  // what max_crashes says — the crash guard short-circuits before drawing.
  const auto* s = find_scenario("recoverable-nofence-2p");
  ASSERT_NE(s, nullptr);
  tso::FuzzConfig a;
  a.seed = 42;
  a.runs = 200;
  tso::FuzzConfig b = a;
  b.max_crashes = 7;
  const auto ra = tso::fuzz(s->n_procs, s->sim, s->build, a);
  const auto rb = tso::fuzz(s->n_procs, s->sim, s->build, b);
  EXPECT_EQ(ra.schedule_digest, rb.schedule_digest);
  EXPECT_EQ(ra.verdict.found(), rb.verdict.found());
}

// ---- atomic witness files -------------------------------------------------

class WitnessFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("tpa-witness-test-") + info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(WitnessFileTest, WriteIsAtomicAndRoundTrips) {
  trace::Witness w;
  w.scenario = "recoverable-nofence-2p";
  w.n_procs = 2;
  w.crash_model = CrashModel::kBufferLost;
  w.violation = "mutual exclusion violated";
  w.directives = {{ActionKind::kDeliver, 0},
                  {ActionKind::kCrash, 0},
                  {ActionKind::kRecover, 0}};
  const fs::path path = dir_ / "x.witness";
  trace::write_witness_file(path.string(), w);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"))
      << "the tmp file must be renamed away";
  trace::Witness back;
  std::string error;
  ASSERT_TRUE(trace::try_read_witness_file(path.string(), &back, &error))
      << error;
  EXPECT_EQ(back.scenario, w.scenario);
  EXPECT_EQ(back.crash_model, w.crash_model);
  EXPECT_EQ(back.directives.size(), w.directives.size());
}

TEST_F(WitnessFileTest, LenientReadReportsCorruptAndMissingFiles) {
  trace::Witness out;
  std::string error;
  EXPECT_FALSE(trace::try_read_witness_file((dir_ / "absent.witness").string(),
                                            &out, &error));
  EXPECT_FALSE(error.empty());

  const fs::path garbage = dir_ / "garbage.witness";
  std::ofstream(garbage) << "not a witness at all\n";
  error.clear();
  EXPECT_FALSE(trace::try_read_witness_file(garbage.string(), &out, &error));
  EXPECT_FALSE(error.empty());

  // A truncated header-only file (the failure mode atomic writes prevent).
  const fs::path cut = dir_ / "cut.witness";
  std::ofstream(cut) << "tpa-witness v2\nscenario foo\n";
  error.clear();
  EXPECT_FALSE(trace::try_read_witness_file(cut.string(), &out, &error));
  EXPECT_FALSE(error.empty());
}

// ---- structured checks ----------------------------------------------------

TEST(CrashChecks, TaskStartFailuresAreStructured) {
  Task<> empty;
  try {
    empty.start();
    FAIL() << "start() on an empty task must throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("invalid"), std::string::npos)
        << e.what();
  }
}

TEST(CrashChecks, AnalyzerRejectsEventsNamingVarsOutsideTheLayout) {
  tso::Execution bogus;
  tso::Event e;
  e.kind = EventKind::kRead;
  e.proc = 0;
  e.var = 99;
  bogus.events.push_back(e);
  const trace::VarLayout layout{{tso::kNoProc}};
  try {
    trace::analyze(bogus, 1, layout);
    FAIL() << "an out-of-layout var must be rejected";
  } catch (const CheckFailure& ex) {
    EXPECT_NE(std::string(ex.what()).find("outside the layout"),
              std::string::npos)
        << ex.what();
  }
}

// ---- the recoverable lock itself ------------------------------------------

TEST(RecoverableLock, FencedReleaseIsCrashOrderedFenceFreeIsNot) {
  // The whole point of the fenced variant: release drains owner before
  // lock, so a crash mid-release can never leave lock free while the
  // announcement still claims ownership. The fence-free release leaves
  // exactly that window (the explorer refutation above walks through it);
  // here we pin the single-process buffer shape that creates it.
  const auto* s = find_scenario("recoverable-nofence-2p");
  ASSERT_NE(s, nullptr);
  Simulator sim(s->n_procs, s->sim);
  s->build(sim);
  // Drive p0 through acquire and the CS to its fence-free release.
  for (int steps = 0; sim.classify_pending(0) != tso::PendingClass::kExit;
       ++steps) {
    ASSERT_LT(steps, 100) << "p0 never reached its exit transition";
    ASSERT_TRUE(sim.deliver(0));
  }
  // Both release writes are buffered: [lock=0, owner=0], in that order.
  ASSERT_EQ(sim.proc(0).buffer().size(), 2u);
  // Commit only the lock release, then crash: memory now says the lock is
  // free but the announcement still names p0 — the stale-owner state.
  ASSERT_TRUE(sim.commit(0));
  ASSERT_TRUE(sim.crash(0));
  EXPECT_EQ(sim.value(0), 0) << "lock freed";
  EXPECT_EQ(sim.value(1), 1) << "owner announcement survived the crash";
}

}  // namespace
}  // namespace tpa
