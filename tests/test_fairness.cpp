// First-come-first-served fairness of the bakery family, checked from raw
// traces: if p's doorway completes before q's doorway begins, p enters the
// critical section first. (The bakery is the canonical FCFS lock; FIFO
// hand-off locks like ticket/MCS satisfy an analogous property at the
// acquire point.)
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using tso::EventKind;
using tso::Simulator;

struct PassageTimes {
  std::uint64_t doorway_start = 0;  // first write issue after Enter
  std::uint64_t doorway_end = 0;    // second EndFence of the passage
  std::uint64_t cs = 0;
  bool complete = false;
};

// Extracts per-(proc, passage) doorway/CS timestamps from a bakery trace.
std::vector<PassageTimes> bakery_passages(const tso::Execution& exec, int n,
                                          int passages) {
  std::vector<PassageTimes> out(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(passages));
  std::map<std::pair<int, int>, int> end_fences;  // (proc, passage) -> count
  for (const auto& e : exec.events) {
    const auto key =
        static_cast<std::size_t>(e.proc) * static_cast<std::size_t>(passages) +
        e.passage;
    if (key >= out.size()) continue;
    PassageTimes& t = out[key];
    switch (e.kind) {
      case EventKind::kWriteIssue:
        if (t.doorway_start == 0) t.doorway_start = e.seq + 1;
        break;
      case EventKind::kEndFence:
        if (!e.implied_by_cas) {
          const int c = ++end_fences[{e.proc, static_cast<int>(e.passage)}];
          if (c == 2) t.doorway_end = e.seq + 1;
        }
        break;
      case EventKind::kCs:
        t.cs = e.seq + 1;
        t.complete = true;
        break;
      default:
        break;
    }
  }
  return out;
}

TEST(Fairness, BakeryIsFcfsUnderRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 4, passages = 3;
    Simulator sim(n);
    const auto& f = algos::lock_factory("bakery");
    auto lock = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
    Rng rng(seed);
    tso::run_random(sim, rng, 0.3, 50'000'000);

    const auto times = bakery_passages(sim.execution(), n, passages);
    int checked_pairs = 0;
    for (const auto& a : times) {
      if (!a.complete || a.doorway_end == 0) continue;
      for (const auto& b : times) {
        if (&a == &b || !b.complete || b.doorway_start == 0) continue;
        if (a.doorway_end < b.doorway_start) {
          EXPECT_LT(a.cs, b.cs)
              << "FCFS violated (seed " << seed << "): a passage whose "
              << "doorway closed at " << a.doorway_end
              << " entered the CS after one whose doorway opened at "
              << b.doorway_start;
          ++checked_pairs;
        }
      }
    }
    EXPECT_GT(checked_pairs, 0) << "seed " << seed
                                << ": no ordered pairs — test vacuous";
  }
}

TEST(Fairness, TicketIsFifoAtTheAcquirePoint) {
  // Ticket lock: CS order equals fetch&increment (ticket) order.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 4, passages = 2;
    Simulator sim(n);
    const auto& f = algos::lock_factory("ticket");
    auto lock = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, passages));
    Rng rng(seed * 13);
    tso::run_random(sim, rng, 0.3, 50'000'000);

    // Successful CAS events on the ticket variable (v0) in trace order must
    // match CS order.
    std::vector<std::pair<int, int>> ticket_order, cs_order;  // (proc, pass)
    for (const auto& e : sim.execution().events) {
      if (e.kind == EventKind::kCas && e.var == 0 && e.cas_success)
        ticket_order.emplace_back(e.proc, static_cast<int>(e.passage));
      if (e.kind == EventKind::kCs)
        cs_order.emplace_back(e.proc, static_cast<int>(e.passage));
    }
    EXPECT_EQ(ticket_order, cs_order) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tpa
