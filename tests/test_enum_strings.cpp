// Enum <-> string coverage: every enumerator of EventKind and PendingClass
// must print a unique, meaningful name, from_string must invert to_string,
// and Event::to_string() must render every event shape (CAS outcomes,
// implied fences, buffered reads) without falling back to "?".
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "tso/event.h"
#include "tso/explorer.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using tso::Event;
using tso::EventKind;
using tso::PendingClass;

TEST(EnumStrings, EventKindRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto k = EventKind::kRead; k <= EventKind::kRecover;
       k = static_cast<EventKind>(static_cast<int>(k) + 1)) {
    const std::string name = tso::to_string(k);
    EXPECT_NE(name, "?") << static_cast<int>(k);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::event_kind_from_string(name), k) << name;
  }
  EXPECT_EQ(seen.size(), 11u) << "update when the event alphabet grows";
}

TEST(EnumStrings, PendingClassRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto c = PendingClass::kNone; c <= PendingClass::kExit;
       c = static_cast<PendingClass>(static_cast<int>(c) + 1)) {
    const std::string name = tso::to_string(c);
    EXPECT_NE(name, "?") << static_cast<int>(c);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::pending_class_from_string(name), c) << name;
  }
  EXPECT_EQ(seen.size(), 13u) << "update when PendingClass grows";
}

TEST(EnumStrings, DedupModeRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto m : {tso::DedupMode::kOff, tso::DedupMode::kState}) {
    const std::string name = tso::to_string(m);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::dedup_mode_from_string(name), m) << name;
  }
  EXPECT_EQ(seen.size(), 2u) << "update when DedupMode grows";
}

TEST(EnumStrings, SymmetryModeRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto m : {tso::SymmetryMode::kOff, tso::SymmetryMode::kCanonical}) {
    const std::string name = tso::to_string(m);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::symmetry_mode_from_string(name), m) << name;
  }
  EXPECT_EQ(seen.size(), 2u) << "update when SymmetryMode grows";
}

TEST(EnumStrings, VerdictKindRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto k : {tso::VerdictKind::kClean, tso::VerdictKind::kSafety,
                 tso::VerdictKind::kStarvation, tso::VerdictKind::kLivelock,
                 tso::VerdictKind::kDeadlock}) {
    const std::string name = tso::to_string(k);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::verdict_kind_from_string(name), k) << name;
  }
  EXPECT_EQ(seen.size(), 5u) << "update when VerdictKind grows";
  EXPECT_THROW(tso::verdict_kind_from_string("fairness"), CheckFailure);
}

TEST(EnumStrings, LivenessModeRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto m : {tso::LivenessMode::kOff, tso::LivenessMode::kCheck}) {
    const std::string name = tso::to_string(m);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::liveness_mode_from_string(name), m) << name;
  }
  EXPECT_EQ(seen.size(), 2u) << "update when LivenessMode grows";
  EXPECT_THROW(tso::liveness_mode_from_string("on"), CheckFailure);
}

TEST(EnumStrings, FingerprintModeRoundTripsAndNamesAreUnique) {
  std::set<std::string> seen;
  for (auto m :
       {tso::FingerprintMode::kIncremental, tso::FingerprintMode::kAudit}) {
    const std::string name = tso::to_string(m);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    EXPECT_EQ(tso::fingerprint_mode_from_string(name), m) << name;
  }
  EXPECT_EQ(seen.size(), 2u) << "update when FingerprintMode grows";
}

TEST(EnumStrings, UnknownNamesAreRejected) {
  EXPECT_THROW(tso::event_kind_from_string("bogus"), CheckFailure);
  EXPECT_THROW(tso::event_kind_from_string(""), CheckFailure);
  EXPECT_THROW(tso::pending_class_from_string("bogus"), CheckFailure);
  EXPECT_THROW(tso::pending_class_from_string(""), CheckFailure);
  EXPECT_THROW(tso::dedup_mode_from_string("bogus"), CheckFailure);
  EXPECT_THROW(tso::dedup_mode_from_string(""), CheckFailure);
  EXPECT_THROW(tso::symmetry_mode_from_string("bogus"), CheckFailure);
  EXPECT_THROW(tso::symmetry_mode_from_string(""), CheckFailure);
  EXPECT_THROW(tso::fingerprint_mode_from_string("bogus"), CheckFailure);
  EXPECT_THROW(tso::fingerprint_mode_from_string(""), CheckFailure);
  try {
    (void)tso::fingerprint_mode_from_string("oracle");
    FAIL() << "unknown FingerprintMode name must be rejected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("unknown FingerprintMode"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("'oracle'"), std::string::npos)
        << e.what();
  }
}

TEST(EnumStrings, EventToStringCoversEveryKind) {
  for (auto k = EventKind::kRead; k <= EventKind::kRecover;
       k = static_cast<EventKind>(static_cast<int>(k) + 1)) {
    Event e{.kind = k};
    e.proc = 0;
    e.var = 0;
    const std::string s = e.to_string();
    EXPECT_NE(s.find(tso::to_string(k)), std::string::npos) << s;
    EXPECT_EQ(s.find('?'), std::string::npos) << s;
  }
}

TEST(EnumStrings, EventToStringRendersCasOutcomeAndImpliedFences) {
  Event ok{.kind = EventKind::kCas};
  ok.proc = 1;
  ok.var = 2;
  ok.value = 7;
  ok.value2 = 3;
  ok.cas_success = true;
  EXPECT_NE(ok.to_string().find("cas-ok"), std::string::npos)
      << ok.to_string();
  EXPECT_NE(ok.to_string().find("old=3"), std::string::npos)
      << ok.to_string();

  Event fail = ok;
  fail.cas_success = false;
  EXPECT_NE(fail.to_string().find("cas-fail"), std::string::npos)
      << fail.to_string();

  Event implied{.kind = EventKind::kBeginFence};
  implied.proc = 0;
  implied.implied_by_cas = true;
  EXPECT_NE(implied.to_string().find("implied"), std::string::npos)
      << implied.to_string();

  Event buffered{.kind = EventKind::kRead};
  buffered.proc = 0;
  buffered.var = 1;
  buffered.from_buffer = true;
  EXPECT_NE(buffered.to_string().find("buf"), std::string::npos)
      << buffered.to_string();
}

}  // namespace
}  // namespace tpa
