// Native instrumented locks: mutual exclusion under real threads, and the
// fence/RMW accounting that makes the adaptive price observable on x86.
#include <gtest/gtest.h>

#include "runtime/harness.h"
#include "runtime/locks.h"

namespace tpa {
namespace {

using runtime::rt_lock_zoo;
using runtime::run_stress;
using runtime::thread_counters;

class RtZoo : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RtZoo, ExclusionUnderThreads) {
  const auto& f = rt_lock_zoo()[GetParam()];
  const int threads = 4;
  auto lock = f.make(threads);
  const auto r = run_stress(*lock, threads, 2000);
  EXPECT_TRUE(r.exclusion_ok)
      << f.name << ": shared counter lost increments";
  EXPECT_EQ(r.total_ops, 8000u);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, RtZoo, ::testing::Range<std::size_t>(0, 9),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = rt_lock_zoo()[info.param].name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(RtCounters, SingleThreadBarrierCounts) {
  // Deterministic single-thread counts per passage.
  struct Expect {
    const char* name;
    double barriers;  // fences + rmws per uncontended passage
  };
  // tas: 1 CAS. ticket: 1 fetch_add. bakery: 2 fences. mcs: 1 xchg + 1 CAS.
  for (const Expect e : std::initializer_list<Expect>{
           {"tas", 1}, {"ticket", 1}, {"bakery", 2}, {"mcs", 2}}) {
    auto lock = runtime::rt_lock_zoo()[0].make(1);
    for (const auto& f : rt_lock_zoo())
      if (f.name == e.name) lock = f.make(1);
    const auto before = thread_counters();
    for (int i = 0; i < 10; ++i) {
      lock->lock(0);
      lock->unlock(0);
    }
    const auto delta = thread_counters() - before;
    EXPECT_NEAR(static_cast<double>(delta.barriers()) / 10.0, e.barriers,
                1e-9)
        << e.name;
  }
}

TEST(RtCounters, AdaptiveBakerySoloIsCheapAfterRegistration) {
  const int n = 64;
  const auto& f = rt_lock_zoo()[rt_lock_zoo().size() - 2];
  ASSERT_EQ(f.name, "adaptive-bakery");
  auto lock = f.make(n);
  lock->lock(0);
  lock->unlock(0);  // first passage: registration CAS
  const auto before = thread_counters();
  for (int i = 0; i < 10; ++i) {
    lock->lock(0);
    lock->unlock(0);
  }
  const auto delta = thread_counters() - before;
  EXPECT_EQ(delta.rmws, 0u) << "no CAS after registration";
  EXPECT_EQ(delta.fences, 20u) << "2 fences per passage";
  // Work is O(k): solo in a 64-slot arena touches ~1 slot per scan.
  EXPECT_LE(delta.loads, 200u) << "loads must not scale with n=64";
}

TEST(RtCounters, PlainBakeryScansAllN) {
  const int n = 64;
  std::unique_ptr<runtime::RtLock> lock;
  for (const auto& f : rt_lock_zoo())
    if (f.name == "bakery") lock = f.make(n);
  const auto before = thread_counters();
  lock->lock(0);
  lock->unlock(0);
  const auto delta = thread_counters() - before;
  EXPECT_GE(delta.loads, static_cast<std::uint64_t>(2 * n))
      << "bakery scans all n slots twice";
}

TEST(RtHarness, ReportsSaneRates) {
  auto lock = rt_lock_zoo()[2].make(2);  // ticket
  const auto r = run_stress(*lock, 2, 5000);
  EXPECT_TRUE(r.exclusion_ok);
  EXPECT_FALSE(r.deadline_hit) << "no watchdog was configured";
  EXPECT_GT(r.ops_per_sec, 0.0);
  EXPECT_NEAR(r.rmws_per_op, 1.0, 0.01) << "one fetch_add per passage";
  EXPECT_GE(r.max_thread_barriers_per_op, r.barriers_per_op - 1e-9);
}

TEST(RtHarness, WatchdogBoundsRunawayStressRuns) {
  // An op count that would take minutes, cut off by a 50 ms budget. The
  // partial run must still balance: every performed increment accounted
  // for, rates computed over the work actually done.
  auto lock = rt_lock_zoo()[2].make(2);  // ticket
  const auto r = run_stress(*lock, 2, ~0ULL / 4, 50);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_LT(r.total_ops, ~0ULL / 4) << "the run must have been cut short";
  EXPECT_TRUE(r.exclusion_ok)
      << "exclusion is checked over the completed passages";
  EXPECT_NEAR(r.rmws_per_op, 1.0, 0.01);
}

}  // namespace
}  // namespace tpa
