// Bounds engine: Theorem 1's condition (log-domain vs exact BigNat
// cross-check), Corollary 2/3 closed forms, Theorem 3's active-set bound.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/tradeoff.h"
#include "util/check.h"

namespace tpa {
namespace {

using namespace tpa::bounds;

TEST(Bounds, Log2Factorial) {
  EXPECT_NEAR(log2_factorial(1), 0.0, 1e-9);
  EXPECT_NEAR(log2_factorial(5), std::log2(120.0), 1e-9);
  EXPECT_NEAR(log2_factorial(20),
              BigNat::factorial(20).log2(), 1e-6);
}

TEST(Bounds, MinLog2NMatchesExactForm) {
  // The log-domain threshold and the exact BigNat inequality must agree:
  // for log2N just above the threshold the exact condition holds, just
  // below it fails.
  for (std::uint32_t f = 1; f <= 10; ++f) {
    for (std::uint32_t i : {0u, 1u, 3u, 7u}) {
      const double threshold = min_log2_n(static_cast<double>(f), static_cast<int>(i));
      const auto above = static_cast<std::uint64_t>(std::ceil(threshold)) + 2;
      const auto below_d = threshold - 2.0;
      EXPECT_TRUE(theorem1_condition_exact(f, i, BigNat::pow2(above)))
          << "f=" << f << " i=" << i << " log2N=" << above;
      if (below_d > 1.0) {
        const auto below = static_cast<std::uint64_t>(std::floor(below_d));
        EXPECT_FALSE(theorem1_condition_exact(f, i, BigNat::pow2(below)))
            << "f=" << f << " i=" << i << " log2N=" << below;
      }
    }
  }
}

TEST(Bounds, ExactLhsSmallValues) {
  // f=1, i=0: (1 * 1! * 4^1)^2 = 16.
  EXPECT_EQ(theorem1_lhs_exact(1, 0).to_decimal(), "16");
  // f=2, i=0: (2 * 2 * 4^2)^4 = 64^4 = 16777216.
  EXPECT_EQ(theorem1_lhs_exact(2, 0).to_decimal(), "16777216");
  // f=1, i=1: (1 * 1 * 4^3)^2 = 4096.
  EXPECT_EQ(theorem1_lhs_exact(1, 1).to_decimal(), "4096");
}

TEST(Bounds, ForcedFencesMonotoneInN) {
  const auto f = linear_adaptivity(1.0);
  int prev = 0;
  for (double log2n : {8.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 65536.0}) {
    const int fences = forced_fences(f, log2n);
    EXPECT_GE(fences, prev) << "log2N=" << log2n;
    prev = fences;
  }
  EXPECT_GE(prev, 3) << "at log2N=65536 at least a few fences are forced";
}

TEST(Bounds, ForcedFencesShrinkWithSteeperAdaptivity) {
  const double log2n = 1 << 16;
  const int lin = forced_fences(linear_adaptivity(1.0), log2n);
  const int lin4 = forced_fences(linear_adaptivity(4.0), log2n);
  const int expo = forced_fences(exponential_adaptivity(1.0), log2n);
  EXPECT_GE(lin, lin4) << "larger c forces fewer fences";
  EXPECT_GE(lin, expo)
      << "f(i)=i is below f(i)=2^i, so linear forces at least as many";
  EXPECT_GE(expo, 1);
}

TEST(Bounds, Corollary2ClosedFormTracksSearch) {
  // The closed form i = loglogN/(3c) must be a *lower* bound on the exact
  // search (the corollary's computation is conservative).
  for (double c : {1.0, 2.0}) {
    for (double log2n : {256.0, 4096.0, 65536.0, 1048576.0}) {
      const double closed = corollary2_fences(c, log2n);
      const int searched = forced_fences(linear_adaptivity(c), log2n);
      EXPECT_LE(static_cast<int>(closed), searched + 1)
          << "c=" << c << " log2N=" << log2n;
      EXPECT_GE(searched, static_cast<int>(closed) - 1);
    }
  }
}

TEST(Bounds, Corollary2IsLogLog) {
  // i = log2(log2 N) / (3c): squaring N (doubling log2 N) adds exactly
  // 1/(3c) — equal steps on a doubly-logarithmic ladder.
  const double c = 1.0;
  const double d1 = corollary2_fences(c, 8.0);   // N = 2^8,  loglogN = 3
  const double d2 = corollary2_fences(c, 16.0);  // N = 2^16, loglogN = 4
  const double d3 = corollary2_fences(c, 32.0);  // N = 2^32, loglogN = 5
  EXPECT_NEAR(d1, 3.0 / 3.0, 1e-9);
  EXPECT_NEAR(d2 - d1, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(d3 - d2, 1.0 / 3.0, 1e-9);
}

TEST(Bounds, Corollary3IsLogLogLog) {
  const double c = 1.0;
  // log2N = 2^(2^3) vs 2^(2^6): logloglog goes 3 -> 6 (minus 1, over c).
  const double a = corollary3_fences(c, std::exp2(8));
  const double b = corollary3_fences(c, std::exp2(64));
  EXPECT_NEAR(a, 2.0, 1e-6);
  EXPECT_NEAR(b, 5.0, 1e-6);
}

TEST(Bounds, Theorem3ActBound) {
  // With l = 0 the bound is log2N - 4i; it decays doubly exponentially in l.
  EXPECT_NEAR(log2_act_lower_bound(0, 0, 1024.0), 1024.0, 1e-9);
  EXPECT_NEAR(log2_act_lower_bound(0, 1, 1024.0), 1020.0, 1e-9);
  const double l1 = log2_act_lower_bound(1, 0, 1024.0);
  const double l2 = log2_act_lower_bound(2, 0, 1024.0);
  EXPECT_GT(l1, l2);
  EXPECT_NEAR(l1, 512.0 - 0.0 - 2.0, 1e-9);
  // Once 2^-l log2N drops below the subtracted terms the bound is <= 0 —
  // the construction can no longer guarantee survivors.
  EXPECT_LT(log2_act_lower_bound(12, 0, 1024.0), 0.0);
}

TEST(Bounds, AdaptivityFunctions) {
  const auto lin = linear_adaptivity(2.0);
  EXPECT_NEAR(lin(3), 6.0, 1e-12);
  const auto expo = exponential_adaptivity(2.0);
  EXPECT_NEAR(expo(3), 64.0, 1e-12);
  const auto cst = constant_adaptivity(5.0);
  EXPECT_NEAR(cst(100), 5.0, 1e-12);
  EXPECT_THROW(linear_adaptivity(0.0), tpa::CheckFailure);
}

TEST(Bounds, ConditionRejectsTinyN) {
  EXPECT_FALSE(theorem1_condition(2.0, 1, 8.0)) << "N=256 is far too small";
  EXPECT_TRUE(theorem1_condition(1.0, 0, 64.0));
}

}  // namespace
}  // namespace tpa
