// Turán independent-set extraction: correctness (independence) and the
// Theorem 2 size guarantee, on structured and random graphs.
#include <gtest/gtest.h>

#include <set>

#include "lowerbound/turan.h"
#include "util/rng.h"

namespace tpa {
namespace {

using lowerbound::greedy_independent_set;
using lowerbound::turan_bound;

bool is_independent(const std::vector<int>& set,
                    const std::vector<std::pair<int, int>>& edges) {
  std::set<int> s(set.begin(), set.end());
  for (const auto& [a, b] : edges)
    if (a != b && s.count(a) && s.count(b)) return false;
  return true;
}

std::size_t dedup_edge_count(int n,
                             const std::vector<std::pair<int, int>>& edges) {
  std::set<std::pair<int, int>> s;
  for (auto [a, b] : edges) {
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    s.insert({a, b});
  }
  (void)n;
  return s.size();
}

TEST(Turan, EmptyGraphKeepsEverything) {
  const auto set = greedy_independent_set(7, {});
  EXPECT_EQ(set.size(), 7u);
}

TEST(Turan, CompleteGraphKeepsOne) {
  std::vector<std::pair<int, int>> edges;
  const int n = 6;
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  const auto set = greedy_independent_set(n, edges);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(is_independent(set, edges));
}

TEST(Turan, PathGraphAlternates) {
  std::vector<std::pair<int, int>> edges;
  const int n = 9;
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  const auto set = greedy_independent_set(n, edges);
  EXPECT_TRUE(is_independent(set, edges));
  EXPECT_GE(set.size(), 5u) << "path of 9 has an independent set of 5";
}

TEST(Turan, StarGraphKeepsLeaves) {
  std::vector<std::pair<int, int>> edges;
  const int n = 10;
  for (int v = 1; v < n; ++v) edges.emplace_back(0, v);
  const auto set = greedy_independent_set(n, edges);
  EXPECT_TRUE(is_independent(set, edges));
  EXPECT_EQ(set.size(), 9u) << "all leaves are independent";
}

TEST(Turan, SelfLoopsAndDuplicatesIgnored) {
  std::vector<std::pair<int, int>> edges = {{0, 0}, {1, 2}, {2, 1}, {1, 2}};
  const auto set = greedy_independent_set(4, edges);
  EXPECT_TRUE(is_independent(set, edges));
  EXPECT_GE(set.size(), 3u);  // {0, 1 or 2, 3}
}

class TuranRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TuranRandom, GuaranteeHoldsOnRandomGraphs) {
  Rng rng(GetParam());
  const int n = 20 + static_cast<int>(rng.below(80));
  const double p = rng.uniform() * 0.3;
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (rng.chance(p)) edges.emplace_back(a, b);

  const auto set = greedy_independent_set(n, edges);
  EXPECT_TRUE(is_independent(set, edges));
  const std::size_t m = dedup_edge_count(n, edges);
  EXPECT_GE(set.size(), turan_bound(n, m))
      << "n=" << n << " m=" << m << " (Theorem 2 guarantee)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TuranRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(Turan, BoundFormula) {
  EXPECT_EQ(turan_bound(10, 0), 10u);
  EXPECT_EQ(turan_bound(6, 15), 1u);  // K6: d=5 -> ceil(6/6)=1
  EXPECT_EQ(turan_bound(0, 0), 0u);
  // Path of 9 (m=8): d = 16/9, bound = ceil(81/25) = 4 <= 5 achieved.
  EXPECT_EQ(turan_bound(9, 8), 4u);
}

}  // namespace
}  // namespace tpa
