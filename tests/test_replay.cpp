// Deterministic replay and erasure (Lemma 1 / Lemma 4 as runtime checks).
#include <gtest/gtest.h>

#include <memory>

#include "algos/zoo.h"
#include "trace/algebra.h"
#include "trace/analyzer.h"
#include "trace/inset.h"
#include "tso/schedule.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::run_passages;
using tso::Directive;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

// Increment a private variable `r` times with fences.
Task<> private_counter_prog(Proc& pr, VarId v, int r) {
  for (int i = 0; i < r; ++i) {
    const Value cur = co_await pr.read(v);
    co_await pr.write(v, cur + 1);
    co_await pr.fence();
  }
}

// Scenario: each process increments its own private counter variable k
// times, with fences. Processes never touch each other's variables, so
// every process is invisible to every other — any subset can be erased.
tso::ScenarioBuilder disjoint_builder(int n, int rounds) {
  return [n, rounds](Simulator& sim) {
    std::vector<VarId> vars;
    for (int p = 0; p < n; ++p) vars.push_back(sim.alloc_var(0));
    for (int p = 0; p < n; ++p) {
      sim.spawn(p, private_counter_prog(
                       sim.proc(p), vars[static_cast<std::size_t>(p)],
                       rounds));
    }
  };
}

TEST(Replay, IdentityReplayReproducesTrace) {
  const int n = 3;
  const auto build = disjoint_builder(n, 2);
  Simulator sim(n);
  build(sim);
  Rng rng(5);
  tso::run_random(sim, rng, 0.3, 100'000);

  auto replayed = tso::replay(n, {}, build, sim.execution().directives);
  ASSERT_EQ(replayed->num_events(), sim.num_events());
  EXPECT_TRUE(trace::same_events(sim.execution().events,
                                 replayed->execution().events));
}

TEST(Replay, ErasingInvisibleProcessesPreservesSurvivors) {
  const int n = 4;
  const auto build = disjoint_builder(n, 3);
  Simulator sim(n);
  build(sim);
  Rng rng(11);
  tso::run_random(sim, rng, 0.2, 100'000);

  // Erase p1 and p3; survivors must replay identically (Lemma 4).
  std::vector<bool> erased = {false, true, false, true};
  auto replayed =
      tso::replay(n, {}, build, sim.execution().directives, &erased);
  const auto check = tso::verify_replay_equivalence(
      sim.execution(), replayed->execution(), erased);
  EXPECT_TRUE(check.ok) << check.detail;

  // Event-algebra view agrees with the semantic replay (kinds/vars/values).
  const auto erased_seq = trace::erase_procs(sim.execution().events, erased);
  ASSERT_EQ(erased_seq.size(), replayed->num_events());
  for (std::size_t i = 0; i < erased_seq.size(); ++i) {
    EXPECT_EQ(erased_seq[i].kind, replayed->execution().events[i].kind);
    EXPECT_EQ(erased_seq[i].var, replayed->execution().events[i].var);
    EXPECT_EQ(erased_seq[i].value, replayed->execution().events[i].value);
  }
}

// Scenario where p1 reads a variable p0 committed — p0 is NOT invisible.
Task<> dep_writer_prog(Proc& pr, VarId var) {
  co_await pr.write(var, 42);
  co_await pr.fence();
}

Task<> dep_reader_prog(Proc& pr, VarId var) {
  const Value got = co_await pr.read(var);
  co_await pr.write(var, got + 1);
  co_await pr.fence();
}

tso::ScenarioBuilder dependent_builder() {
  return [](Simulator& sim) {
    const VarId v = sim.alloc_var(0);
    sim.spawn(0, dep_writer_prog(sim.proc(0), v));
    sim.spawn(1, dep_reader_prog(sim.proc(1), v));
  };
}

TEST(Replay, ErasingAVisibleProcessIsDetected) {
  const auto build = dependent_builder();
  Simulator sim(2);
  build(sim);
  // p0 commits, then p1 reads 42 and writes 43.
  tso::run_round_robin(sim, 100'000);
  ASSERT_EQ(sim.value(0), 43);

  std::vector<bool> erased = {true, false};
  auto replayed = tso::replay(2, {}, build, sim.execution().directives,
                              &erased);
  const auto check = tso::verify_replay_equivalence(
      sim.execution(), replayed->execution(), erased);
  EXPECT_FALSE(check.ok)
      << "p1 read p0's value; erasing p0 must change p1's events";
}

TEST(Replay, In3SubsetCheckOnDisjointScenario) {
  const int n = 3;
  const auto build = disjoint_builder(n, 2);
  Simulator sim(n);
  build(sim);
  tso::run_round_robin(sim, 100'000, /*eager_commit=*/false);

  for (int erased_proc = 0; erased_proc < n; ++erased_proc) {
    std::vector<bool> mask(n, false);
    mask[static_cast<std::size_t>(erased_proc)] = true;
    const auto report =
        trace::check_in3_subset(n, {}, build, sim.execution(), mask);
    EXPECT_TRUE(report.ok) << "erasing p" << erased_proc << ": "
                           << report.detail;
  }
}

TEST(Replay, WorksForEveryZooLockWithoutErasure) {
  // Full-zoo determinism check: replaying the recorded schedule of a
  // contended run reproduces the identical event trace.
  for (const auto& f : algos::lock_zoo()) {
    const int n = 3;
    const auto build = [&f, n](Simulator& sim) {
      auto lock = f.make(sim, n);
      for (int p = 0; p < n; ++p)
        sim.spawn(p, run_passages(sim.proc(p), lock, 2));
    };
    Simulator sim(n);
    build(sim);
    Rng rng(77);
    tso::run_random(sim, rng, 0.3, 10'000'000);

    auto replayed = tso::replay(n, {}, build, sim.execution().directives);
    EXPECT_TRUE(trace::same_events(sim.execution().events,
                                   replayed->execution().events))
        << f.name;
  }
}

}  // namespace
}  // namespace tpa
