// PSO mode (Section 6): writes to different variables may commit out of
// order. These tests show (a) the reordering itself, (b) a concrete
// mutual-exclusion exploit against the TSO-correct bakery, (c) the one
// extra fence that repairs it, and (d) which zoo locks' fence placements
// already tolerate PSO.
#include <gtest/gtest.h>

#include <memory>

#include "algos/bakery.h"
#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/check.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::BakeryLock;
using algos::run_passages;
using tso::Proc;
using tso::SimConfig;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

SimConfig pso_config() {
  SimConfig cfg;
  cfg.pso = true;
  return cfg;
}

Task<> two_writes(Proc& p, VarId a, VarId b) {
  co_await p.write(a, 1);
  co_await p.write(b, 2);
  co_await p.fence();
}

TEST(Pso, WritesToDifferentVarsReorder) {
  Simulator sim(1, pso_config());
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, two_writes(sim.proc(0), a, b));
  sim.deliver(0);  // issue a
  sim.deliver(0);  // issue b
  EXPECT_TRUE(sim.commit(0, b)) << "PSO: the later write may commit first";
  EXPECT_EQ(sim.value(b), 2);
  EXPECT_EQ(sim.value(a), 0) << "a is still buffered";
  EXPECT_TRUE(sim.commit(0, a));
  EXPECT_EQ(sim.value(a), 1);
}

TEST(Pso, TsoRejectsOutOfOrderCommit) {
  Simulator sim(1);  // TSO (default)
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, two_writes(sim.proc(0), a, b));
  sim.deliver(0);
  sim.deliver(0);
  EXPECT_THROW(sim.commit(0, b), CheckFailure)
      << "TSO: only the buffer head may commit";
  EXPECT_TRUE(sim.commit(0, a)) << "head commit is always fine";
}

Task<> same_var_twice(Proc& p, VarId v) {
  co_await p.write(v, 1);
  co_await p.write(v, 2);
  co_await p.fence();
}

TEST(Pso, PerVariableOrderStillHolds) {
  // Coalescing keeps at most one buffered write per variable, so per-var
  // order is trivially preserved even under PSO.
  Simulator sim(1, pso_config());
  const VarId a = sim.alloc_var(0);
  sim.spawn(0, same_var_twice(sim.proc(0), a));
  sim.deliver(0);
  sim.deliver(0);
  ASSERT_EQ(sim.proc(0).buffer().size(), 1u);
  sim.commit(0, a);
  EXPECT_EQ(sim.value(a), 2) << "only the newest value ever commits";
}

// ---- The bakery exploit ----------------------------------------------------

// Drives the TSO-correct bakery into a mutual-exclusion violation under PSO
// by committing choosing[0]=0 before number[0]=1. Returns true if the
// violation fired.
bool run_bakery_exploit(bool pso_safe) {
  Simulator sim(2, pso_config());
  auto lock = std::make_shared<BakeryLock>(
      sim, 2,
      pso_safe ? algos::BakeryFencing::kPso : algos::BakeryFencing::kTso);
  for (int p = 0; p < 2; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));

  try {
    // p0 through its doorway: Enter, choosing=1, fence, scan 2 numbers,
    // issue number[0]=1, issue choosing[0]=0.
    for (int i = 0; i < 10; ++i) sim.deliver(0);
    // PSO: commit choosing[0]=0 FIRST, leaving number[0]=1 buffered. With
    // the pso_safe fence, number[0] is already committed and the buffer
    // holds only choosing[0], so this step is harmless.
    const auto& buf = sim.proc(0).buffer();
    if (!buf.empty()) {
      // commit the choosing reset ahead of the ticket, if both are buffered
      VarId choosing0 = buf.back().var;
      sim.commit(0, choosing0);
    }
    // p1 runs until its CS event is enabled (it sees choosing[0]==0 and
    // number[0]==0, so it never waits) — and is held right there.
    std::uint64_t steps = 0;
    while (sim.classify_pending(1) != tso::PendingClass::kCs) {
      if (!sim.deliver(1)) break;
      if (++steps > 10'000) break;
    }
    // p0 resumes: commits number[0]=1, finishes its fence, wait-scans past
    // p1 (tie broken toward the smaller id) — and enables its own CS while
    // p1's is still enabled: the simulator's exclusion check fires.
    steps = 0;
    while (!sim.proc(0).done()) {
      if (!sim.deliver(0)) break;
      if (++steps > 10'000) break;
    }
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mutual exclusion violated"), std::string::npos)
        << what;
    return true;
  }
  return false;
}

TEST(Pso, BakeryExclusionBreaksWithoutTheExtraFence) {
  EXPECT_TRUE(run_bakery_exploit(/*pso_safe=*/false))
      << "the TSO-correct bakery must be exploitable under PSO";
}

TEST(Pso, PsoSafeBakerySurvivesTheExploit) {
  EXPECT_FALSE(run_bakery_exploit(/*pso_safe=*/true))
      << "one extra fence closes the window";
}

TEST(Pso, PsoSafeBakerySurvivesRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Simulator sim(4, pso_config());
    auto lock =
        std::make_shared<BakeryLock>(sim, 4, algos::BakeryFencing::kPso);
    for (int p = 0; p < 4; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 2));
    Rng rng(seed);
    tso::run_random(sim, rng, 0.4, 10'000'000);  // throws on violation
    for (int p = 0; p < 4; ++p)
      EXPECT_EQ(sim.proc(p).passages_done(), 2u) << "seed " << seed;
  }
}

// Locks whose fence placements already separate every ordering-critical
// write pair — they must stay correct under randomized PSO schedules.
class PsoToleranceSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PsoToleranceSweep, SurvivesRandomPso) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto& f = algos::lock_factory(GetParam());
    Simulator sim(4, pso_config());
    auto lock = f.make(sim, 4);
    for (int p = 0; p < 4; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 2));
    Rng rng(seed * 31);
    tso::run_random(sim, rng, 0.4, 10'000'000);
    for (int p = 0; p < 4; ++p)
      EXPECT_EQ(sim.proc(p).passages_done(), 2u)
          << f.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, PsoToleranceSweep,
                         ::testing::Values("tas", "ttas", "ticket", "mcs",
                                           "clh", "tournament"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace tpa
