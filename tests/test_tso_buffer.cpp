// TSO write-buffer semantics (Section 2 of the paper, items 1-3):
// FIFO commit order, in-place coalescing (at most one buffered write per
// variable), read-own-buffer, fence drain, and delayed visibility.
#include <gtest/gtest.h>

#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using tso::EventKind;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

Task<> write_two(Proc& p, VarId a, VarId b) {
  co_await p.write(a, 1);
  co_await p.write(b, 2);
  co_await p.fence();
}

TEST(TsoBuffer, WritesInvisibleUntilCommitted) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, write_two(sim.proc(0), a, b));
  sim.deliver(0);  // issue write a
  sim.deliver(0);  // issue write b
  EXPECT_EQ(sim.value(a), 0) << "issued write must not be visible";
  EXPECT_EQ(sim.value(b), 0);
  EXPECT_EQ(sim.proc(0).buffer().size(), 2u);
}

TEST(TsoBuffer, FenceDrainsInFifoOrder) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, write_two(sim.proc(0), a, b));
  sim.deliver(0);  // issue a
  sim.deliver(0);  // issue b
  sim.deliver(0);  // BeginFence
  EXPECT_EQ(sim.classify_pending(0), tso::PendingClass::kCommitCritical);
  sim.deliver(0);  // commit a
  EXPECT_EQ(sim.value(a), 1);
  EXPECT_EQ(sim.value(b), 0) << "FIFO: b commits after a";
  sim.deliver(0);  // commit b
  EXPECT_EQ(sim.value(b), 2);
  sim.deliver(0);  // EndFence
  EXPECT_EQ(sim.proc(0).fences_completed(), 1u);
  EXPECT_TRUE(sim.proc(0).done());
}

Task<> coalesce(Proc& p, VarId a, VarId b) {
  co_await p.write(a, 1);
  co_await p.write(b, 2);
  co_await p.write(a, 3);  // replaces the older buffered write to a in place
  co_await p.fence();
}

TEST(TsoBuffer, CoalescingReplacesInPlace) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, coalesce(sim.proc(0), a, b));
  sim.deliver(0);
  sim.deliver(0);
  sim.deliver(0);
  ASSERT_EQ(sim.proc(0).buffer().size(), 2u)
      << "at most one buffered write per variable";
  EXPECT_EQ(sim.proc(0).buffer()[0].var, a) << "a keeps its (front) position";
  EXPECT_EQ(sim.proc(0).buffer()[0].value, 3);
  sim.deliver(0);  // BeginFence
  sim.deliver(0);  // commit a=3 first (kept position)
  EXPECT_EQ(sim.value(a), 3);
  EXPECT_EQ(sim.value(b), 0);
}

Task<> read_own(Proc& p, VarId a, Value* out) {
  co_await p.write(a, 7);
  const Value got = co_await p.read(a);
  *out = got;
  co_await p.fence();
}

TEST(TsoBuffer, ReadsOwnBufferedWrite) {
  Simulator sim(2);
  const VarId a = sim.alloc_var(0);
  Value got = -1;
  sim.spawn(0, read_own(sim.proc(0), a, &got));
  sim.deliver(0);  // issue
  sim.deliver(0);  // read
  EXPECT_EQ(got, 7) << "read must be served from the own write buffer";
  EXPECT_EQ(sim.value(a), 0) << "the read must not commit the write";
  // The buffered read is not a variable access.
  const auto& events = sim.execution().events;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, EventKind::kRead);
  EXPECT_TRUE(events[1].from_buffer);
  EXPECT_FALSE(events[1].accesses_var);
  EXPECT_FALSE(events[1].critical);
}

Task<> reader(Proc& p, VarId a, Value* out) {
  const Value got = co_await p.read(a);
  *out = got;
}

TEST(TsoBuffer, OtherProcessReadsOldValueUntilCommit) {
  Simulator sim(2);
  const VarId a = sim.alloc_var(10);
  Value got = -1;
  sim.spawn(0, write_two(sim.proc(0), a, a));  // coalesces to one entry
  sim.spawn(1, reader(sim.proc(1), a, &got));
  sim.deliver(0);  // p0 issues a=1
  sim.deliver(0);  // p0 issues a=2 (coalesce)
  sim.deliver(1);  // p1 reads
  EXPECT_EQ(got, 10) << "p1 must see the initial value pre-commit";
  sim.commit(0);
  EXPECT_EQ(sim.value(a), 2);
}

TEST(TsoBuffer, ExplicitCommitDirective) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, write_two(sim.proc(0), a, b));
  sim.deliver(0);
  sim.deliver(0);
  EXPECT_TRUE(sim.commit(0));  // commit a even though no fence yet
  EXPECT_EQ(sim.value(a), 1);
  EXPECT_EQ(sim.proc(0).buffer().size(), 1u);
  EXPECT_TRUE(sim.commit(0));
  EXPECT_FALSE(sim.commit(0)) << "empty buffer commit must return false";
}

Task<> empty_fence(Proc& p) { co_await p.fence(); }

TEST(TsoBuffer, FenceWithEmptyBufferIsBeginThenEnd) {
  Simulator sim(1);
  sim.spawn(0, empty_fence(sim.proc(0)));
  sim.deliver(0);  // BeginFence
  EXPECT_EQ(sim.classify_pending(0), tso::PendingClass::kEndFence);
  sim.deliver(0);  // EndFence
  EXPECT_EQ(sim.proc(0).fences_completed(), 1u);
  const auto& events = sim.execution().events;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kBeginFence);
  EXPECT_EQ(events[1].kind, EventKind::kEndFence);
}

}  // namespace
}  // namespace tpa
