// Execution algebra (Fact 1): projection, erasure, concatenation, and the
// sub-execution relation, validated on real simulator traces.
#include <gtest/gtest.h>

#include "algos/zoo.h"
#include "trace/algebra.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using trace::concat;
using trace::erase_procs;
using trace::EventSeq;
using trace::is_subexecution;
using trace::project;
using trace::same_events;
using tso::Simulator;

EventSeq zoo_trace(const std::string& lock, int n, std::uint64_t seed) {
  Simulator sim(static_cast<std::size_t>(n));
  const auto& f = algos::lock_factory(lock);
  auto l = f.make(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), l, 2));
  Rng rng(seed);
  tso::run_random(sim, rng, 0.3, 1'000'000);
  return sim.execution().events;
}

std::vector<bool> mask(std::size_t n, std::initializer_list<int> bits) {
  std::vector<bool> m(n, false);
  for (int b : bits) m[static_cast<std::size_t>(b)] = true;
  return m;
}

TEST(Algebra, ProjectionAndErasurePartition) {
  const auto e = zoo_trace("bakery", 4, 1);
  const auto keep01 = mask(4, {0, 1});
  const auto p = project(e, keep01);
  const auto q = erase_procs(e, keep01);
  EXPECT_EQ(p.size() + q.size(), e.size());
  // Both halves are sub-executions of E.
  EXPECT_TRUE(is_subexecution(p, e));
  EXPECT_TRUE(is_subexecution(q, e));
}

TEST(Algebra, Fact1ConcatDistributes) {
  // (E1 E2)^{-Y} = E1^{-Y} E2^{-Y}
  const auto e = zoo_trace("ticket", 4, 2);
  const auto e1 = EventSeq(e.begin(), e.begin() + static_cast<long>(e.size() / 2));
  const auto e2 = EventSeq(e.begin() + static_cast<long>(e.size() / 2), e.end());
  const auto y = mask(4, {1, 3});
  EXPECT_TRUE(same_events(erase_procs(concat(e1, e2), y),
                          concat(erase_procs(e1, y), erase_procs(e2, y))));
}

TEST(Algebra, Fact1ErasureComposes) {
  // (E^{-Y})^{-Z} = E^{-Y ∪ Z}
  const auto e = zoo_trace("mcs", 5, 3);
  const auto y = mask(5, {0});
  const auto z = mask(5, {2, 4});
  auto yz = y;
  for (std::size_t i = 0; i < yz.size(); ++i)
    if (z[i]) yz[i] = true;
  EXPECT_TRUE(same_events(erase_procs(erase_procs(e, y), z),
                          erase_procs(e, yz)));
}

TEST(Algebra, ErasureOfNobodyIsIdentity) {
  const auto e = zoo_trace("tas", 3, 4);
  EXPECT_TRUE(same_events(erase_procs(e, mask(3, {})), e));
}

TEST(Algebra, ProjectionOfSingleProcessIsItsOwnSubsequence) {
  const auto e = zoo_trace("clh", 4, 5);
  for (int p = 0; p < 4; ++p) {
    const auto proj = project(e, mask(4, {p}));
    EXPECT_TRUE(is_subexecution(proj, e));
    for (const auto& ev : proj) EXPECT_EQ(ev.proc, p);
  }
}

TEST(Algebra, SubexecutionIsReflexiveAndRespectsOrder) {
  const auto e = zoo_trace("tournament", 4, 6);
  EXPECT_TRUE(is_subexecution(e, e));
  EXPECT_TRUE(is_subexecution({}, e));
  if (e.size() >= 2) {
    // Swapped order is not a subsequence (seq numbers are strictly ordered).
    EventSeq swapped = {e[1], e[0]};
    EXPECT_FALSE(is_subexecution(swapped, e));
  }
}

TEST(Algebra, ProjectErasureComplementary) {
  // project(E, Y) == erase(E, complement(Y))
  const auto e = zoo_trace("lamport-fast", 4, 7);
  const auto y = mask(4, {1, 2});
  std::vector<bool> not_y(4);
  for (std::size_t i = 0; i < 4; ++i) not_y[i] = !y[i];
  EXPECT_TRUE(same_events(project(e, y), erase_procs(e, not_y)));
}

}  // namespace
}  // namespace tpa
