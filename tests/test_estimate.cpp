// Empirical adaptivity estimation: growth-exponent fitting and the
// classifier, validated on synthetic data and on measured zoo sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/zoo.h"
#include "bounds/estimate.h"
#include "tso/schedulers.h"
#include "tso/sim.h"

namespace tpa {
namespace {

using bounds::AdaptivityClass;
using bounds::classify_adaptivity;
using bounds::growth_exponent;
using bounds::Sample;
using tso::Simulator;

TEST(Estimate, ExponentRecoversPowerLaws) {
  auto make = [](double b) {
    std::vector<Sample> s;
    for (double x : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
      s.push_back({x, 3.0 * std::pow(x, b)});
    return s;
  };
  EXPECT_NEAR(growth_exponent(make(0.0)), 0.0, 1e-9);
  EXPECT_NEAR(growth_exponent(make(1.0)), 1.0, 1e-9);
  EXPECT_NEAR(growth_exponent(make(2.0)), 2.0, 1e-9);
  EXPECT_NEAR(growth_exponent(make(0.5)), 0.5, 1e-9);
}

TEST(Estimate, DegenerateInputs) {
  EXPECT_EQ(growth_exponent({}), 0.0);
  EXPECT_EQ(growth_exponent({{4.0, 10.0}}), 0.0) << "one point: no slope";
  EXPECT_EQ(growth_exponent({{0.0, 1.0}, {-1.0, 2.0}}), 0.0)
      << "non-positive samples ignored";
  // Same x twice: zero variance.
  EXPECT_EQ(growth_exponent({{2.0, 1.0}, {2.0, 8.0}}), 0.0);
}

TEST(Estimate, ClassifierOnSyntheticShapes) {
  const std::vector<Sample> grows = {{2, 4}, {4, 8}, {8, 16}, {16, 32}};
  const std::vector<Sample> flat = {{2, 5}, {4, 5}, {8, 5}, {16, 5}};
  EXPECT_EQ(classify_adaptivity(grows, flat), AdaptivityClass::kAdaptive);
  EXPECT_EQ(classify_adaptivity(flat, grows), AdaptivityClass::kNonAdaptive);
  EXPECT_EQ(classify_adaptivity(flat, flat), AdaptivityClass::kNonAdaptive);
  EXPECT_EQ(classify_adaptivity(grows, grows), AdaptivityClass::kNonAdaptive)
      << "n-dependence disqualifies";
}

// Measured mean critical events per passage for k contenders in an arena
// of n, deterministic round-robin schedule.
double measured_cost(const algos::LockFactory& f, int n, int k) {
  Simulator sim(static_cast<std::size_t>(n), {.track_awareness = false});
  auto lock = f.make(sim, n);
  for (int p = 0; p < k; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  tso::run_round_robin(sim, 100'000'000);
  double total = 0;
  for (int p = 0; p < k; ++p)
    total += sim.proc(p).finished_passages().at(0).critical;
  return total / k;
}

struct Expected {
  const char* name;
  AdaptivityClass cls;
};

class EstimateZoo : public ::testing::TestWithParam<Expected> {};

TEST_P(EstimateZoo, MeasuredClassMatchesDeclared) {
  const auto& f = algos::lock_factory(GetParam().name);
  std::vector<Sample> vs_k, vs_n;
  for (int k : {1, 2, 4, 8, 16})
    vs_k.push_back({static_cast<double>(k), measured_cost(f, 32, k)});
  for (int n : {8, 16, 32, 64})
    vs_n.push_back({static_cast<double>(n), measured_cost(f, n, 4)});
  EXPECT_EQ(classify_adaptivity(vs_k, vs_n), GetParam().cls)
      << f.name << " k-exponent " << growth_exponent(vs_k) << " n-exponent "
      << growth_exponent(vs_n);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EstimateZoo,
    ::testing::Values(Expected{"bakery", AdaptivityClass::kNonAdaptive},
                      Expected{"adaptive-bakery", AdaptivityClass::kAdaptive},
                      Expected{"adaptive-splitter",
                               AdaptivityClass::kAdaptive},
                      Expected{"lamport-fast",
                               AdaptivityClass::kNonAdaptive}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Estimate, SplitterExponentIsSuperLinear) {
  // The splitter lock's collect is Θ(k^2): the fitted exponent must exceed
  // the active-set bakery's Θ(k).
  const auto& splitter = algos::lock_factory("adaptive-splitter");
  const auto& bakery = algos::lock_factory("adaptive-bakery");
  std::vector<Sample> s_k, b_k;
  for (int k : {2, 4, 8, 16}) {
    s_k.push_back({static_cast<double>(k), measured_cost(splitter, 32, k)});
    b_k.push_back({static_cast<double>(k), measured_cost(bakery, 32, k)});
  }
  EXPECT_GT(growth_exponent(s_k), growth_exponent(b_k));
  EXPECT_NEAR(growth_exponent(b_k), 1.0, 0.4) << "linear adaptivity";
}

}  // namespace
}  // namespace tpa
