// Awareness sets (Definition 1): direct awareness through reading a
// last-committed write, transitive awareness through the writer's awareness
// *at issue time*, and the invisibility of buffered writes.
#include <gtest/gtest.h>

#include "tso/sim.h"

namespace tpa {
namespace {

using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

Task<> writer_task(Proc& p, VarId v, Value x) {
  co_await p.write(v, x);
  co_await p.fence();
}

Task<> reader_task(Proc& p, VarId v) { co_await p.read(v); }

Task<> read_then_write(Proc& p, VarId r, VarId w, Value x) {
  co_await p.read(r);
  co_await p.write(w, x);
  co_await p.fence();
}

Task<> write_then_read(Proc& p, VarId w, Value x, VarId r) {
  co_await p.write(w, x);
  co_await p.fence();
  co_await p.read(r);
}

Task<> read_then_cas(Proc& p, VarId r, VarId c, Value desired) {
  co_await p.read(r);         // become aware of the writer of r
  co_await p.cas(c, 0, desired);  // publish with current awareness
}

TEST(Awareness, InitiallySelfOnly) {
  Simulator sim(3);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(sim.proc(p).awareness().count(), 1u);
    EXPECT_TRUE(sim.proc(p).awareness().test(static_cast<std::size_t>(p)));
  }
}

TEST(Awareness, ReadOfCommittedWriteCreatesAwareness) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, writer_task(sim.proc(0), v, 1));
  sim.spawn(1, reader_task(sim.proc(1), v));
  for (int i = 0; i < 4; ++i) sim.deliver(0);  // p0 commits
  sim.deliver(1);                              // p1 reads
  EXPECT_TRUE(sim.proc(1).awareness().test(0)) << "p1 became aware of p0";
  EXPECT_FALSE(sim.proc(0).awareness().test(1)) << "awareness is directional";
}

TEST(Awareness, BufferedWriteLeaksNothing) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, writer_task(sim.proc(0), v, 1));
  sim.spawn(1, reader_task(sim.proc(1), v));
  sim.deliver(0);  // p0 issues (buffered, not committed)
  sim.deliver(1);  // p1 reads the initial value
  EXPECT_FALSE(sim.proc(1).awareness().test(0))
      << "an uncommitted write must not create awareness";
}

TEST(Awareness, TransitiveThroughChain) {
  // p0 writes a; p1 reads a then writes b; p2 reads b => aware of p0 and p1.
  Simulator sim(3);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, writer_task(sim.proc(0), a, 1));
  sim.spawn(1, read_then_write(sim.proc(1), a, b, 2));
  sim.spawn(2, reader_task(sim.proc(2), b));
  for (int i = 0; i < 4; ++i) sim.deliver(0);
  for (int i = 0; i < 5; ++i) sim.deliver(1);
  sim.deliver(2);
  EXPECT_TRUE(sim.proc(2).awareness().test(0)) << "transitive via p1's write";
  EXPECT_TRUE(sim.proc(2).awareness().test(1));
}

TEST(Awareness, SnapshotTakenAtIssueTime) {
  // p1 issues a write to b BEFORE reading a (and thus before becoming aware
  // of p0). Definition 1 uses the awareness at *issue* time, so a reader of
  // b must NOT become aware of p0 even though p1 was aware of p0 when the
  // write to b was committed.
  Simulator sim(3);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, writer_task(sim.proc(0), a, 1));
  sim.spawn(1, write_then_read(sim.proc(1), b, 2, a));  // issue b, fence, read a
  sim.spawn(2, reader_task(sim.proc(2), b));

  for (int i = 0; i < 4; ++i) sim.deliver(0);  // p0 commits a
  sim.deliver(1);                              // p1 issues b=2 (unaware of p0)
  sim.deliver(1);                              // BeginFence
  sim.deliver(1);                              // commit b
  sim.deliver(1);                              // EndFence
  sim.deliver(1);                              // p1 reads a -> aware of p0
  EXPECT_TRUE(sim.proc(1).awareness().test(0));
  sim.deliver(2);  // p2 reads b
  EXPECT_TRUE(sim.proc(2).awareness().test(1));
  EXPECT_FALSE(sim.proc(2).awareness().test(0))
      << "p1 was unaware of p0 when it issued the write to b";
}

TEST(Awareness, CasSnapshotIsAtExecutionTime) {
  // CAS issues and commits atomically, so its snapshot includes everything
  // the process knows at that moment.
  Simulator sim(3);
  const VarId a = sim.alloc_var(0);
  const VarId b = sim.alloc_var(0);
  sim.spawn(0, writer_task(sim.proc(0), a, 1));
  sim.spawn(1, read_then_cas(sim.proc(1), a, b, 5));
  sim.spawn(2, reader_task(sim.proc(2), b));
  for (int i = 0; i < 4; ++i) sim.deliver(0);
  sim.deliver(1);
  sim.deliver(1);
  sim.deliver(2);
  EXPECT_TRUE(sim.proc(2).awareness().test(0))
      << "p2 reads b (CAS'd by p1 after p1 learned of p0)";
}

}  // namespace
}  // namespace tpa
