// The observer pipeline and the checkpoint/restore API: invocation order,
// no-op-observer parity (the bare core computes the same machine states and
// schedule counts as the fully instrumented simulator), snapshot round
// trips against full replays on the corpus witnesses, and the explorer's
// checkpoint mode (identical results, strictly less work).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "trace/format.h"
#include "tso/explorer.h"
#include "tso/observers.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

namespace fs = std::filesystem;
using runtime::find_scenario;
using runtime::violation_detail;
using tso::ActionKind;
using tso::Directive;
using tso::Simulator;
using tso::SimConfig;
using tso::SimSnapshot;

bool apply(Simulator& sim, const Directive& d) {
  switch (d.kind) {
    case ActionKind::kDeliver:
      return sim.deliver(d.proc);
    case ActionKind::kCommit:
      return sim.commit(d.proc, d.var);
    case ActionKind::kCrash:
      return sim.crash(d.proc);
    case ActionKind::kRecover:
      return sim.recover(d.proc);
  }
  return false;
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(TPA_CORPUS_DIR))
    if (entry.path().extension() == ".witness") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

// ---- observer ordering ---------------------------------------------------

/// Appends "<tag>:<kind>" to a shared log on every callback.
class LoggingObserver : public tso::SimObserver {
 public:
  LoggingObserver(std::string tag, std::vector<std::string>* log)
      : tag_(std::move(tag)), log_(log) {}
  const char* name() const override { return tag_.c_str(); }
  void on_attach(Simulator&) override { log_->push_back(tag_ + ":attach"); }
  void on_directive(const Simulator&, const Directive&) override {
    log_->push_back(tag_ + ":directive");
  }
  void on_event(Simulator&, tso::Proc&, tso::Event&,
                const tso::StepContext&) override {
    log_->push_back(tag_ + ":event");
  }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(Observer, CustomObserversFireInRegistrationOrderPerEvent) {
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  std::vector<std::string> log;
  Simulator sim(s->n_procs, s->sim);
  sim.add_observer(std::make_unique<LoggingObserver>("a", &log));
  sim.add_observer(std::make_unique<LoggingObserver>("b", &log));
  s->build(sim);
  tso::run_round_robin(sim, 10'000);
  ASSERT_TRUE(tso::all_done(sim));

  ASSERT_GE(log.size(), 4u);
  EXPECT_EQ(log[0], "a:attach");
  EXPECT_EQ(log[1], "b:attach");
  // Within every directive and every event, a fires before b.
  for (std::size_t i = 0; i + 1 < log.size(); ++i) {
    if (log[i] == "a:event") {
      EXPECT_EQ(log[i + 1], "b:event") << "at " << i;
    }
    if (log[i] == "a:directive") {
      EXPECT_EQ(log[i + 1], "b:directive") << "at " << i;
    }
  }
  // A custom observer sees every machine event the trace records.
  const auto a_events =
      std::count(log.begin(), log.end(), std::string("a:event"));
  EXPECT_EQ(static_cast<std::uint64_t>(a_events), sim.num_events());
}

TEST(Observer, RecordedTraceCarriesCostFlags) {
  // The CostObserver runs before the TraceRecorder, so recorded events
  // already carry criticality and RMR charges.
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  Simulator sim(s->n_procs, s->sim);
  s->build(sim);
  tso::run_round_robin(sim, 10'000);
  ASSERT_TRUE(tso::all_done(sim));
  bool any_critical = false;
  bool any_rmr = false;
  for (const tso::Event& e : sim.execution().events) {
    any_critical = any_critical || e.critical;
    any_rmr = any_rmr || e.rmr_dsm || e.rmr_wt || e.rmr_wb;
  }
  EXPECT_TRUE(any_critical);
  EXPECT_TRUE(any_rmr);
}

// ---- no-op-observer parity ----------------------------------------------

SimConfig bare_config(SimConfig base) {
  base.track_awareness = false;
  base.record_trace = false;
  base.track_costs = false;
  base.check_exclusion = false;
  return base;
}

TEST(Observer, BareCoreComputesIdenticalFinalMachineState) {
  for (const char* name : {"bakery-tso-2p", "mcs-2p"}) {
    SCOPED_TRACE(name);
    const auto* s = find_scenario(name);
    ASSERT_NE(s, nullptr);

    Simulator full(s->n_procs, s->sim);
    s->build(full);
    tso::run_round_robin(full, 10'000);

    Simulator bare(s->n_procs, bare_config(s->sim));
    EXPECT_TRUE(bare.observers().empty());
    s->build(bare);
    tso::run_round_robin(bare, 10'000);

    ASSERT_TRUE(tso::all_done(full));
    ASSERT_TRUE(tso::all_done(bare));
    EXPECT_EQ(bare.num_events(), 0u) << "no TraceRecorder attached";

    ASSERT_EQ(full.num_vars(), bare.num_vars());
    for (std::size_t v = 0; v < full.num_vars(); ++v) {
      const auto var = static_cast<tso::VarId>(v);
      EXPECT_EQ(full.value(var), bare.value(var)) << "v" << v;
      EXPECT_EQ(full.last_writer(var), bare.last_writer(var)) << "v" << v;
    }
    for (std::size_t p = 0; p < full.num_procs(); ++p) {
      const auto& fp = full.proc(static_cast<tso::ProcId>(p));
      const auto& bp = bare.proc(static_cast<tso::ProcId>(p));
      EXPECT_EQ(fp.status(), bp.status());
      EXPECT_EQ(fp.done(), bp.done());
      ASSERT_EQ(fp.buffer().size(), bp.buffer().size());
      for (std::size_t i = 0; i < fp.buffer().size(); ++i) {
        EXPECT_EQ(fp.buffer()[i].var, bp.buffer()[i].var);
        EXPECT_EQ(fp.buffer()[i].value, bp.buffer()[i].value);
      }
      EXPECT_EQ(fp.fences_completed(), bp.fences_completed());
      EXPECT_EQ(fp.passages_done(), bp.passages_done());
      ASSERT_EQ(fp.finished_passages().size(), bp.finished_passages().size());
      for (std::size_t i = 0; i < fp.finished_passages().size(); ++i) {
        EXPECT_EQ(fp.finished_passages()[i].events,
                  bp.finished_passages()[i].events);
        EXPECT_EQ(fp.finished_passages()[i].fences,
                  bp.finished_passages()[i].fences);
      }
    }
    EXPECT_EQ(full.total_contention(), bare.total_contention());
  }
}

TEST(Observer, ExplorerHookAndBareRunsCountTheSameSchedules) {
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig cfg;
  cfg.preemptions = 2;

  const tso::ExplorerResult bare = tso::explore(s->n_procs, s->sim, s->build, cfg);
  tso::ExplorerConfig hooked = cfg;
  hooked.on_complete = [](const Simulator&) {};  // forces full instrumentation
  const tso::ExplorerResult full =
      tso::explore(s->n_procs, s->sim, s->build, hooked);

  EXPECT_FALSE(bare.verdict.found());
  EXPECT_FALSE(full.verdict.found());
  EXPECT_EQ(bare.schedules, full.schedules);
  EXPECT_EQ(bare.truncated, full.truncated);
}

// ---- explorer checkpoint mode -------------------------------------------

TEST(Observer, CheckpointModeMatchesReplayModeAndDoesLessWork) {
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig ckpt;
  ckpt.preemptions = 2;
  ckpt.checkpoint = true;
  tso::ExplorerConfig replay = ckpt;
  replay.checkpoint = false;

  const auto a = tso::explore(s->n_procs, s->sim, s->build, ckpt);
  const auto b = tso::explore(s->n_procs, s->sim, s->build, replay);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_GT(a.restores, 0u);
  EXPECT_EQ(b.restores, 0u);
  // The acceptance bar: checkpointing must cut the events executed at least
  // in half relative to replaying every prefix from the root.
  EXPECT_LE(2 * a.steps, b.steps)
      << "checkpoint=" << a.steps << " replay=" << b.steps;
}

TEST(Observer, CheckpointModeFindsTheSameWitness) {
  const auto* s = find_scenario("bakery-none-2p");
  ASSERT_NE(s, nullptr);
  tso::ExplorerConfig ckpt;
  ckpt.preemptions = 2;
  ckpt.shrink = false;  // compare the raw first-in-DFS-order witness
  tso::ExplorerConfig replay = ckpt;
  replay.checkpoint = false;

  const auto a = tso::explore(s->n_procs, s->sim, s->build, ckpt);
  const auto b = tso::explore(s->n_procs, s->sim, s->build, replay);
  ASSERT_TRUE(a.verdict.found());
  ASSERT_TRUE(b.verdict.found());
  EXPECT_EQ(a.verdict.message, b.verdict.message);
  ASSERT_EQ(a.verdict.witness.size(), b.verdict.witness.size());
  for (std::size_t i = 0; i < a.verdict.witness.size(); ++i) {
    EXPECT_EQ(a.verdict.witness[i].kind, b.verdict.witness[i].kind) << i;
    EXPECT_EQ(a.verdict.witness[i].proc, b.verdict.witness[i].proc) << i;
    EXPECT_EQ(a.verdict.witness[i].var, b.verdict.witness[i].var) << i;
  }
}

// ---- snapshot / restore round trips --------------------------------------

struct Outcome {
  bool violated = false;
  std::string violation;
  std::vector<tso::Event> events;
  std::vector<tso::Value> var_values;
  std::vector<tso::ProcId> var_writers;
  std::vector<DynBitset> awareness;
};

/// Applies the tail of a witness (leniently) and captures the result.
Outcome finish(Simulator& sim, const std::vector<Directive>& tail) {
  Outcome out;
  for (const Directive& d : tail) {
    try {
      apply(sim, d);
    } catch (const CheckFailure& e) {
      out.violated = true;
      out.violation = e.what();
      break;
    }
  }
  out.events = sim.execution().events;
  for (std::size_t v = 0; v < sim.num_vars(); ++v) {
    out.var_values.push_back(sim.value(static_cast<tso::VarId>(v)));
    out.var_writers.push_back(sim.last_writer(static_cast<tso::VarId>(v)));
  }
  for (std::size_t p = 0; p < sim.num_procs(); ++p)
    out.awareness.push_back(sim.awareness_of(static_cast<tso::ProcId>(p)));
  return out;
}

void expect_equal(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(violation_detail(a.violation), violation_detail(b.violation));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const tso::Event& x = a.events[i];
    const tso::Event& y = b.events[i];
    EXPECT_EQ(x.to_string(), y.to_string()) << i;
    EXPECT_EQ(x.rmr_dsm, y.rmr_dsm) << i;
    EXPECT_EQ(x.rmr_wt, y.rmr_wt) << i;
    EXPECT_EQ(x.rmr_wb, y.rmr_wb) << i;
  }
  EXPECT_EQ(a.var_values, b.var_values);
  EXPECT_EQ(a.var_writers, b.var_writers);
  ASSERT_EQ(a.awareness.size(), b.awareness.size());
  for (std::size_t p = 0; p < a.awareness.size(); ++p)
    EXPECT_TRUE(a.awareness[p] == b.awareness[p]) << "p" << p;
}

TEST(Snapshot, RestoreIntoFreshSimulatorMatchesUninterruptedRun) {
  for (const fs::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    const trace::Witness w = trace::read_witness(in);
    const auto* s = find_scenario(w.scenario);
    ASSERT_NE(s, nullptr);
    const std::size_t half = w.directives.size() / 2;
    const std::vector<Directive> head(w.directives.begin(),
                                      w.directives.begin() + half);
    const std::vector<Directive> tail(w.directives.begin() + half,
                                      w.directives.end());

    Simulator original(w.n_procs, s->sim);
    s->build(original);
    bool head_violated = false;
    for (const Directive& d : head) {
      try {
        apply(original, d);
      } catch (const CheckFailure&) {
        head_violated = true;
        break;
      }
    }
    ASSERT_FALSE(head_violated) << "corpus witnesses violate at the end";

    const SimSnapshot snap = original.snapshot();
    const Outcome uninterrupted = finish(original, tail);
    if (w.verdict_kind == tso::VerdictKind::kSafety) {
      ASSERT_TRUE(uninterrupted.violated)
          << "corpus witness must still reproduce";
    } else {
      // Liveness lassos replay cleanly — the verdict is about the cycle
      // repeating forever, not about tripping an invariant. The snapshot
      // round-trip comparisons below still apply verbatim.
      ASSERT_FALSE(uninterrupted.violated)
          << "liveness witness raised a safety violation";
    }

    // Restore into a freshly constructed simulator.
    Simulator revived(w.n_procs, s->sim);
    revived.restore(snap, s->build);
    EXPECT_EQ(revived.events_executed(), 0u)
        << "restore must not execute machine events";
    const Outcome roundtrip = finish(revived, tail);
    expect_equal(uninterrupted, roundtrip);

    // And back onto the original simulator, in place.
    original.restore(snap, s->build);
    const Outcome inplace = finish(original, tail);
    expect_equal(uninterrupted, inplace);
  }
}

TEST(Snapshot, ForeignObserverSnapshotIsRejected) {
  Simulator a(2);
  Simulator b(2, bare_config({}));
  const SimSnapshot snap = a.snapshot();
  EXPECT_THROW(b.restore(snap, [](Simulator&) {}), CheckFailure)
      << "observer sets differ";
}

// ---- JSONL trace sink ----------------------------------------------------

TEST(Observer, JsonlTraceSinkEmitsOneObjectPerDirectiveAndEvent) {
  const auto* s = find_scenario("bakery-tso-2p");
  ASSERT_NE(s, nullptr);
  std::ostringstream out;
  Simulator sim(s->n_procs, s->sim);
  sim.add_observer(std::make_unique<tso::JsonlTraceSink>(out));
  s->build(sim);
  tso::run_round_robin(sim, 10'000);
  ASSERT_TRUE(tso::all_done(sim));

  std::size_t lines = 0, events = 0, directives = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"event\"") != std::string::npos) ++events;
    if (line.find("\"type\":\"directive\"") != std::string::npos)
      ++directives;
  }
  EXPECT_EQ(lines, events + directives);
  EXPECT_EQ(events, sim.num_events());
  EXPECT_EQ(directives, sim.execution().directives.size());
}

}  // namespace
}  // namespace tpa
