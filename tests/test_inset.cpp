// IN-set (Definition 4) and regularity/ordered predicates (Definitions 5-6)
// on crafted executions that isolate each condition.
#include <gtest/gtest.h>

#include "trace/analyzer.h"
#include "trace/inset.h"
#include "tso/sim.h"

namespace tpa {
namespace {

using trace::analyze;
using trace::VarLayout;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

struct World {
  Simulator sim;
  explicit World(std::size_t n) : sim(n) {}
  trace::Analysis analysis() {
    return analyze(sim.execution(), sim.num_procs(), layout());
  }
  VarLayout layout() { return {sim.var_owners()}; }
};

Task<> entering(Proc& p) {
  co_await p.enter();
  co_await p.fence();  // park on something harmless
}

Task<> enter_and_read(Proc& p, VarId v) {
  co_await p.enter();
  co_await p.read(v);
  co_await p.fence();
}

Task<> enter_and_commit(Proc& p, VarId v, Value x) {
  co_await p.enter();
  co_await p.write(v, x);
  co_await p.fence();
}

TEST(Inset, EmptyExecutionIsRegular) {
  World w(3);
  const auto a = w.analysis();
  const auto rep = trace::check_regular(w.sim.execution(), a, w.layout());
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(Inset, EnteredProcessesAreRegular) {
  World w(3);
  for (int p = 0; p < 3; ++p) w.sim.spawn(p, entering(w.sim.proc(p)));
  for (int p = 0; p < 3; ++p) w.sim.deliver(p);  // Enter each
  const auto a = w.analysis();
  EXPECT_EQ(a.active().size(), 3u);
  const auto rep = trace::check_regular(w.sim.execution(), a, w.layout());
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(Inset, In1ViolatedByAwareness) {
  World w(2);
  const VarId v = w.sim.alloc_var(0);
  w.sim.spawn(0, enter_and_commit(w.sim.proc(0), v, 5));
  w.sim.spawn(1, enter_and_read(w.sim.proc(1), v));
  for (int i = 0; i < 5; ++i) w.sim.deliver(0);  // enter,issue,begin,commit,end
  w.sim.deliver(1);                              // enter
  w.sim.deliver(1);                              // read -> aware of p0
  const auto a = w.analysis();
  // p0 and p1 are both active, p1 aware of p0: Act is not an IN-set.
  const auto rep = trace::check_regular(w.sim.execution(), a, w.layout());
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.detail.find("IN1"), std::string::npos) << rep.detail;
}

TEST(Inset, In2ViolatedByNonEntryInvisible) {
  World w(1);
  // p0 never enters: INV={p0} fails IN2 (and INV ⊆ Act fails first).
  const auto a = w.analysis();
  std::vector<bool> inv = {true};
  const auto rep =
      trace::check_inset_static(w.sim.execution(), a, w.layout(), inv);
  EXPECT_FALSE(rep.ok);
}

TEST(Inset, In4ViolatedByRemoteAccessToActiveOwnedVar) {
  World w(2);
  const VarId v = w.sim.alloc_var(0, /*owner=*/1);  // local to p1
  w.sim.spawn(0, enter_and_read(w.sim.proc(0), v));
  w.sim.spawn(1, entering(w.sim.proc(1)));
  w.sim.deliver(1);  // p1 enters (active)
  w.sim.deliver(0);  // p0 enters
  w.sim.deliver(0);  // p0 remotely reads p1's variable
  const auto a = w.analysis();
  const auto rep = trace::check_regular(w.sim.execution(), a, w.layout());
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.detail.find("IN4"), std::string::npos) << rep.detail;
}

TEST(Inset, In5ViolatedByVisibleInvisibleWriter) {
  World w(2);
  const VarId v = w.sim.alloc_var(0);
  w.sim.spawn(0, enter_and_commit(w.sim.proc(0), v, 5));
  w.sim.spawn(1, enter_and_read(w.sim.proc(1), v));
  // p1 reads v FIRST (sees 0, no awareness), THEN p0 commits: two active
  // accessors and the last writer p0 is active -> IN5 fails, IN1 holds.
  w.sim.deliver(1);  // enter p1
  w.sim.deliver(1);  // p1 reads v=0
  for (int i = 0; i < 5; ++i) w.sim.deliver(0);  // p0 enter..commit..end
  const auto a = w.analysis();
  std::vector<bool> inv = {true, true};
  const auto semi =
      trace::check_inset_semi(w.sim.execution(), a, w.layout(), inv);
  EXPECT_TRUE(semi.ok) << semi.detail;  // IN1-IN4 fine
  const auto full =
      trace::check_inset_static(w.sim.execution(), a, w.layout(), inv);
  EXPECT_FALSE(full.ok);
  EXPECT_NE(full.detail.find("IN5"), std::string::npos) << full.detail;
}

TEST(Inset, SubsetOfInsetIsInset) {
  World w(3);
  for (int p = 0; p < 3; ++p) w.sim.spawn(p, entering(w.sim.proc(p)));
  for (int p = 0; p < 3; ++p) w.sim.deliver(p);
  const auto a = w.analysis();
  for (int keep = 0; keep < 3; ++keep) {
    std::vector<bool> inv(3, false);
    inv[static_cast<std::size_t>(keep)] = true;
    const auto rep =
        trace::check_inset_static(w.sim.execution(), a, w.layout(), inv);
    EXPECT_TRUE(rep.ok) << "singleton {" << keep << "}: " << rep.detail;
  }
}

// ---- Ordered executions (Definition 6) -------------------------------------

Task<> enter_commit_stall(Proc& p, VarId v, Value x) {
  co_await p.enter();
  co_await p.write(v, x);
  co_await p.fence();
  co_await p.read(v);  // park after the fence completes
  co_await p.fence();
}

TEST(Ordered, CommitRunInIdOrderIsOrdered) {
  // Both processes commit to v in increasing ID order, mid-fence: (c).
  World w(2);
  const VarId v = w.sim.alloc_var(0);
  w.sim.spawn(0, enter_commit_stall(w.sim.proc(0), v, 1));
  w.sim.spawn(1, enter_commit_stall(w.sim.proc(1), v, 2));
  for (int p = 0; p < 2; ++p) {
    w.sim.deliver(p);  // Enter
    w.sim.deliver(p);  // issue write
    w.sim.deliver(p);  // BeginFence
  }
  w.sim.deliver(0);  // commit by p0
  w.sim.deliver(1);  // commit by p1 (adjacent, increasing ID)
  const auto a = w.analysis();
  const auto rep = trace::check_ordered(w.sim.execution(), a, w.layout());
  EXPECT_TRUE(rep.ok) << rep.detail;
  // But not regular: v is accessed by both active processes and its last
  // writer p1 is active.
  const auto reg = trace::check_regular(w.sim.execution(), a, w.layout());
  EXPECT_FALSE(reg.ok);
}

TEST(Ordered, WrongIdOrderIsNotOrdered) {
  World w(2);
  const VarId v = w.sim.alloc_var(0);
  w.sim.spawn(0, enter_commit_stall(w.sim.proc(0), v, 1));
  w.sim.spawn(1, enter_commit_stall(w.sim.proc(1), v, 2));
  for (int p = 0; p < 2; ++p) {
    w.sim.deliver(p);
    w.sim.deliver(p);
    w.sim.deliver(p);
  }
  w.sim.deliver(1);  // commit by p1 FIRST
  w.sim.deliver(0);  // then p0 — decreasing ID: not ordered
  const auto a = w.analysis();
  const auto rep = trace::check_ordered(w.sim.execution(), a, w.layout());
  EXPECT_FALSE(rep.ok);
}

TEST(Ordered, CompletedFenceAfterRunBreaksCondition) {
  World w(2);
  const VarId v = w.sim.alloc_var(0);
  w.sim.spawn(0, enter_commit_stall(w.sim.proc(0), v, 1));
  w.sim.spawn(1, enter_commit_stall(w.sim.proc(1), v, 2));
  for (int p = 0; p < 2; ++p) {
    w.sim.deliver(p);
    w.sim.deliver(p);
    w.sim.deliver(p);
  }
  w.sim.deliver(0);
  w.sim.deliver(1);
  // p1 completes its fence: condition (c)'s "still executing" clause fails
  // and p1 stays visible on v.
  w.sim.deliver(1);  // EndFence for p1
  const auto a = w.analysis();
  const auto rep = trace::check_ordered(w.sim.execution(), a, w.layout());
  EXPECT_FALSE(rep.ok);
}

}  // namespace
}  // namespace tpa
