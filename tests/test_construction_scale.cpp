// Larger-scale construction runs: invariants stay verified at N=64, the
// linear forced-barrier relationship persists, and the verification-off
// fast path produces identical results.
#include <gtest/gtest.h>

#include "algos/zoo.h"
#include "lowerbound/construction.h"

namespace tpa {
namespace {

using lowerbound::Construction;
using lowerbound::ConstructionConfig;
using tso::ScenarioBuilder;
using tso::Simulator;

ScenarioBuilder builder(const std::string& lock, int n) {
  const auto& f = algos::lock_factory(lock);
  return [&f, n](Simulator& sim) {
    auto l = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), l, 1));
  };
}

TEST(ConstructionScale, AdaptiveBakeryAt64Verified) {
  const int n = 64;
  Construction c(n, builder("adaptive-bakery", n), {});
  const auto r = c.run();
  EXPECT_TRUE(r.invariants_ok) << r.invariant_detail;
  EXPECT_EQ(r.witness_barriers, 63u);
  EXPECT_EQ(r.witness_contention, 64u);
}

TEST(ConstructionScale, SplitterAt24Verified) {
  const int n = 24;
  Construction c(n, builder("adaptive-splitter", n), {});
  const auto r = c.run();
  EXPECT_TRUE(r.invariants_ok) << r.invariant_detail;
  EXPECT_EQ(r.witness_barriers, 23u);
  EXPECT_EQ(r.witness_contention, 24u);
}

TEST(ConstructionScale, VerificationOffMatchesVerifiedRun) {
  const int n = 32;
  ConstructionConfig verified;
  ConstructionConfig fast;
  fast.verify_invariants = false;
  Construction c1(n, builder("adaptive-bakery", n), verified);
  Construction c2(n, builder("adaptive-bakery", n), fast);
  const auto r1 = c1.run();
  const auto r2 = c2.run();
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.finished, r2.finished);
  EXPECT_EQ(r1.witness_barriers, r2.witness_barriers);
  EXPECT_EQ(r1.witness_contention, r2.witness_contention);
  EXPECT_EQ(r1.total_events, r2.total_events)
      << "verification must not perturb the construction";
}

TEST(ConstructionScale, ForcedBarriersAreMonotoneInN) {
  std::uint32_t prev = 0;
  for (int n : {8, 16, 32, 64}) {
    ConstructionConfig cfg;
    cfg.verify_invariants = n <= 32;
    Construction c(static_cast<std::size_t>(n), builder("ticket", n), cfg);
    const auto r = c.run();
    EXPECT_GE(r.witness_barriers, prev) << "n=" << n;
    prev = r.witness_barriers;
  }
  EXPECT_EQ(prev, 63u);
}

}  // namespace
}  // namespace tpa
