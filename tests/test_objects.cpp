// Section 5 objects: semantics (counter monotonicity/uniqueness, stack
// LIFO, queue FIFO), obstruction-freedom, and the Lemma 9 reduction chain —
// one-time mutual exclusion from counter / queue / stack with O(1) overhead.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algos/spin_locks.h"
#include "objects/lockfree.h"
#include "objects/reduction.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using objects::CasCounter;
using objects::CounterMutex;
using objects::kEmpty;
using objects::MichaelScottQueue;
using objects::QueueCounter;
using objects::SimCounter;
using objects::SimQueue;
using objects::SimStack;
using objects::StackCounter;
using objects::TreiberStack;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;

Task<> inc_n(Proc& p, std::shared_ptr<SimCounter> c, int times,
             std::vector<Value>* out) {
  for (int i = 0; i < times; ++i) {
    const Value v = co_await c->fetch_increment(p);
    out->push_back(v);
  }
}

TEST(CasCounterTest, UniqueMonotoneValuesUnderContention) {
  const int n = 4, per = 5;
  Simulator sim(n);
  auto counter = std::make_shared<CasCounter>(sim);
  std::vector<std::vector<Value>> got(n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, inc_n(sim.proc(p), counter, per, &got[p]));
  Rng rng(3);
  tso::run_random(sim, rng, 0.4, 1'000'000);

  std::set<Value> all;
  for (int p = 0; p < n; ++p) {
    ASSERT_EQ(got[p].size(), static_cast<std::size_t>(per));
    EXPECT_TRUE(std::is_sorted(got[p].begin(), got[p].end()))
        << "per-process values must be increasing";
    all.insert(got[p].begin(), got[p].end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(n * per)) << "no duplicates";
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), n * per - 1);
}

Task<> pusher(Proc& p, std::shared_ptr<SimStack> s, Value base, int times) {
  for (int i = 0; i < times; ++i) co_await s->push(p, base + i);
}

Task<> popper(Proc& p, std::shared_ptr<SimStack> s, int times,
              std::vector<Value>* out) {
  for (int i = 0; i < times; ++i) {
    const Value v = co_await s->pop(p);
    if (v != kEmpty) out->push_back(v);
  }
}

Task<> lifo_prog(Proc& p, std::shared_ptr<SimStack> s,
                 std::vector<Value>* out) {
  co_await s->push(p, 1);
  co_await s->push(p, 2);
  co_await s->push(p, 3);
  for (int i = 0; i < 4; ++i) {
    const Value v = co_await s->pop(p);
    out->push_back(v);
  }
}

TEST(TreiberStackTest, SequentialLifo) {
  Simulator sim(1);
  auto stack = std::make_shared<TreiberStack>(sim, 1, 8);
  std::vector<Value> got;
  sim.spawn(0, lifo_prog(sim.proc(0), stack, &got));
  tso::run_round_robin(sim, 100'000);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], 3);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], kEmpty);
}

TEST(TreiberStackTest, ConcurrentPushPopNoLossNoDup) {
  const int n = 4, per = 4;
  Simulator sim(n);
  auto stack = std::make_shared<TreiberStack>(sim, n, per);
  std::vector<std::vector<Value>> got(n);
  // Two pushers, two poppers.
  sim.spawn(0, pusher(sim.proc(0), stack, 100, per));
  sim.spawn(1, pusher(sim.proc(1), stack, 200, per));
  sim.spawn(2, popper(sim.proc(2), stack, 3 * per, &got[2]));
  sim.spawn(3, popper(sim.proc(3), stack, 3 * per, &got[3]));
  Rng rng(9);
  tso::run_random(sim, rng, 0.4, 1'000'000);

  std::multiset<Value> popped;
  popped.insert(got[2].begin(), got[2].end());
  popped.insert(got[3].begin(), got[3].end());
  // Every popped value is unique and was pushed.
  std::set<Value> unique(popped.begin(), popped.end());
  EXPECT_EQ(unique.size(), popped.size()) << "no value popped twice";
  for (Value v : popped)
    EXPECT_TRUE((v >= 100 && v < 100 + per) || (v >= 200 && v < 200 + per));
}

TEST(TreiberStackTest, SeededPopsInOrder) {
  Simulator sim(1);
  auto stack = std::make_shared<TreiberStack>(sim, 1, 1, /*seed_capacity=*/3);
  stack->seed_initial(sim, {7, 8, 9});
  std::vector<Value> got;
  sim.spawn(0, popper(sim.proc(0), stack, 4, &got));
  tso::run_round_robin(sim, 100'000);
  ASSERT_EQ(got.size(), 3u);  // kEmpty filtered out
  EXPECT_EQ(got, (std::vector<Value>{7, 8, 9}));
}

Task<> enqueuer(Proc& p, std::shared_ptr<SimQueue> q, Value base, int times) {
  for (int i = 0; i < times; ++i) co_await q->enqueue(p, base + i);
}

Task<> dequeuer(Proc& p, std::shared_ptr<SimQueue> q, int times,
                std::vector<Value>* out) {
  for (int i = 0; i < times; ++i) {
    const Value v = co_await q->dequeue(p);
    if (v != kEmpty) out->push_back(v);
  }
}

Task<> fifo_prog(Proc& p, std::shared_ptr<SimQueue> q,
                 std::vector<Value>* out) {
  co_await q->enqueue(p, 1);
  co_await q->enqueue(p, 2);
  co_await q->enqueue(p, 3);
  for (int i = 0; i < 4; ++i) {
    const Value v = co_await q->dequeue(p);
    out->push_back(v);
  }
}

TEST(MsQueueTest, SequentialFifo) {
  Simulator sim(1);
  auto queue = std::make_shared<MichaelScottQueue>(sim, 1, 8);
  std::vector<Value> got;
  sim.spawn(0, fifo_prog(sim.proc(0), queue, &got));
  tso::run_round_robin(sim, 100'000);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 3);
  EXPECT_EQ(got[3], kEmpty);
}

TEST(MsQueueTest, PerProducerOrderPreserved) {
  const int n = 4, per = 4;
  Simulator sim(n);
  auto queue = std::make_shared<MichaelScottQueue>(sim, n, per);
  std::vector<std::vector<Value>> got(n);
  sim.spawn(0, enqueuer(sim.proc(0), queue, 100, per));
  sim.spawn(1, enqueuer(sim.proc(1), queue, 200, per));
  sim.spawn(2, dequeuer(sim.proc(2), queue, 3 * per, &got[2]));
  sim.spawn(3, dequeuer(sim.proc(3), queue, 3 * per, &got[3]));
  Rng rng(17);
  tso::run_random(sim, rng, 0.4, 1'000'000);

  // FIFO per producer: each consumer's subsequence from one producer is
  // increasing.
  for (int c : {2, 3}) {
    std::vector<Value> a, b;
    for (Value v : got[static_cast<std::size_t>(c)])
      (v < 200 ? a : b).push_back(v);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  }
  std::set<Value> all;
  all.insert(got[2].begin(), got[2].end());
  all.insert(got[3].begin(), got[3].end());
  EXPECT_EQ(all.size(), got[2].size() + got[3].size()) << "no duplicates";
}

Task<> solo_ops_prog(Proc& p, std::shared_ptr<SimCounter> c,
                     std::shared_ptr<SimStack> s, std::shared_ptr<SimQueue> q,
                     std::vector<Value>* out) {
  const Value a = co_await c->fetch_increment(p);
  out->push_back(a);
  co_await s->push(p, 1);
  const Value b = co_await s->pop(p);
  out->push_back(b);
  co_await q->enqueue(p, 2);
  const Value d = co_await q->dequeue(p);
  out->push_back(d);
}

TEST(ObstructionFreedom, SoloOperationsTerminate) {
  // Weak obstruction-freedom: a solo run of any operation completes.
  Simulator sim(2);
  auto counter = std::make_shared<CasCounter>(sim);
  auto stack = std::make_shared<TreiberStack>(sim, 2, 2);
  auto queue = std::make_shared<MichaelScottQueue>(sim, 2, 2);
  std::vector<Value> got;
  sim.spawn(0, solo_ops_prog(sim.proc(0), counter, stack, queue, &got));
  std::uint64_t steps = 0;
  while (!sim.proc(0).done()) {
    ASSERT_TRUE(sim.deliver(0));
    ASSERT_LT(++steps, 10'000u);
  }
  EXPECT_EQ(got, (std::vector<Value>{0, 1, 2}));
}

// ---- Lemma 9: one-time mutex from counter / queue / stack ------------------

void run_counter_mutex(std::shared_ptr<SimCounter> counter, Simulator& sim,
                       int n) {
  auto mutex = std::make_shared<CounterMutex>(sim, n, std::move(counter));
  for (int p = 0; p < n; ++p)
    sim.spawn(p, algos::run_passages(sim.proc(p), mutex, 1));
  Rng rng(123);
  tso::run_random(sim, rng, 0.3, 5'000'000);
  for (int p = 0; p < n; ++p)
    ASSERT_EQ(sim.proc(p).passages_done(), 1u) << "p" << p;
}

TEST(Lemma9, MutexFromCasCounter) {
  const int n = 5;
  Simulator sim(n);
  run_counter_mutex(std::make_shared<CasCounter>(sim), sim, n);
}

TEST(Lemma9, MutexFromQueue) {
  const int n = 5;
  Simulator sim(n);
  auto queue = std::make_shared<MichaelScottQueue>(sim, n, 0, n);
  std::vector<Value> tickets;
  for (int i = 0; i < n; ++i) tickets.push_back(i);
  queue->seed_initial(sim, tickets);
  run_counter_mutex(std::make_shared<QueueCounter>(queue), sim, n);
}

TEST(Lemma9, MutexFromStack) {
  const int n = 5;
  Simulator sim(n);
  auto stack = std::make_shared<TreiberStack>(sim, n, 0, n);
  std::vector<Value> tickets;  // 0 must pop first
  for (int i = 0; i < n; ++i) tickets.push_back(i);
  stack->seed_initial(sim, tickets);
  run_counter_mutex(std::make_shared<StackCounter>(stack), sim, n);
}

TEST(Lemma9, PassageOverheadIsConstant) {
  // Each passage performs exactly one fetch&increment plus O(1) fences:
  // count the non-counter fences of a solo passage.
  const int n = 8;
  Simulator sim(n);
  auto counter = std::make_shared<CasCounter>(sim);
  auto mutex = std::make_shared<CounterMutex>(sim, n, counter);
  sim.spawn(0, algos::run_passages(sim.proc(0), mutex, 1));
  while (!sim.proc(0).done()) sim.deliver(0);
  const auto& st = sim.proc(0).finished_passages().at(0);
  EXPECT_EQ(st.cas_ops, 1u) << "exactly one counter operation";
  EXPECT_LE(st.fences, 3u) << "O(1) fences beyond the counter op";
  EXPECT_LE(st.critical, 6u) << "O(1) critical events beyond the counter op";
}

// ---- Easy direction: objects from a lock -----------------------------------

Task<> locked_queue_prog(Proc& p, std::shared_ptr<SimQueue> qq,
                         std::vector<Value>* out) {
  co_await qq->enqueue(p, 1);
  co_await qq->enqueue(p, 2);
  for (int i = 0; i < 3; ++i) {
    const Value v = co_await qq->dequeue(p);
    out->push_back(v);
  }
}

Task<> locked_stack_prog(Proc& p, std::shared_ptr<SimStack> st,
                         std::vector<Value>* out) {
  co_await st->push(p, 1);
  co_await st->push(p, 2);
  for (int i = 0; i < 3; ++i) {
    const Value v = co_await st->pop(p);
    out->push_back(v);
  }
}

TEST(LockedObjects, CounterQueueStackBehave) {
  const int n = 3;
  Simulator sim(n);
  auto lock = std::make_shared<algos::TasLock>(sim);
  auto counter = std::make_shared<objects::LockedCounter>(sim, lock);
  std::vector<std::vector<Value>> got(n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, inc_n(sim.proc(p), counter, 3, &got[p]));
  Rng rng(5);
  tso::run_random(sim, rng, 0.4, 1'000'000);
  std::set<Value> all;
  for (auto& g : got) all.insert(g.begin(), g.end());
  EXPECT_EQ(all.size(), 9u);

  Simulator sim2(2);
  auto lock2 = std::make_shared<algos::TasLock>(sim2);
  auto q = std::make_shared<objects::LockedQueue>(sim2, lock2, 8);
  auto s = std::make_shared<objects::LockedStack>(sim2, lock2, 8);
  std::vector<Value> qs, ss;
  sim2.spawn(0, locked_queue_prog(sim2.proc(0), q, &qs));
  sim2.spawn(1, locked_stack_prog(sim2.proc(1), s, &ss));
  tso::run_round_robin(sim2, 1'000'000);
  EXPECT_EQ(qs, (std::vector<Value>{1, 2, kEmpty}));
  EXPECT_EQ(ss, (std::vector<Value>{2, 1, kEmpty}));
}

}  // namespace
}  // namespace tpa
