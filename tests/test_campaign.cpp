// Durable campaigns: the checkpoint file format, checkpoint/resume through
// the public explore()/resume() surface, and the visited-set memory
// governor. The differential contract under test everywhere: a resumed
// campaign finishes with the verdict, witness and (dedup off) exact
// schedule/truncated counts of the uninterrupted run. Process-death
// durability (SIGKILL at random points) is exercised by the separate
// crash-harness binary (tests/crash_harness.cpp, ctest label `robustness`);
// these tests cover the in-process semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "trace/campaign.h"
#include "tso/explorer.h"
#include "tso/sim.h"
#include "util/check.h"

namespace tpa {
namespace {

using runtime::find_scenario;
using runtime::Scenario;
using tso::DedupMode;
using tso::ExplorerConfig;
using tso::ExplorerResult;
using tso::ResumeOptions;

/// A campaign path under the test temp dir, removed on scope exit.
class CampaignFile {
 public:
  explicit CampaignFile(const char* tag)
      : path_(::testing::TempDir() + "tpa_campaign_" + tag + ".tpc") {
    std::remove(path_.c_str());
  }
  ~CampaignFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_same_outcome(const ExplorerResult& a, const ExplorerResult& b,
                         const char* what, bool counts = true) {
  EXPECT_EQ(a.verdict.found(), b.verdict.found()) << what;
  EXPECT_EQ(a.verdict.message, b.verdict.message) << what;
  ASSERT_EQ(a.verdict.witness.size(), b.verdict.witness.size()) << what;
  for (std::size_t i = 0; i < a.verdict.witness.size(); ++i) {
    EXPECT_EQ(a.verdict.witness[i].kind, b.verdict.witness[i].kind) << what << " dir " << i;
    EXPECT_EQ(a.verdict.witness[i].proc, b.verdict.witness[i].proc) << what << " dir " << i;
    EXPECT_EQ(a.verdict.witness[i].var, b.verdict.witness[i].var) << what << " dir " << i;
  }
  EXPECT_EQ(a.exhausted, b.exhausted) << what;
  if (counts) {
    EXPECT_EQ(a.schedules, b.schedules) << what;
    EXPECT_EQ(a.truncated, b.truncated) << what;
  }
}

// ---- the file format -----------------------------------------------------

TEST(CampaignFormat, RoundTripsThroughTextFormat) {
  trace::Campaign c;
  c.scenario = "mcs-2p";
  c.n_procs = 2;
  c.pso = true;
  c.crash_model = tso::CrashModel::kBufferFlushed;
  c.preemptions = 3;
  c.max_steps = 123;
  c.max_schedules = 456;
  c.max_crashes = 1;
  c.dedup = DedupMode::kState;
  c.symmetry = tso::SymmetryMode::kOff;
  c.dedup_max_bytes = 1 << 20;
  c.shrink = false;
  c.checkpoint = true;
  c.schedules = 7;
  c.steps = 8;
  c.truncated = 9;
  c.snapshots = 10;
  c.restores = 11;
  c.dedup_hits = 12;
  c.dedup_states = 13;
  c.dedup_evictions = 14;
  c.frontier.push_back({1, 2, 1, {{tso::ActionKind::kDeliver, 0},
                                  {tso::ActionKind::kCommit, 1, 5},
                                  {tso::ActionKind::kCrash, 0},
                                  {tso::ActionKind::kRecover, 0}}});
  c.frontier.push_back({tso::kNoProc, 3, 0, {{tso::ActionKind::kCommit, 1}}});

  const trace::Campaign r =
      trace::campaign_from_string(trace::campaign_to_string(c));
  EXPECT_EQ(r.scenario, c.scenario);
  EXPECT_EQ(r.n_procs, c.n_procs);
  EXPECT_EQ(r.pso, c.pso);
  EXPECT_EQ(r.crash_model, c.crash_model);
  EXPECT_EQ(r.preemptions, c.preemptions);
  EXPECT_EQ(r.max_steps, c.max_steps);
  EXPECT_EQ(r.max_schedules, c.max_schedules);
  EXPECT_EQ(r.max_crashes, c.max_crashes);
  EXPECT_EQ(r.dedup, c.dedup);
  EXPECT_EQ(r.dedup_max_bytes, c.dedup_max_bytes);
  EXPECT_EQ(r.shrink, c.shrink);
  EXPECT_EQ(r.schedules, c.schedules);
  EXPECT_EQ(r.steps, c.steps);
  EXPECT_EQ(r.truncated, c.truncated);
  EXPECT_EQ(r.dedup_evictions, c.dedup_evictions);
  EXPECT_FALSE(r.complete);
  ASSERT_EQ(r.frontier.size(), 2u);
  EXPECT_EQ(r.frontier[0].current, 1);
  EXPECT_EQ(r.frontier[0].preemptions, 2);
  EXPECT_EQ(r.frontier[0].crashes_left, 1);
  ASSERT_EQ(r.frontier[0].dirs.size(), 4u);
  EXPECT_EQ(r.frontier[0].dirs[1].kind, tso::ActionKind::kCommit);
  EXPECT_EQ(r.frontier[0].dirs[1].var, 5);
  EXPECT_EQ(r.frontier[1].current, tso::kNoProc);
  ASSERT_EQ(r.frontier[1].dirs.size(), 1u);
  EXPECT_EQ(r.frontier[1].dirs[0].var, tso::kNoVar);
}

TEST(CampaignFormat, RoundTripsTerminalViolatingRecord) {
  trace::Campaign c;
  c.n_procs = 2;
  c.complete = true;
  c.exhausted = false;
  c.verdict.kind = tso::VerdictKind::kSafety;
  c.verdict.message = "exclusion: p0 and p1 both in CS";
  c.verdict.witness = {{tso::ActionKind::kDeliver, 0}, {tso::ActionKind::kDeliver, 1}};

  const trace::Campaign r =
      trace::campaign_from_string(trace::campaign_to_string(c));
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.exhausted);
  EXPECT_TRUE(r.verdict.found());
  EXPECT_EQ(r.verdict.message, c.verdict.message);
  ASSERT_EQ(r.verdict.witness.size(), 2u);
  EXPECT_TRUE(r.frontier.empty());
}

TEST(CampaignFormat, ReaderRejectsTamperedConfigAndTruncation) {
  trace::Campaign c;
  c.n_procs = 2;
  c.preemptions = 2;
  c.frontier.push_back({tso::kNoProc, 2, 0, {}});
  std::string text = trace::campaign_to_string(c);

  // Editing a config field without recomputing the hash must be rejected:
  // resuming it would silently explore a different schedule tree.
  std::string tampered = text;
  const auto pos = tampered.find("preemptions 2");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 13, "preemptions 3");
  EXPECT_THROW(trace::campaign_from_string(tampered), CheckFailure);

  // A file cut off anywhere before the end marker is rejected — though the
  // atomic write path means such a file should never exist on disk.
  const std::string truncated = text.substr(0, text.size() / 2);
  EXPECT_THROW(trace::campaign_from_string(truncated), CheckFailure);

  // A complete record carrying frontier nodes is self-contradictory.
  trace::Campaign bad;
  bad.n_procs = 2;
  bad.complete = true;
  bad.frontier.push_back({tso::kNoProc, 2, 0, {}});
  EXPECT_THROW(trace::campaign_from_string(trace::campaign_to_string(bad)),
               CheckFailure);
}

// ---- campaign explore / resume ------------------------------------------

TEST(Campaign, TerminalRecordMatchesPlainExploreAndResumeReturnsIt) {
  const Scenario* s = find_scenario("mcs-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  const ExplorerResult plain = s->explore(cfg);
  ASSERT_FALSE(plain.verdict.found()) << plain.verdict.message;

  CampaignFile file("terminal");
  cfg.campaign_path = file.path();
  const ExplorerResult campaigned = s->explore(cfg);
  expect_same_outcome(plain, campaigned, "campaign vs plain");
  EXPECT_EQ(plain.steps, campaigned.steps)
      << "an uninterrupted campaign replays nothing";

  trace::Campaign rec = trace::read_campaign_file(file.path());
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.scenario, "mcs-2p");
  EXPECT_EQ(rec.schedules, plain.schedules);
  EXPECT_EQ(rec.truncated, plain.truncated);
  EXPECT_TRUE(rec.exhausted);

  // Resuming a terminal campaign reports the stored result, re-exploring
  // nothing — steps would have grown otherwise.
  const ExplorerResult resumed = runtime::resume(file.path());
  expect_same_outcome(plain, resumed, "resume of terminal campaign");
  EXPECT_EQ(resumed.steps, plain.steps);
}

TEST(Campaign, ViolatingCampaignStoresTheShrunkWitness) {
  const Scenario* s = find_scenario("bakery-none-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  const ExplorerResult plain = s->explore(cfg);
  ASSERT_TRUE(plain.verdict.found());

  CampaignFile file("violating");
  cfg.campaign_path = file.path();
  const ExplorerResult campaigned = s->explore(cfg);
  expect_same_outcome(plain, campaigned, "violating campaign vs plain");

  const trace::Campaign rec = trace::read_campaign_file(file.path());
  EXPECT_TRUE(rec.complete);
  EXPECT_TRUE(rec.verdict.found());
  ASSERT_EQ(rec.verdict.witness.size(), plain.verdict.witness.size());
  for (std::size_t i = 0; i < rec.verdict.witness.size(); ++i)
    EXPECT_EQ(rec.verdict.witness[i].proc, plain.verdict.witness[i].proc) << "dir " << i;

  // The stored witness replays to the recorded violation.
  try {
    s->replay(rec.verdict.witness);
    FAIL() << "stored witness did not reproduce the violation";
  } catch (const CheckFailure& e) {
    EXPECT_EQ(runtime::violation_detail(e.what()),
              runtime::violation_detail(rec.verdict.message));
  }
}

TEST(Campaign, DeadlineSuspendsAndResumeFinishesWithExactCounts) {
  const Scenario* s = find_scenario("mcs-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  const ExplorerResult plain = s->explore(cfg);

  CampaignFile file("deadline");
  cfg.campaign_path = file.path();
  cfg.time_budget_ms = 3;  // well under this scope's full wall time
  cfg.checkpoint_interval_ms = 1;
  ExplorerResult leg = s->explore(cfg);
  int legs = 1;
  while (leg.deadline_hit) {
    ASSERT_FALSE(leg.exhausted)
        << "a deadline-stopped leg must not claim a proof";
    ASSERT_LT(legs, 500) << "campaign did not converge";
    // A suspended checkpoint can carry a large frontier; a coarser cadence
    // keeps the resume legs exploring instead of re-serializing it.
    ResumeOptions opts;
    opts.time_budget_ms = 200;
    opts.checkpoint_interval_ms = 25;
    leg = runtime::resume(file.path(), opts);
    ++legs;
  }
  // However many legs it took, the final aggregate is the uninterrupted
  // run's verdict and exact schedule/truncated counts (steps differ: resume
  // legs re-derive frontier states by replay).
  expect_same_outcome(plain, leg, "resumed campaign vs uninterrupted");
  const trace::Campaign rec = trace::read_campaign_file(file.path());
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.schedules, plain.schedules);
}

TEST(Campaign, CrashBudgetCampaignReproducesVerdictAcrossLegs) {
  const Scenario* s = find_scenario("recoverable-nofence-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_crashes = 1;
  const ExplorerResult plain = s->explore(cfg);
  ASSERT_TRUE(plain.verdict.found());

  CampaignFile file("crashes");
  cfg.campaign_path = file.path();
  cfg.time_budget_ms = 1;
  cfg.checkpoint_interval_ms = 1;
  ExplorerResult leg = s->explore(cfg);
  int legs = 1;
  while (leg.deadline_hit) {
    ASSERT_LT(legs, 500) << "campaign did not converge";
    ResumeOptions opts;
    opts.time_budget_ms = 20;
    opts.checkpoint_interval_ms = 1;
    leg = runtime::resume(file.path(), opts);
    ++legs;
  }
  expect_same_outcome(plain, leg, "crash-budget campaign vs uninterrupted");
}

TEST(Campaign, RejectsParallelHooksAndSleepSets) {
  const Scenario* s = find_scenario("mcs-2p");
  ASSERT_NE(s, nullptr);
  CampaignFile file("rejects");

  ExplorerConfig parallel;
  parallel.campaign_path = file.path();
  parallel.threads = 2;
  EXPECT_THROW(s->explore(parallel), CheckFailure);

  ExplorerConfig hooked;
  hooked.campaign_path = file.path();
  hooked.on_complete = [](const tso::Simulator&) {};
  EXPECT_THROW(s->explore(hooked), CheckFailure);

  ExplorerConfig sleepy;
  sleepy.campaign_path = file.path();
  sleepy.sleep_sets = true;
  EXPECT_THROW(s->explore(sleepy), CheckFailure);
}

TEST(Campaign, ResumeRejectsMismatchedScenarioIdentity) {
  const Scenario* s = find_scenario("bakery-none-2p");
  ASSERT_NE(s, nullptr);
  CampaignFile file("mismatch");
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.campaign_path = file.path();
  (void)s->explore(cfg);

  // Wrong process count.
  EXPECT_THROW(tso::resume(file.path(), 3, s->sim, s->build), CheckFailure);
  // Wrong memory model.
  tso::SimConfig pso = s->sim;
  pso.pso = true;
  EXPECT_THROW(tso::resume(file.path(), s->n_procs, pso, s->build),
               CheckFailure);
  // Missing file.
  EXPECT_THROW(runtime::resume(file.path() + ".nope"), CheckFailure);
}

TEST(Campaign, RegistryResumeNeedsARecordedScenarioId) {
  const Scenario* s = find_scenario("mcs-2p");
  ASSERT_NE(s, nullptr);
  CampaignFile file("raw");
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.campaign_path = file.path();
  // Raw tso::explore records no scenario id; the registry resume cannot
  // resolve a builder for it, while the explicit-builder resume can.
  (void)tso::explore(s->n_procs, s->sim, s->build, cfg);
  EXPECT_THROW(runtime::resume(file.path()), CheckFailure);
  const ExplorerResult r = tso::resume(file.path(), s->n_procs, s->sim,
                                       s->build);
  EXPECT_FALSE(r.verdict.found());
}

// ---- the visited-set memory governor ------------------------------------

TEST(MemoryGovernor, VerdictsIdenticalUnderAnyByteBudget) {
  const Scenario* s = find_scenario("tas-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig off;
  off.preemptions = 2;
  const ExplorerResult raw = s->explore(off);

  ExplorerConfig dedup = off;
  dedup.dedup = DedupMode::kState;
  const ExplorerResult unlimited = s->explore(dedup);
  expect_same_outcome(raw, unlimited, "dedup vs raw", /*counts=*/false);
  EXPECT_GT(unlimited.dedup_entries, 0u);
  EXPECT_GT(unlimited.dedup_bytes, 0u);
  EXPECT_EQ(unlimited.dedup_evictions, 0u);

  // A quarter of the observed peak: the governor must respect the cap and
  // change no verdict (the ISSUE's acceptance bar).
  ExplorerConfig capped = dedup;
  capped.dedup_max_bytes = unlimited.dedup_bytes / 4;
  const ExplorerResult governed = s->explore(capped);
  expect_same_outcome(raw, governed, "governed dedup vs raw",
                      /*counts=*/false);
  EXPECT_LE(governed.dedup_bytes, capped.dedup_max_bytes)
      << "the byte budget caps capacity, not just live entries";
  EXPECT_GT(governed.dedup_hits, 0u) << "a capped set should still prune";

  // Squeezed far below the live working set, the governor must evict —
  // and still change no verdict.
  ExplorerConfig tight = dedup;
  tight.dedup_max_bytes = 64 * 1024;
  const ExplorerResult squeezed = s->explore(tight);
  expect_same_outcome(raw, squeezed, "squeezed dedup vs raw",
                      /*counts=*/false);
  EXPECT_LE(squeezed.dedup_bytes, tight.dedup_max_bytes);
  EXPECT_GT(squeezed.dedup_evictions, 0u);

  // Budget 0 stores nothing: exploration degrades to raw enumeration,
  // count-identically.
  ExplorerConfig zero = dedup;
  zero.dedup_max_bytes = 0;
  const ExplorerResult degraded = s->explore(zero);
  expect_same_outcome(raw, degraded, "budget-0 dedup vs raw");
  EXPECT_EQ(degraded.dedup_bytes, 0u);
  EXPECT_EQ(degraded.dedup_states, 0u);
  EXPECT_EQ(degraded.dedup_hits, 0u);
}

TEST(MemoryGovernor, BudgetedWitnessIsBitIdentical) {
  const Scenario* s = find_scenario("bakery-none-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig off;
  off.preemptions = 2;
  const ExplorerResult raw = s->explore(off);
  ASSERT_TRUE(raw.verdict.found());

  ExplorerConfig capped;
  capped.preemptions = 2;
  capped.dedup = DedupMode::kState;
  capped.dedup_max_bytes = 4096;
  const ExplorerResult governed = s->explore(capped);
  expect_same_outcome(raw, governed, "governed witness", /*counts=*/false);
}

TEST(MemoryGovernor, FootprintStatsAppearInResultAndJson) {
  const Scenario* s = find_scenario("tas-2p");
  ASSERT_NE(s, nullptr);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  cfg.dedup = DedupMode::kState;
  const ExplorerResult r = s->explore(cfg);
  // No byte budget configured — the footprint is still reported.
  EXPECT_GT(r.dedup_entries, 0u);
  EXPECT_GT(r.dedup_bytes, 0u);
  const std::string j = r.to_json();
  for (const char* key :
       {"\"dedup_entries\":", "\"dedup_bytes\":", "\"dedup_evictions\":"})
    EXPECT_NE(j.find(key), std::string::npos) << j;
}

}  // namespace
}  // namespace tpa
