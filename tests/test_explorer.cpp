// Context-bounded exhaustive exploration: proves small-scope mutual
// exclusion for correctly-fenced locks and automatically finds the
// violating schedule for the fence-free bakery — the "fences are
// unavoidable" premise ([5] in the paper), demonstrated.
#include <gtest/gtest.h>

#include <memory>

#include "algos/bakery.h"
#include "algos/zoo.h"
#include "tso/explorer.h"
#include "tso/schedule.h"

namespace tpa {
namespace {

using algos::BakeryFencing;
using algos::BakeryLock;
using algos::run_passages;
using tso::ExplorerConfig;
using tso::explore;
using tso::ScenarioBuilder;
using tso::Simulator;

ScenarioBuilder bakery_builder(int n, BakeryFencing fencing) {
  return [n, fencing](Simulator& sim) {
    auto lock = std::make_shared<BakeryLock>(sim, n, fencing);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  };
}

TEST(Explorer, FenceFreeBakeryViolationFoundAutomatically) {
  const auto build = bakery_builder(2, BakeryFencing::kNone);
  ExplorerConfig cfg;
  cfg.preemptions = 1;  // a single preemption already suffices
  const auto r = explore(2, {}, build, cfg);
  ASSERT_TRUE(r.verdict.found())
      << "a fence-free read/write lock cannot be correct under TSO";
  EXPECT_NE(r.verdict.message.find("mutual exclusion violated"), std::string::npos)
      << r.verdict.message;
  ASSERT_FALSE(r.verdict.witness.empty());

  // The witness schedule must reproduce the violation deterministically.
  EXPECT_THROW(
      tso::replay(2, {}, build, r.verdict.witness),
      CheckFailure);
}

TEST(Explorer, ProperlyFencedBakeryIsExhaustivelySafe) {
  const auto build = bakery_builder(2, BakeryFencing::kTso);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  const auto r = explore(2, {}, build, cfg);
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.schedules, 100u)
      << "two processes with two preemptions yield many schedules";
}

TEST(Explorer, ZooLocksSafeAtSmallScope) {
  for (const char* name : {"tas", "ticket", "mcs", "tournament",
                           "yang-anderson", "adaptive-bakery",
                           "adaptive-splitter"}) {
    const auto& f = algos::lock_factory(name);
    const int n = 2;
    ScenarioBuilder build = [&f, n](Simulator& sim) {
      auto lock = f.make(sim, n);
      for (int p = 0; p < n; ++p)
        sim.spawn(p, run_passages(sim.proc(p), lock, 1));
    };
    ExplorerConfig cfg;
    cfg.preemptions = 2;
    cfg.max_schedules = 200'000;
    const auto r = explore(n, {}, build, cfg);
    EXPECT_FALSE(r.verdict.found()) << name << ": " << r.verdict.message;
  }
}

TEST(Explorer, ThreeProcessesOnePreemption) {
  const auto build = bakery_builder(3, BakeryFencing::kTso);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  const auto r = explore(3, {}, build, cfg);
  EXPECT_FALSE(r.verdict.found()) << r.verdict.message;
  EXPECT_TRUE(r.exhausted);
}

TEST(Explorer, FenceFreeViolationAlsoAtThreeProcesses) {
  const auto build = bakery_builder(3, BakeryFencing::kNone);
  ExplorerConfig cfg;
  cfg.preemptions = 1;
  const auto r = explore(3, {}, build, cfg);
  EXPECT_TRUE(r.verdict.found());
}

TEST(Explorer, AdaptiveLocksSafeAtThreeProcs) {
  // The adaptive locks at n=3 with one preemption: the registration races
  // (splitter walk / slot CAS) must never compromise exclusion.
  for (const char* name : {"adaptive-bakery", "adaptive-splitter"}) {
    const auto& f = algos::lock_factory(name);
    const int n = 3;
    ScenarioBuilder build = [&f, n](Simulator& sim) {
      auto lock = f.make(sim, n);
      for (int p = 0; p < n; ++p)
        sim.spawn(p, run_passages(sim.proc(p), lock, 1));
    };
    ExplorerConfig cfg;
    cfg.preemptions = 1;
    cfg.max_schedules = 500'000;
    const auto r = explore(n, {}, build, cfg);
    EXPECT_FALSE(r.verdict.found()) << name << ": " << r.verdict.message;
    EXPECT_TRUE(r.exhausted) << name;
  }
}

TEST(Explorer, RespectsScheduleBudget) {
  const auto build = bakery_builder(2, BakeryFencing::kTso);
  ExplorerConfig cfg;
  cfg.preemptions = 2;
  cfg.max_schedules = 5;
  const auto r = explore(2, {}, build, cfg);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.schedules + r.truncated, 6u);
}

TEST(Explorer, ZeroPreemptionsIsSequential) {
  // With no preemptions each process runs to completion in turn: exactly
  // n! schedule skeletons for n processes (2 here, since drains interleave
  // deterministically).
  const auto build = bakery_builder(2, BakeryFencing::kTso);
  ExplorerConfig cfg;
  cfg.preemptions = 0;
  const auto r = explore(2, {}, build, cfg);
  EXPECT_FALSE(r.verdict.found());
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.schedules, 2u);
}

}  // namespace
}  // namespace tpa
