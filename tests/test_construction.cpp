// End-to-end tests of the lower-bound adversary construction (Sections 3-4):
// it must run with all invariants verified against every zoo lock, force
// barriers that scale with contention for the adaptive lock, and produce a
// valid Theorem 1 witness execution.
#include <gtest/gtest.h>

#include "algos/zoo.h"
#include "lowerbound/construction.h"

namespace tpa {
namespace {

using lowerbound::Construction;
using lowerbound::ConstructionConfig;
using lowerbound::ConstructionResult;
using tso::ProcId;
using tso::ScenarioBuilder;
using tso::Simulator;

ScenarioBuilder zoo_builder(const std::string& lock_name, int n) {
  const auto& f = algos::lock_factory(lock_name);
  return [&f, n](Simulator& sim) {
    auto lock = f.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
}

ConstructionResult run_construction(const std::string& lock, int n,
                                    ConstructionConfig cfg = {}) {
  Construction c(static_cast<std::size_t>(n), zoo_builder(lock, n), cfg);
  return c.run();
}

class ConstructionZoo : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConstructionZoo, RunsWithInvariantsVerified) {
  const auto& f = algos::lock_zoo()[GetParam()];
  const auto r = run_construction(f.name, 8);
  EXPECT_TRUE(r.invariants_ok) << f.name << ": " << r.invariant_detail;
  EXPECT_GT(r.total_events, 0u);
  // Regularization rounds finish exactly one passage; CAS-contended rounds
  // may finish several (sequential hand-off). At least one process finishes
  // overall, and never fewer than one per regularization round.
  EXPECT_GE(r.finished, 1u) << f.name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ConstructionZoo,
    ::testing::Range<std::size_t>(0, 12),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = algos::lock_zoo()[info.param].name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Construction, AdaptiveLockForcedBarriersScaleWithContention) {
  // The headline result, executable: against the linear-adaptive lock, the
  // adversary forces barriers ~ total contention.
  for (int n : {4, 8, 16, 32}) {
    const auto r = run_construction("adaptive-bakery", n);
    EXPECT_TRUE(r.invariants_ok);
    EXPECT_EQ(r.witness_contention, static_cast<std::size_t>(n))
        << "witness contention must be |Fin|+1 = n at exhaustion";
    EXPECT_EQ(r.witness_barriers, static_cast<std::uint32_t>(n - 1))
        << "one failed-CAS barrier per finished rival";
    EXPECT_EQ(r.min_barriers_active, static_cast<std::uint32_t>(n - 1));
  }
}

TEST(Construction, NonAdaptiveBakeryPaysInRegularizationInstead) {
  // Plain bakery has O(1) fences; the adversary cannot force more — instead
  // its Θ(n) scans make p_max erase every other active process, collapsing
  // the construction after roughly one round. This is the OTHER side of the
  // tradeoff: non-adaptive algorithms escape the fence lower bound.
  const auto r = run_construction("bakery", 16);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_LE(r.rounds, 2);
  EXPECT_GE(r.replays, 10u) << "regularization must erase many processes";
}

TEST(Construction, MaxRoundsLimit) {
  lowerbound::ConstructionConfig cfg;
  cfg.max_rounds = 3;
  const auto r = run_construction("adaptive-bakery", 16, cfg);
  EXPECT_EQ(r.rounds, 3);
  EXPECT_EQ(r.stop_reason, "max rounds reached");
  EXPECT_EQ(r.min_barriers_active, 3u);
}

TEST(Construction, MinActiveThreshold) {
  lowerbound::ConstructionConfig cfg;
  cfg.min_active = 8;
  const auto r = run_construction("adaptive-bakery", 16, cfg);
  EXPECT_TRUE(r.final_active <= 16 && r.final_active >= 1);
  EXPECT_GE(r.witness_contention, 1u);
}

TEST(Construction, WitnessExecutionSatisfiesTheorem1Shape) {
  // Theorem 1: an execution with total contention i+1 in which a process
  // executes i barriers during a single passage.
  const int n = 12;
  const auto r = run_construction("adaptive-bakery", n);
  ASSERT_EQ(r.final_active, 1u);
  // i barriers with contention i+1:
  EXPECT_EQ(r.witness_contention, r.witness_barriers + 1u);
  EXPECT_GE(r.witness_barriers, 1u);
}

TEST(Construction, TicketLockAlsoPaysLinearly) {
  // The CAS retry loop of a ticket lock's fetch&increment is adaptive-like
  // under this adversary: each finished rival costs the survivors a failing
  // CAS barrier.
  const auto r = run_construction("ticket", 8);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_EQ(r.witness_barriers, 7u);
  EXPECT_EQ(r.witness_contention, 8u);
}

TEST(Construction, PhaseRecordsAreCoherent) {
  const auto r = run_construction("adaptive-bakery", 8);
  ASSERT_FALSE(r.phases.empty());
  for (const auto& ph : r.phases) {
    EXPECT_LE(ph.active_after, ph.active_before + 1) << "phase " << ph.phase;
    EXPECT_GE(ph.round, 0);
    EXPECT_TRUE(ph.phase == 'R' || ph.phase == 'W' || ph.phase == 'X' ||
                ph.phase == 'C');
  }
  // Events only grow.
  for (std::size_t i = 1; i < r.phases.size(); ++i)
    EXPECT_GE(r.phases[i].events_after, r.phases[i - 1].events_after);
}

TEST(Construction, TournamentForcesLogNFences) {
  // The tournament lock completes Θ(log n) fences in its entry section;
  // the construction can harvest at least a couple of rounds.
  const auto r = run_construction("tournament", 16);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_GE(r.rounds, 2);
}

}  // namespace
}  // namespace tpa
