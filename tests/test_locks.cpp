// Lock-zoo correctness: mutual exclusion and completion for every algorithm
// under round-robin and randomized TSO schedules (parameterized sweep), plus
// per-algorithm cost expectations — the separation the paper is about.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algos/bakery.h"
#include "algos/queue_locks.h"
#include "algos/tournament.h"
#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::lock_zoo;
using algos::run_passages;
using tso::Simulator;

struct RunResult {
  std::uint32_t total_passages = 0;
  bool all_done = true;
};

RunResult run_scenario(const algos::LockFactory& f, int n, int passages,
                       std::uint64_t seed, double commit_prob) {
  Simulator sim(static_cast<std::size_t>(n));
  auto lock = f.make(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, passages));
  if (seed == 0) {
    tso::run_round_robin(sim, 50'000'000);
  } else {
    Rng rng(seed);
    tso::run_random(sim, rng, commit_prob, 50'000'000);
  }
  RunResult r;
  for (int p = 0; p < n; ++p) {
    r.total_passages += sim.proc(p).passages_done();
    r.all_done = r.all_done && sim.proc(p).done();
  }
  return r;
}

// ---- Parameterized sweep: (lock index, seed) -------------------------------

class LockSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(LockSweep, ExclusionAndCompletion) {
  const auto& f = lock_zoo()[std::get<0>(GetParam())];
  const std::uint64_t seed = std::get<1>(GetParam());
  const int n = 5;
  const int passages = 3;
  // Mutual exclusion violations throw from inside the scheduler; reaching
  // the end with all passages done is the pass condition.
  const RunResult r = run_scenario(f, n, passages, seed, 0.3);
  EXPECT_TRUE(r.all_done) << f.name << " did not complete under seed " << seed;
  EXPECT_EQ(r.total_passages, static_cast<std::uint32_t>(n * passages))
      << f.name;
}

std::vector<std::tuple<std::size_t, std::uint64_t>> sweep_params() {
  std::vector<std::tuple<std::size_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < lock_zoo().size(); ++i)
    for (std::uint64_t seed : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 42ull,
                               1234ull})
      out.emplace_back(i, seed);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, LockSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<LockSweep::ParamType>& info) {
      std::string name = lock_zoo()[std::get<0>(info.param)].name + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- Aggressive commit-probability sweep for the read/write locks ---------

class CommitProbSweep : public ::testing::TestWithParam<double> {};

TEST_P(CommitProbSweep, BakeryFamilyUnderCommitRates) {
  for (const char* name : {"bakery", "adaptive-bakery", "tournament",
                           "lamport-fast"}) {
    const auto& f = algos::lock_factory(name);
    const RunResult r = run_scenario(f, 4, 2, 99, GetParam());
    EXPECT_TRUE(r.all_done) << name << " @ commit_prob " << GetParam();
    EXPECT_EQ(r.total_passages, 8u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, CommitProbSweep,
                         ::testing::Values(0.0, 0.05, 0.5, 0.95));

// ---- Solo progress (weak obstruction-freedom) ------------------------------

TEST(LockProgress, SoloPassageTerminatesForEveryLock) {
  for (const auto& f : lock_zoo()) {
    Simulator sim(4);  // others exist but take no steps
    auto lock = f.make(sim, 4);
    sim.spawn(0, run_passages(sim.proc(0), lock, 1));
    std::uint64_t steps = 0;
    while (!sim.proc(0).done()) {
      ASSERT_TRUE(sim.deliver(0)) << f.name;
      ASSERT_LT(++steps, 100'000u) << f.name << ": solo run does not finish";
    }
    EXPECT_EQ(sim.proc(0).passages_done(), 1u) << f.name;
  }
}

// ---- Cost expectations ------------------------------------------------------

TEST(LockCosts, BakeryHasConstantFencesAndLinearReads) {
  for (int n : {4, 8, 16}) {
    Simulator sim(static_cast<std::size_t>(n));
    auto lock = std::make_shared<algos::BakeryLock>(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, run_passages(sim.proc(p), lock, 1));
    tso::run_round_robin(sim, 50'000'000);
    for (int p = 0; p < n; ++p) {
      const auto& st = sim.proc(p).finished_passages().at(0);
      EXPECT_EQ(st.fences, 3u) << "bakery: 2 entry + 1 exit fences, n=" << n;
      EXPECT_EQ(st.cas_ops, 0u);
      EXPECT_GE(st.critical, static_cast<std::uint32_t>(n))
          << "bakery scans all n slots";
    }
  }
}

TEST(LockCosts, TournamentFencesGrowLogarithmically) {
  for (int n : {2, 4, 8, 16}) {
    Simulator sim(static_cast<std::size_t>(n));
    auto lock = std::make_shared<algos::TournamentLock>(sim, n);
    int levels = lock->levels();
    sim.spawn(0, run_passages(sim.proc(0), lock, 1));
    while (!sim.proc(0).done()) sim.deliver(0);
    const auto& st = sim.proc(0).finished_passages().at(0);
    EXPECT_EQ(st.fences, static_cast<std::uint32_t>(levels + 1))
        << "one fence per level + one release fence, n=" << n;
  }
}

TEST(LockCosts, AdaptiveBakeryWorkTracksContentionNotN) {
  // Solo passage in a huge arena: critical events must be O(1), not O(n).
  const int n = 256;
  Simulator sim(n);
  auto lock = std::make_shared<algos::AdaptiveBakery>(sim, n);
  sim.spawn(0, run_passages(sim.proc(0), lock, 2));
  while (!sim.proc(0).done()) sim.deliver(0);
  const auto& first = sim.proc(0).finished_passages().at(0);
  const auto& second = sim.proc(0).finished_passages().at(1);
  EXPECT_LE(first.critical, 12u)
      << "solo passage cost must not depend on n=256";
  EXPECT_LE(second.critical, 12u);
  EXPECT_EQ(second.cas_ops, 0u) << "registration happens once";

  // Contrast: plain bakery pays Θ(n) even solo.
  Simulator sim2(n);
  auto bakery = std::make_shared<algos::BakeryLock>(sim2, n);
  sim2.spawn(0, run_passages(sim2.proc(0), bakery, 1));
  while (!sim2.proc(0).done()) sim2.deliver(0);
  EXPECT_GE(sim2.proc(0).finished_passages().at(0).critical,
            static_cast<std::uint32_t>(n));
}

TEST(LockCosts, McsIsLocalSpinInDsm) {
  // Under DSM, an MCS waiter's spin variable is local: its RMR count per
  // passage stays constant even while it waits a long time.
  const int n = 3;
  Simulator sim(n);
  auto lock = std::make_shared<algos::McsLock>(sim, n);
  for (int p = 0; p < n; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  // p0 acquires; p1 and p2 enqueue; p1/p2 spin a while; then run to done.
  tso::run_round_robin(sim, 2'000);
  tso::run_round_robin(sim, 50'000'000);
  for (int p = 0; p < n; ++p) {
    const auto& st = sim.proc(p).finished_passages().at(0);
    EXPECT_LE(st.rmr_dsm, 20u) << "MCS DSM RMRs must be constant, p" << p;
  }
}

TEST(LockCosts, ExclusionCheckerCatchesABrokenLock) {
  // A "lock" that does nothing must trip the simulator's exclusion check.
  struct NoLock : algos::SimLock {
    tso::Task<> acquire(tso::Proc&) override { co_return; }
    tso::Task<> release(tso::Proc&) override { co_return; }
    std::string name() const override { return "none"; }
  };
  Simulator sim(2);
  auto lock = std::make_shared<NoLock>();
  for (int p = 0; p < 2; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  EXPECT_THROW(
      {
        sim.deliver(0);  // p0 Enter -> pending CS
        sim.deliver(1);  // p1 Enter -> pending CS: exclusion violation
      },
      CheckFailure);
}

}  // namespace
}  // namespace tpa
