// Cost accounting: criticality (Definition 2) and RMRs in the DSM model and
// the CC model under write-through and write-back protocols.
#include <gtest/gtest.h>

#include "tso/sim.h"

namespace tpa {
namespace {

using tso::EventKind;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

Task<> read_n(Proc& p, VarId v, int times) {
  for (int i = 0; i < times; ++i) co_await p.read(v);
}

TEST(Criticality, OnlyFirstRemoteReadIsCritical) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, read_n(sim.proc(0), v, 3));
  for (int i = 0; i < 3; ++i) sim.deliver(0);
  const auto& events = sim.execution().events;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].critical);
  EXPECT_FALSE(events[1].critical);
  EXPECT_FALSE(events[2].critical);
  EXPECT_EQ(sim.proc(0).current_passage().critical, 1u)
      << "exactly one critical event; the record is reset at the next Enter";
}

Task<> read_local(Proc& p, VarId v, int times) {
  for (int i = 0; i < times; ++i) co_await p.read(v);
}

TEST(Criticality, LocalReadsNeverCritical) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0, /*owner=*/0);
  sim.spawn(0, read_local(sim.proc(0), v, 2));
  sim.deliver(0);
  sim.deliver(0);
  for (const auto& e : sim.execution().events) {
    EXPECT_FALSE(e.remote);
    EXPECT_FALSE(e.critical);
    EXPECT_FALSE(e.rmr_dsm) << "DSM: local access is free";
  }
}

Task<> write_commit(Proc& p, VarId v, Value x) {
  co_await p.write(v, x);
  co_await p.fence();
}

TEST(Criticality, CommitCriticalIffLastWriterDiffers) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, write_commit(sim.proc(0), v, 1));
  sim.spawn(1, write_commit(sim.proc(1), v, 2));
  // p0: issue, BeginFence, commit, EndFence.
  for (int i = 0; i < 4; ++i) sim.deliver(0);
  // p1 commits over p0's value: critical.
  for (int i = 0; i < 4; ++i) sim.deliver(1);
  const auto& events = sim.execution().events;
  // events: p0 issue, begin, commit, end; p1 issue, begin, commit, end
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[2].kind, EventKind::kWriteCommit);
  EXPECT_TRUE(events[2].critical) << "first commit (writer ⊥ -> p0)";
  EXPECT_EQ(events[6].kind, EventKind::kWriteCommit);
  EXPECT_TRUE(events[6].critical) << "p1 overwrites p0";
}

Task<> write_twice(Proc& p, VarId v) {
  co_await p.write(v, 1);
  co_await p.fence();
  co_await p.write(v, 2);
  co_await p.fence();
}

TEST(Criticality, RepeatCommitBySameWriterNotCritical) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, write_twice(sim.proc(0), v));
  for (int i = 0; i < 8; ++i) sim.deliver(0);
  const auto& events = sim.execution().events;
  int commit_idx = 0;
  for (const auto& e : events) {
    if (e.kind != EventKind::kWriteCommit) continue;
    if (commit_idx == 0)
      EXPECT_TRUE(e.critical) << "first commit critical";
    else
      EXPECT_FALSE(e.critical) << "overwriting own value is not critical";
    ++commit_idx;
  }
  EXPECT_EQ(commit_idx, 2);
}

// ---- RMR accounting --------------------------------------------------------

TEST(Rmr, DsmChargesEveryRemoteAccess) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0, /*owner=*/1);
  sim.spawn(0, read_n(sim.proc(0), v, 3));
  for (int i = 0; i < 3; ++i) sim.deliver(0);
  for (const auto& e : sim.execution().events)
    EXPECT_TRUE(e.rmr_dsm) << "DSM: every remote access is an RMR";
}

TEST(Rmr, WriteThroughReadMissThenHit) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, read_n(sim.proc(0), v, 2));
  sim.deliver(0);
  sim.deliver(0);
  const auto& events = sim.execution().events;
  EXPECT_TRUE(events[0].rmr_wt) << "first read misses, creates copy";
  EXPECT_FALSE(events[1].rmr_wt) << "second read hits the cached copy";
  EXPECT_TRUE(events[0].rmr_wb);
  EXPECT_FALSE(events[1].rmr_wb);
}

Task<> reader_then_wait(Proc& p, VarId v) {
  co_await p.read(v);
  co_await p.read(v);
}

TEST(Rmr, WriteThroughCommitInvalidatesOtherCopies) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, reader_then_wait(sim.proc(0), v));
  sim.spawn(1, write_commit(sim.proc(1), v, 5));
  sim.deliver(0);  // p0 read: miss, caches copy
  for (int i = 0; i < 4; ++i) sim.deliver(1);  // p1 commits (invalidates p0)
  sim.deliver(0);  // p0 reads again: miss again
  const auto& events = sim.execution().events;
  EXPECT_TRUE(events[0].rmr_wt);
  EXPECT_TRUE(events.back().rmr_wt) << "copy was invalidated by p1's commit";
  EXPECT_TRUE(events.back().rmr_wb);
}

TEST(Rmr, WriteBackSecondCommitBySameWriterFree) {
  Simulator sim(1);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, write_twice(sim.proc(0), v));
  for (int i = 0; i < 8; ++i) sim.deliver(0);
  int commit_idx = 0;
  for (const auto& e : sim.execution().events) {
    if (e.kind != EventKind::kWriteCommit) continue;
    if (commit_idx == 0) {
      EXPECT_TRUE(e.rmr_wb) << "first commit takes the line exclusive";
    } else {
      EXPECT_FALSE(e.rmr_wb) << "write hit on exclusive line";
      EXPECT_TRUE(e.rmr_wt) << "write-through always pays";
    }
    ++commit_idx;
  }
}

Task<> cas_once(Proc& p, VarId v, Value expect, Value desired, Value* old) {
  const Value got = co_await p.cas(v, expect, desired);
  *old = got;
}

TEST(Cas, SemanticsAndCriticality) {
  Simulator sim(2);
  const VarId v = sim.alloc_var(0);
  Value old0 = -1, old1 = -1;
  sim.spawn(0, cas_once(sim.proc(0), v, 0, 1, &old0));
  sim.spawn(1, cas_once(sim.proc(1), v, 0, 2, &old1));
  sim.deliver(0);
  sim.deliver(1);
  EXPECT_EQ(old0, 0);
  EXPECT_EQ(old1, 1) << "p1's CAS must fail and report p0's value";
  EXPECT_EQ(sim.value(v), 1);
  const auto& events = sim.execution().events;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].cas_success);
  EXPECT_FALSE(events[1].cas_success);
  EXPECT_TRUE(events[0].critical);
  EXPECT_TRUE(events[1].critical) << "failed CAS still a first remote read";
  EXPECT_EQ(sim.proc(0).current_passage().cas_ops, 1u)
      << "one CAS barrier; the record is reset at the next Enter";
}

Task<> cas_drains(Proc& p, VarId a, VarId v) {
  co_await p.write(a, 9);
  co_await p.cas(v, 0, 1);
}

TEST(Cas, DrainsBufferFirst) {
  Simulator sim(1);
  const VarId a = sim.alloc_var(0);
  const VarId v = sim.alloc_var(0);
  sim.spawn(0, cas_drains(sim.proc(0), a, v));
  sim.deliver(0);  // issue a=9
  sim.deliver(0);  // BeginFence (implied by CAS)
  EXPECT_EQ(sim.value(a), 0);
  sim.deliver(0);  // commit a
  EXPECT_EQ(sim.value(a), 9);
  sim.deliver(0);  // EndFence + CAS
  EXPECT_EQ(sim.value(v), 1);
  const auto& events = sim.execution().events;
  EXPECT_EQ(events.back().kind, EventKind::kCas);
}

}  // namespace
}  // namespace tpa
