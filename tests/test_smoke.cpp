// Smoke tests: the simulator boots, a trivial program runs, a lock works
// under the friendliest schedule.
#include <gtest/gtest.h>

#include "algos/spin_locks.h"
#include "algos/zoo.h"
#include "tso/schedulers.h"
#include "tso/sim.h"

namespace tpa {
namespace {

using algos::run_passages;
using tso::Simulator;

TEST(Smoke, SimulatorConstructs) {
  Simulator sim(4);
  EXPECT_EQ(sim.num_procs(), 4u);
  EXPECT_EQ(sim.num_vars(), 0u);
  const auto v = sim.alloc_var(42);
  EXPECT_EQ(sim.value(v), 42);
}

TEST(Smoke, TasLockSinglePassageEachRoundRobin) {
  Simulator sim(3);
  auto lock = std::make_shared<algos::TasLock>(sim);
  for (int p = 0; p < 3; ++p)
    sim.spawn(p, run_passages(sim.proc(p), lock, 1));
  tso::run_round_robin(sim, 1'000'000);
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(sim.proc(p).passages_done(), 1u) << "p" << p;
}

TEST(Smoke, ZooIsComplete) { EXPECT_EQ(algos::lock_zoo().size(), 12u); }

}  // namespace
}  // namespace tpa
