// Moir-Anderson splitters, the renaming grid, and the pure read/write
// adaptive lock built on them — plus the paper's construction attacking it
// through the genuine read/write/regularization phase machinery.
#include <gtest/gtest.h>

#include <set>

#include "algos/splitter.h"
#include "lowerbound/construction.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

namespace tpa {
namespace {

using algos::AdaptiveSplitterLock;
using algos::MoirAndersonGrid;
using algos::SimSplitter;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;

Task<> visit_once(Proc& p, SimSplitter* s, SimSplitter::Outcome* out) {
  const SimSplitter::Outcome o = co_await s->visit(p);
  *out = o;
}

TEST(Splitter, SoloVisitorStops) {
  Simulator sim(1);
  SimSplitter s(sim);
  SimSplitter::Outcome out{};
  sim.spawn(0, visit_once(sim.proc(0), &s, &out));
  tso::run_round_robin(sim, 1000);
  EXPECT_EQ(out, SimSplitter::Outcome::kStop);
}

TEST(Splitter, AtMostOneStopManyVisitors) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const int n = 5;
    Simulator sim(n);
    SimSplitter s(sim);
    std::vector<SimSplitter::Outcome> outs(n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, visit_once(sim.proc(p), &s, &outs[static_cast<std::size_t>(p)]));
    Rng rng(seed);
    tso::run_random(sim, rng, 0.4, 100'000);
    int stops = 0, rights = 0, downs = 0;
    for (auto o : outs) {
      stops += o == SimSplitter::Outcome::kStop;
      rights += o == SimSplitter::Outcome::kRight;
      downs += o == SimSplitter::Outcome::kDown;
    }
    EXPECT_LE(stops, 1) << "seed " << seed;
    EXPECT_LE(rights, n - 1) << "seed " << seed;
    EXPECT_LE(downs, n - 1) << "seed " << seed;
  }
}

Task<> grab_name(Proc& p, MoirAndersonGrid* g, Value* out) {
  const Value cell = co_await g->acquire_name(p);
  *out = cell;
}

TEST(Grid, NamesUniqueAndWithinDiagonalK) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 8;
    const int k = 5;  // only 5 of 8 participate
    Simulator sim(n);
    MoirAndersonGrid grid(sim, n);
    std::vector<Value> names(static_cast<std::size_t>(k), -1);
    for (int p = 0; p < k; ++p)
      sim.spawn(p, grab_name(sim.proc(p), &grid, &names[static_cast<std::size_t>(p)]));
    Rng rng(seed);
    tso::run_random(sim, rng, 0.4, 1'000'000);

    std::set<Value> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k))
        << "names must be distinct, seed " << seed;
    for (Value cell : names) {
      ASSERT_GE(cell, 0);
      EXPECT_LT(grid.diagonal_of(cell), k)
          << "k participants stay within diagonal k-1, seed " << seed;
    }
  }
}

TEST(Grid, SoloWalkerTakesCellZero) {
  Simulator sim(4);
  MoirAndersonGrid grid(sim, 4);
  Value name = -1;
  sim.spawn(0, grab_name(sim.proc(0), &grid, &name));
  std::uint64_t fences_before = sim.proc(0).fences_completed();
  tso::run_round_robin(sim, 10'000);
  EXPECT_EQ(name, 0) << "uncontended walker stops at (0,0)";
  EXPECT_EQ(sim.proc(0).fences_completed() - fences_before, 2u)
      << "solo registration costs exactly 2 fences";
}

TEST(AdaptiveSplitter, SoloCostIndependentOfN) {
  const int n = 64;
  Simulator sim(n);
  auto lock = std::make_shared<AdaptiveSplitterLock>(sim, n);
  sim.spawn(0, algos::run_passages(sim.proc(0), lock, 2));
  while (!sim.proc(0).done()) sim.deliver(0);
  const auto& first = sim.proc(0).finished_passages().at(0);
  const auto& second = sim.proc(0).finished_passages().at(1);
  EXPECT_LE(first.critical, 16u) << "solo cost must not scale with n=64";
  EXPECT_LE(second.critical, 12u);
  EXPECT_LE(second.fences, 4u) << "no registration fences after the first";
  EXPECT_EQ(first.cas_ops + second.cas_ops, 0u) << "pure read/write";
}

TEST(AdaptiveSplitter, WorkScalesWithContentionNotArena) {
  // k contenders in arenas of different size: per-passage critical events
  // must track k, not n.
  const int k = 4;
  std::uint32_t critical_small = 0, critical_big = 0;
  for (int n : {8, 64}) {
    Simulator sim(static_cast<std::size_t>(n));
    auto lock = std::make_shared<AdaptiveSplitterLock>(sim, n);
    for (int p = 0; p < k; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
    // Deterministic schedule: the k contenders interleave identically in
    // both arenas, so the counts are exactly comparable.
    tso::run_round_robin(sim, 10'000'000);
    std::uint32_t total = 0;
    for (int p = 0; p < k; ++p)
      total += sim.proc(p).finished_passages().at(0).critical;
    (n == 8 ? critical_small : critical_big) = total;
  }
  EXPECT_EQ(critical_big, critical_small)
      << "growing the arena 8x must not grow the work";
}

TEST(AdaptiveSplitter, ConstructionForcesLinearFences) {
  // The headline: against a PURE READ/WRITE linearly-adaptive lock, the
  // paper's construction (true read/write/regularization phases, no CAS
  // extension involved) forces fences ~ total contention.
  const int n = 10;
  tso::ScenarioBuilder build = [n](Simulator& sim) {
    auto lock = std::make_shared<AdaptiveSplitterLock>(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };
  lowerbound::Construction c(n, build, {});
  const auto r = c.run();
  EXPECT_TRUE(r.invariants_ok) << r.invariant_detail;
  EXPECT_EQ(r.witness_contention, static_cast<std::size_t>(n));
  EXPECT_EQ(r.witness_barriers, static_cast<std::uint32_t>(n - 1));
  // The write phase's high-contention case (Case III, the semi-regular /
  // ordered-execution machinery) must actually be exercised.
  bool case3 = false, read_phase = false, regularized = false;
  for (const auto& ph : r.phases) {
    case3 |= ph.case_name == "III:high-contention";
    read_phase |= ph.phase == 'R';
    regularized |= ph.phase == 'X';
  }
  EXPECT_TRUE(case3) << "splitter X vars are multi-writer: Case III fires";
  EXPECT_TRUE(read_phase);
  EXPECT_TRUE(regularized);
}

}  // namespace
}  // namespace tpa
