// The paper's lower bound, live: run the adversary construction against an
// adaptive lock and a non-adaptive lock and watch the tradeoff.
//
//   ./build/examples/example_adversary_demo [lock] [N]
//
// locks: any zoo name (default adaptive-bakery); N defaults to 24.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algos/zoo.h"
#include "lowerbound/construction.h"

using namespace tpa;
using lowerbound::Construction;
using tso::ScenarioBuilder;
using tso::Simulator;

int main(int argc, char** argv) {
  const std::string lock_name = argc > 1 ? argv[1] : "adaptive-bakery";
  const int n = argc > 2 ? std::atoi(argv[2]) : 24;

  const auto& factory = algos::lock_factory(lock_name);
  ScenarioBuilder build = [&factory, n](Simulator& sim) {
    auto lock = factory.make(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };

  std::printf("== adversary construction vs %s, N=%d ==\n", lock_name.c_str(),
              n);
  std::puts("phases: R=read, W=write, C=cas (extension), X=regularization\n");

  Construction construction(static_cast<std::size_t>(n), build, {});
  const auto r = construction.run();

  for (const auto& ph : r.phases)
    std::printf("round %2d  %c %-18s active %3zu -> %3zu  (erased %zu, %llu "
                "events)\n",
                ph.round, ph.phase, ph.case_name.c_str(), ph.active_before,
                ph.active_after, ph.erased,
                static_cast<unsigned long long>(ph.events_after));

  std::printf("\nstop: %s\n", r.stop_reason.c_str());
  std::printf("rounds (barriers forced per survivor): %d\n", r.rounds);
  std::printf("finished processes |Fin|: %zu\n", r.finished);
  std::printf("erasure replays (each verified against Lemma 4): %llu\n",
              static_cast<unsigned long long>(r.replays));
  std::printf("invariants (IN1-IN5, Definitions 4-6): %s\n",
              r.invariants_ok ? "all verified" : r.invariant_detail.c_str());
  std::printf(
      "\nTheorem 1 witness: an execution with total contention %zu in which\n"
      "one process executes %u barriers during a SINGLE passage.\n",
      r.witness_contention, r.witness_barriers);
  if (lock_name == "adaptive-bakery")
    std::puts("\nThat is the price of being adaptive: barriers scale with\n"
              "contention, exactly as Theorem 1 predicts for linear f.");
  return 0;
}
