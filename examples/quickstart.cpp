// Quickstart: write a tiny TSO algorithm, run it under two schedules, read
// the cost counters the library maintains (fences, critical events, RMRs
// under DSM / CC write-through / CC write-back), and stream a run as JSONL
// through a custom observer.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "algos/bakery.h"
#include "tso/observers.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

using namespace tpa;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;
using tso::VarId;

// An algorithm is a C++20 coroutine: co_await suspends at every shared
// memory operation and the *scheduler* decides when it happens. NOTE: keep
// every co_await a standalone statement or initializer (see tso/task.h).
Task<> message_pass(Proc& p, VarId data, VarId flag) {
  co_await p.write(data, 42);  // buffered: not yet visible!
  co_await p.write(flag, 1);
  co_await p.fence();  // drain the write buffer (TSO)
  co_await p.read(data);
}

Task<> message_recv(Proc& p, VarId data, VarId flag, Value* out) {
  while (true) {
    const Value f = co_await p.read(flag);
    if (f == 1) break;
  }
  *out = co_await p.read(data);
}

int main() {
  std::puts("== tpa quickstart ==\n");

  // 1. A two-process message-passing scenario on the TSO simulator.
  {
    Simulator sim(2);
    const VarId data = sim.alloc_var(0);
    const VarId flag = sim.alloc_var(0);
    Value received = -1;
    sim.spawn(0, message_pass(sim.proc(0), data, flag));
    sim.spawn(1, message_recv(sim.proc(1), data, flag, &received));
    tso::run_round_robin(sim, 10'000);
    std::printf("receiver got %lld (flag committed after data: TSO FIFO)\n",
                static_cast<long long>(received));
    std::printf("trace has %llu events; first few:\n",
                static_cast<unsigned long long>(sim.num_events()));
    for (std::size_t i = 0; i < 6 && i < sim.execution().events.size(); ++i)
      std::printf("  %s\n", sim.execution().events[i].to_string().c_str());
  }

  // 2. A real mutual-exclusion algorithm from the zoo, with cost counters.
  {
    std::puts("\n-- Lamport's bakery, 4 processes x 2 passages --");
    const int n = 4;
    Simulator sim(n);
    auto lock = std::make_shared<algos::BakeryLock>(sim, n);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 2));
    Rng rng(1);
    tso::run_random(sim, rng, 0.3, 10'000'000);  // hostile random schedule

    for (int p = 0; p < n; ++p) {
      const auto& proc = sim.proc(p);
      std::printf("p%d: %u passages", p, proc.passages_done());
      for (const auto& st : proc.finished_passages())
        std::printf("  [fences=%u critical=%u rmr(dsm/wt/wb)=%u/%u/%u]",
                    st.fences, st.critical, st.rmr_dsm, st.rmr_wt, st.rmr_wb);
      std::puts("");
    }
    std::puts(
        "(the simulator asserts mutual exclusion at every enabled CS event)");
  }

  // 3. Observers are pluggable: attach a JsonlTraceSink and every directive
  //    and event streams out as one JSON object per line — pipe it to jq, a
  //    tracing UI, or a file. Custom instrumentation works the same way:
  //    derive from tso::SimObserver and add_observer() it.
  {
    std::puts("\n-- the same message-passing run, streamed as JSONL --");
    std::ostringstream jsonl;
    Simulator sim(2);
    sim.add_observer(std::make_unique<tso::JsonlTraceSink>(jsonl));
    const VarId data = sim.alloc_var(0);
    const VarId flag = sim.alloc_var(0);
    Value received = -1;
    sim.spawn(0, message_pass(sim.proc(0), data, flag));
    sim.spawn(1, message_recv(sim.proc(1), data, flag, &received));
    tso::run_round_robin(sim, 10'000);

    std::istringstream lines(jsonl.str());
    std::string line;
    std::size_t total = 0;
    while (std::getline(lines, line)) {
      if (total++ < 4) std::printf("  %s\n", line.c_str());
    }
    std::printf("  ... %zu JSONL records total\n", total);
  }
  return 0;
}
