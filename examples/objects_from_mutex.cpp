// Section 5 end-to-end: both directions of the reduction.
//
// Hard direction (Lemma 9): seeded queue -> limited-use counter ->
// Algorithm 1 one-time mutex; each passage costs one dequeue + O(1) extra.
// Easy direction: a counter/queue/stack protected by any zoo lock.
#include <cstdio>
#include <memory>

#include "algos/spin_locks.h"
#include "objects/lockfree.h"
#include "objects/reduction.h"
#include "tso/schedulers.h"
#include "tso/sim.h"
#include "util/rng.h"

using namespace tpa;
using objects::CounterMutex;
using objects::MichaelScottQueue;
using objects::QueueCounter;
using tso::Proc;
using tso::Simulator;
using tso::Task;
using tso::Value;

Task<> use_counter(Proc& p, std::shared_ptr<objects::SimCounter> c, int k,
                   Value* sum) {
  for (int i = 0; i < k; ++i) {
    const Value v = co_await c->fetch_increment(p);
    *sum += v;
  }
}

int main() {
  std::puts("== objects_from_mutex: the Section 5 reduction chain ==\n");

  // Hard direction: queue -> counter -> one-time mutex.
  {
    const int n = 6;
    Simulator sim(n);
    auto queue = std::make_shared<MichaelScottQueue>(sim, n, 0, n);
    std::vector<Value> tickets;
    for (int i = 0; i < n; ++i) tickets.push_back(i);
    queue->seed_initial(sim, tickets);  // S = <0; 1; ...; N-1>
    auto counter = std::make_shared<QueueCounter>(queue);
    auto mutex = std::make_shared<CounterMutex>(sim, n, counter);

    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), mutex, 1));
    Rng rng(5);
    tso::run_random(sim, rng, 0.3, 50'000'000);

    std::puts("-- one-time mutex over counter<ms-queue>, 6 processes --");
    for (int p = 0; p < n; ++p) {
      const auto& st = sim.proc(p).finished_passages().at(0);
      std::printf(
          "p%d passage: barriers=%u critical=%u (1 dequeue + O(1) overhead)\n",
          p, st.barriers(), st.critical);
    }
  }

  // Easy direction: counter protected by a TAS lock.
  {
    std::puts("\n-- locked counter (easy direction), 4 processes x 5 ops --");
    const int n = 4;
    Simulator sim(n);
    auto lock = std::make_shared<algos::TasLock>(sim);
    auto counter = std::make_shared<objects::LockedCounter>(sim, lock);
    Value sums[n] = {};
    for (int p = 0; p < n; ++p)
      sim.spawn(p, use_counter(sim.proc(p), counter, 5, &sums[p]));
    Rng rng(8);
    tso::run_random(sim, rng, 0.4, 50'000'000);
    Value total = 0;
    for (Value s : sums) total += s;
    std::printf("sum of all fetched values = %lld (expect 0+1+...+19 = 190)\n",
                static_cast<long long>(total));
  }
  return 0;
}
