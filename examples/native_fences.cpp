// Native fence-counting demo on real threads (x86 is TSO).
//
//   ./build/examples/example_native_fences [threads] [ops]
//
// Shows the measured fences / atomic-RMWs per passage for every native
// lock, side by side — the plain bakery's constant 2 fences vs the adaptive
// bakery's registration barriers vs the tournament's Θ(log n) fences.
#include <cstdio>
#include <cstdlib>

#include "runtime/harness.h"
#include "runtime/locks.h"

using namespace tpa::runtime;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t ops = argc > 2
                                ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                                : 10'000;

  std::printf("== native fence counting: %d threads x %llu passages ==\n\n",
              threads, static_cast<unsigned long long>(ops));
  std::printf("%-16s %10s %10s %10s %12s %10s\n", "lock", "ops/s",
              "fences/op", "rmws/op", "barriers/op", "exclusion");
  for (const auto& f : rt_lock_zoo()) {
    auto lock = f.make(threads);
    const auto r = run_stress(*lock, threads, ops);
    std::printf("%-16s %9.2fM %10.2f %10.2f %12.2f %10s\n", f.name.c_str(),
                r.ops_per_sec / 1e6, r.fences_per_op, r.rmws_per_op,
                r.barriers_per_op, r.exclusion_ok ? "ok" : "VIOLATED");
  }
  std::puts("\nEvery lock protects a plain (non-atomic) shared counter; the");
  std::puts("'exclusion' column checks no increment was lost.");
  return 0;
}
