// Interactive explorer for the paper's quantitative bounds.
//
//   ./build/examples/example_bounds_explorer [log2N] [c]
//
// Prints, for an f-adaptive algorithm with f(i)=c*i and f(i)=2^{c*i} on
// N = 2^log2N processes: the number of fences Theorem 1 forces, the
// Corollary 2/3 closed forms, and the Theorem 3 survivor guarantees.
// Closes with an empirical cross-check at machine-checkable scope: the
// "fences are unavoidable" premise, demonstrated by driving the exhaustive
// explorer (with stateful dedup) through the public scenario registry
// (runtime/scenario.h).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bounds/tradeoff.h"
#include "runtime/scenario.h"
#include "tso/explorer.h"

using namespace tpa::bounds;

namespace {

/// Exhaustively checks one registry scenario under the given preemption
/// bound, with visited-set pruning on, and prints the verdict.
void check_scenario(const char* name, int preemptions) {
  const tpa::runtime::Scenario* s = tpa::runtime::find_scenario(name);
  if (s == nullptr) {
    std::printf("  %s: missing from the registry\n", name);
    return;
  }
  tpa::tso::ExplorerConfig cfg;
  cfg.preemptions = preemptions;
  cfg.dedup = tpa::tso::DedupMode::kState;
  const auto r = s->explore(cfg);
  if (r.verdict.found()) {
    std::printf("  %-16s VIOLATED in %llu-step schedule (%s)\n", name,
                static_cast<unsigned long long>(r.verdict.witness.size()),
                tpa::runtime::violation_detail(r.verdict.message).c_str());
  } else {
    std::printf(
        "  %-16s safe: %llu schedules exhausted, %llu states deduped\n",
        name, static_cast<unsigned long long>(r.schedules),
        static_cast<unsigned long long>(r.dedup_states));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double log2n = argc > 1 ? std::atof(argv[1]) : 65536.0;  // N = 2^2^16
  const double c = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("== bounds explorer: N = 2^%.0f, coefficient c = %.2f ==\n\n",
              log2n, c);

  const int lin = forced_fences(linear_adaptivity(c), log2n);
  const int expo = forced_fences(exponential_adaptivity(c), log2n);
  std::printf("linear adaptivity f(i) = %.2f*i:\n", c);
  std::printf("  fences forced by Theorem 1 (exact search): %d\n", lin);
  std::printf("  Corollary 2 closed form loglogN/(3c):      %.2f\n",
              corollary2_fences(c, log2n));
  std::printf("exponential adaptivity f(i) = 2^(%.2f*i):\n", c);
  std::printf("  fences forced by Theorem 1 (exact search): %d\n", expo);
  std::printf("  Corollary 3 closed form (logloglogN-1)/c:  %.2f\n",
              corollary3_fences(c, log2n));

  std::puts("\nTheorem 3 survivor guarantee per round (linear f, l = f(i)):");
  for (int i = 1; i <= lin; ++i) {
    const double f_i = c * i;
    const double lb = log2_act_lower_bound(f_i, i, log2n);
    std::printf("  after round %2d: log2 |Act| >= %.1f%s\n", i, lb,
                lb <= 0 ? "  (guarantee exhausted)" : "");
    if (lb <= 0) break;
  }

  std::puts("\nminimum N for which Theorem 1 forces i fences (linear f):");
  for (int i = 1; i <= 8; ++i) {
    const double ml = min_log2_n(c * i, i);
    std::printf("  i = %d: N >= 2^%.0f\n", i, std::ceil(ml));
  }

  if (c * 6 <= 16) {
    std::puts("\nexact BigNat verification at the i=3 threshold:");
    const auto f3 = static_cast<std::uint32_t>(std::ceil(c * 3));
    const double ml = min_log2_n(f3, 3);
    const auto bits = static_cast<std::uint64_t>(std::ceil(ml)) + 1;
    const bool holds =
        theorem1_condition_exact(f3, 3, tpa::BigNat::pow2(bits));
    std::printf("  (f*f!*4^(f+2i))^(2^f) <= 2^%llu: %s\n",
                static_cast<unsigned long long>(bits),
                holds ? "holds (matches the log-domain threshold)" : "FAILS");
  }

  std::puts(
      "\nempirical cross-check (exhaustive exploration, stateful dedup):");
  check_scenario("bakery-none-2p", 1);  // fence-free: must fall
  check_scenario("bakery-tso-2p", 2);   // TSO fencing: exhaustively safe
  return 0;
}
