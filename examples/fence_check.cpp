// Exhaustive fence checking: explore every context-bounded TSO schedule of
// a small scenario and either certify it or print the violating schedule.
//
//   ./build/examples/example_fence_check [fencing] [n] [preemptions]
//
// fencing: tso | pso | none   (bakery fence placement; default none)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "algos/bakery.h"
#include "algos/zoo.h"
#include "tso/explorer.h"
#include "tso/schedule.h"

using namespace tpa;
using algos::BakeryFencing;
using algos::BakeryLock;
using tso::ScenarioBuilder;
using tso::Simulator;

int main(int argc, char** argv) {
  BakeryFencing fencing = BakeryFencing::kNone;
  if (argc > 1) {
    if (std::strcmp(argv[1], "tso") == 0) fencing = BakeryFencing::kTso;
    if (std::strcmp(argv[1], "pso") == 0) fencing = BakeryFencing::kPso;
  }
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const int preemptions = argc > 3 ? std::atoi(argv[3]) : 1;

  ScenarioBuilder build = [n, fencing](Simulator& sim) {
    auto lock = std::make_shared<BakeryLock>(sim, n, fencing);
    for (int p = 0; p < n; ++p)
      sim.spawn(p, algos::run_passages(sim.proc(p), lock, 1));
  };

  const char* fname = fencing == BakeryFencing::kNone  ? "no fences"
                      : fencing == BakeryFencing::kTso ? "TSO placement"
                                                       : "PSO placement";
  std::printf("== exhaustive check: bakery (%s), n=%d, <= %d preemption(s)\n\n",
              fname, n, preemptions);

  tso::ExplorerConfig cfg;
  cfg.preemptions = preemptions;
  const auto r = tso::explore(static_cast<std::size_t>(n), {}, build, cfg);

  std::printf("schedules explored: %llu (truncated: %llu, exhausted: %s)\n",
              static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.truncated),
              r.exhausted ? "yes" : "no");
  if (!r.verdict.found()) {
    std::puts("verdict: no violation within the bound.");
    return 0;
  }
  std::printf("\nVIOLATION: %s\n", r.verdict.message.c_str());
  std::puts("\nreplaying the witness schedule, event by event:");
  try {
    auto sim = tso::replay(static_cast<std::size_t>(n), {}, build, r.verdict.witness);
    (void)sim;
  } catch (const CheckFailure&) {
    // expected: the replay trips the same check. Show the trace by
    // replaying all but the final (fatal) directive.
    auto prefix = r.verdict.witness;
    prefix.pop_back();
    auto sim = tso::replay(static_cast<std::size_t>(n), {}, build, prefix);
    for (const auto& e : sim->execution().events)
      std::printf("  %s\n", e.to_string().c_str());
    std::puts("  ... next step enables a second CS: mutual exclusion broken.");
  }
  return 1;
}
